//! Criterion bench backing experiment F4: queue-discipline ablation of the
//! Step-9 round-robin push.

use congest_apsp::config::BlockerParams;
use congest_apsp::pipeline::{propagate_to_blockers_with, PushDiscipline, RoutedTable};
use congest_apsp::ApspConfig;
use congest_bench::workloads::sparse_random;
use congest_graph::seq::apsp_dijkstra;
use congest_graph::{DistMatrix, NodeId};
use congest_sim::Recorder;
use congest_sim::Topology;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_ablation(c: &mut Criterion) {
    let n = 48;
    let g = sparse_random(n, 13);
    let topo = Topology::from_graph(&g);
    let cfg = ApspConfig::default();
    let q: Vec<NodeId> = (0..n as NodeId).step_by(4).collect();
    let exact = apsp_dijkstra(&g);
    let dvals = RoutedTable::untracked(DistMatrix::from_rows(
        (0..n).map(|x| q.iter().map(|&c| exact[x][c as usize]).collect()).collect(),
    ));
    let mut group = c.benchmark_group("step9-discipline");
    group.sample_size(10);
    for (name, d) in [
        ("round-robin", PushDiscipline::RoundRobin),
        ("fixed-priority", PushDiscipline::FixedPriority),
        ("longest-first", PushDiscipline::LongestFirst),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut r = Recorder::new();
                propagate_to_blockers_with(
                    &g,
                    &topo,
                    &cfg,
                    BlockerParams::default(),
                    &q,
                    &dvals,
                    d,
                    &mut r,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
