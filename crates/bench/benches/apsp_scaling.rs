//! Criterion bench backing experiment T1: wall-clock of the three APSP
//! algorithms at a fixed simulable size (round counts are measured by the
//! `experiments` binary; this tracks simulator throughput regressions).

use congest_apsp::{Algorithm, Solver};
use congest_bench::workloads::sparse_random;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_apsp(c: &mut Criterion) {
    let mut group = c.benchmark_group("apsp");
    group.sample_size(10);
    for n in [24usize, 48] {
        let g = sparse_random(n, 42);
        group.bench_with_input(BenchmarkId::new("paper-derand", n), &n, |b, _| {
            b.iter(|| Solver::builder(&g).run().unwrap())
        });
        group.bench_with_input(BenchmarkId::new("ar18", n), &n, |b, _| {
            b.iter(|| Solver::builder(&g).algorithm(Algorithm::Ar18).run().unwrap())
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| Solver::builder(&g).algorithm(Algorithm::Naive).run().unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_apsp);
criterion_main!(benches);
