//! Criterion bench backing experiments T2/F2: blocker constructions.

use congest_apsp::blocker::{alg2_blocker, greedy_blocker, Selection};
use congest_apsp::config::{BlockerParams, Charging};
use congest_apsp::csssp::build_csssp;
use congest_bench::workloads::hop_deep;
use congest_graph::seq::Direction;
use congest_graph::NodeId;
use congest_sim::{Recorder, SimConfig, Topology};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_blocker(c: &mut Criterion) {
    let n = 48;
    let g = hop_deep(n, 5);
    let topo = Topology::from_graph(&g);
    let sources: Vec<NodeId> = (0..n as NodeId).collect();
    let mut rec = Recorder::new();
    let coll = build_csssp(
        &g,
        &topo,
        &sources,
        3,
        Direction::Out,
        false,
        SimConfig::default(),
        Charging::Quiesce,
        &mut rec,
        &mut congest_apsp::Recovery::disabled(),
        "csssp",
    )
    .unwrap();
    let mut group = c.benchmark_group("blocker");
    group.sample_size(10);
    group.bench_function("greedy", |b| {
        b.iter(|| {
            let mut r = Recorder::new();
            greedy_blocker(&topo, SimConfig::default(), &coll, &mut r).unwrap()
        })
    });
    group.bench_function("alg2-derand", |b| {
        b.iter(|| {
            let mut r = Recorder::new();
            alg2_blocker(
                &topo,
                SimConfig::default(),
                &coll,
                BlockerParams::default(),
                Selection::Derandomized,
                &mut r,
            )
            .unwrap()
        })
    });
    group.bench_function("alg2-randomized", |b| {
        b.iter(|| {
            let mut r = Recorder::new();
            alg2_blocker(
                &topo,
                SimConfig::default(),
                &coll,
                BlockerParams::default(),
                Selection::Randomized { seed: 7 },
                &mut r,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_blocker);
criterion_main!(benches);
