//! Engine-throughput benchmark: the flat double-buffered message plane vs
//! the pre-refactor boxed engine (`congest_bench::legacy`), on sustained
//! flood and Bellman–Ford workloads at n = 2^12 and n = 2^15 (the larger
//! size answers the ROADMAP question of where the persistent worker pool
//! starts paying off).
//!
//! Run with `cargo bench -p congest_bench --bench engine`. Set
//! `BENCH_ENGINE_JSON=path` to additionally write the measured numbers as
//! JSON (this is how `BENCH_engine.json` at the repo root is produced).
//!
//! Both workloads are implemented twice — once per engine interface — with
//! identical logic, and the harness asserts both engines compute identical
//! (rounds, messages) before timing anything.

use congest_bench::legacy::{legacy_run, LegacyEnvelope, LegacyLogic, LegacyOutbox};
use congest_graph::generators::{gnm_connected, WeightDist};
use congest_graph::NodeId;
use congest_sim::{Engine, Envelope, NodeEnv, NodeLogic, Outbox, RunUntil, SimConfig, Topology};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::VecDeque;

const SIZES: &[usize] = &[1 << 12, 1 << 15];
const WAVES: u32 = 64;
const BF_ROUNDS: u64 = 48;

/// Deterministic per-channel weight for the BF workload (both engines see
/// the same function of the endpoint ids).
fn edge_weight(u: NodeId, v: NodeId) -> u64 {
    let x = (u64::from(u.min(v)) << 32) | u64::from(u.max(v));
    let mut z = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z ^= z >> 29;
    1 + (z % 16)
}

// ---------------------------------------------------------------------
// Wave-flood workload: the root injects WAVES tokens; every node forwards
// each token once on every channel, one token per channel per round —
// sustained ~2m messages per round for ~WAVES + diameter rounds.
// ---------------------------------------------------------------------

struct WaveFlood {
    is_root: bool,
    seen: Vec<bool>,
    queue: VecDeque<u32>,
}

impl WaveFlood {
    fn new(is_root: bool) -> Self {
        WaveFlood { is_root, seen: vec![false; WAVES as usize], queue: VecDeque::new() }
    }

    fn receive(&mut self, wave: u32) {
        if !self.seen[wave as usize] {
            self.seen[wave as usize] = true;
            self.queue.push_back(wave);
        }
    }

    fn inject(&mut self, round: u64) {
        if self.is_root && round < u64::from(WAVES) {
            self.receive(round as u32);
        }
    }

    fn busy(&self) -> bool {
        !self.queue.is_empty() || (self.is_root && !self.seen[WAVES as usize - 1])
    }
}

impl NodeLogic for WaveFlood {
    type Msg = u32;
    fn on_round(&mut self, env: &NodeEnv<'_>, inbox: &[Envelope<u32>], out: &mut Outbox<'_, u32>) {
        self.inject(env.round);
        for e in inbox {
            self.receive(e.msg);
        }
        if let Some(w) = self.queue.pop_front() {
            out.broadcast(w);
        }
    }
    fn active(&self) -> bool {
        self.busy()
    }
}

impl LegacyLogic for WaveFlood {
    type Msg = u32;
    fn on_round(
        &mut self,
        _id: NodeId,
        round: u64,
        _neighbors: &[NodeId],
        inbox: &[LegacyEnvelope<u32>],
        out: &mut LegacyOutbox<'_, u32>,
    ) {
        self.inject(round);
        for e in inbox {
            self.receive(e.msg);
        }
        if let Some(w) = self.queue.pop_front() {
            out.broadcast(w);
        }
    }
    fn active(&self) -> bool {
        self.busy()
    }
}

// ---------------------------------------------------------------------
// Bellman–Ford workload: weighted relaxation over the communication graph
// from node 0; a node whose distance improved broadcasts it next round.
// ---------------------------------------------------------------------

struct BfRelax {
    dist: u64,
    dirty: bool,
    rounds_left: u64,
}

impl BfRelax {
    fn new(id: NodeId) -> Self {
        let dist = if id == 0 { 0 } else { u64::MAX };
        BfRelax { dist, dirty: id == 0, rounds_left: BF_ROUNDS }
    }

    fn relax(&mut self, via: u64) {
        if via < self.dist {
            self.dist = via;
            self.dirty = true;
        }
    }

    fn step(&mut self) -> bool {
        self.rounds_left = self.rounds_left.saturating_sub(1);
        let fire = self.dirty && self.rounds_left > 0;
        if fire {
            self.dirty = false;
        }
        fire
    }
}

impl NodeLogic for BfRelax {
    type Msg = u64;
    fn on_round(&mut self, env: &NodeEnv<'_>, inbox: &[Envelope<u64>], out: &mut Outbox<'_, u64>) {
        for e in inbox {
            let w = edge_weight(env.id, e.from);
            self.relax(e.msg.saturating_add(w));
        }
        let dist = self.dist;
        if self.step() {
            out.broadcast(dist);
        }
    }
    fn active(&self) -> bool {
        self.rounds_left > 0
    }
}

impl LegacyLogic for BfRelax {
    type Msg = u64;
    fn on_round(
        &mut self,
        id: NodeId,
        _round: u64,
        _neighbors: &[NodeId],
        inbox: &[LegacyEnvelope<u64>],
        out: &mut LegacyOutbox<'_, u64>,
    ) {
        for e in inbox {
            let w = edge_weight(id, e.from);
            self.relax(e.msg.saturating_add(w));
        }
        let dist = self.dist;
        if self.step() {
            out.broadcast(dist);
        }
    }
    fn active(&self) -> bool {
        self.rounds_left > 0
    }
}

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

fn workload_topo(n: usize) -> Topology {
    Topology::from_graph(&gnm_connected(n, 2 * n, false, WeightDist::Unit, 7))
}

/// Sequential flat-plane configuration.
fn flat_seq() -> SimConfig {
    SimConfig { parallel_threshold: usize::MAX, ..Default::default() }
}

/// Parallel flat-plane configuration (auto worker count).
fn flat_par() -> SimConfig {
    SimConfig { parallel_threshold: 1, ..Default::default() }
}

fn run_flat<L: NodeLogic>(
    topo: &Topology,
    cfg: SimConfig,
    mut mk: impl FnMut() -> Vec<L>,
) -> (u64, u64) {
    let engine = Engine::new(topo, cfg);
    let report = engine.run(&mut mk(), RunUntil::Quiesce { max: 100_000 }).unwrap();
    (report.rounds, report.messages)
}

struct MeasuredWorkload {
    name: &'static str,
    rounds: u64,
    messages: u64,
    legacy_ns: f64,
    flat_seq_ns: f64,
    flat_par_ns: f64,
}

struct MeasuredSize {
    n: usize,
    workloads: Vec<MeasuredWorkload>,
}

fn measure_size(c: &mut Criterion, n: usize) -> MeasuredSize {
    let topo = workload_topo(n);

    // -------- cross-check both engines before timing --------
    let mk_flood = || (0..n).map(|i| WaveFlood::new(i == 0)).collect::<Vec<_>>();
    let (fr, fm) = {
        let mut nodes = mk_flood();
        legacy_run(&topo, 1, &mut nodes, 100_000)
    };
    assert_eq!((fr, fm), run_flat(&topo, flat_seq(), mk_flood), "flood: engines disagree");
    assert_eq!((fr, fm), run_flat(&topo, flat_par(), mk_flood), "flood: parallel disagrees");

    let mk_bf = || (0..n).map(|i| BfRelax::new(i as NodeId)).collect::<Vec<_>>();
    let (br, bm) = {
        let mut nodes = mk_bf();
        legacy_run(&topo, 1, &mut nodes, 100_000)
    };
    assert_eq!((br, bm), run_flat(&topo, flat_seq(), mk_bf), "bf: engines disagree");
    assert_eq!((br, bm), run_flat(&topo, flat_par(), mk_bf), "bf: parallel disagrees");

    // -------- timing --------
    let group_name = format!("engine-n{n}");
    let mut group = c.benchmark_group(&group_name);
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("flood/legacy-boxed", |b| {
        b.iter(|| {
            let mut nodes = mk_flood();
            legacy_run(&topo, 1, &mut nodes, 100_000)
        })
    });
    group.bench_function("flood/flat-seq", |b| b.iter(|| run_flat(&topo, flat_seq(), mk_flood)));
    group.bench_function("flood/flat-par", |b| b.iter(|| run_flat(&topo, flat_par(), mk_flood)));
    group.bench_function("bf/legacy-boxed", |b| {
        b.iter(|| {
            let mut nodes = mk_bf();
            legacy_run(&topo, 1, &mut nodes, 100_000)
        })
    });
    group.bench_function("bf/flat-seq", |b| b.iter(|| run_flat(&topo, flat_seq(), mk_bf)));
    group.bench_function("bf/flat-par", |b| b.iter(|| run_flat(&topo, flat_par(), mk_bf)));
    group.finish();

    let median = |suffix: &str| -> f64 {
        c.results
            .iter()
            .find(|(name, _)| name.starts_with(&group_name) && name.ends_with(suffix))
            .map_or(0.0, |(_, s)| s.median_ns)
    };
    let workloads = vec![
        MeasuredWorkload {
            name: "flood",
            rounds: fr,
            messages: fm,
            legacy_ns: median("flood/legacy-boxed"),
            flat_seq_ns: median("flood/flat-seq"),
            flat_par_ns: median("flood/flat-par"),
        },
        MeasuredWorkload {
            name: "bellman_ford",
            rounds: br,
            messages: bm,
            legacy_ns: median("bf/legacy-boxed"),
            flat_seq_ns: median("bf/flat-seq"),
            flat_par_ns: median("bf/flat-par"),
        },
    ];

    for w in &workloads {
        if w.flat_seq_ns == 0.0 || w.flat_par_ns == 0.0 {
            continue; // filtered out on this run
        }
        println!(
            "n={n} {}: rounds={} messages={} | legacy {:.2} ms | flat-seq {:.2} ms ({:.2}x) | flat-par {:.2} ms ({:.2}x, par-vs-seq {:.2}x)",
            w.name,
            w.rounds,
            w.messages,
            w.legacy_ns / 1e6,
            w.flat_seq_ns / 1e6,
            w.legacy_ns / w.flat_seq_ns,
            w.flat_par_ns / 1e6,
            w.legacy_ns / w.flat_par_ns,
            w.flat_seq_ns / w.flat_par_ns,
        );
    }

    MeasuredSize { n, workloads }
}

fn bench_engine(c: &mut Criterion) {
    let sizes: Vec<MeasuredSize> = SIZES.iter().map(|&n| measure_size(c, n)).collect();

    if let Ok(path) = std::env::var("BENCH_ENGINE_JSON") {
        use congest_telemetry::json::{obj, Json};
        let ms = |ns: f64| Json::F64((ns / 1e6 * 1000.0).round() / 1000.0);
        let ratio = |a: f64, b: f64| Json::F64((a / b * 100.0).round() / 100.0);
        let sizes_json: Vec<Json> = sizes
            .iter()
            .map(|size| {
                // A name filter (`cargo bench ... -- <substring>`) leaves
                // skipped benchmarks with 0.0 medians; emitting those would
                // put NaN/inf ratios in the JSON, so drop them like the
                // console summary does.
                let workloads: Vec<Json> = size
                    .workloads
                    .iter()
                    .filter(|w| w.legacy_ns > 0.0 && w.flat_seq_ns > 0.0 && w.flat_par_ns > 0.0)
                    .map(|w| {
                        obj(vec![
                            ("name", Json::from(w.name)),
                            ("rounds", Json::U64(w.rounds)),
                            ("messages", Json::U64(w.messages)),
                            ("legacy_boxed_ms", ms(w.legacy_ns)),
                            ("flat_seq_ms", ms(w.flat_seq_ns)),
                            ("flat_par_ms", ms(w.flat_par_ns)),
                            ("speedup_flat_seq_vs_legacy", ratio(w.legacy_ns, w.flat_seq_ns)),
                            ("speedup_flat_par_vs_legacy", ratio(w.legacy_ns, w.flat_par_ns)),
                            ("speedup_flat_par_vs_flat_seq", ratio(w.flat_seq_ns, w.flat_par_ns)),
                        ])
                    })
                    .collect();
                obj(vec![
                    ("n", Json::from(size.n)),
                    ("extra_edges", Json::from(2 * size.n)),
                    ("workloads", Json::Arr(workloads)),
                ])
            })
            .collect();
        congest_telemetry::Manifest::new("bench-engine")
            .field(
                "benchmark",
                Json::from("engine message plane: legacy boxed vs flat double-buffered"),
            )
            .field(
                "knobs",
                obj(vec![
                    ("waves", Json::from(WAVES)),
                    ("bf_rounds", Json::U64(BF_ROUNDS)),
                    ("graph", Json::from("gnm_connected(n, 2n, unit weights, seed 7)")),
                ]),
            )
            .field("sizes", Json::Arr(sizes_json))
            .write(&path)
            .expect("write BENCH_ENGINE_JSON");
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
