//! Recovery-overhead benchmark: what detect-and-recover costs as a
//! function of the fault rate, at n = 2^10 and n = 2^11.
//!
//! The workload is the sustained Bellman–Ford relaxation phase (the shape
//! every pipeline step reduces to), run under a seeded fault plan through
//! a retry harness that mirrors the solver's accept rule exactly: an
//! attempt is accepted iff its engine report counted **zero injected
//! faults**; anything else re-runs the phase under a fresh per-attempt
//! salt. Overhead is reported two ways:
//!
//! * **rounds** — total simulated rounds across all attempts vs the
//!   rounds of the clean run (the CONGEST-model cost of recovery);
//! * **wall-clock** — measured time for the full retry loop vs the clean
//!   run (the simulator-side cost).
//!
//! Fault rates are chosen per size so the expected number of injections
//! per attempt λ hits fixed targets (0.25, 1, 2): the accept probability
//! is ~e^-λ, making the sweep comparable across n. A corruption point at
//! λ = 1 exercises the payload-mutation path (`corrupt_msg`).
//!
//! Run with `cargo bench -p congest_bench --bench faults`. Set
//! `BENCH_FAULTS_JSON=path` to write the numbers as JSON (this is how
//! `BENCH_faults.json` at the repo root is produced).

use congest_graph::generators::{gnm_connected, WeightDist};
use congest_graph::NodeId;
use congest_sim::fault::FaultSpec;
use congest_sim::{Engine, Envelope, NodeEnv, NodeLogic, Outbox, RunUntil, SimConfig, Topology};
use criterion::{criterion_group, criterion_main, Criterion};

const SIZES: &[usize] = &[1 << 10, 1 << 11];
const BF_ROUNDS: u64 = 48;
const MAX_ATTEMPTS: u32 = 64;
/// Expected injections per attempt targeted by the rate sweep.
const LAMBDAS: &[f64] = &[0.25, 1.0, 2.0];

fn edge_weight(u: NodeId, v: NodeId) -> u64 {
    let x = (u64::from(u.min(v)) << 32) | u64::from(u.max(v));
    let mut z = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z ^= z >> 29;
    1 + (z % 16)
}

/// Bellman–Ford relaxation from node 0; a node whose distance improved
/// broadcasts it next round (same workload as the engine benchmark).
struct BfRelax {
    dist: u64,
    dirty: bool,
    rounds_left: u64,
}

impl BfRelax {
    fn new(id: NodeId) -> Self {
        let dist = if id == 0 { 0 } else { u64::MAX };
        BfRelax { dist, dirty: id == 0, rounds_left: BF_ROUNDS }
    }
}

impl NodeLogic for BfRelax {
    type Msg = u64;
    fn on_round(&mut self, env: &NodeEnv<'_>, inbox: &[Envelope<u64>], out: &mut Outbox<'_, u64>) {
        for e in inbox {
            let w = edge_weight(env.id, e.from);
            let via = e.msg.saturating_add(w);
            if via < self.dist {
                self.dist = via;
                self.dirty = true;
            }
        }
        self.rounds_left = self.rounds_left.saturating_sub(1);
        if self.dirty && self.rounds_left > 0 {
            self.dirty = false;
            out.broadcast(self.dist);
        }
    }
    fn active(&self) -> bool {
        self.rounds_left > 0
    }
    fn corrupt_msg(&self, msg: &mut u64, entropy: u64) -> bool {
        // Flip payload bits but keep the value finite so the workload
        // keeps relaxing on damaged (wrong) distances.
        *msg = (*msg ^ entropy) & (u64::MAX >> 1);
        true
    }
}

struct Attempted {
    attempts: u32,
    total_rounds: u64,
    accepted_rounds: u64,
    injected: u64,
    recovered: bool,
}

/// The solver's accept rule in miniature: run under `spec.reseeded(salt)`
/// per attempt, accept the first report with zero injected faults.
fn run_with_recovery(topo: &Topology, spec: Option<FaultSpec>, salt0: u64) -> Attempted {
    let mut out = Attempted {
        attempts: 0,
        total_rounds: 0,
        accepted_rounds: 0,
        injected: 0,
        recovered: false,
    };
    for attempt in 0..MAX_ATTEMPTS {
        out.attempts += 1;
        let cfg = SimConfig {
            parallel_threshold: usize::MAX,
            fault: spec.map(|s| s.reseeded(salt0 ^ u64::from(attempt))),
            ..Default::default()
        };
        let engine = Engine::new(topo, cfg);
        let n = topo.n();
        let mut nodes: Vec<BfRelax> = (0..n).map(|i| BfRelax::new(i as NodeId)).collect();
        let report = engine.run(&mut nodes, RunUntil::Quiesce { max: 100_000 }).unwrap();
        out.total_rounds += report.rounds;
        out.injected += report.faults.injected;
        if report.faults.is_zero() {
            out.accepted_rounds = report.rounds;
            out.recovered = true;
            return out;
        }
    }
    out
}

struct MeasuredRate {
    kind: &'static str,
    lambda: f64,
    ppm: u32,
    attempts: u32,
    total_rounds: u64,
    injected: u64,
    recovered: bool,
    median_ns: f64,
}

struct MeasuredSize {
    n: usize,
    clean_rounds: u64,
    clean_messages: u64,
    clean_ns: f64,
    rates: Vec<MeasuredRate>,
}

fn measure_size(c: &mut Criterion, n: usize) -> MeasuredSize {
    let topo = Topology::from_graph(&gnm_connected(n, 2 * n, false, WeightDist::Unit, 7));

    // Clean run: the baseline both overhead ratios divide by, and the
    // message count the per-size ppm rates are derived from.
    let clean = run_with_recovery(&topo, None, 0);
    assert!(clean.recovered && clean.attempts == 1);
    let clean_messages = {
        let engine =
            Engine::new(&topo, SimConfig { parallel_threshold: usize::MAX, ..Default::default() });
        let mut nodes: Vec<BfRelax> = (0..n).map(|i| BfRelax::new(i as NodeId)).collect();
        engine.run(&mut nodes, RunUntil::Quiesce { max: 100_000 }).unwrap().messages
    };
    let ppm_for =
        |lambda: f64| -> u32 { ((lambda * 1e6 / clean_messages as f64).round() as u32).max(1) };

    let group_name = format!("faults-n{n}");
    let mut group = c.benchmark_group(&group_name);
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("clean", |b| b.iter(|| run_with_recovery(&topo, None, 0)));
    for &lambda in LAMBDAS {
        let spec = FaultSpec::seeded(0xFA01).drops(ppm_for(lambda));
        group.bench_function(format!("drop/lambda-{lambda}"), |b| {
            b.iter(|| run_with_recovery(&topo, Some(spec), 11))
        });
    }
    let corrupt_spec = FaultSpec::seeded(0xFA02).corruption(ppm_for(1.0));
    group.bench_function("corrupt/lambda-1", |b| {
        b.iter(|| run_with_recovery(&topo, Some(corrupt_spec), 13))
    });
    group.finish();

    let median = |suffix: &str| -> f64 {
        c.results
            .iter()
            .find(|(name, _)| name.starts_with(&group_name) && name.ends_with(suffix))
            .map_or(0.0, |(_, s)| s.median_ns)
    };

    let mut rates = Vec::new();
    for &lambda in LAMBDAS {
        let ppm = ppm_for(lambda);
        let spec = FaultSpec::seeded(0xFA01).drops(ppm);
        let a = run_with_recovery(&topo, Some(spec), 11);
        rates.push(MeasuredRate {
            kind: "drop",
            lambda,
            ppm,
            attempts: a.attempts,
            total_rounds: a.total_rounds,
            injected: a.injected,
            recovered: a.recovered,
            median_ns: median(&format!("drop/lambda-{lambda}")),
        });
    }
    let a = run_with_recovery(&topo, Some(corrupt_spec), 13);
    rates.push(MeasuredRate {
        kind: "corrupt",
        lambda: 1.0,
        ppm: ppm_for(1.0),
        attempts: a.attempts,
        total_rounds: a.total_rounds,
        injected: a.injected,
        recovered: a.recovered,
        median_ns: median("corrupt/lambda-1"),
    });

    for r in &rates {
        if r.median_ns == 0.0 {
            continue; // filtered out on this run
        }
        println!(
            "n={n} {}@{}ppm (lambda={}): attempts={} rounds {} -> {} ({:.2}x) | {:.2} ms{}",
            r.kind,
            r.ppm,
            r.lambda,
            r.attempts,
            clean.total_rounds,
            r.total_rounds,
            r.total_rounds as f64 / clean.total_rounds as f64,
            r.median_ns / 1e6,
            if r.recovered { "" } else { " [NOT recovered]" },
        );
    }

    MeasuredSize {
        n,
        clean_rounds: clean.total_rounds,
        clean_messages,
        clean_ns: median("clean"),
        rates,
    }
}

fn bench_faults(c: &mut Criterion) {
    let sizes: Vec<MeasuredSize> = SIZES.iter().map(|&n| measure_size(c, n)).collect();

    if let Ok(path) = std::env::var("BENCH_FAULTS_JSON") {
        use congest_telemetry::json::{obj, Json};
        let round2 = |x: f64| Json::F64((x * 100.0).round() / 100.0);
        let ms = |ns: f64| Json::F64((ns / 1e6 * 1000.0).round() / 1000.0);
        let sizes_json: Vec<Json> = sizes
            .iter()
            .map(|size| {
                let rates: Vec<Json> = size
                    .rates
                    .iter()
                    .filter(|r| r.median_ns > 0.0)
                    .map(|r| {
                        obj(vec![
                            ("kind", Json::from(r.kind)),
                            ("lambda", Json::F64(r.lambda)),
                            ("rate_ppm", Json::from(r.ppm)),
                            ("attempts", Json::from(r.attempts)),
                            ("injected_faults", Json::U64(r.injected)),
                            ("recovered", Json::Bool(r.recovered)),
                            ("rounds_total", Json::U64(r.total_rounds)),
                            (
                                "rounds_overhead",
                                round2(r.total_rounds as f64 / size.clean_rounds as f64),
                            ),
                            ("wall_ms", ms(r.median_ns)),
                            (
                                "wall_overhead",
                                round2(if size.clean_ns > 0.0 {
                                    r.median_ns / size.clean_ns
                                } else {
                                    0.0
                                }),
                            ),
                        ])
                    })
                    .collect();
                obj(vec![
                    ("n", Json::from(size.n)),
                    ("clean_rounds", Json::U64(size.clean_rounds)),
                    ("clean_messages", Json::U64(size.clean_messages)),
                    ("clean_ms", ms(size.clean_ns)),
                    ("rates", Json::Arr(rates)),
                ])
            })
            .collect();
        congest_telemetry::Manifest::new("bench-faults")
            .field(
                "benchmark",
                Json::from("detect-and-recover overhead vs fault rate (BF relaxation phase)"),
            )
            .field(
                "knobs",
                obj(vec![
                    ("max_attempts", Json::from(MAX_ATTEMPTS)),
                    ("bf_rounds", Json::U64(BF_ROUNDS)),
                    ("lambdas", Json::Arr(LAMBDAS.iter().map(|&l| Json::F64(l)).collect())),
                    ("graph", Json::from("gnm_connected(n, 2n, unit weights, seed 7)")),
                ]),
            )
            .field("sizes", Json::Arr(sizes_json))
            .write(&path)
            .expect("write BENCH_FAULTS_JSON");
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench_faults);
criterion_main!(benches);
