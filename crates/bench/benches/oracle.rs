//! Oracle serving-layer throughput: single-operation latencies via the
//! criterion harness, plus a multi-threaded queries/sec measurement of the
//! sharded [`QueryEngine`].
//!
//! Run with `cargo bench -p congest_bench --bench oracle`. Set
//! `BENCH_ORACLE_JSON=path` to additionally write the measured numbers as
//! JSON (this is how `BENCH_oracle.json` at the repo root is produced).
//!
//! The oracle is built from the sequential Dijkstra solution (bit-identical
//! to the distributed pipeline's output, as the exactness suites prove) so
//! the benchmark spends its time on the serving layer, not on re-running
//! the CONGEST simulation.

use congest_apsp::{ApspMeta, ApspOutcome};
use congest_graph::generators::{gnm_connected, WeightDist};
use congest_graph::seq::apsp_dijkstra;
use congest_graph::{NodeId, NO_SUCC};
use congest_oracle::{
    successor_derivations, EngineConfig, IntoOracle, Oracle, PagedConfig, PagedOracle, QueryEngine,
    V2Config,
};
use congest_sim::Recorder;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Instant;

const N: usize = 1 << 11; // 2048 nodes => 4M distances, 4M successors
const QUERIES_PER_THREAD: u64 = 200_000;
const THREAD_COUNTS: &[usize] = &[1, 2, 4, 8];
/// Fraction of mixed-workload queries that ask for a full path (the rest
/// are point distance lookups): 1 in 8.
const PATH_EVERY: u64 = 8;
/// Distinct ranked routes in the Zipf-skewed path workload. Much larger
/// than the total LRU capacity (shards × cache_per_shard), so the hit rate
/// measures how well the cache exploits the skew, not just its size.
const ZIPF_UNIVERSE: usize = 1 << 20;
/// Zipf exponent s in P(rank r) ∝ 1/r^s.
const ZIPF_S: f64 = 1.0;

/// The benchmark graph, its Dijkstra solution (computed once — the single
/// most expensive setup step) and the engine serving it.
fn build_engine(
    cache_per_shard: usize,
) -> (congest_graph::Graph<u64>, congest_graph::DistMatrix<u64>, QueryEngine<u64>) {
    let g = gnm_connected(N, 4 * N, true, WeightDist::Uniform(1, 100), 2026);
    let dist = apsp_dijkstra(&g);
    let oracle = Oracle::from_dist(&g, dist.clone());
    let engine = QueryEngine::new(Arc::new(oracle), EngineConfig { shards: 64, cache_per_shard });
    (g, dist, engine)
}

/// xorshift64* — cheap per-thread query-id stream.
fn next_rng(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    state.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

fn pair(state: &mut u64) -> (NodeId, NodeId) {
    let r = next_rng(state);
    (((r % N as u64) as u32), (((r >> 32) % N as u64) as u32))
}

/// Runs `threads` workers, each issuing `QUERIES_PER_THREAD` mixed
/// dist/path queries; returns aggregate queries per second.
fn mixed_qps(engine: &QueryEngine<u64>, threads: usize) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let engine = &engine;
            scope.spawn(move || {
                let mut state = 0x9E37_79B9 + t as u64;
                let mut checksum = 0u64;
                for i in 0..QUERIES_PER_THREAD {
                    let (u, v) = pair(&mut state);
                    if i % PATH_EVERY == 0 {
                        if let Some(p) = engine.path(u, v).expect("in range") {
                            checksum ^= p.len() as u64;
                        }
                    } else if let Some(d) = engine.dist(u, v).expect("in range") {
                        checksum ^= d;
                    }
                }
                black_box(checksum);
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    (threads as u64 * QUERIES_PER_THREAD) as f64 / secs
}

/// Hot-route workload: every thread requests full paths from a small set
/// of popular pairs — the skewed-traffic regime the per-shard LRU cache
/// exists for (uniform random pairs over n² are its worst case).
fn hot_path_qps(engine: &QueryEngine<u64>, threads: usize, hot: &[(NodeId, NodeId)]) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let engine = &engine;
            scope.spawn(move || {
                let mut state = 0xDEAD_BEEF + t as u64;
                let mut checksum = 0u64;
                for _ in 0..QUERIES_PER_THREAD {
                    let (u, v) = hot[(next_rng(&mut state) % hot.len() as u64) as usize];
                    if let Some(p) = engine.path(u, v).expect("in range") {
                        checksum ^= p.len() as u64;
                    }
                }
                black_box(checksum);
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    (threads as u64 * QUERIES_PER_THREAD) as f64 / secs
}

/// Cumulative Zipf(s) weights over `ZIPF_UNIVERSE` ranks, for inverse-CDF
/// sampling.
fn zipf_cdf() -> Vec<f64> {
    let mut cum = Vec::with_capacity(ZIPF_UNIVERSE);
    let mut total = 0.0;
    for r in 1..=ZIPF_UNIVERSE {
        total += 1.0 / (r as f64).powf(ZIPF_S);
        cum.push(total);
    }
    cum
}

/// Deterministic rank → route mapping (the popular ranks land on
/// arbitrary but fixed pairs). Splitmix64 finalizer with the golden-ratio
/// pre-increment, so rank 0 does not fix-point to node 0; degenerate
/// `u == v` self-pairs (which `path` answers without reconstruction) are
/// nudged off the diagonal.
fn zipf_route(rank: usize) -> (NodeId, NodeId) {
    let mut h = (rank as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    let a = (h % N as u64) as u32;
    let mut b = ((h >> 32) % N as u64) as u32;
    if a == b {
        b = (b + 1) % N as u32;
    }
    (a, b)
}

/// Zipf-skewed path workload: every thread requests full routes whose
/// popularity follows a Zipf(s) law over `ZIPF_UNIVERSE` ranked pairs —
/// the realistic skewed-traffic regime between `hot_path_qps` (tiny hot
/// set) and `mixed_qps` (uniform pairs, the LRU's worst case).
fn zipf_path_qps(engine: &QueryEngine<u64>, threads: usize, cum: &[f64]) -> f64 {
    let total = *cum.last().expect("nonempty cdf");
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let engine = &engine;
            scope.spawn(move || {
                let mut state = 0x5A1F_C0DE + t as u64;
                let mut checksum = 0u64;
                for _ in 0..QUERIES_PER_THREAD {
                    let u = next_rng(&mut state) as f64 / u64::MAX as f64 * total;
                    let rank = cum.partition_point(|&c| c < u);
                    let (a, b) = zipf_route(rank.min(ZIPF_UNIVERSE - 1));
                    if let Some(p) = engine.path(a, b).expect("in range") {
                        checksum ^= p.len() as u64;
                    }
                }
                black_box(checksum);
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    (threads as u64 * QUERIES_PER_THREAD) as f64 / secs
}

struct ThroughputPoint {
    threads: usize,
    qps: f64,
    hot_qps: f64,
    zipf_qps: f64,
}

fn bench_oracle(c: &mut Criterion) {
    let (g, dist, engine) = build_engine(4096);
    let oracle = Arc::clone(engine.oracle().expect("bench engine is eager"));

    // -------- single-operation latencies --------
    let mut group = c.benchmark_group("oracle-ops");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    let mut state = 1u64;
    group.bench_function("dist", |b| {
        b.iter(|| {
            let (u, v) = pair(&mut state);
            black_box(oracle.distance(u, v))
        })
    });
    group.bench_function("path-uncached", |b| {
        b.iter(|| {
            let (u, v) = pair(&mut state);
            black_box(oracle.path(u, v))
        })
    });
    group.bench_function("path-cached", |b| {
        b.iter(|| {
            let (u, v) = pair(&mut state);
            black_box(engine.path(u, v).expect("in range"))
        })
    });
    group.bench_function("k-nearest-10", |b| {
        b.iter(|| {
            let (u, _) = pair(&mut state);
            black_box(oracle.k_nearest(u, 10))
        })
    });
    group.finish();

    // -------- per-op latency histograms (telemetry-enabled) --------
    // The criterion group above times the raw oracle; this loop drives the
    // same mixed workload through the QueryEngine with telemetry on, so the
    // per-op histograms a production serving process would export
    // (`oracle.op.dist_ns` / `path_ns` / `k_nearest_ns`) are populated and
    // their p50/p99/p999 land in `BENCH_oracle.json`.
    congest_telemetry::enable();
    {
        let mut state = 3u64;
        for i in 0..100_000u64 {
            let (u, v) = pair(&mut state);
            if i % PATH_EVERY == 0 {
                black_box(engine.path(u, v).expect("in range"));
            } else {
                black_box(engine.dist(u, v).expect("in range"));
            }
            if i % 64 == 0 {
                black_box(engine.k_nearest(u, 10).expect("in range"));
            }
        }
    }
    engine.publish_gauges();
    congest_telemetry::disable();
    let op_hist = |name: &str| congest_telemetry::global().registry().histogram(name);

    // -------- concurrent throughput --------
    // Per-workload cache accounting: the counters are cumulative across the
    // whole process, so each phase's hit rate is computed from the delta of
    // `cache_stats()` around it (the ops benches above already polluted the
    // absolute numbers).
    let delta_rate = |before: congest_oracle::CacheStats, after: congest_oracle::CacheStats| {
        let hits = after.hits - before.hits;
        let misses = after.misses - before.misses;
        hits as f64 / (hits + misses).max(1) as f64
    };
    let hot: Vec<(NodeId, NodeId)> = {
        let mut state = 7u64;
        (0..4096).map(|_| pair(&mut state)).collect()
    };

    let before_mixed = engine.cache_stats();
    let mixed: Vec<f64> = THREAD_COUNTS.iter().map(|&t| mixed_qps(&engine, t)).collect();
    let uniform_hit_rate = delta_rate(before_mixed, engine.cache_stats());

    let before_hot = engine.cache_stats();
    let hots: Vec<f64> = THREAD_COUNTS.iter().map(|&t| hot_path_qps(&engine, t, &hot)).collect();
    let hot_hit_rate = delta_rate(before_hot, engine.cache_stats());

    let cum = zipf_cdf();
    let before_zipf = engine.cache_stats();
    let zipfs: Vec<f64> = THREAD_COUNTS.iter().map(|&t| zipf_path_qps(&engine, t, &cum)).collect();
    let zipf_hit_rate = delta_rate(before_zipf, engine.cache_stats());

    let points: Vec<ThroughputPoint> = THREAD_COUNTS
        .iter()
        .zip(mixed.iter().zip(hots.iter().zip(&zipfs)))
        .map(|(&threads, (&qps, (&hot_qps, &zipf_qps)))| ThroughputPoint {
            threads,
            qps,
            hot_qps,
            zipf_qps,
        })
        .collect();
    for p in &points {
        println!(
            "oracle-qps/{}-threads: {:.2} M queries/sec (mixed {}:1 dist:path, uniform) | {:.2} M paths/sec (hot routes) | {:.2} M paths/sec (zipf)",
            p.threads,
            p.qps / 1e6,
            PATH_EVERY - 1,
            p.hot_qps / 1e6,
            p.zipf_qps / 1e6,
        );
    }
    println!(
        "path cache: {:.1}% hit rate on uniform pairs, {:.1}% on hot routes, {:.1}% on zipf(s={ZIPF_S}) routes, {} resident",
        uniform_hit_rate * 100.0,
        hot_hit_rate * 100.0,
        zipf_hit_rate * 100.0,
        engine.cached_paths()
    );

    // -------- batched vs per-call entry points --------
    // The serving front-end hands the engine a whole frame of requests at
    // once; `dist_batch` amortizes per-op dispatch and `path_batch` takes
    // each shard lock once per batch. Measure both against the per-call
    // loop on the same pair stream.
    const BATCH: usize = 64;
    const BATCH_ROUNDS: usize = 2_000;
    let mut state = 11u64;
    let frames: Vec<Vec<(NodeId, NodeId)>> =
        (0..BATCH_ROUNDS).map(|_| (0..BATCH).map(|_| pair(&mut state)).collect()).collect();
    type FrameFn<'a> = dyn FnMut(&[(NodeId, NodeId)]) + 'a;
    let time_ns_per_op = |f: &mut FrameFn| {
        let t0 = Instant::now();
        for frame in &frames {
            f(frame);
        }
        t0.elapsed().as_secs_f64() * 1e9 / (BATCH_ROUNDS * BATCH) as f64
    };
    let dist_percall_ns = time_ns_per_op(&mut |frame| {
        for &(u, v) in frame {
            black_box(engine.dist(u, v).expect("in range"));
        }
    });
    let dist_batch_ns = time_ns_per_op(&mut |frame| {
        black_box(engine.dist_batch(frame));
    });
    let path_percall_ns = time_ns_per_op(&mut |frame| {
        for &(u, v) in frame {
            black_box(engine.path(u, v).expect("in range"));
        }
    });
    let path_batch_ns = time_ns_per_op(&mut |frame| {
        black_box(engine.path_batch(frame));
    });
    println!(
        "batched vs per-call ({BATCH}-request frames): dist {dist_percall_ns:.1} -> {dist_batch_ns:.1} ns/op, path {path_percall_ns:.1} -> {path_batch_ns:.1} ns/op"
    );

    // -------- build-from-outcome: the zero-copy compute → serve handoff --------
    // Two variants of the boundary. A *plane-less* outcome (tracking off,
    // or a pre-Step-7 snapshot) pays the reverse-BFS successor derivation;
    // a *Step-7-tracked* outcome hands its successor plane over by move and
    // only pays the plane-validation sweep — the derivation counter proves
    // the reverse BFS never runs on that path.
    let dist_for_supplied = dist.clone();
    let outcome = ApspOutcome {
        dist,
        recorder: Recorder::new(),
        meta: ApspMeta::default(),
        fault_report: congest_apsp::FaultReport::default(),
    };
    let arena_bytes = std::mem::size_of_val(outcome.dist.as_slice());
    // For contrast: what the pre-DistMatrix boundary paid on top — a full
    // n² arena copy (plus, historically, n per-row allocations). Measured
    // directly, before the arena moves out of the outcome.
    let t0 = Instant::now();
    let copied = black_box(outcome.dist.as_slice().to_vec());
    let avoided_copy_ms = t0.elapsed().as_secs_f64() * 1e3;
    drop(copied);
    let d0 = successor_derivations();
    let t0 = Instant::now();
    let rebuilt = outcome.into_oracle(&g);
    let derived_ms = t0.elapsed().as_secs_f64() * 1e3;
    let derived_derivations = successor_derivations() - d0;
    black_box(rebuilt.distance(0, 1));
    // Reconstruct the (valid) plane through the public successor API and
    // attach it, mimicking what a tracked pipeline outcome carries.
    let mut plane = vec![NO_SUCC; N * N];
    for v in 0..N as NodeId {
        for u in 0..N as NodeId {
            if let Some(s) = rebuilt.successor(u, v) {
                plane[v as usize * N + u as usize] = s;
            }
        }
    }
    let tracked_dist = dist_for_supplied.with_successors(plane);
    let d0 = successor_derivations();
    let t0 = Instant::now();
    let adopted = Oracle::from_dist(&g, tracked_dist);
    let supplied_ms = t0.elapsed().as_secs_f64() * 1e3;
    let supplied_derivations = successor_derivations() - d0;
    assert_eq!(supplied_derivations, 0, "supplied plane must skip the reverse-BFS derivation");
    assert_eq!(adopted, rebuilt, "both boundary paths must serve the same oracle");
    println!(
        "build-from-outcome: derived {derived_ms:.1} ms ({derived_derivations} reverse-BFS derivation) vs supplied plane {supplied_ms:.1} ms ({supplied_derivations} derivations, validation only); {arena_bytes} arena bytes moved, {avoided_copy_ms:.1} ms n² copy avoided"
    );

    // -------- snapshot size, for the record --------
    let snapshot_bytes = oracle.to_bytes().len();

    // -------- paged backend: resident budget vs hit rate --------
    // The out-of-core question: how much of the blocked v2 snapshot must
    // stay resident before the paged backend serves a skewed workload at
    // a useful hit rate? Save the same oracle as v2, then sweep resident
    // budgets from 1/16 of the file up to the whole file, driving the
    // Zipf path/dist mix through a fresh `PagedOracle` per point (fresh
    // so each point's hit/miss counters are uncontaminated). The engine's
    // own path cache is disabled — the curve measures the paging layer,
    // not the LRU in front of it.
    const PAGED_BLOCK_ROWS: u32 = 16;
    const PAGED_QUERIES: u64 = 100_000;
    let v2_path =
        std::env::temp_dir().join(format!("bench_oracle_paged_{}.snap", std::process::id()));
    oracle
        .save_v2(&v2_path, &V2Config { block_rows: PAGED_BLOCK_ROWS, ..V2Config::default() })
        .expect("save v2 snapshot");
    let v2_file_bytes = std::fs::metadata(&v2_path).expect("v2 metadata").len() as usize;
    let ztotal = *cum.last().expect("nonempty cdf");
    struct PagedPoint {
        budget_bytes: usize,
        resident_bytes: usize,
        hit_rate: f64,
        evictions: u64,
        qps: f64,
    }
    let paged_points: Vec<PagedPoint> = [(1usize, 16usize), (1, 8), (1, 4), (1, 2), (1, 1)]
        .iter()
        .map(|&(num, den)| {
            let budget_bytes = v2_file_bytes * num / den;
            let paged = Arc::new(
                PagedOracle::<u64>::open(&v2_path, PagedConfig { resident_bytes: budget_bytes })
                    .expect("open paged"),
            );
            let pengine = QueryEngine::new_paged(
                Arc::clone(&paged),
                EngineConfig { shards: 64, cache_per_shard: 0 },
            );
            let mut state = 0xC0FF_EE00 ^ ((num as u64) << 8) ^ den as u64;
            let mut checksum = 0u64;
            let start = Instant::now();
            for i in 0..PAGED_QUERIES {
                let u01 = next_rng(&mut state) as f64 / u64::MAX as f64 * ztotal;
                let rank = cum.partition_point(|&c| c < u01);
                let (a, b) = zipf_route(rank.min(ZIPF_UNIVERSE - 1));
                if i % PATH_EVERY == 0 {
                    if let Some(p) = pengine.path(a, b).expect("in range") {
                        checksum ^= p.len() as u64;
                    }
                } else if let Some(d) = pengine.dist(a, b).expect("in range") {
                    checksum ^= d;
                }
            }
            let qps = PAGED_QUERIES as f64 / start.elapsed().as_secs_f64();
            black_box(checksum);
            let s = paged.stats();
            let hit_rate = s.hits as f64 / (s.hits + s.misses).max(1) as f64;
            println!(
                "paged {num}/{den} budget ({:.1} MiB): {:.1}% block hit rate, {} evictions, {:.1} MiB resident, {:.2} M queries/sec",
                budget_bytes as f64 / (1 << 20) as f64,
                hit_rate * 100.0,
                s.evictions,
                s.resident_bytes as f64 / (1 << 20) as f64,
                qps / 1e6,
            );
            PagedPoint {
                budget_bytes,
                resident_bytes: s.resident_bytes,
                hit_rate,
                evictions: s.evictions,
                qps,
            }
        })
        .collect();
    std::fs::remove_file(&v2_path).ok();

    if let Ok(path) = std::env::var("BENCH_ORACLE_JSON") {
        use congest_telemetry::json::{obj, Json};
        let median = |suffix: &str| -> f64 {
            c.results.iter().find(|(n, _)| n.ends_with(suffix)).map_or(0.0, |(_, s)| s.median_ns)
        };
        let round1 = |x: f64| Json::F64((x * 10.0).round() / 10.0);
        let round3 = |x: f64| Json::F64((x * 1000.0).round() / 1000.0);
        let hist_quantiles = |name: &str| {
            let h = op_hist(name);
            obj(vec![
                ("count", Json::U64(h.count())),
                ("p50", Json::U64(h.p50())),
                ("p99", Json::U64(h.p99())),
                ("p999", Json::U64(h.p999())),
                ("max", Json::U64(h.max())),
            ])
        };
        let throughput: Vec<Json> = points
            .iter()
            .map(|p| {
                obj(vec![
                    ("threads", Json::from(p.threads)),
                    ("uniform_mixed_queries_per_sec", Json::F64(p.qps.round())),
                    ("hot_route_paths_per_sec", Json::F64(p.hot_qps.round())),
                    ("zipf_paths_per_sec", Json::F64(p.zipf_qps.round())),
                ])
            })
            .collect();
        congest_telemetry::Manifest::new("bench-oracle")
            .field("benchmark", Json::from("distance-oracle serving layer throughput"))
            .field(
                "knobs",
                obj(vec![
                    ("n", Json::from(N)),
                    ("extra_edges", Json::from(4 * N)),
                    ("graph", Json::from("gnm_connected(n, 4n, uniform 1..100, seed 2026)")),
                    ("shards", Json::U64(64)),
                    ("cache_per_shard", Json::U64(4096)),
                    ("queries_per_thread", Json::U64(QUERIES_PER_THREAD)),
                ]),
            )
            .field("snapshot_bytes", Json::from(snapshot_bytes))
            .field(
                "ops_ns",
                obj(vec![
                    ("dist", round1(median("dist"))),
                    ("path_uncached", round1(median("path-uncached"))),
                    ("path_cached", round1(median("path-cached"))),
                    ("k_nearest_10", round1(median("k-nearest-10"))),
                ]),
            )
            .field(
                "op_latency_ns",
                obj(vec![
                    ("dist", hist_quantiles("oracle.op.dist_ns")),
                    ("path", hist_quantiles("oracle.op.path_ns")),
                    ("k_nearest", hist_quantiles("oracle.op.k_nearest_ns")),
                ]),
            )
            .field(
                "workload",
                obj(vec![
                    (
                        "uniform_dist_to_path_ratio",
                        Json::from(format!("{}:1", PATH_EVERY - 1)),
                    ),
                    ("uniform_cache_hit_rate", round3(uniform_hit_rate)),
                    ("hot_route_pairs", Json::from(hot.len())),
                    ("hot_route_cache_hit_rate", round3(hot_hit_rate)),
                    ("zipf_universe_pairs", Json::from(ZIPF_UNIVERSE)),
                    ("zipf_exponent", Json::F64(ZIPF_S)),
                    ("zipf_cache_hit_rate", round3(zipf_hit_rate)),
                ]),
            )
            .field(
                "batched",
                obj(vec![
                    ("frame_requests", Json::from(BATCH)),
                    ("frames", Json::from(BATCH_ROUNDS)),
                    ("dist_per_call_ns", round1(dist_percall_ns)),
                    ("dist_batch_ns_per_op", round1(dist_batch_ns)),
                    ("path_per_call_ns", round1(path_percall_ns)),
                    ("path_batch_ns_per_op", round1(path_batch_ns)),
                    (
                        "note",
                        Json::from(
                            "dist_batch amortizes per-op dispatch; path_batch takes each shard lock once per frame instead of once per request",
                        ),
                    ),
                ]),
            )
            .field(
                "build_from_outcome",
                obj(vec![
                    ("n", Json::from(N)),
                    ("derived_plane_ms", round1(derived_ms)),
                    ("derived_reverse_bfs_derivations", Json::U64(derived_derivations)),
                    ("supplied_plane_ms", round1(supplied_ms)),
                    ("supplied_reverse_bfs_derivations", Json::U64(supplied_derivations)),
                    ("dist_arena_bytes_moved", Json::from(arena_bytes)),
                    ("avoided_n2_copy_ms", round1(avoided_copy_ms)),
                    (
                        "note",
                        Json::from(
                            "arena (and any Step-7 successor plane) moves from ApspOutcome into Oracle; supplied-plane time is the validation sweep only, zero reverse-BFS",
                        ),
                    ),
                ]),
            )
            .field(
                "paged",
                obj(vec![
                    ("v2_file_bytes", Json::from(v2_file_bytes)),
                    ("block_rows", Json::U64(u64::from(PAGED_BLOCK_ROWS))),
                    ("queries_per_point", Json::U64(PAGED_QUERIES)),
                    (
                        "workload",
                        Json::from(
                            "zipf(s=1.0) routes, 7:1 dist:path, engine path cache disabled",
                        ),
                    ),
                    (
                        "resident_budget_curve",
                        Json::Arr(
                            paged_points
                                .iter()
                                .map(|p| {
                                    obj(vec![
                                        ("budget_bytes", Json::from(p.budget_bytes)),
                                        ("resident_bytes", Json::from(p.resident_bytes)),
                                        ("block_hit_rate", round3(p.hit_rate)),
                                        ("evictions", Json::U64(p.evictions)),
                                        ("queries_per_sec", Json::F64(p.qps.round())),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            )
            .field("throughput", Json::Arr(throughput))
            .write(&path)
            .expect("write BENCH_ORACLE_JSON");
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench_oracle);
criterion_main!(benches);
