//! Oracle serving-layer throughput: single-operation latencies via the
//! criterion harness, plus a multi-threaded queries/sec measurement of the
//! sharded [`QueryEngine`].
//!
//! Run with `cargo bench -p congest_bench --bench oracle`. Set
//! `BENCH_ORACLE_JSON=path` to additionally write the measured numbers as
//! JSON (this is how `BENCH_oracle.json` at the repo root is produced).
//!
//! The oracle is built from the sequential Dijkstra solution (bit-identical
//! to the distributed pipeline's output, as the exactness suites prove) so
//! the benchmark spends its time on the serving layer, not on re-running
//! the CONGEST simulation.

use congest_graph::generators::{gnm_connected, WeightDist};
use congest_graph::seq::apsp_dijkstra;
use congest_graph::NodeId;
use congest_oracle::{EngineConfig, Oracle, QueryEngine};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Instant;

const N: usize = 1 << 11; // 2048 nodes => 4M distances, 4M successors
const QUERIES_PER_THREAD: u64 = 200_000;
const THREAD_COUNTS: &[usize] = &[1, 2, 4, 8];
/// Fraction of mixed-workload queries that ask for a full path (the rest
/// are point distance lookups): 1 in 8.
const PATH_EVERY: u64 = 8;

fn build_engine(cache_per_shard: usize) -> QueryEngine<u64> {
    let g = gnm_connected(N, 4 * N, true, WeightDist::Uniform(1, 100), 2026);
    let oracle = Oracle::from_dist(&g, apsp_dijkstra(&g));
    QueryEngine::new(Arc::new(oracle), EngineConfig { shards: 64, cache_per_shard })
}

/// xorshift64* — cheap per-thread query-id stream.
fn next_rng(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    state.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

fn pair(state: &mut u64) -> (NodeId, NodeId) {
    let r = next_rng(state);
    (((r % N as u64) as u32), (((r >> 32) % N as u64) as u32))
}

/// Runs `threads` workers, each issuing `QUERIES_PER_THREAD` mixed
/// dist/path queries; returns aggregate queries per second.
fn mixed_qps(engine: &QueryEngine<u64>, threads: usize) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let engine = &engine;
            scope.spawn(move || {
                let mut state = 0x9E37_79B9 + t as u64;
                let mut checksum = 0u64;
                for i in 0..QUERIES_PER_THREAD {
                    let (u, v) = pair(&mut state);
                    if i % PATH_EVERY == 0 {
                        if let Some(p) = engine.path(u, v).expect("in range") {
                            checksum ^= p.len() as u64;
                        }
                    } else if let Some(d) = engine.dist(u, v).expect("in range") {
                        checksum ^= d;
                    }
                }
                black_box(checksum);
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    (threads as u64 * QUERIES_PER_THREAD) as f64 / secs
}

/// Hot-route workload: every thread requests full paths from a small set
/// of popular pairs — the skewed-traffic regime the per-shard LRU cache
/// exists for (uniform random pairs over n² are its worst case).
fn hot_path_qps(engine: &QueryEngine<u64>, threads: usize, hot: &[(NodeId, NodeId)]) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let engine = &engine;
            scope.spawn(move || {
                let mut state = 0xDEAD_BEEF + t as u64;
                let mut checksum = 0u64;
                for _ in 0..QUERIES_PER_THREAD {
                    let (u, v) = hot[(next_rng(&mut state) % hot.len() as u64) as usize];
                    if let Some(p) = engine.path(u, v).expect("in range") {
                        checksum ^= p.len() as u64;
                    }
                }
                black_box(checksum);
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    (threads as u64 * QUERIES_PER_THREAD) as f64 / secs
}

struct ThroughputPoint {
    threads: usize,
    qps: f64,
    hot_qps: f64,
}

fn bench_oracle(c: &mut Criterion) {
    let engine = build_engine(4096);
    let oracle = Arc::clone(engine.oracle());

    // -------- single-operation latencies --------
    let mut group = c.benchmark_group("oracle-ops");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    let mut state = 1u64;
    group.bench_function("dist", |b| {
        b.iter(|| {
            let (u, v) = pair(&mut state);
            black_box(oracle.distance(u, v))
        })
    });
    group.bench_function("path-uncached", |b| {
        b.iter(|| {
            let (u, v) = pair(&mut state);
            black_box(oracle.path(u, v))
        })
    });
    group.bench_function("path-cached", |b| {
        b.iter(|| {
            let (u, v) = pair(&mut state);
            black_box(engine.path(u, v).expect("in range"))
        })
    });
    group.bench_function("k-nearest-10", |b| {
        b.iter(|| {
            let (u, _) = pair(&mut state);
            black_box(oracle.k_nearest(u, 10))
        })
    });
    group.finish();

    // -------- concurrent throughput --------
    // Per-workload cache accounting: the counters are cumulative across the
    // whole process, so each phase's hit rate is computed from the delta of
    // `cache_stats()` around it (the ops benches above already polluted the
    // absolute numbers).
    let delta_rate = |before: congest_oracle::CacheStats, after: congest_oracle::CacheStats| {
        let hits = after.hits - before.hits;
        let misses = after.misses - before.misses;
        hits as f64 / (hits + misses).max(1) as f64
    };
    let hot: Vec<(NodeId, NodeId)> = {
        let mut state = 7u64;
        (0..4096).map(|_| pair(&mut state)).collect()
    };

    let before_mixed = engine.cache_stats();
    let mixed: Vec<f64> = THREAD_COUNTS.iter().map(|&t| mixed_qps(&engine, t)).collect();
    let uniform_hit_rate = delta_rate(before_mixed, engine.cache_stats());

    let before_hot = engine.cache_stats();
    let hots: Vec<f64> = THREAD_COUNTS.iter().map(|&t| hot_path_qps(&engine, t, &hot)).collect();
    let hot_hit_rate = delta_rate(before_hot, engine.cache_stats());

    let points: Vec<ThroughputPoint> = THREAD_COUNTS
        .iter()
        .zip(mixed.iter().zip(&hots))
        .map(|(&threads, (&qps, &hot_qps))| ThroughputPoint { threads, qps, hot_qps })
        .collect();
    for p in &points {
        println!(
            "oracle-qps/{}-threads: {:.2} M queries/sec (mixed {}:1 dist:path, uniform) | {:.2} M paths/sec (hot routes)",
            p.threads,
            p.qps / 1e6,
            PATH_EVERY - 1,
            p.hot_qps / 1e6,
        );
    }
    println!(
        "path cache: {:.1}% hit rate on uniform pairs, {:.1}% on hot routes, {} resident",
        uniform_hit_rate * 100.0,
        hot_hit_rate * 100.0,
        engine.cached_paths()
    );

    // -------- snapshot size, for the record --------
    let snapshot_bytes = oracle.to_bytes().len();

    if let Ok(path) = std::env::var("BENCH_ORACLE_JSON") {
        let median = |suffix: &str| -> f64 {
            c.results.iter().find(|(n, _)| n.ends_with(suffix)).map_or(0.0, |(_, s)| s.median_ns)
        };
        let mut json = String::from("{\n");
        json.push_str("  \"benchmark\": \"distance-oracle serving layer throughput\",\n");
        json.push_str(&format!(
            "  \"n\": {N},\n  \"extra_edges\": {},\n  \"snapshot_bytes\": {snapshot_bytes},\n",
            4 * N
        ));
        json.push_str(&format!(
            "  \"ops_ns\": {{\n    \"dist\": {:.1},\n    \"path_uncached\": {:.1},\n    \"path_cached\": {:.1},\n    \"k_nearest_10\": {:.1}\n  }},\n",
            median("dist"),
            median("path-uncached"),
            median("path-cached"),
            median("k-nearest-10"),
        ));
        json.push_str(&format!(
            "  \"workload\": {{\n    \"queries_per_thread\": {QUERIES_PER_THREAD},\n    \"uniform_dist_to_path_ratio\": \"{}:1\",\n    \"uniform_cache_hit_rate\": {uniform_hit_rate:.3},\n    \"hot_route_pairs\": {},\n    \"hot_route_cache_hit_rate\": {hot_hit_rate:.3}\n  }},\n",
            PATH_EVERY - 1,
            hot.len(),
        ));
        json.push_str("  \"throughput\": [\n");
        for (i, p) in points.iter().enumerate() {
            json.push_str(&format!(
                "    {{ \"threads\": {}, \"uniform_mixed_queries_per_sec\": {:.0}, \"hot_route_paths_per_sec\": {:.0} }}{}\n",
                p.threads,
                p.qps,
                p.hot_qps,
                if i + 1 < points.len() { "," } else { "" },
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write BENCH_ORACLE_JSON");
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench_oracle);
criterion_main!(benches);
