//! Loopback benchmark of the network serving front-end: round-trip
//! latency (p50/p99/p999) and queries/sec across a grid of connection
//! counts × pipelined batch sizes.
//!
//! Run with `cargo bench -p congest_bench --bench serve`. Set
//! `BENCH_SERVE_JSON=path` to additionally write the measured numbers as
//! JSON (this is how `BENCH_serve.json` at the repo root is produced).
//!
//! Each cell of the grid spawns `connections` client threads against one
//! server on 127.0.0.1; every client pipelines `batch` Dist requests per
//! frame burst and measures the full round trip (write → all responses
//! decoded). Batching is the protocol's central lever: one syscall
//! carries the whole batch each way, so per-request cost drops as the
//! batch grows while the RTT of the *batch* stays nearly flat.

use congest_graph::generators::{gnm_connected, WeightDist};
use congest_graph::seq::apsp_dijkstra;
use congest_oracle::{EngineConfig, Oracle, QueryEngine};
use congest_serve::chaos::{ChaosProxy, ChaosSpec};
use congest_serve::client::{ResilienceStats, ResilientClient, RetryPolicy};
use congest_serve::proto::Status;
use congest_serve::{Client, Server, ServerConfig};
use congest_telemetry::Histogram;
use std::sync::Arc;
use std::time::{Duration, Instant};

const N: usize = 1 << 10; // 1024 nodes
const CONNECTIONS: &[usize] = &[1, 2, 4];
const BATCHES: &[usize] = &[1, 16, 64];
/// Requests answered per (connection, cell) after warmup.
const REQUESTS_PER_CONN: u64 = 8_000;
const WARMUP_BATCHES: u64 = 50;
/// Operations per chaos tier (each op is one resilient Dist round trip).
const CHAOS_OPS: u64 = 500;

fn next_rng(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    state.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

struct Cell {
    connections: usize,
    batch: usize,
    requests: u64,
    elapsed_s: f64,
    qps: f64,
    /// Round-trip of one pipelined batch, ns.
    rtt: Histogram,
}

fn run_cell(addr: std::net::SocketAddr, connections: usize, batch: usize) -> Cell {
    let rtt = Histogram::new();
    let total = std::sync::atomic::AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..connections {
            let rtt = &rtt;
            let total = &total;
            scope.spawn(move || {
                let mut client = Client::<u64>::connect(addr).expect("connect");
                let mut x = 0x9E37_79B9u64.wrapping_mul(t as u64 + 1) | 1;
                let local = Histogram::new();
                let mut sent = 0u64;
                let mut warmup = WARMUP_BATCHES;
                while sent < REQUESTS_PER_CONN {
                    let mut b = client.batch();
                    for _ in 0..batch {
                        let r = next_rng(&mut x);
                        b.dist((r % N as u64) as u32, ((r >> 32) % N as u64) as u32);
                    }
                    let sent_now = b.len() as u64;
                    let start = Instant::now();
                    let replies = b.send().expect("batch");
                    let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    for r in &replies {
                        assert!(
                            matches!(r.status, Status::Ok | Status::Unreachable),
                            "bench reply errored: {:?}",
                            r.status
                        );
                    }
                    if warmup > 0 {
                        warmup -= 1;
                        continue;
                    }
                    local.record(ns);
                    sent += sent_now;
                }
                rtt.merge(&local);
                total.fetch_add(sent, std::sync::atomic::Ordering::Relaxed);
            });
        }
    });
    let elapsed_s = t0.elapsed().as_secs_f64();
    let requests = total.load(std::sync::atomic::Ordering::Relaxed);
    Cell { connections, batch, requests, elapsed_s, qps: requests as f64 / elapsed_s, rtt }
}

/// One tier of the chaos sweep: the resilient client driven through a
/// seeded chaos proxy at a given fault intensity, measuring what
/// resilience costs (latency inflation, retries, reconnects) as the
/// fault rate climbs.
struct ChaosTier {
    label: &'static str,
    spec: ChaosSpec,
    ok: u64,
    exhausted: u64,
    stats: ResilienceStats,
    /// Full resilient-op round trip (including retries/backoff), ns.
    op_rtt: Histogram,
    elapsed_s: f64,
}

fn run_chaos_tier(addr: std::net::SocketAddr, label: &'static str, spec: ChaosSpec) -> ChaosTier {
    let proxy = ChaosProxy::start(addr, spec).expect("chaos proxy");
    let policy = RetryPolicy {
        max_attempts: 16,
        base: Duration::from_micros(500),
        cap: Duration::from_millis(5),
        op_deadline: Duration::from_secs(5),
        jitter_seed: 0xBE7C_4A05,
    };
    let mut client = ResilientClient::<u64>::new(proxy.local_addr(), policy);
    let op_rtt = Histogram::new();
    let mut x = 0xC4A0_5BADu64 | 1;
    let (mut ok, mut exhausted) = (0u64, 0u64);
    let t0 = Instant::now();
    for _ in 0..CHAOS_OPS {
        let r = next_rng(&mut x);
        let start = Instant::now();
        let outcome = client.dist((r % N as u64) as u32, ((r >> 32) % N as u64) as u32);
        op_rtt.record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        match outcome {
            Ok(_) => ok += 1,
            Err(_) => exhausted += 1,
        }
    }
    let elapsed_s = t0.elapsed().as_secs_f64();
    let stats = client.stats();
    drop(client);
    proxy.join();
    ChaosTier { label, spec, ok, exhausted, stats, op_rtt, elapsed_s }
}

fn main() {
    // Telemetry on: the server records its per-op histograms and batch
    // spans while the bench drives it, and the manifest snapshots them.
    congest_telemetry::enable();

    let g = gnm_connected(N, 4 * N, true, WeightDist::Uniform(1, 100), 2026);
    let oracle = Arc::new(Oracle::from_dist(&g, apsp_dijkstra(&g)));
    let engine = Arc::new(QueryEngine::new(oracle, EngineConfig::default()));
    let server = Server::bind("127.0.0.1:0", engine, ServerConfig::default()).expect("bind");
    let addr = server.local_addr();

    let mut cells = Vec::new();
    println!("serve loopback grid: {N} nodes, {} requests/connection per cell", REQUESTS_PER_CONN);
    println!("conns  batch  qps        batch-RTT p50/p99/p999 (us)   per-req (us)");
    for &connections in CONNECTIONS {
        for &batch in BATCHES {
            let cell = run_cell(addr, connections, batch);
            let us = |ns: u64| ns as f64 / 1000.0;
            println!(
                "{:<6} {:<6} {:<10.0} {:>7.1} / {:>7.1} / {:>7.1}    {:>8.2}",
                cell.connections,
                cell.batch,
                cell.qps,
                us(cell.rtt.p50()),
                us(cell.rtt.p99()),
                us(cell.rtt.p999()),
                us(cell.rtt.p50()) / cell.batch as f64,
            );
            cells.push(cell);
        }
    }

    // Chaos sweep: the resilient client's latency/recovery curve vs
    // fault rate, through a deterministic chaos proxy.
    let tiers = [
        ("none", ChaosSpec::seeded(0x000C_4A05)),
        (
            "low",
            ChaosSpec::seeded(0x000C_4A05)
                .delays(2_000, Duration::from_micros(200))
                .segmentation(5_000)
                .truncation(300)
                .resets(300),
        ),
        (
            "high",
            ChaosSpec::seeded(0x000C_4A05)
                .delays(5_000, Duration::from_micros(200))
                .segmentation(20_000)
                .truncation(2_000)
                .resets(2_000),
        ),
    ];
    println!();
    println!("chaos sweep: {CHAOS_OPS} resilient Dist ops per tier, one op per round trip");
    println!("tier   ok     exh    retries reconn  op-RTT p50/p99 (us)");
    let mut chaos_tiers = Vec::new();
    for (label, spec) in tiers {
        let tier = run_chaos_tier(addr, label, spec);
        let us = |ns: u64| ns as f64 / 1000.0;
        println!(
            "{:<6} {:<6} {:<6} {:<7} {:<7} {:>8.1} / {:>8.1}",
            tier.label,
            tier.ok,
            tier.exhausted,
            tier.stats.retries,
            tier.stats.reconnects,
            us(tier.op_rtt.p50()),
            us(tier.op_rtt.p99()),
        );
        chaos_tiers.push(tier);
    }

    if let Ok(path) = std::env::var("BENCH_SERVE_JSON") {
        use congest_telemetry::json::{obj, Json};
        let hist_json = |h: &Histogram| {
            obj(vec![
                ("count", Json::U64(h.count())),
                ("p50", Json::U64(h.p50())),
                ("p99", Json::U64(h.p99())),
                ("p999", Json::U64(h.p999())),
                ("max", Json::U64(h.max())),
            ])
        };
        let server_hist = |name: &str| congest_telemetry::global().registry().histogram(name);
        let grid: Vec<Json> = cells
            .iter()
            .map(|c| {
                obj(vec![
                    ("connections", Json::from(c.connections)),
                    ("batch", Json::from(c.batch)),
                    ("requests", Json::U64(c.requests)),
                    ("elapsed_s", Json::F64((c.elapsed_s * 1000.0).round() / 1000.0)),
                    ("qps", Json::F64(c.qps.round())),
                    ("batch_rtt_ns", hist_json(&c.rtt)),
                    (
                        "per_request_rtt_p50_ns",
                        Json::F64((c.rtt.p50() as f64 / c.batch as f64).round()),
                    ),
                ])
            })
            .collect();
        congest_telemetry::Manifest::new("bench-serve")
            .field("benchmark", Json::from("network serving front-end, loopback TCP"))
            .field(
                "knobs",
                obj(vec![
                    ("n", Json::from(N)),
                    ("extra_edges", Json::from(4 * N)),
                    ("graph", Json::from("gnm_connected(n, 4n, uniform 1..100, seed 2026)")),
                    ("connections", Json::Arr(CONNECTIONS.iter().map(|&c| Json::from(c)).collect())),
                    ("batch_sizes", Json::Arr(BATCHES.iter().map(|&b| Json::from(b)).collect())),
                    ("requests_per_connection", Json::U64(REQUESTS_PER_CONN)),
                    ("warmup_batches", Json::U64(WARMUP_BATCHES)),
                    ("transport", Json::from("TCP loopback, TCP_NODELAY, one write per batch")),
                ]),
            )
            .field("grid", Json::Arr(grid))
            .field(
                "chaos",
                obj(vec![
                    (
                        "policy",
                        obj(vec![
                            ("max_attempts", Json::U64(16)),
                            ("base_us", Json::U64(500)),
                            ("cap_ms", Json::U64(5)),
                            ("op_deadline_s", Json::U64(5)),
                        ]),
                    ),
                    ("ops_per_tier", Json::U64(CHAOS_OPS)),
                    (
                        "tiers",
                        Json::Arr(
                            chaos_tiers
                                .iter()
                                .map(|t| {
                                    obj(vec![
                                        ("tier", Json::from(t.label)),
                                        ("delay_ppm", Json::from(t.spec.delay_ppm as usize)),
                                        ("segment_ppm", Json::from(t.spec.segment_ppm as usize)),
                                        ("truncate_ppm", Json::from(t.spec.truncate_ppm as usize)),
                                        ("reset_ppm", Json::from(t.spec.reset_ppm as usize)),
                                        ("ok", Json::U64(t.ok)),
                                        ("exhausted", Json::U64(t.exhausted)),
                                        ("retries", Json::U64(t.stats.retries)),
                                        ("reconnects", Json::U64(t.stats.reconnects)),
                                        (
                                            "ops_per_s",
                                            Json::F64(
                                                ((t.ok + t.exhausted) as f64 / t.elapsed_s).round(),
                                            ),
                                        ),
                                        ("op_rtt_ns", hist_json(&t.op_rtt)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "note",
                        Json::from(
                            "resilient-client recovery curve: per-byte fault rates (ppm) through a deterministic chaos proxy; op_rtt_ns includes retries, reconnects, and backoff; exhausted counts ops that ended in RetriesExhausted",
                        ),
                    ),
                ]),
            )
            .field(
                "server_op_latency_ns",
                obj(vec![
                    ("dist_amortized", hist_json(&server_hist("serve.op.dist_ns"))),
                    ("batch_frames", hist_json(&server_hist("serve.batch.frames"))),
                ]),
            )
            .field(
                "note",
                Json::from(
                    "batch_rtt_ns is the client-observed round trip of one pipelined batch (write to last response decoded); qps counts individual Dist requests; server dist latency is the per-request amortized share of each batch group",
                ),
            )
            .write(&path)
            .expect("write BENCH_SERVE_JSON");
        println!("wrote {path}");
    }

    server.join();
}
