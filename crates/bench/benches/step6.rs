//! Criterion bench backing experiment T3: Step-6 propagation variants.

use congest_apsp::config::BlockerParams;
use congest_apsp::pipeline::{propagate_to_blockers, propagate_trivial_broadcast, RoutedTable};
use congest_apsp::ApspConfig;
use congest_bench::workloads::sparse_random;
use congest_graph::seq::apsp_dijkstra;
use congest_graph::{DistMatrix, NodeId};
use congest_sim::{Recorder, SimConfig, Topology};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_step6(c: &mut Criterion) {
    let n = 48;
    let g = sparse_random(n, 11);
    let topo = Topology::from_graph(&g);
    let cfg = ApspConfig::default();
    let q: Vec<NodeId> = (0..n as NodeId).step_by(5).collect();
    let exact = apsp_dijkstra(&g);
    let dvals = RoutedTable::untracked(DistMatrix::from_rows(
        (0..n).map(|x| q.iter().map(|&c| exact[x][c as usize]).collect()).collect(),
    ));
    let mut group = c.benchmark_group("step6");
    group.sample_size(10);
    group.bench_function("pipelined-alg8-9", |b| {
        b.iter(|| {
            let mut r = Recorder::new();
            propagate_to_blockers(&g, &topo, &cfg, BlockerParams::default(), &q, &dvals, &mut r)
                .unwrap()
        })
    });
    group.bench_function("trivial-broadcast", |b| {
        b.iter(|| {
            let mut r = Recorder::new();
            propagate_trivial_broadcast(&topo, SimConfig::default(), &q, &dvals, &mut r).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_step6);
criterion_main!(benches);
