//! Disabled-overhead guard: proves the telemetry instrumentation costs
//! nothing measurable when the plane is off.
//!
//! Three interleaved series time the same flood workload on the flat
//! engine:
//!
//! * **baseline** — `Engine::run_uninstrumented`, the phase body with no
//!   telemetry wrapper at all (the pre-telemetry code path);
//! * **disabled** — the public `Engine::run` with telemetry globally
//!   disabled (one relaxed atomic load + two `Instant` reads per phase);
//! * **enabled** — the public `Engine::run` with telemetry enabled
//!   (records one span per phase; `trace_rounds` stays 0).
//!
//! The guard asserts the disabled median is within `TELEMETRY_BENCH_TOL`
//! (default 25%, generous for 1-CPU CI noise) of the baseline median, and
//! structurally that a disabled run records zero spans. Run with
//! `cargo bench -p congest_bench --bench telemetry`.

use congest_graph::generators::{gnm_connected, WeightDist};
use congest_sim::{Engine, Envelope, NodeEnv, NodeLogic, Outbox, RunUntil, SimConfig, Topology};
use std::collections::VecDeque;
use std::time::Instant;

const N: usize = 1 << 10;
const WAVES: u32 = 32;
const WARMUP: usize = 3;
const SAMPLES: usize = 21;

/// Wave-flood workload (same shape as the engine benchmark's): the root
/// injects `WAVES` tokens, every node forwards each once per channel.
struct WaveFlood {
    is_root: bool,
    seen: Vec<bool>,
    queue: VecDeque<u32>,
}

impl WaveFlood {
    fn new(is_root: bool) -> Self {
        WaveFlood { is_root, seen: vec![false; WAVES as usize], queue: VecDeque::new() }
    }
}

impl NodeLogic for WaveFlood {
    type Msg = u32;
    fn on_round(&mut self, env: &NodeEnv<'_>, inbox: &[Envelope<u32>], out: &mut Outbox<'_, u32>) {
        if self.is_root && env.round < u64::from(WAVES) {
            let w = env.round as u32;
            if !self.seen[w as usize] {
                self.seen[w as usize] = true;
                self.queue.push_back(w);
            }
        }
        for e in inbox {
            if !self.seen[e.msg as usize] {
                self.seen[e.msg as usize] = true;
                self.queue.push_back(e.msg);
            }
        }
        if let Some(w) = self.queue.pop_front() {
            out.broadcast(w);
        }
    }
    fn active(&self) -> bool {
        !self.queue.is_empty() || (self.is_root && !self.seen[WAVES as usize - 1])
    }
}

fn mk_nodes() -> Vec<WaveFlood> {
    (0..N).map(|i| WaveFlood::new(i == 0)).collect()
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    // `cargo bench` passes harness flags (e.g. `--bench`); this guard has
    // no name filtering, so just ignore them.
    let tol: f64 =
        std::env::var("TELEMETRY_BENCH_TOL").ok().and_then(|s| s.parse().ok()).unwrap_or(0.25);

    let topo = Topology::from_graph(&gnm_connected(N, 2 * N, false, WeightDist::Unit, 7));
    let cfg = SimConfig { parallel_threshold: usize::MAX, ..Default::default() };
    let engine = Engine::new(&topo, cfg);

    congest_telemetry::disable();

    // Cross-check all three paths compute the same phase before timing.
    let reference = engine.run_uninstrumented(&mut mk_nodes(), RunUntil::Quiesce { max: 100_000 });
    let reference = reference.expect("baseline run");
    let check = engine.run(&mut mk_nodes(), RunUntil::Quiesce { max: 100_000 }).expect("run");
    assert_eq!(reference, check, "instrumented and baseline paths must agree");

    for _ in 0..WARMUP {
        let _ = engine.run(&mut mk_nodes(), RunUntil::Quiesce { max: 100_000 });
    }

    // Structural guard first: a disabled run must leave the span ring
    // untouched.
    let spans_before = congest_telemetry::global().spans().len();
    let _ = engine.run(&mut mk_nodes(), RunUntil::Quiesce { max: 100_000 });
    assert_eq!(
        congest_telemetry::global().spans().len(),
        spans_before,
        "disabled-mode run must record no spans"
    );

    // Interleaved timing: baseline / disabled / enabled per pass, so slow
    // drift (thermal, noisy neighbors) hits all three series equally.
    let mut base_ns = Vec::with_capacity(SAMPLES);
    let mut off_ns = Vec::with_capacity(SAMPLES);
    let mut on_ns = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let mut nodes = mk_nodes();
        let t = Instant::now();
        let _ = engine.run_uninstrumented(&mut nodes, RunUntil::Quiesce { max: 100_000 });
        base_ns.push(t.elapsed().as_nanos() as f64);

        let mut nodes = mk_nodes();
        let t = Instant::now();
        let _ = engine.run(&mut nodes, RunUntil::Quiesce { max: 100_000 });
        off_ns.push(t.elapsed().as_nanos() as f64);

        congest_telemetry::enable();
        let mut nodes = mk_nodes();
        let t = Instant::now();
        let _ = engine.run(&mut nodes, RunUntil::Quiesce { max: 100_000 });
        on_ns.push(t.elapsed().as_nanos() as f64);
        congest_telemetry::disable();
    }

    // The enabled series must actually have recorded spans (one per run),
    // or the A/B above measured nothing.
    let engine_spans =
        congest_telemetry::global().spans().iter().filter(|e| e.name == "engine.run").count();
    assert!(engine_spans >= SAMPLES, "enabled-mode runs must record engine.run spans");

    let base = median(&mut base_ns);
    let off = median(&mut off_ns);
    let on = median(&mut on_ns);
    let overhead = off / base - 1.0;
    println!(
        "telemetry guard (n={N}, flood, {SAMPLES} samples): baseline {:.3} ms | disabled {:.3} ms ({:+.1}%) | enabled {:.3} ms ({:+.1}%)",
        base / 1e6,
        off / 1e6,
        overhead * 100.0,
        on / 1e6,
        (on / base - 1.0) * 100.0,
    );
    assert!(
        off <= base * (1.0 + tol),
        "disabled-mode overhead {:.1}% exceeds tolerance {:.0}% (baseline {:.3} ms, disabled {:.3} ms)",
        overhead * 100.0,
        tol * 100.0,
        base / 1e6,
        off / 1e6,
    );
    println!("telemetry guard: PASS (tolerance {:.0}%)", tol * 100.0);
}
