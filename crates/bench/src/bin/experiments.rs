//! Experiment runner: regenerates every table/figure of EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p congest-bench --release --bin experiments -- all
//! cargo run -p congest-bench --release --bin experiments -- t1 --big
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let big = args.iter().any(|a| a == "--big");
    let ids: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();
    let ids = if ids.is_empty() { vec!["all"] } else { ids };
    for id in ids {
        for out in congest_bench::experiments::run(id, big) {
            println!("================================================================");
            println!("{}", out.table);
        }
    }
    println!("CSV copies written to results/");
}
