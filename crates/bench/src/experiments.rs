//! Experiment implementations T1–T5 / F1–F4 (see DESIGN.md §5 for the
//! index and EXPERIMENTS.md for recorded results).

use crate::stats::fit_exponent;
use crate::workloads::{hop_deep, sparse_random};
use congest_apsp::blocker::{alg2_blocker, greedy_blocker, is_valid_blocker, PathCtx, Selection};
use congest_apsp::config::BlockerParams;
use congest_apsp::csssp::build_csssp;
use congest_apsp::pipeline::{
    propagate_to_blockers, propagate_to_blockers_with, propagate_trivial_broadcast, PushDiscipline,
    RoutedTable,
};
use congest_apsp::{Algorithm, ApspConfig, BlockerMethod, Charging, Solver};
use congest_graph::generators::{Family, WeightDist};
use congest_graph::seq::{apsp_dijkstra, dijkstra, Direction};
use congest_graph::{DistMatrix, NodeId};
use congest_oracle::{EngineConfig, IntoOracle, QueryEngine};
use congest_sim::{Recorder, SimConfig, Topology};
use std::fmt::Write as _;
use std::fs;
use std::sync::Arc;
use std::time::Instant;

/// Output of one experiment: a rendered text table plus CSV lines.
pub struct ExperimentOutput {
    /// Experiment id ("t1", "f3", ...).
    pub id: &'static str,
    /// Human-readable table (printed to stdout).
    pub table: String,
    /// Machine-readable rows (written to `results/<id>.csv`).
    pub csv: String,
}

impl ExperimentOutput {
    /// Writes the CSV to `results/<id>.csv` (best effort) and returns self.
    #[must_use]
    pub fn persist(self) -> Self {
        let _ = fs::create_dir_all("results");
        let _ = fs::write(format!("results/{}.csv", self.id), &self.csv);
        self
    }
}

/// n values for the scaling sweeps; kept modest so `experiments all`
/// finishes in minutes. Pass `--big` for the extended sweep.
#[must_use]
pub fn t1_sizes(big: bool) -> Vec<usize> {
    if big {
        vec![24, 40, 56, 80, 104, 128, 160]
    } else {
        vec![24, 40, 56, 80, 104]
    }
}

/// T1 — the empiricized Table 1: measured rounds per algorithm vs n.
#[must_use]
pub fn t1(big: bool, charging: Charging) -> ExperimentOutput {
    let mut table = String::new();
    let mut csv = String::from("n,paper_det,paper_rand,ar18,naive,q_paper,q_ar18\n");
    let _ = writeln!(
        table,
        "T1 (Table 1 empiricized): measured rounds, {charging:?} charging, G(n, m=3n) weighted digraphs"
    );
    let _ = writeln!(
        table,
        "{:>5} {:>12} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "n", "this-paper", "paper-rand", "AR18 n^1.5", "naive", "|Q|paper", "|Q|ar18"
    );
    let mut rows: Vec<(usize, u64, u64, u64, u64)> = Vec::new();
    for n in t1_sizes(big) {
        let g = sparse_random(n, 1000 + n as u64);
        let cfg = ApspConfig { charging, ..Default::default() };
        let oracle = apsp_dijkstra(&g);
        let paper = Solver::builder(&g).config(cfg).run().unwrap();
        assert_eq!(paper.dist, oracle);
        let rand = Solver::builder(&g)
            .config(cfg)
            .blocker_method(BlockerMethod::Randomized)
            .run()
            .unwrap();
        assert_eq!(rand.dist, oracle);
        let ar18 = Solver::builder(&g).config(cfg).algorithm(Algorithm::Ar18).run().unwrap();
        assert_eq!(ar18.dist, oracle);
        let naive = Solver::builder(&g).config(cfg).algorithm(Algorithm::Naive).run().unwrap();
        assert_eq!(naive.dist, oracle);
        let row = (
            n,
            paper.recorder.total_rounds(),
            rand.recorder.total_rounds(),
            ar18.recorder.total_rounds(),
            naive.recorder.total_rounds(),
        );
        let _ = writeln!(
            table,
            "{:>5} {:>12} {:>12} {:>12} {:>12} {:>9} {:>9}",
            row.0,
            row.1,
            row.2,
            row.3,
            row.4,
            paper.meta.q.len(),
            ar18.meta.q.len()
        );
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{},{}",
            row.0,
            row.1,
            row.2,
            row.3,
            row.4,
            paper.meta.q.len(),
            ar18.meta.q.len()
        );
        rows.push(row);
    }
    type Row5 = (usize, u64, u64, u64, u64);
    let fit = |f: &dyn Fn(&Row5) -> u64| {
        fit_exponent(&rows.iter().map(|r| (r.0 as f64, f(r) as f64)).collect::<Vec<_>>())
    };
    let (e_paper, e_rand, e_ar, e_naive) =
        (fit(&|r| r.1), fit(&|r| r.2), fit(&|r| r.3), fit(&|r| r.4));
    let _ = writeln!(table, "\nfitted exponents (bounds: 4/3 ≈ 1.33 | 4/3 | 3/2 | 2):");
    let _ = writeln!(
        table,
        "  this-paper {e_paper:.2} | paper-rand {e_rand:.2} | AR18 {e_ar:.2} | naive {e_naive:.2}"
    );
    let _ = writeln!(
        table,
        "  (Õ hides polylog factors which inflate small-n fits; ordering paper < AR18 < naive is the reproduced shape)"
    );
    // projected crossover paper vs AR18 from the fitted power laws
    if e_ar > e_paper {
        let last = rows.last().unwrap();
        let c_paper = last.1 as f64 / (last.0 as f64).powf(e_paper);
        let c_ar = last.3 as f64 / (last.0 as f64).powf(e_ar);
        let cross = (c_paper / c_ar).powf(1.0 / (e_ar - e_paper));
        let _ = writeln!(
            table,
            "  projected paper-vs-AR18 crossover at n ≈ {cross:.0} (beyond simulable range, as the paper's polylog constants predict)"
        );
    }
    ExperimentOutput { id: "t1", table, csv }
}

/// T1-deep — the same comparison on hop-deep workloads (brooms), where
/// full-length h-hop paths exist and the blocker machinery carries real
/// load; this is the regime the paper's worst-case bounds describe.
#[must_use]
pub fn t1_deep(big: bool) -> ExperimentOutput {
    let mut table = String::new();
    let mut csv = String::from("n,paper_det,ar18,naive,q_paper,q_ar18\n");
    let _ = writeln!(
        table,
        "T1-deep: measured rounds on hop-deep brooms (full-length paths force real blocker sets)"
    );
    let _ = writeln!(
        table,
        "{:>5} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "n", "this-paper", "AR18 n^1.5", "naive", "|Q|paper", "|Q|ar18"
    );
    let mut rows: Vec<(usize, u64, u64, u64)> = Vec::new();
    for n in t1_sizes(big) {
        let g = hop_deep(n, 2000 + n as u64);
        let oracle = apsp_dijkstra(&g);
        let paper = Solver::builder(&g).run().unwrap();
        assert_eq!(paper.dist, oracle);
        let ar18 = Solver::builder(&g).algorithm(Algorithm::Ar18).run().unwrap();
        assert_eq!(ar18.dist, oracle);
        let naive = Solver::builder(&g).algorithm(Algorithm::Naive).run().unwrap();
        assert_eq!(naive.dist, oracle);
        let row = (
            n,
            paper.recorder.total_rounds(),
            ar18.recorder.total_rounds(),
            naive.recorder.total_rounds(),
        );
        let _ = writeln!(
            table,
            "{:>5} {:>12} {:>12} {:>12} {:>9} {:>9}",
            row.0,
            row.1,
            row.2,
            row.3,
            paper.meta.q.len(),
            ar18.meta.q.len()
        );
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{}",
            row.0,
            row.1,
            row.2,
            row.3,
            paper.meta.q.len(),
            ar18.meta.q.len()
        );
        rows.push(row);
    }
    type Row4 = (usize, u64, u64, u64);
    let fit = |f: &dyn Fn(&Row4) -> u64| {
        fit_exponent(&rows.iter().map(|r| (r.0 as f64, f(r) as f64)).collect::<Vec<_>>())
    };
    let _ = writeln!(
        table,
        "\nfitted exponents: this-paper {:.2} (Õ(n^4/3)) | AR18 {:.2} (Õ(n^3/2)) | naive {:.2} (O(n^2))",
        fit(&|r| r.1),
        fit(&|r| r.2),
        fit(&|r| r.3)
    );
    ExperimentOutput { id: "t1deep", table, csv }
}

/// F1 — the T1 data as log-log series (for plotting).
#[must_use]
pub fn f1(big: bool) -> ExperimentOutput {
    let t = t1(big, Charging::Quiesce);
    let mut table = String::from("F1: log-log series (ln n, ln rounds) per algorithm\n");
    for line in t.csv.lines().skip(1) {
        let fields: Vec<f64> = line.split(',').take(5).map(|x| x.parse().unwrap()).collect();
        let _ = writeln!(
            table,
            "ln n = {:.3}: paper {:.3}, rand {:.3}, ar18 {:.3}, naive {:.3}",
            fields[0].ln(),
            fields[1].ln(),
            fields[2].ln(),
            fields[3].ln(),
            fields[4].ln()
        );
    }
    ExperimentOutput { id: "f1", table, csv: t.csv }
}

/// T2 — blocker constructions: size and rounds, greedy \[2\] vs Algorithm 2
/// vs Algorithm 2′, on a hop-deep workload, h sweep.
#[must_use]
pub fn t2(n: usize) -> ExperimentOutput {
    let mut table = String::new();
    let mut csv =
        String::from("h,paths,greedy_q,greedy_rounds,rand_q,rand_rounds,det_q,det_rounds,bound\n");
    let _ = writeln!(
        table,
        "T2: blocker set constructions on broom(n={n}) — Lemma 3.10/3.11 vs the [2] baseline"
    );
    let _ = writeln!(
        table,
        "{:>3} {:>7} | {:>8} {:>9} | {:>8} {:>9} | {:>8} {:>9} | {:>9}",
        "h", "paths", "greedy|Q|", "rounds", "rand|Q|", "rounds", "det|Q|", "rounds", "O(n ln p/h)"
    );
    let g = hop_deep(n, 5);
    let topo = Topology::from_graph(&g);
    let sources: Vec<NodeId> = (0..g.n() as NodeId).collect();
    for h in [2usize, 3, 4, 6, 8] {
        let mut rec = Recorder::new();
        let coll = build_csssp(
            &g,
            &topo,
            &sources,
            h,
            Direction::Out,
            false,
            SimConfig::default(),
            Charging::Quiesce,
            &mut rec,
            &mut congest_apsp::Recovery::disabled(),
            "csssp",
        )
        .unwrap();
        let (ctx, _) = PathCtx::build(&topo, SimConfig::default(), &coll).unwrap();
        let paths = ctx.alive_count();

        let mut grec = Recorder::new();
        let gres = greedy_blocker(&topo, SimConfig::default(), &coll, &mut grec).unwrap();
        assert!(is_valid_blocker(&coll, &gres.q));

        let mut rrec = Recorder::new();
        let (rres, _) = alg2_blocker(
            &topo,
            SimConfig::default(),
            &coll,
            BlockerParams::default(),
            Selection::Randomized { seed: 7 },
            &mut rrec,
        )
        .unwrap();
        assert!(is_valid_blocker(&coll, &rres.q));

        let mut drec = Recorder::new();
        let (dres, _) = alg2_blocker(
            &topo,
            SimConfig::default(),
            &coll,
            BlockerParams::default(),
            Selection::Derandomized,
            &mut drec,
        )
        .unwrap();
        assert!(is_valid_blocker(&coll, &dres.q));

        let bound = (n as f64) * (paths.max(2) as f64).ln() / h as f64;
        let _ = writeln!(
            table,
            "{:>3} {:>7} | {:>8} {:>9} | {:>8} {:>9} | {:>8} {:>9} | {:>9.1}",
            h,
            paths,
            gres.q.len(),
            grec.total_rounds(),
            rres.q.len(),
            rrec.total_rounds(),
            dres.q.len(),
            drec.total_rounds(),
            bound
        );
        let _ = writeln!(
            csv,
            "{h},{paths},{},{},{},{},{},{},{bound:.1}",
            gres.q.len(),
            grec.total_rounds(),
            rres.q.len(),
            rrec.total_rounds(),
            dres.q.len(),
            drec.total_rounds()
        );
    }
    ExperimentOutput { id: "t2", table, csv }
}

/// F2 — the n·|Q| term: blocker rounds vs n at fixed h, greedy vs Alg 2′.
#[must_use]
pub fn f2() -> ExperimentOutput {
    let mut table = String::new();
    let mut csv = String::from("n,q,greedy_rounds,det_rounds,greedy_per_q,det_per_q\n");
    let _ = writeln!(
        table,
        "F2: rounds vs n at h=3 on brooms — greedy pays O(n) per blocker node, Alg 2' does not"
    );
    let _ = writeln!(
        table,
        "{:>5} {:>5} {:>13} {:>13} {:>12} {:>12}",
        "n", "|Q|", "greedy", "Alg2'", "greedy/|Q|", "Alg2'/|Q|"
    );
    for n in [24usize, 40, 56, 80, 104] {
        let g = hop_deep(n, 5);
        let topo = Topology::from_graph(&g);
        let sources: Vec<NodeId> = (0..g.n() as NodeId).collect();
        let mut rec = Recorder::new();
        let coll = build_csssp(
            &g,
            &topo,
            &sources,
            3,
            Direction::Out,
            false,
            SimConfig::default(),
            Charging::Quiesce,
            &mut rec,
            &mut congest_apsp::Recovery::disabled(),
            "csssp",
        )
        .unwrap();
        let mut grec = Recorder::new();
        let gres = greedy_blocker(&topo, SimConfig::default(), &coll, &mut grec).unwrap();
        let mut drec = Recorder::new();
        let (dres, _) = alg2_blocker(
            &topo,
            SimConfig::default(),
            &coll,
            BlockerParams::default(),
            Selection::Derandomized,
            &mut drec,
        )
        .unwrap();
        let q = gres.q.len().max(1) as u64;
        let dq = dres.q.len().max(1) as u64;
        let _ = writeln!(
            table,
            "{:>5} {:>5} {:>13} {:>13} {:>12} {:>12}",
            n,
            gres.q.len(),
            grec.total_rounds(),
            drec.total_rounds(),
            grec.total_rounds() / q,
            drec.total_rounds() / dq
        );
        let _ = writeln!(
            csv,
            "{n},{},{},{},{},{}",
            gres.q.len(),
            grec.total_rounds(),
            drec.total_rounds(),
            grec.total_rounds() / q,
            drec.total_rounds() / dq
        );
    }
    ExperimentOutput { id: "f2", table, csv }
}

/// T3 — Step 6: pipelined Algorithms 8+9 vs trivial broadcast, plus the
/// Lemma A.15/A.16 congestion and |B| bounds.
#[must_use]
pub fn t3() -> ExperimentOutput {
    let mut table = String::new();
    let mut csv = String::from(
        "workload_n,q,pipe_rounds,trivial_rounds,cong_before,cong_after,threshold,b,sqrt_q,q_prime\n",
    );
    let _ = writeln!(
        table,
        "T3: reversed q-sink propagation (Step 6), |Q| = n/5 blockers, exact inputs"
    );
    let _ = writeln!(
        table,
        "{:>10} {:>4} {:>11} {:>13} {:>11} {:>10} {:>10} {:>4} {:>7} {:>5}",
        "workload/n",
        "|Q|",
        "pipelined",
        "trivial",
        "cong-pre",
        "cong-post",
        "n√|Q|",
        "|B|",
        "√|Q|",
        "|Q'|"
    );
    for (wname, n) in
        [("rand", 24usize), ("rand", 56), ("rand", 104), ("deep", 24), ("deep", 56), ("deep", 104)]
    {
        let g = if wname == "rand" {
            sparse_random(n, 400 + n as u64)
        } else {
            hop_deep(n, 400 + n as u64)
        };
        let topo = Topology::from_graph(&g);
        let cfg = ApspConfig::default();
        let q: Vec<NodeId> = (0..n as NodeId).step_by(5).collect();
        let exact = apsp_dijkstra(&g);
        let dvals = RoutedTable::untracked(DistMatrix::from_rows(
            (0..n).map(|x| q.iter().map(|&c| exact[x][c as usize]).collect()).collect(),
        ));
        let mut rec = Recorder::new();
        let (out, stats) =
            propagate_to_blockers(&g, &topo, &cfg, BlockerParams::default(), &q, &dvals, &mut rec)
                .unwrap();
        for (qi, &c) in q.iter().enumerate() {
            assert_eq!(&out.dist[qi], &dijkstra(&g, c, Direction::In)[..], "delivery to {c}");
        }
        let mut trec = Recorder::new();
        let _ = propagate_trivial_broadcast(&topo, SimConfig::default(), &q, &dvals, &mut trec)
            .unwrap();
        let threshold = (n as f64 * (q.len() as f64).sqrt()).ceil() as u64;
        let sq = (q.len() as f64).sqrt();
        assert!(stats.congestion_after <= threshold);
        assert!(stats.b_size as f64 <= sq + 1.0);
        let _ = writeln!(
            table,
            "{wname:>5}{:>5} {:>4} {:>11} {:>13} {:>11} {:>10} {:>10} {:>4} {:>7.1} {:>5}",
            n,
            q.len(),
            rec.total_rounds(),
            trec.total_rounds(),
            stats.congestion_before,
            stats.congestion_after,
            threshold,
            stats.b_size,
            sq,
            stats.q_prime_size
        );
        let _ = writeln!(
            csv,
            "{wname}-{n},{},{},{},{},{},{threshold},{},{sq:.1},{}",
            q.len(),
            rec.total_rounds(),
            trec.total_rounds(),
            stats.congestion_before,
            stats.congestion_after,
            stats.b_size,
            stats.q_prime_size
        );
    }
    ExperimentOutput { id: "t3", table, csv }
}

/// F3 — Lemma 4.6/4.8 progress measure: the max per-node count of active
/// blocker queues over the round-robin push, sampled at powers of two.
#[must_use]
pub fn f3() -> ExperimentOutput {
    let n = 104;
    let g = sparse_random(n, 17);
    let topo = Topology::from_graph(&g);
    let cfg = ApspConfig::default();
    let q: Vec<NodeId> = (0..n as NodeId).step_by(4).collect();
    let exact = apsp_dijkstra(&g);
    let dvals = RoutedTable::untracked(DistMatrix::from_rows(
        (0..n).map(|x| q.iter().map(|&c| exact[x][c as usize]).collect()).collect(),
    ));
    let mut rec = Recorder::new();
    let (_, stats) =
        propagate_to_blockers(&g, &topo, &cfg, BlockerParams::default(), &q, &dvals, &mut rec)
            .unwrap();
    let mut table = String::new();
    let mut csv = String::from("round,max_active_queues\n");
    let _ = writeln!(
        table,
        "F3: Lemma 4.8 progress measure, n={n}, |Q|={} (round -> max #outstanding blocker queues at any node)",
        q.len()
    );
    for (round, active) in &stats.progress {
        let _ = writeln!(table, "  round {round:>7}: {active}");
        let _ = writeln!(csv, "{round},{active}");
    }
    let _ = writeln!(
        table,
        "round-robin finished in {} rounds with {} message-hops",
        stats.round_robin_rounds, stats.round_robin_messages
    );
    ExperimentOutput { id: "f3", table, csv }
}

/// T4 — Lemma 3.8: the good-set rate of pairwise-independent sampling, and
/// the derandomized scan length.
#[must_use]
pub fn t4() -> ExperimentOutput {
    use congest_derand::{brs_cover, BrsParams, Hypergraph};
    let mut table = String::new();
    let mut csv = String::from("groups,steps,set_picks,points_examined,points_per_set,fallbacks\n");
    let _ = writeln!(
        table,
        "T4: good-set sampling (Lemma 3.8: ≥ 1/8 of sample points are good ⇒ few draws per accepted set)"
    );
    let _ = writeln!(
        table,
        "{:>7} {:>6} | {:>9} {:>9} {:>13} {:>9} | {:>9}",
        "groups", "mode", "steps", "set-picks", "pts-examined", "pts/set", "fallbacks"
    );
    for groups in [200usize, 400, 800] {
        // Flat instance: many size-3 disjoint edges force the sampling path
        // (every vertex has score 1, so no singleton dominates).
        let edges: Vec<Vec<u32>> =
            (0..groups).map(|g| ((g * 3) as u32..(g * 3 + 3) as u32).collect()).collect();
        let hg = Hypergraph::new(groups * 3, edges);
        for (mode, sel) in [
            ("rand", congest_derand::Selection::Randomized { seed: 3 }),
            ("det", congest_derand::Selection::Derandomized),
        ] {
            let (cover, stats) = brs_cover(&hg, BrsParams::exercise_sampling(), sel);
            assert!(congest_derand::verify_cover(&hg, &cover));
            let pts_per_set = if stats.set_picks > 0 {
                stats.sample_points_examined as f64 / stats.set_picks as f64
            } else {
                f64::NAN
            };
            let _ = writeln!(
                table,
                "{:>7} {:>6} | {:>9} {:>9} {:>13} {:>9.1} | {:>9}",
                groups,
                mode,
                stats.selection_steps,
                stats.set_picks,
                stats.sample_points_examined,
                pts_per_set,
                stats.fallbacks
            );
            let _ = writeln!(
                csv,
                "{groups},{},{},{},{pts_per_set:.2},{}",
                stats.selection_steps,
                stats.set_picks,
                stats.sample_points_examined,
                stats.fallbacks
            );
        }
    }
    let _ = writeln!(
        table,
        "\n(randomized: pts/set ≈ expected retries ≤ 8 per Lemma 3.8; derandomized: scan depth into the affine space)"
    );
    ExperimentOutput { id: "t4", table, csv }
}

/// T5 — Theorem 1.1 correctness sweep: exactness across all families,
/// orientations and weight regimes.
#[must_use]
pub fn t5() -> ExperimentOutput {
    let mut table = String::new();
    let mut csv = String::from("family,directed,weights,n,q,rounds,exact\n");
    let _ = writeln!(table, "T5: exactness sweep (Theorem 1.1), paper configuration");
    let _ = writeln!(
        table,
        "{:<11} {:>8} {:>13} {:>4} {:>4} {:>9} {:>6}",
        "family", "directed", "weights", "n", "|Q|", "rounds", "exact"
    );
    let weight_regimes: [(&str, WeightDist); 3] = [
        ("unit", WeightDist::Unit),
        ("uniform", WeightDist::Uniform(0, 100)),
        ("zero-infl", WeightDist::ZeroInflated { p_zero: 0.3, hi: 50 }),
    ];
    let mut all_ok = true;
    for fam in Family::ALL {
        for directed in [true, false] {
            for (wname, dist) in weight_regimes {
                let g = fam.build(16, directed, dist, 123);
                let out = Solver::builder(&g).run().unwrap();
                let ok = out.dist == apsp_dijkstra(&g);
                all_ok &= ok;
                let _ = writeln!(
                    table,
                    "{:<11} {:>8} {:>13} {:>4} {:>4} {:>9} {:>6}",
                    fam.name(),
                    directed,
                    wname,
                    g.n(),
                    out.meta.q.len(),
                    out.recorder.total_rounds(),
                    if ok { "yes" } else { "NO" }
                );
                let _ = writeln!(
                    csv,
                    "{},{},{},{},{},{},{}",
                    fam.name(),
                    directed,
                    wname,
                    g.n(),
                    out.meta.q.len(),
                    out.recorder.total_rounds(),
                    ok
                );
            }
        }
    }
    assert!(all_ok, "T5 found an inexact configuration");
    let _ = writeln!(table, "\nall {} configurations exact ✓", Family::ALL.len() * 6);
    ExperimentOutput { id: "t5", table, csv }
}

/// F4 — ablations: (a) Step-9 queue discipline; (b) CSSSP 2h-truncation vs
/// plain h-hop trees (consistency violations).
#[must_use]
pub fn f4() -> ExperimentOutput {
    let mut table = String::new();
    let mut csv = String::from("ablation,config,value\n");
    // (a) queue discipline
    let n = 80;
    let g = sparse_random(n, 9);
    let topo = Topology::from_graph(&g);
    let cfg = ApspConfig::default();
    let q: Vec<NodeId> = (0..n as NodeId).step_by(4).collect();
    let exact = apsp_dijkstra(&g);
    let dvals = RoutedTable::untracked(DistMatrix::from_rows(
        (0..n).map(|x| q.iter().map(|&c| exact[x][c as usize]).collect()).collect(),
    ));
    let _ = writeln!(table, "F4a: Step-9 queue discipline ablation (n={n}, |Q|={})", q.len());
    for (name, d) in [
        ("round-robin (paper)", PushDiscipline::RoundRobin),
        ("fixed-priority", PushDiscipline::FixedPriority),
        ("longest-first", PushDiscipline::LongestFirst),
    ] {
        let mut rec = Recorder::new();
        let (out, stats) = propagate_to_blockers_with(
            &g,
            &topo,
            &cfg,
            BlockerParams::default(),
            &q,
            &dvals,
            d,
            &mut rec,
        )
        .unwrap();
        for (qi, &c) in q.iter().enumerate() {
            assert_eq!(&out.dist[qi], &dijkstra(&g, c, Direction::In)[..]);
        }
        let _ = writeln!(
            table,
            "  {:<22} push rounds = {:>6}, total step-6 rounds = {:>6}",
            name,
            stats.round_robin_rounds,
            rec.total_rounds()
        );
        let _ = writeln!(csv, "discipline,{name},{}", stats.round_robin_rounds);
    }
    // (b) CSSSP construction ablation
    let _ =
        writeln!(table, "\nF4b: CSSSP 2h+truncate vs plain h-hop BF trees (consistency checker)");
    let mut plain_fail = 0;
    let mut csssp_fail = 0;
    let trials = 20;
    for seed in 0..trials {
        let g = sparse_random(24, 9000 + seed);
        let topo = Topology::from_graph(&g);
        let sources: Vec<NodeId> = (0..g.n() as NodeId).collect();
        let mut rec = Recorder::new();
        // the real construction
        let coll = build_csssp(
            &g,
            &topo,
            &sources,
            3,
            Direction::Out,
            false,
            SimConfig::default(),
            Charging::Quiesce,
            &mut rec,
            &mut congest_apsp::Recovery::disabled(),
            "c",
        )
        .unwrap();
        if coll.check_consistency(&g).is_err() {
            csssp_fail += 1;
        }
        // the strawman: h-hop BF, no 2h horizon, no truncation
        let plain = build_csssp(
            &g,
            &topo,
            &sources,
            3,
            Direction::Out,
            false,
            SimConfig::default(),
            Charging::Quiesce,
            &mut rec,
            &mut congest_apsp::Recovery::disabled(),
            "p",
        );
        // build_csssp always runs 2h; emulate the plain variant by
        // reusing run_bf directly at h rounds.
        drop(plain);
        let mut bad = false;
        {
            use congest_apsp::bf::run_bf;
            let mut dist = vec![Vec::new(); g.n()];
            let mut hops = vec![Vec::new(); g.n()];
            let mut parent = vec![Vec::new(); g.n()];
            let mut first = vec![Vec::new(); g.n()];
            let mut children = vec![Vec::new(); g.n()];
            for &s in &sources {
                let (res, _) = run_bf(
                    &g,
                    &topo,
                    s,
                    Direction::Out,
                    3,
                    None,
                    false,
                    false,
                    SimConfig::default(),
                    Charging::Quiesce,
                )
                .unwrap();
                for v in 0..g.n() {
                    dist[v].push(res.entries[v].dist);
                    hops[v].push(if res.entries[v].reached() {
                        res.entries[v].hops
                    } else {
                        u32::MAX
                    });
                    parent[v].push(res.entries[v].parent);
                    first[v].push(congest_graph::NO_SUCC);
                    children[v].push(res.children[v].clone());
                }
            }
            let plain_coll = congest_apsp::csssp::SsspCollection {
                sources: sources.clone(),
                h: 3,
                dir: Direction::Out,
                dist: DistMatrix::from_rows(dist),
                hops,
                parent,
                children,
                first,
                tracked: false,
            };
            if plain_coll.check_consistency(&g).is_err() {
                bad = true;
            }
        }
        if bad {
            plain_fail += 1;
        }
    }
    let _ = writeln!(
        table,
        "  plain h-hop BF trees : {plain_fail}/{trials} random instances violate the CSSSP definition"
    );
    let _ = writeln!(table, "  2h + truncate (paper): {csssp_fail}/{trials} violations");
    let _ = writeln!(csv, "csssp,plain,{plain_fail}");
    let _ = writeln!(csv, "csssp,paper,{csssp_fail}");
    assert_eq!(csssp_fail, 0, "the paper construction must always pass");
    ExperimentOutput { id: "f4", table, csv }
}

/// E1 — the compute → serve vertical slice: `Solver` → `into_oracle()` →
/// `QueryEngine`, end to end. Records simulated rounds, wall-clock compute
/// time, oracle build time (the distance arena is *moved* into the oracle,
/// so this is purely successor derivation), snapshot size, and served
/// queries/sec for a mixed dist/path burst.
#[must_use]
pub fn e1_oracle(big: bool) -> ExperimentOutput {
    use congest_telemetry::json::{obj, Json};
    const QUERIES: u64 = 200_000;
    let mut table = String::new();
    let mut csv = String::from(
        "n,rounds,q,compute_ms,oracle_build_ms,snapshot_bytes,queries,serve_qps,cache_hit_rate\n",
    );
    // The whole slice runs instrumented: solver spans, per-phase rows, op
    // latency histograms, and shard-cache gauges all land in the run
    // manifest written at the end.
    congest_telemetry::enable();
    let mut size_rows: Vec<Json> = Vec::new();
    let _ = writeln!(
        table,
        "E1: compute -> serve vertical slice (Solver -> into_oracle -> QueryEngine, {QUERIES} mixed queries)"
    );
    let _ = writeln!(
        table,
        "{:>5} {:>9} {:>4} {:>11} {:>9} {:>10} {:>12} {:>9}",
        "n", "rounds", "|Q|", "compute-ms", "build-ms", "snapshot", "serve-qps", "hit-rate"
    );
    let sizes: &[usize] = if big { &[32, 48, 64, 96] } else { &[32, 48, 64] };
    for &n in sizes {
        let g = sparse_random(n, 4000 + n as u64);
        let t0 = Instant::now();
        let out = Solver::builder(&g).run().unwrap();
        let compute_ms = t0.elapsed().as_secs_f64() * 1e3;
        let rounds = out.recorder.total_rounds();
        let q = out.meta.q.len();
        let phase_rows = out.recorder.manifest_rows();
        assert_eq!(out.dist, apsp_dijkstra(&g), "e2e slice must stay exact");

        let t0 = Instant::now();
        let oracle = out.into_oracle(&g);
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;
        let snapshot_bytes = oracle.to_bytes().len();

        let engine =
            QueryEngine::new(Arc::new(oracle), EngineConfig { shards: 8, cache_per_shard: 1024 });
        let t0 = Instant::now();
        let mut state = 0x5EED_u64 + n as u64;
        for i in 0..QUERIES {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state % n as u64) as NodeId;
            let v = ((state >> 32) % n as u64) as NodeId;
            if i % 8 == 0 {
                let _ = engine.path(u, v).expect("in range");
            } else {
                let _ = engine.dist(u, v).expect("in range");
            }
        }
        let qps = QUERIES as f64 / t0.elapsed().as_secs_f64();
        engine.publish_gauges();
        let stats = engine.cache_stats();
        let hit_rate = stats.hit_rate();
        let shard_rows: Vec<Json> = engine
            .shard_stats()
            .iter()
            .map(|s| {
                obj(vec![
                    ("hits", Json::U64(s.hits)),
                    ("misses", Json::U64(s.misses)),
                    ("hit_rate", Json::F64((s.hit_rate() * 1000.0).round() / 1000.0)),
                ])
            })
            .collect();
        size_rows.push(obj(vec![
            ("n", Json::from(n)),
            ("rounds", Json::U64(rounds)),
            ("q", Json::from(q)),
            ("compute_ms", Json::F64((compute_ms * 10.0).round() / 10.0)),
            ("oracle_build_ms", Json::F64((build_ms * 100.0).round() / 100.0)),
            ("snapshot_bytes", Json::from(snapshot_bytes)),
            ("serve_qps", Json::F64(qps.round())),
            ("cache_hit_rate", Json::F64((hit_rate * 1000.0).round() / 1000.0)),
            ("shards", Json::Arr(shard_rows)),
            ("phases", Json::Arr(phase_rows.iter().map(phase_row_json).collect())),
        ]));
        let _ = writeln!(
            table,
            "{n:>5} {rounds:>9} {q:>4} {compute_ms:>11.1} {build_ms:>9.2} {snapshot_bytes:>10} {qps:>12.0} {hit_rate:>9.3}"
        );
        let _ = writeln!(
            csv,
            "{n},{rounds},{q},{compute_ms:.1},{build_ms:.2},{snapshot_bytes},{QUERIES},{qps:.0},{hit_rate:.3}"
        );
    }
    let manifest = congest_telemetry::Manifest::new("experiment-e1")
        .field(
            "experiment",
            Json::from("compute -> serve vertical slice (Solver -> into_oracle -> QueryEngine)"),
        )
        .field(
            "knobs",
            obj(vec![
                ("queries", Json::U64(QUERIES)),
                ("shards", Json::U64(8)),
                ("cache_per_shard", Json::U64(1024)),
                ("big", Json::Bool(big)),
                ("graph", Json::from("sparse_random(n, seed 4000+n)")),
            ]),
        )
        .field("sizes", Json::Arr(size_rows))
        .metrics(congest_telemetry::global().registry());
    congest_telemetry::disable();
    if let Ok(path) = manifest.write_run("results") {
        let _ = writeln!(table, "\nrun manifest: {}", path.display());
    }
    let _ = writeln!(
        table,
        "\n(build-ms is plane validation only: the n^2 distance arena and the Step-7 successor plane move into the oracle with zero copies and zero reverse-BFS derivations)"
    );
    ExperimentOutput { id: "e1", table, csv }
}

/// [`congest_telemetry::PhaseRow`] as a manifest JSON object (the
/// `Manifest::phases` section does the same for whole-run tables; here
/// each e1 size carries its own).
fn phase_row_json(r: &congest_telemetry::PhaseRow) -> congest_telemetry::json::Json {
    use congest_telemetry::json::{obj, Json};
    obj(vec![
        ("name", Json::from(r.name.as_str())),
        ("rounds", Json::U64(r.rounds)),
        ("messages", Json::U64(r.messages)),
        ("payload_words", Json::U64(r.payload_words)),
        ("max_msg_words", Json::from(r.max_msg_words)),
        ("max_node_congestion", Json::U64(r.max_node_congestion)),
        ("wall_ns", Json::U64(r.wall_ns)),
    ])
}

/// Runs one experiment by id.
#[must_use]
pub fn run(id: &str, big: bool) -> Vec<ExperimentOutput> {
    match id {
        "t1" => vec![t1(big, Charging::Quiesce).persist()],
        "t1wc" => vec![t1(false, Charging::WorstCase).persist()],
        "t1deep" => vec![t1_deep(big).persist()],
        "f1" => vec![f1(big).persist()],
        "t2" => vec![t2(64).persist()],
        "f2" => vec![f2().persist()],
        "t3" => vec![t3().persist()],
        "f3" => vec![f3().persist()],
        "t4" => vec![t4().persist()],
        "t5" => vec![t5().persist()],
        "f4" => vec![f4().persist()],
        "e1" | "oracle" => vec![e1_oracle(big).persist()],
        "all" => {
            let mut v = Vec::new();
            for id in ["t1", "t1deep", "f1", "t2", "f2", "t3", "f3", "t4", "t5", "f4", "e1"] {
                v.extend(run(id, big));
            }
            v
        }
        other => panic!("unknown experiment id: {other}"),
    }
}
