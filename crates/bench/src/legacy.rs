//! The pre-refactor "boxed" engine, preserved verbatim-in-spirit as the
//! baseline for the engine-throughput benchmark (`benches/engine.rs`).
//!
//! This reproduces the seed engine's per-round cost model exactly:
//!
//! * one `Vec<Envelope>` inbox per node, cleared (not reused as a flat
//!   buffer) every round;
//! * one fresh `Outbox` per node per round, each allocating a `counts`
//!   vector and a `sends` vector;
//! * target resolution by binary search per send;
//! * in-flight accounting by summing every inbox length every round.
//!
//! The current engine (`congest_sim::Engine`) replaced all four with a
//! flat, double-buffered, CSR-indexed message plane; `BENCH_engine.json`
//! records the measured difference.

use congest_graph::NodeId;
use congest_sim::Topology;

/// A received message with its sender (legacy layout).
#[derive(Clone, Debug)]
pub struct LegacyEnvelope<M> {
    /// Sending neighbor.
    pub from: NodeId,
    /// Payload.
    pub msg: M,
}

/// Per-round send buffer with the legacy allocation pattern.
pub struct LegacyOutbox<'a, M> {
    neighbors: &'a [NodeId],
    bandwidth: u32,
    counts: Vec<u32>,
    sends: Vec<(NodeId, M)>,
}

impl<'a, M> LegacyOutbox<'a, M> {
    fn new(neighbors: &'a [NodeId], bandwidth: u32) -> Self {
        LegacyOutbox { neighbors, bandwidth, counts: vec![0; neighbors.len()], sends: Vec::new() }
    }

    /// Queues `msg` for neighbor `to` (binary-search target resolution).
    ///
    /// # Panics
    /// Panics on CONGEST violations (the bench workloads are legal by
    /// construction, so the legacy engine keeps error handling simple).
    pub fn send(&mut self, to: NodeId, msg: M) {
        let idx = self.neighbors.binary_search(&to).expect("legacy send: not a neighbor");
        assert!(self.counts[idx] < self.bandwidth, "legacy send: bandwidth exceeded");
        self.counts[idx] += 1;
        self.sends.push((to, msg));
    }

    /// Sends a copy of `msg` to every neighbor, the legacy way: index loop
    /// with a full `send` (and its binary search) per neighbor.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        for i in 0..self.neighbors.len() {
            let to = self.neighbors[i];
            self.send(to, msg.clone());
        }
    }
}

/// Node logic interface of the legacy engine (mirrors the seed's
/// `NodeLogic`, minus the violation plumbing the bench never exercises).
pub trait LegacyLogic {
    /// Message type.
    type Msg: Clone;

    /// Step one round.
    fn on_round(
        &mut self,
        id: NodeId,
        round: u64,
        neighbors: &[NodeId],
        inbox: &[LegacyEnvelope<Self::Msg>],
        out: &mut LegacyOutbox<'_, Self::Msg>,
    );

    /// Still intends to send (quiescence override).
    fn active(&self) -> bool {
        false
    }
}

/// Runs `nodes` to quiescence (at most `max_rounds`), returning
/// `(rounds, messages)`. Faithful reproduction of the seed round loop.
///
/// # Panics
/// Panics if the protocol fails to quiesce within `max_rounds`.
pub fn legacy_run<N: LegacyLogic>(
    topo: &Topology,
    bandwidth: u32,
    nodes: &mut [N],
    max_rounds: u64,
) -> (u64, u64) {
    let n = topo.n();
    assert_eq!(nodes.len(), n);
    let mut inboxes: Vec<Vec<LegacyEnvelope<N::Msg>>> = vec![Vec::new(); n];
    let mut messages = 0u64;
    let mut rounds = 0u64;
    loop {
        // Legacy in-flight accounting: O(n) sum every round.
        let in_flight = inboxes.iter().map(Vec::len).sum::<usize>();
        let anyone_active = nodes.iter().any(LegacyLogic::active);
        if rounds > 0 && in_flight == 0 && !anyone_active {
            break;
        }
        assert!(rounds < max_rounds, "legacy engine failed to quiesce");
        // Legacy stepping: per-node boxed outbox, fresh vectors each round.
        let outs: Vec<Vec<(NodeId, N::Msg)>> = nodes
            .iter_mut()
            .enumerate()
            .map(|(i, node)| {
                let id = i as NodeId;
                let neighbors = topo.neighbors(id);
                let mut out = LegacyOutbox::new(neighbors, bandwidth);
                node.on_round(id, rounds, neighbors, &inboxes[i], &mut out);
                out.sends
            })
            .collect();
        for ib in &mut inboxes {
            ib.clear();
        }
        for (i, sends) in outs.into_iter().enumerate() {
            messages += sends.len() as u64;
            for (to, msg) in sends {
                inboxes[to as usize].push(LegacyEnvelope { from: i as NodeId, msg });
            }
        }
        rounds += 1;
    }
    (rounds, messages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{path, WeightDist};

    struct Token {
        have: bool,
        sent: bool,
    }

    impl LegacyLogic for Token {
        type Msg = ();
        fn on_round(
            &mut self,
            _id: NodeId,
            _round: u64,
            _neighbors: &[NodeId],
            inbox: &[LegacyEnvelope<()>],
            out: &mut LegacyOutbox<'_, ()>,
        ) {
            if !inbox.is_empty() {
                self.have = true;
            }
            if self.have && !self.sent {
                out.broadcast(());
                self.sent = true;
            }
        }
    }

    #[test]
    fn legacy_flood_reaches_everyone() {
        let g = path(8, false, WeightDist::Unit, 0);
        let topo = Topology::from_graph(&g);
        let mut nodes: Vec<Token> = (0..8).map(|i| Token { have: i == 0, sent: false }).collect();
        let (rounds, messages) = legacy_run(&topo, 1, &mut nodes, 100);
        assert!(nodes.iter().all(|t| t.have));
        assert_eq!(messages, 2 * 7);
        assert!(rounds >= 8);
    }
}
