//! # congest-bench
//!
//! Experiment harness regenerating the paper's round-complexity
//! comparisons (the empiricized Table 1) and the per-lemma validation
//! experiments T1–T5 / F1–F4 indexed in `DESIGN.md` and reported in
//! `EXPERIMENTS.md`.
//!
//! Run `cargo run -p congest-bench --release --bin experiments -- all`
//! (or a single experiment id) to print the tables; CSV copies land in
//! `results/`. The `e1`/`oracle` experiment exercises the compute → serve
//! vertical slice (`Solver` → `into_oracle()` → `QueryEngine`).

#![warn(missing_docs)]
#![deny(deprecated)]

pub mod experiments;
pub mod legacy;
pub mod stats;
pub mod workloads;
