//! # congest-bench
//!
//! Experiment harness regenerating the paper's round-complexity
//! comparisons (the empiricized Table 1) and the per-lemma validation
//! experiments T1–T5 / F1–F4 indexed in `DESIGN.md` and reported in
//! `EXPERIMENTS.md`.
//!
//! Run `cargo run -p congest-bench --release --bin experiments -- all`
//! (or a single experiment id) to print the tables; CSV copies land in
//! `results/`.

#![warn(missing_docs)]

pub mod experiments;
pub mod legacy;
pub mod stats;
pub mod workloads;
