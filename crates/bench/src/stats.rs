//! Tiny statistics helpers for the experiment tables.

/// Least-squares slope of ln(y) against ln(x): the empirical scaling
/// exponent of a measured series.
#[must_use]
pub fn fit_exponent(points: &[(f64, f64)]) -> f64 {
    assert!(points.len() >= 2, "need at least two points to fit");
    let k = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let (lx, ly) = (x.ln(), y.max(1.0).ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (k * sxy - sx * sy) / (k * sxx - sx * sx)
}

/// Geometric mean.
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_of_power_law() {
        let pts: Vec<(f64, f64)> =
            (1..=6).map(|i| (i as f64 * 10.0, 3.0 * (i as f64 * 10.0).powf(1.5))).collect();
        assert!((fit_exponent(&pts) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn exponent_of_linear() {
        let pts: Vec<(f64, f64)> = (1..=5).map(|i| (i as f64, 7.0 * i as f64)).collect();
        assert!((fit_exponent(&pts) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
    }
}
