//! Shared experiment workloads.

use congest_graph::generators::{gnm_connected, WeightDist};
use congest_graph::Graph;

/// The default T1 workload: connected G(n, m ≈ 3n) with uniform weights —
/// the "general weighted digraph" setting of the paper's model section.
#[must_use]
pub fn sparse_random(n: usize, seed: u64) -> Graph<u64> {
    gnm_connected(n, 2 * n, true, WeightDist::Uniform(0, 100), seed)
}

/// A hop-deep workload (broom) that actually produces full-length h-hop
/// paths, exercising the blocker machinery rather than short-circuiting it.
#[must_use]
pub fn hop_deep(n: usize, seed: u64) -> Graph<u64> {
    congest_graph::generators::broom(n, true, WeightDist::Uniform(1, 20), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_connected() {
        assert!(sparse_random(30, 1).is_comm_connected());
        assert!(hop_deep(30, 1).is_comm_connected());
    }
}
