//! Developer probe: wall-clock and round-count comparison of the three
//! APSP algorithms at increasing n, with an exactness cross-check.
//! (The full experiment suite lives in `congest-bench`; this is the
//! quick smoke-test variant.)
//!
//! ```text
//! cargo run -p congest-apsp --release --example timing_probe
//! ```

use congest_apsp::{Algorithm, Solver};
use congest_graph::generators::{gnm_connected, WeightDist};
use std::time::Instant;

fn main() {
    for n in [24usize, 48, 72, 96] {
        let g = gnm_connected(n, 3 * n, true, WeightDist::Uniform(0, 100), 7);
        let t0 = Instant::now();
        let out = Solver::builder(&g).run().unwrap();
        let t_paper = t0.elapsed();
        let t0 = Instant::now();
        let ar = Solver::builder(&g).algorithm(Algorithm::Ar18).run().unwrap();
        let t_ar = t0.elapsed();
        let t0 = Instant::now();
        let nv = Solver::builder(&g).algorithm(Algorithm::Naive).run().unwrap();
        let t_naive = t0.elapsed();
        let ok = out.dist == nv.dist && ar.dist == nv.dist;
        println!(
            "n={n:3} | paper: {:>8} rounds q={:2} ({:.2?}) | ar18: {:>8} rounds ({:.2?}) | naive: {:>7} rounds ({:.2?}) | exact={ok}",
            out.recorder.total_rounds(),
            out.meta.q.len(),
            t_paper,
            ar.recorder.total_rounds(),
            t_ar,
            nv.recorder.total_rounds(),
            t_naive
        );
    }
}
