//! Algorithm 1 — the paper's deterministic Õ(n^{4/3})-round APSP.
//!
//! Step map (§2):
//! 1. h-CSSSP for S = V, h = n^{1/3}           → [`crate::csssp`]
//! 2. blocker set Q                             → [`crate::blocker`]
//! 3. h-in-SSSP per c ∈ Q                       → [`crate::bf`]
//! 4. broadcast of the Q×Q δ_h matrix           → flooding (Lemma A.2)
//! 5. local min-plus closure at every node      → zero rounds
//! 6. reversed q-sink propagation               → [`crate::pipeline`]
//! 7. h-hop extension per source                → [`crate::extension`]

use crate::bf::run_bf;
use crate::blocker::{alg2_blocker, greedy_blocker, Alg2Stats, Selection};
use crate::config::ApspConfig;
use crate::csssp::build_csssp;
use crate::extension::extend_all_sources;
use crate::pipeline::{
    propagate_to_blockers, propagate_trivial_broadcast, RoutedTable, Step6Stats,
};
use crate::recovery::{sentinels, FaultReport, Recovery, SolverError};
use congest_graph::seq::Direction;
use congest_graph::{DistMatrix, Graph, NodeId, Weight, NO_SUCC};
use congest_sim::primitives::all_to_all_broadcast;
use congest_sim::{Recorder, Topology};

/// Which blocker-set construction Step 2 uses.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BlockerMethod {
    /// Greedy baseline of \[2\] (adds the n·|Q| term).
    Greedy,
    /// Algorithm 2 (randomized, pairwise-independent sampling).
    Randomized,
    /// Algorithm 2′ (derandomized — the paper's deterministic result).
    Derandomized,
}

/// Which Step-6 implementation to use.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Step6Method {
    /// Algorithms 8 + 9 (the paper's Õ(n^{4/3}) pipeline).
    Pipelined,
    /// All-to-all broadcast of all n·|Q| values (the Õ(n^{5/3}) strawman).
    TrivialBroadcast,
}

/// Metadata about one APSP run (sizes and lemma counters).
#[derive(Clone, Debug, Default)]
pub struct ApspMeta {
    /// Hop parameter h.
    pub h: usize,
    /// The blocker set Q.
    pub q: Vec<NodeId>,
    /// Blocker-construction counters (Algorithm 2/2′ only).
    pub blocker_stats: Option<Alg2Stats>,
    /// Step-6 counters (pipelined method only).
    pub step6: Option<Step6Stats>,
}

/// Result of a distributed APSP run: the full distance matrix in one flat
/// arena (`dist[x][t]`, `INF` when unreachable), per-phase round
/// accounting, and run metadata.
///
/// With successor tracking on (the [`crate::Solver`] default), `dist` also
/// carries the target-major successor plane filled *during* the
/// distributed phases — `dist.successor(u, v)` is the first hop from `u`
/// toward `v` — which `congest_oracle::Oracle::from_dist` adopts by move,
/// skipping its reverse-BFS derivation entirely.
#[derive(Clone, Debug)]
pub struct ApspOutcome<W> {
    /// `dist[x][t] = δ(x, t)`, square and row-major.
    pub dist: DistMatrix<W>,
    /// Phase-by-phase rounds/messages/congestion.
    pub recorder: Recorder,
    /// Sizes and counters.
    pub meta: ApspMeta,
    /// What the fault plane did to this run (all-zero without a plan; see
    /// [`crate::recovery`]). A successful outcome's `dist` is
    /// bit-identical to the fault-free run regardless of these counters —
    /// they measure what recovery *absorbed*, not residual damage.
    pub fault_report: FaultReport,
}

impl<W: Weight> ApspOutcome<W> {
    /// Number of nodes the run covered.
    #[must_use]
    pub fn n(&self) -> usize {
        self.dist.n()
    }

    /// Consumes the outcome, handing the n² distance arena to a consumer
    /// (e.g. the `congest_oracle` serving layer) without cloning it; the
    /// recorder and metadata are dropped. For the one-line compute→serve
    /// handoff use `congest_oracle::IntoOracle::into_oracle` instead.
    #[must_use]
    pub fn into_dist(self) -> DistMatrix<W> {
        self.dist
    }
}

/// Flood payload for Step 4: one (from-blocker, to-blocker, δ_h) entry.
#[derive(Clone, Debug, PartialEq, Eq)]
struct QPairItem<W> {
    from_qi: u32,
    to_qi: u32,
    dist: W,
}

impl<W: Weight> std::hash::Hash for QPairItem<W> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.from_qi.hash(state);
        self.to_qi.hash(state);
        format!("{:?}", self.dist).hash(state);
    }
}

/// Runs Algorithm 1 (the paper's Õ(n^{4/3}) APSP). `method` selects the
/// Step-2 blocker construction, `step6` the Step-6 implementation; the
/// paper's headline configuration is `(Derandomized, Pipelined)`.
///
/// This is the engine behind [`crate::Solver`] with
/// [`crate::Algorithm::Ar20`]; external callers go through the builder.
pub(crate) fn run_ar20<W: Weight>(
    g: &Graph<W>,
    cfg: &ApspConfig,
    method: BlockerMethod,
    step6: Step6Method,
) -> Result<ApspOutcome<W>, SolverError> {
    assert!(g.is_comm_connected(), "CONGEST algorithms need a connected network");
    let n = g.n();
    let topo = Topology::from_graph(g);
    let mut rec = Recorder::new();
    let mut rc = Recovery::from_config(cfg);
    let mut meta = ApspMeta { h: cfg.hop_param(n), ..Default::default() };
    let h = meta.h;
    let sim = cfg.sim;
    let track = cfg.track_successors;

    // Step 1: h-CSSSP for V (tracking first hops when Step-7 successor
    // tracking is on — the extension seeds reuse them).
    let sources: Vec<NodeId> = (0..n as NodeId).collect();
    let coll = build_csssp(
        g,
        &topo,
        &sources,
        h,
        Direction::Out,
        track,
        sim,
        cfg.charging,
        &mut rec,
        &mut rc,
        "step1: h-CSSSP for V",
    )?;

    // Step 2: blocker set (a multi-engine phase: recoverable as one unit,
    // with the covering property — every full root-to-leaf path hits Q —
    // as the sentinel).
    let q = match method {
        BlockerMethod::Greedy => rc.compound(
            "step2: greedy blocker set",
            "step2/",
            sim,
            &mut rec,
            |sim, brec| Ok(greedy_blocker(&topo, sim, &coll, brec)?.q),
            |q| sentinels::blocker_covers(&coll, q),
        )?,
        BlockerMethod::Randomized | BlockerMethod::Derandomized => {
            let sel = match method {
                BlockerMethod::Randomized => Selection::Randomized { seed: cfg.seed },
                _ => Selection::Derandomized,
            };
            let (q, stats) = rc.compound(
                "step2: blocker set (Algorithm 2)",
                "step2/",
                sim,
                &mut rec,
                |sim, brec| {
                    let (res, stats) = alg2_blocker(&topo, sim, &coll, cfg.blocker, sel, brec)?;
                    Ok((res.q, stats))
                },
                |(q, _)| sentinels::blocker_covers(&coll, q),
            )?;
            meta.blocker_stats = Some(stats);
            q
        }
    };
    meta.q = q.clone();

    // Step 3: h-in-SSSP per blocker; to_q[qi][x] = δ_h(x, q_qi) at x. An
    // in-direction parent pointer *is* the next hop from x toward the
    // blocker, so successor tracking needs no extra message traffic here —
    // each node keeps its local parent as routing state (only materialized
    // when tracking is on).
    let mut to_q: Vec<Vec<W>> = Vec::with_capacity(q.len());
    let mut to_q_next: Vec<Vec<NodeId>> = Vec::with_capacity(if track { q.len() } else { 0 });
    for &c in &q {
        // Sentinel note: these trees run without the repair sub-phase, so
        // only the hop budget and the root entry are checkable — stale
        // parents are legitimate at a truncated horizon (see crate::bf).
        let (res, rep) = rc.phase(
            &format!("step3: h-in-SSSP({c})"),
            sim,
            |sim| {
                run_bf(g, &topo, c, Direction::In, h as u64, None, false, false, sim, cfg.charging)
            },
            |res| sentinels::bounded_tree(c, h as u64, res),
        )?;
        rec.record(format!("step3: h-in-SSSP({c})"), rep);
        to_q.push(res.entries.iter().map(|e| e.dist).collect());
        if track {
            to_q_next.push(res.entries.iter().map(|e| e.parent.unwrap_or(NO_SUCC)).collect());
        }
    }

    // Step 4: every c broadcasts (c, c', δ_h(c, c')) — |Q|² values.
    if !q.is_empty() {
        let initial: Vec<Vec<QPairItem<W>>> = (0..n)
            .map(|v| {
                if let Some(qi) = q.iter().position(|&c| c as usize == v) {
                    (0..q.len())
                        .filter(|&qj| !to_q[qj][v].is_inf())
                        .map(|qj| QPairItem {
                            from_qi: qi as u32,
                            to_qi: qj as u32,
                            dist: to_q[qj][v],
                        })
                        .collect()
                } else {
                    Vec::new()
                }
            })
            .collect();
        // A dropped frame starves every log behind it without any local
        // symptom, so the sentinel demands complete logs everywhere.
        let expected: usize = initial.iter().map(Vec::len).sum();
        let (_, rep) = rc.phase(
            "step4: QxQ matrix broadcast",
            sim,
            |sim| all_to_all_broadcast(&topo, sim, initial.clone(), 3),
            |logs| sentinels::flood_complete(logs, expected),
        )?;
        rec.record("step4: QxQ matrix broadcast", rep);
    }

    // Step 5 (local): min-plus closure of the Q×Q matrix, then
    // dvals[x][qi] = δ(x, q_qi). Every node performs the same closure on
    // the broadcast matrix; the orchestrator mirrors it once. With
    // tracking on, the closure also carries first-hop provenance:
    // `closure_fh[i][j]` is the first *graph* hop out of node q_i on the
    // realizing path toward q_j — local knowledge at q_i (its Step-3
    // parents) combined with the broadcast matrix, so every node can still
    // compute its own rows without extra communication.
    let qn = q.len();
    let mut closure = vec![vec![W::INF; qn]; qn];
    let mut closure_fh = if track { vec![vec![NO_SUCC; qn]; qn] } else { Vec::new() };
    for qi in 0..qn {
        closure[qi][qi] = W::ZERO;
        for qj in 0..qn {
            let d = to_q[qj][q[qi] as usize];
            if d < closure[qi][qj] {
                closure[qi][qj] = d;
                if track {
                    closure_fh[qi][qj] = to_q_next[qj][q[qi] as usize];
                }
            }
        }
    }
    for k in 0..qn {
        for i in 0..qn {
            if closure[i][k].is_inf() {
                continue;
            }
            for j in 0..qn {
                let via = closure[i][k].plus(closure[k][j]);
                if via < closure[i][j] {
                    closure[i][j] = via;
                    if track {
                        closure_fh[i][j] = closure_fh[i][k];
                    }
                }
            }
        }
    }
    let mut dvals = if track {
        RoutedTable::tracked(DistMatrix::filled(n, qn, W::INF))
    } else {
        RoutedTable::untracked(DistMatrix::filled(n, qn, W::INF))
    };
    for x in 0..n {
        for qi in 0..qn {
            let mut best = to_q[qi][x];
            let mut first = if track { to_q_next[qi][x] } else { NO_SUCC };
            for qj in 0..qn {
                let seg = to_q[qj][x];
                if seg.is_inf() {
                    continue;
                }
                let via = seg.plus(closure[qj][qi]);
                if via < best {
                    best = via;
                    // The combined path starts with the δ_h(x, q_j)
                    // segment, unless x *is* q_j — then it starts inside
                    // the closure.
                    if track {
                        first =
                            if q[qj] as usize == x { closure_fh[qj][qi] } else { to_q_next[qj][x] };
                    }
                }
            }
            dvals.dist.set(x, qi, best);
            dvals.set_first(x, qi, first);
        }
    }
    rec.record_local("step5: local closure over Q");

    // Step 6: reversed q-sink propagation. Step 6 only *routes* the
    // locally known-exact dvals table, so the sentinel can demand the
    // delivered table equal its transpose cell-for-cell.
    let at_blocker = match step6 {
        Step6Method::Pipelined => {
            let (out, stats) = rc.compound(
                "step6: pipelined propagation",
                "",
                sim,
                &mut rec,
                |sim, srec| {
                    propagate_to_blockers(
                        g,
                        &topo,
                        &ApspConfig { sim, ..*cfg },
                        cfg.blocker,
                        &q,
                        &dvals,
                        srec,
                    )
                },
                |(out, _)| sentinels::transposed_delivery(&out.dist, &dvals.dist),
            )?;
            meta.step6 = Some(stats);
            out
        }
        Step6Method::TrivialBroadcast => rc.compound(
            "step6: trivial broadcast",
            "",
            sim,
            &mut rec,
            |sim, srec| propagate_trivial_broadcast(&topo, sim, &q, &dvals, srec),
            |out| sentinels::transposed_delivery(&out.dist, &dvals.dist),
        )?,
    };

    // Step 7: h-hop extension per source (assembles the successor plane
    // when tracking is on).
    let dist = extend_all_sources(g, &topo, cfg, &coll, &q, &at_blocker, &mut rec, &mut rc)?;

    // Final whole-matrix certificate (fault-active runs only): zero
    // diagonal, relaxation fixed point, successor telescoping.
    crate::recovery::final_certificate(g, &dist, &rc)?;
    Ok(ApspOutcome { dist, recorder: rec, meta, fault_report: rc.report() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;
    use congest_graph::generators::{gnm_connected, Family, WeightDist};
    use congest_graph::seq::apsp_dijkstra;

    fn check_exact(g: &Graph<u64>, method: BlockerMethod, step6: Step6Method) {
        let out = Solver::builder(g).blocker_method(method).step6_method(step6).run().unwrap();
        let oracle = apsp_dijkstra(g);
        assert_eq!(out.dist, oracle, "{method:?}/{step6:?}");
    }

    #[test]
    fn paper_configuration_exact_on_random_graphs() {
        for seed in 0..3 {
            let g = gnm_connected(16, 32, true, WeightDist::Uniform(0, 9), seed);
            check_exact(&g, BlockerMethod::Derandomized, Step6Method::Pipelined);
        }
    }

    #[test]
    fn randomized_blocker_exact() {
        let g = gnm_connected(15, 30, true, WeightDist::Uniform(1, 9), 7);
        check_exact(&g, BlockerMethod::Randomized, Step6Method::Pipelined);
    }

    #[test]
    fn greedy_blocker_exact() {
        let g = gnm_connected(15, 30, false, WeightDist::Uniform(0, 5), 2);
        check_exact(&g, BlockerMethod::Greedy, Step6Method::Pipelined);
    }

    #[test]
    fn trivial_step6_exact() {
        let g = gnm_connected(14, 28, true, WeightDist::Uniform(0, 7), 5);
        check_exact(&g, BlockerMethod::Derandomized, Step6Method::TrivialBroadcast);
    }

    #[test]
    fn exact_on_families() {
        for fam in [Family::Path, Family::Star, Family::Broom, Family::Layered] {
            let g = fam.build(15, true, WeightDist::Uniform(1, 6), 3);
            check_exact(&g, BlockerMethod::Derandomized, Step6Method::Pipelined);
        }
    }

    #[test]
    fn meta_reports_q_and_h() {
        let g = gnm_connected(20, 40, true, WeightDist::Uniform(1, 9), 1);
        let out = Solver::builder(&g).run().unwrap();
        assert_eq!(out.meta.h, 3); // ceil(20^(1/3))
        assert!(out.recorder.total_rounds() > 0);
        // Q must be a valid blocker-sized set (possibly empty on shallow graphs)
        assert!(out.meta.q.len() <= 20);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_rejected() {
        let g: Graph<u64> = Graph::from_edges(4, true, vec![congest_graph::Edge::new(0, 1, 1)]);
        let _ = Solver::builder(&g).run();
    }
}
