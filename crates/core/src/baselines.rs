//! Baseline APSP algorithms from Table 1 of the paper, for the empirical
//! round-complexity comparison (experiment T1/F1). Both are selected
//! through [`crate::Solver`] via [`crate::Algorithm`].
//!
//! * `Naive` — one full Bellman–Ford per source: the folklore O(n²)
//!   worst-case algorithm (fast on low-hop-diameter graphs).
//! * `Ar18` — a same-framework reconstruction of Agarwal, Ramachandran,
//!   King & Pontecorvi (PODC 2018): h = √n CSSSP, greedy blocker set
//!   (O(nh + n|Q|)), one full in- and out-SSSP per blocker (O(n|Q|)), one
//!   O(n|Q|)-round broadcast of the (x, c) distance table, local combine.
//!   Measured rounds scale as Θ̃(n^{3/2}) — the bound the paper improves
//!   to Õ(n^{4/3}). (See DESIGN.md §3.4 for the reconstruction notes.)

use crate::apsp::{ApspMeta, ApspOutcome};
use crate::bf::run_full_sssp;
use crate::blocker::greedy_blocker;
use crate::config::ApspConfig;
use crate::csssp::build_csssp;
use crate::recovery::{sentinels, Recovery, SolverError};
use congest_graph::seq::Direction;
use congest_graph::{DistMatrix, Graph, NodeId, Weight, NO_SUCC};
use congest_sim::primitives::all_to_all_broadcast;
use congest_sim::{Recorder, Topology};

/// One full Bellman–Ford per source (n sequential SSSPs). The engine
/// behind [`crate::Solver`] with [`crate::Algorithm::Naive`].
///
/// With successor tracking on, each SSSP threads first hops through its
/// relax messages, so the outcome carries the same target-major successor
/// plane the AR pipelines produce — an independent witness for the
/// differential plane tests.
pub(crate) fn run_naive<W: Weight>(
    g: &Graph<W>,
    cfg: &ApspConfig,
) -> Result<ApspOutcome<W>, SolverError> {
    assert!(g.is_comm_connected(), "CONGEST algorithms need a connected network");
    let n = g.n();
    let topo = Topology::from_graph(g);
    let mut rec = Recorder::new();
    let mut rc = Recovery::from_config(cfg);
    let track = cfg.track_successors;
    let mut dist = DistMatrix::square(n, W::INF);
    if track {
        dist = dist.with_empty_successors();
    }
    for x in 0..n as NodeId {
        // A full-horizon SSSP admits a complete certificate: realizable
        // parents (telescoping) plus the relaxation fixed point.
        let (res, rep) = rc.phase(
            &format!("naive: SSSP({x})"),
            cfg.sim,
            |sim| run_full_sssp(g, &topo, x, Direction::Out, track, sim, cfg.charging),
            |res| {
                sentinels::repaired_tree(g, Direction::Out, x, res)?;
                sentinels::exact_row(g, Direction::Out, x, |t| res.entries[t].dist)
            },
        )?;
        rec.record(format!("naive: SSSP({x})"), rep);
        for t in 0..n {
            dist[x as usize][t] = res.entries[t].dist;
            if track {
                dist.set_successor(x, t as NodeId, res.entries[t].first.unwrap_or(NO_SUCC));
            }
        }
    }
    crate::recovery::final_certificate(g, &dist, &rc)?;
    Ok(ApspOutcome { dist, recorder: rec, meta: ApspMeta::default(), fault_report: rc.report() })
}

/// Flood payload for the (x, c, δ(x,c)) table.
#[derive(Clone, Debug, PartialEq, Eq)]
struct TableItem<W> {
    x: NodeId,
    qi: u32,
    dist: W,
}

impl<W: Weight> std::hash::Hash for TableItem<W> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.x.hash(state);
        self.qi.hash(state);
        format!("{:?}", self.dist).hash(state);
    }
}

/// The Õ(n^{3/2})-round deterministic baseline (\[2\]-style). The engine
/// behind [`crate::Solver`] with [`crate::Algorithm::Ar18`].
pub(crate) fn run_ar18<W: Weight>(
    g: &Graph<W>,
    cfg: &ApspConfig,
) -> Result<ApspOutcome<W>, SolverError> {
    assert!(g.is_comm_connected(), "CONGEST algorithms need a connected network");
    let n = g.n();
    let topo = Topology::from_graph(g);
    let mut rec = Recorder::new();
    let mut rc = Recovery::from_config(cfg);
    // h = ⌈√n⌉ balances O(nh) against O(n|Q|) with |Q| = Õ(n/h).
    let h = (n as f64).sqrt().ceil() as usize;
    let mut meta = ApspMeta { h, ..Default::default() };
    let sim = cfg.sim;
    let track = cfg.track_successors;

    // Step 1: h-CSSSP for V.
    let sources: Vec<NodeId> = (0..n as NodeId).collect();
    let coll = build_csssp(
        g,
        &topo,
        &sources,
        h,
        Direction::Out,
        track,
        sim,
        cfg.charging,
        &mut rec,
        &mut rc,
        "ar18/step1: sqrt(n)-CSSSP",
    )?;

    // Step 2: greedy blocker set (the O(n·|Q|) construction of [2]).
    let q = rc.compound(
        "ar18/step2: greedy blocker set",
        "ar18/step2/",
        sim,
        &mut rec,
        |sim, brec| Ok(greedy_blocker(&topo, sim, &coll, brec)?.q),
        |q| sentinels::blocker_covers(&coll, q),
    )?;
    meta.q = q.clone();

    // Step 3: full in-SSSP and out-SSSP per blocker (O(n) rounds each).
    // For successor tracking, an in-SSSP parent at x doubles as x's next
    // hop toward the blocker, and the out-SSSP runs tracked so a blocker
    // source x = c knows its own first hop toward every sink.
    let mut to_q: Vec<Vec<W>> = Vec::with_capacity(q.len()); // δ(x, c) at x
    let mut to_q_next: Vec<Vec<NodeId>> = Vec::new(); // tracked only
    let mut from_q: Vec<Vec<W>> = Vec::with_capacity(q.len()); // δ(c, t) at t
    let mut from_q_first: Vec<Vec<NodeId>> = Vec::new(); // tracked only
    for &c in &q {
        let full_cert = |dir: Direction| {
            move |res: &crate::bf::BfTreeResult<W>| {
                sentinels::repaired_tree(g, dir, c, res)?;
                sentinels::exact_row(g, dir, c, |t| res.entries[t].dist)
            }
        };
        let (res, rep) = rc.phase(
            &format!("ar18/step3: in-SSSP({c})"),
            sim,
            |sim| run_full_sssp(g, &topo, c, Direction::In, false, sim, cfg.charging),
            full_cert(Direction::In),
        )?;
        rec.record(format!("ar18/step3: in-SSSP({c})"), rep);
        to_q.push(res.entries.iter().map(|e| e.dist).collect());
        if track {
            to_q_next.push(res.entries.iter().map(|e| e.parent.unwrap_or(NO_SUCC)).collect());
        }
        let (res, rep) = rc.phase(
            &format!("ar18/step3: out-SSSP({c})"),
            sim,
            |sim| run_full_sssp(g, &topo, c, Direction::Out, track, sim, cfg.charging),
            full_cert(Direction::Out),
        )?;
        rec.record(format!("ar18/step3: out-SSSP({c})"), rep);
        from_q.push(res.entries.iter().map(|e| e.dist).collect());
        if track {
            from_q_first.push(res.entries.iter().map(|e| e.first.unwrap_or(NO_SUCC)).collect());
        }
    }

    // Step 4: broadcast the n×|Q| table (O(n·|Q|) rounds, Lemma A.2).
    if !q.is_empty() {
        let initial: Vec<Vec<TableItem<W>>> = (0..n)
            .map(|x| {
                (0..q.len())
                    .filter(|&qi| !to_q[qi][x].is_inf())
                    .map(|qi| TableItem { x: x as NodeId, qi: qi as u32, dist: to_q[qi][x] })
                    .collect()
            })
            .collect();
        let expected: usize = initial.iter().map(Vec::len).sum();
        let (_, rep) = rc.phase(
            "ar18/step4: (x, c) table broadcast",
            sim,
            |sim| all_to_all_broadcast(&topo, sim, initial.clone(), 3),
            |logs| sentinels::flood_complete(logs, expected),
        )?;
        rec.record("ar18/step4: (x, c) table broadcast", rep);
    }

    // Step 5 (local at every sink t): δ(x,t) = min(δ_h(x,t),
    // min_c δ(x,c) + δ(c,t)), tracking the first hop of the winning
    // decomposition when successor tracking is on.
    rec.record_local("ar18/step5: local combine");
    let mut dist = DistMatrix::square(n, W::INF);
    if track {
        dist = dist.with_empty_successors();
    }
    for x in 0..n {
        for t in 0..n {
            let mut best = if x == t { W::ZERO } else { coll.dist[t][x] };
            let mut first = if x == t || !track { NO_SUCC } else { coll.first[t][x] };
            for qi in 0..q.len() {
                let a = to_q[qi][x];
                let b = from_q[qi][t];
                if a.is_inf() || b.is_inf() {
                    continue;
                }
                let via = a.plus(b);
                if via < best {
                    best = via;
                    // Path x →(in-tree) c →(out-tree) t starts on the
                    // in-tree segment unless x is the blocker itself.
                    if track {
                        first = if q[qi] as usize == x {
                            from_q_first[qi][t]
                        } else {
                            to_q_next[qi][x]
                        };
                    }
                }
            }
            dist[x][t] = best;
            if track {
                dist.set_successor(
                    x as NodeId,
                    t as NodeId,
                    if best.is_inf() { NO_SUCC } else { first },
                );
            }
        }
    }
    crate::recovery::final_certificate(g, &dist, &rc)?;
    Ok(ApspOutcome { dist, recorder: rec, meta, fault_report: rc.report() })
}

#[cfg(test)]
mod tests {
    use crate::solver::{Algorithm, Solver};
    use congest_graph::generators::{gnm_connected, Family, WeightDist};
    use congest_graph::seq::apsp_dijkstra;

    #[test]
    fn naive_exact() {
        for seed in 0..3 {
            let g = gnm_connected(14, 28, true, WeightDist::Uniform(0, 9), seed);
            let out = Solver::builder(&g).algorithm(Algorithm::Naive).run().unwrap();
            assert_eq!(out.dist, apsp_dijkstra(&g));
        }
    }

    #[test]
    fn ar18_exact() {
        for seed in 0..3 {
            let g = gnm_connected(16, 32, true, WeightDist::Uniform(0, 9), seed);
            let out = Solver::builder(&g).algorithm(Algorithm::Ar18).run().unwrap();
            assert_eq!(out.dist, apsp_dijkstra(&g), "seed {seed}");
        }
    }

    #[test]
    fn ar18_exact_on_deep_families() {
        for fam in [Family::Path, Family::Broom, Family::Cycle] {
            let g = fam.build(18, true, WeightDist::Uniform(1, 5), 4);
            let out = Solver::builder(&g).algorithm(Algorithm::Ar18).run().unwrap();
            assert_eq!(out.dist, apsp_dijkstra(&g), "{}", fam.name());
        }
    }

    #[test]
    fn ar18_h_is_sqrt_n() {
        let g = gnm_connected(25, 50, false, WeightDist::Unit, 0);
        let out = Solver::builder(&g).algorithm(Algorithm::Ar18).run().unwrap();
        assert_eq!(out.meta.h, 5);
    }
}
