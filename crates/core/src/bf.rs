//! Distributed synchronous Bellman–Ford (paper \[3\], used by Steps 1, 3, 7
//! and Algorithms 8/9).
//!
//! After r rounds of synchronous relaxation every node holds exactly
//! `δ_r(source, v)` — the best distance over paths with at most r hops —
//! together with the hop count and parent of a canonical optimal path.
//! Candidates are compared by `(dist, hops, parent id)` lexicographically,
//! which (a) makes the result deterministic, (b) selects minimum-hop
//! shortest paths — needed for CSSSP truncation (Appendix A.2) — and
//! (c) makes tree paths prefix-closed.
//!
//! ## The horizon-repair phase
//!
//! A bounded-round BF has a horizon artifact: a node v whose entry settled
//! early may record a parent p that *improves its own entry in the very
//! last receipt round* (via an exactly-R-hop path). v never hears about it
//! (the news would need R+1 rounds), so v's recorded parent linkage became
//! stale. Such v provably has a true shortest path longer than R hops
//! (p's improvement plus one edge undercuts v's entry), so Definition A.3
//! does not require keeping it in an (R/2)-truncated tree. We therefore run
//! three extra sub-phases, all within O(h) rounds: **adopt** (children
//! notification), **confirm** (each node tells neighbors its final entry;
//! one round), and **detach** (nodes whose recorded parent state does not
//! match the parent's final state drop out and cascade the drop to their
//! subtree). The resulting forest is internally consistent, which
//! `SsspCollection::check_consistency` verifies against the sequential
//! oracle.

use crate::config::Charging;
use congest_graph::seq::Direction;
use congest_graph::{Graph, NodeId, Weight, NO_SUCC};
use congest_sim::{
    Engine, Envelope, NodeEnv, NodeLogic, Outbox, PhaseReport, SimConfig, SimError, Topology,
};

/// Per-node outcome of one Bellman–Ford run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfEntry<W> {
    /// Best known distance (`W::INF` if unreached).
    pub dist: W,
    /// Hop count of the canonical path (`u32::MAX` if unreached).
    pub hops: u32,
    /// Parent toward the root (`None` at the root / unreached / seeded).
    pub parent: Option<NodeId>,
    /// First hop of the canonical path *as traversed from its origin*
    /// (Step-7 successor tracking; only filled when the run tracks). For an
    /// out-direction run this is the successor of the origin toward this
    /// node. `None` at the origin, at seeded nodes whose path starts there,
    /// when unreached, or when tracking is off.
    pub first: Option<NodeId>,
}

impl<W: Weight> BfEntry<W> {
    fn unreached() -> Self {
        BfEntry { dist: W::INF, hops: u32::MAX, parent: None, first: None }
    }

    /// `true` iff the node was reached.
    #[must_use]
    pub fn reached(&self) -> bool {
        !self.dist.is_inf()
    }
}

/// Seed values for an extension run (§5): per node an initial distance
/// plus, when successor tracking is on, the first hop of the path the seed
/// value summarizes (so downstream relaxations keep routing information
/// anchored at the true path origin).
#[derive(Copy, Clone, Debug)]
pub struct BfSeeds<'a, W> {
    /// Per-node initial distance; `W::INF` means "no seed".
    pub dist: &'a [W],
    /// Per-node first hop accompanying each seed value ([`NO_SUCC`] when
    /// the path starts at the seeded node). `None` disables seed-level
    /// tracking even if the run itself tracks.
    pub first: Option<&'a [NodeId]>,
}

impl<'a, W> BfSeeds<'a, W> {
    /// Distance-only seeds (tracking-off runs and legacy callers).
    #[must_use]
    pub fn dists(dist: &'a [W]) -> Self {
        BfSeeds { dist, first: None }
    }
}

/// Result of a single-source run.
#[derive(Clone, Debug)]
pub struct BfTreeResult<W> {
    /// Source (tree root).
    pub source: NodeId,
    /// Direction: `Out` = shortest paths from the source; `In` = shortest
    /// paths *to* the source (the paper's in-SSSP).
    pub dir: Direction,
    /// Per-node entry. Detached nodes read as unreached.
    pub entries: Vec<BfEntry<W>>,
    /// Per-node sorted children lists (derived from surviving parents).
    pub children: Vec<Vec<NodeId>>,
}

#[derive(Clone, Debug)]
enum BfMsg<W> {
    /// Relaxation announcement: candidate (dist, hops) *including* the
    /// connecting edge weight. When the run tracks successors, `first`
    /// carries the first hop of the candidate path from its origin —
    /// [`NO_SUCC`] meaning "the path starts at the sender, so *you* are the
    /// first hop" — one extra id word on the wire.
    Relax { dist: W, hops: u32, first: NodeId },
    /// Post-run child adoption notification.
    Adopt,
    /// Final-entry confirmation broadcast to neighbors.
    Confirm { dist: W, hops: u32 },
    /// Horizon-repair cascade: the sender's subtree is leaving the tree.
    Detach,
}

struct BfNode<W> {
    entry: BfEntry<W>,
    /// `(channel index, weight)` over which this node relaxes others
    /// (out-edges for `Out`, in-edges for `In`), deduped to min parallel
    /// weight; targets are pre-resolved to communication-channel indices so
    /// the relax fan-out uses the zero-lookup [`Outbox::send_nbr`] path.
    fwd_edges: Vec<(usize, W)>,
    /// Reverse lookup: weight of the edge a parent would have relaxed us
    /// over (min-weight dedup).
    rev_edges: Vec<(NodeId, W)>,
    dirty: bool,
    relax_rounds: u64,
    detach_deadline: u64,
    children: Vec<NodeId>,
    detached: bool,
    detach_sent: bool,
    /// Whether the horizon-repair phase runs (off for seeded extension
    /// runs, whose output is distances only).
    repair: bool,
    /// Whether relax messages carry (and entries record) first hops.
    track: bool,
    finished: bool,
}

impl<W: Weight> BfNode<W> {
    fn rev_weight(&self, from: NodeId) -> Option<W> {
        self.rev_edges.binary_search_by_key(&from, |&(t, _)| t).ok().map(|i| self.rev_edges[i].1)
    }
}

impl<W: Weight> NodeLogic for BfNode<W> {
    type Msg = BfMsg<W>;

    fn on_round(
        &mut self,
        env: &NodeEnv<'_>,
        inbox: &[Envelope<BfMsg<W>>],
        out: &mut Outbox<'_, BfMsg<W>>,
    ) {
        let r = env.round;
        let relax_end = self.relax_rounds; // receipts land through round R
        for e in inbox {
            match e.msg {
                BfMsg::Relax { dist, hops, first } => {
                    // NO_SUCC from the sender means the path starts there,
                    // making this node the first hop of its own path.
                    let first = self.track.then_some(if first == NO_SUCC { env.id } else { first });
                    let cand = BfEntry { dist, hops, parent: Some(e.from), first };
                    if better(&cand, &self.entry) {
                        self.entry = cand;
                        self.dirty = true;
                    }
                }
                BfMsg::Adopt => self.children.push(e.from),
                BfMsg::Confirm { dist, hops } => {
                    if self.repair && Some(e.from) == self.entry.parent {
                        let w = self.rev_weight(e.from).expect("parent is a rev neighbor");
                        if self.entry.dist != dist.plus(w) || self.entry.hops != hops + 1 {
                            self.detached = true;
                        }
                    }
                }
                BfMsg::Detach => {
                    self.detached = true;
                }
            }
        }
        if r < relax_end {
            if self.dirty && self.entry.reached() {
                let first = self.entry.first.unwrap_or(NO_SUCC);
                for i in 0..self.fwd_edges.len() {
                    let (ni, w) = self.fwd_edges[i];
                    out.send_nbr(
                        ni,
                        BfMsg::Relax {
                            dist: self.entry.dist.plus(w),
                            hops: self.entry.hops + 1,
                            first,
                        },
                    );
                }
                self.dirty = false;
            }
        } else if r == relax_end {
            // Entries are final. Notify the parent (children discovery).
            if let Some(p) = self.entry.parent {
                let ni = env.neighbor_index(p).expect("parent is a neighbor");
                out.send_nbr(ni, BfMsg::Adopt);
            }
        } else if r == relax_end + 1 {
            // Confirm final entries to all neighbors (1 msg per channel).
            if self.repair && self.entry.reached() {
                out.broadcast(BfMsg::Confirm { dist: self.entry.dist, hops: self.entry.hops });
            }
        } else if r >= relax_end + 2 && r <= self.detach_deadline {
            // Detach cascade: one wave per round down the tree.
            if self.repair && self.detached && !self.detach_sent {
                for i in 0..self.children.len() {
                    let ni = env.neighbor_index(self.children[i]).expect("child is a neighbor");
                    out.send_nbr(ni, BfMsg::Detach);
                }
                self.detach_sent = true;
            }
        }
        if r >= self.detach_deadline {
            self.finished = true;
        }
    }

    fn active(&self) -> bool {
        // Nodes stay schedulable through the adopt/confirm/detach window
        // (they cannot locally know that no repair traffic is coming).
        !self.finished
    }

    fn msg_words(&self, msg: &Self::Msg) -> u32 {
        match msg {
            // dist + hops, plus one id word when the run tracks successors.
            BfMsg::Relax { .. } => {
                if self.track {
                    3
                } else {
                    2
                }
            }
            BfMsg::Confirm { .. } => 2,
            BfMsg::Adopt | BfMsg::Detach => 1,
        }
    }
}

fn better<W: Weight>(a: &BfEntry<W>, b: &BfEntry<W>) -> bool {
    // `first` never participates: it is derived from the same winning
    // message, so tracking cannot perturb the distance computation.
    (a.dist, a.hops, a.parent.map(u64::from)) < (b.dist, b.hops, b.parent.map(u64::from))
}

fn dedup_min_edges<W: Weight>(iter: impl Iterator<Item = (NodeId, W)>) -> Vec<(NodeId, W)> {
    let mut edges: Vec<(NodeId, W)> = iter.collect();
    edges.sort_by_key(|&(t, w)| (t, w));
    edges.dedup_by_key(|&mut (t, _)| t);
    edges
}

/// Runs synchronous Bellman–Ford from `source` for exactly `rounds`
/// relaxation rounds (so distances are `δ_rounds`), followed by the O(1)
/// adopt/confirm and — when `repair` is set — the ≤`rounds` detach repair
/// sub-phase. `init` optionally seeds distances (h-hop extension, §5),
/// each optionally annotated with the first hop of the path its value
/// summarizes.
///
/// Pass `repair: true` only when the *tree structure* will be consumed
/// (CSSSP construction): distances are horizon-correct either way, but
/// parent pointers can go stale at the relaxation horizon (module docs).
///
/// Pass `track: true` to thread first hops through the relaxation (one
/// extra id word per relax message): every reached entry then reports in
/// [`BfEntry::first`] the first hop of its canonical path from the origin.
/// Tracking never changes distances, rounds, or message counts.
///
/// # Errors
/// Propagates engine errors.
///
/// # Panics
/// Panics if `track` is set and `init` seeds carry no first hops — a
/// tracked run over routing-less seeds would misattribute path origins.
#[allow(clippy::too_many_arguments)]
pub fn run_bf<W: Weight>(
    g: &Graph<W>,
    topo: &Topology,
    source: NodeId,
    dir: Direction,
    rounds: u64,
    init: Option<BfSeeds<'_, W>>,
    repair: bool,
    track: bool,
    sim: SimConfig,
    charging: Charging,
) -> Result<(BfTreeResult<W>, PhaseReport), SimError> {
    let n = g.n();
    let engine = Engine::new(topo, sim);
    let repair = repair && init.is_none();
    if let Some(init) = init {
        // A tracked run relaying first-hop-less seeds would mark every
        // seeded node as a path origin — silently invalid routing. Callers
        // must supply the seeds' first hops when tracking.
        assert!(
            !track || init.first.is_some(),
            "tracked seeded runs need BfSeeds::first (NO_SUCC per origin-seeded node)"
        );
    }
    let detach_deadline = if repair { 2 * rounds + 2 } else { rounds };
    let mut nodes: Vec<BfNode<W>> = (0..n as NodeId)
        .map(|v| {
            let mut entry = BfEntry::unreached();
            if v == source {
                entry = BfEntry { dist: W::ZERO, hops: 0, parent: None, first: None };
            }
            if let Some(init) = init {
                let d = init.dist[v as usize];
                if !d.is_inf() && d < entry.dist {
                    let first = track
                        .then(|| init.first.map(|f| f[v as usize]))
                        .flatten()
                        .filter(|&f| f != NO_SUCC);
                    entry = BfEntry { dist: d, hops: 0, parent: None, first };
                }
            }
            let (fwd, rev) = match dir {
                Direction::Out => (dedup_min_edges(g.out_edges(v)), dedup_min_edges(g.in_edges(v))),
                Direction::In => (dedup_min_edges(g.in_edges(v)), dedup_min_edges(g.out_edges(v))),
            };
            // Every graph edge is a communication channel; resolve relax
            // targets to channel indices once instead of per send.
            let nbrs = topo.neighbors(v);
            let fwd = fwd
                .into_iter()
                .map(|(t, w)| (nbrs.binary_search(&t).expect("graph edge implies comm channel"), w))
                .collect();
            BfNode {
                dirty: entry.reached(),
                entry,
                fwd_edges: fwd,
                rev_edges: rev,
                relax_rounds: rounds,
                detach_deadline,
                children: Vec::new(),
                detached: false,
                detach_sent: false,
                repair,
                track,
                finished: false,
            }
        })
        .collect();
    let report = engine.run(&mut nodes, charging.until(detach_deadline + 2))?;
    let mut entries = Vec::with_capacity(n);
    for nd in &mut nodes {
        if nd.detached {
            entries.push(BfEntry::unreached());
        } else {
            entries.push(nd.entry.clone());
        }
    }
    // Children derived from surviving parent pointers (each node's Adopt
    // notifications already paid the communication cost).
    let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for v in 0..n {
        if let Some(p) = entries[v].parent {
            if entries[v].reached() {
                children[p as usize].push(v as NodeId);
            }
        }
    }
    Ok((BfTreeResult { source, dir, entries, children }, report))
}

/// Full (unbounded-hop) SSSP: n-1 relaxation rounds. δ_{n-1} = δ, so
/// distances are final and the repair phase is skipped. Consumers read the
/// dist and first-hop vectors, and — for in-direction runs — the parent
/// pointers as next hops toward the source. Repair-free parents are safe
/// here: every entry's (dist, parent) pair describes a real walk of weight
/// exactly `dist`, so at the full horizon (`dist` = δ) the parent edge
/// telescopes — δ(v) = w(v, parent) + δ(parent) — even if the parent later
/// improved other fields. `track` as in [`run_bf`].
///
/// # Errors
/// Propagates engine errors.
pub fn run_full_sssp<W: Weight>(
    g: &Graph<W>,
    topo: &Topology,
    source: NodeId,
    dir: Direction,
    track: bool,
    sim: SimConfig,
    charging: Charging,
) -> Result<(BfTreeResult<W>, PhaseReport), SimError> {
    run_bf(g, topo, source, dir, g.n() as u64 - 1, None, false, track, sim, charging)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{gnm_connected, path, Family, WeightDist};
    use congest_graph::seq::{dijkstra, hop_limited_distances, hop_limited_min_hops};

    fn setup(g: &Graph<u64>) -> Topology {
        Topology::from_graph(g)
    }

    #[test]
    fn matches_hop_limited_oracle() {
        for fam in Family::ALL {
            let g = fam.build(20, true, WeightDist::Uniform(0, 9), 3);
            let topo = setup(&g);
            for h in [1u64, 2, 4] {
                let (res, _) = run_bf(
                    &g,
                    &topo,
                    0,
                    Direction::Out,
                    h,
                    None,
                    true,
                    false,
                    SimConfig::default(),
                    Charging::Quiesce,
                )
                .unwrap();
                let oracle = hop_limited_distances(&g, 0, h as usize, Direction::Out);
                let exact = dijkstra(&g, 0, Direction::Out);
                for v in 0..g.n() {
                    // Detachment may remove nodes whose true δ needs > h
                    // hops; surviving entries must equal δ_h.
                    if res.entries[v].reached() {
                        assert_eq!(res.entries[v].dist, oracle[v], "{} h={h} v={v}", fam.name());
                    } else if oracle[v] != u64::INF {
                        assert!(
                            exact[v] < oracle[v],
                            "{} h={h} v={v}: detached but δ == δ_h",
                            fam.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn in_direction_matches_oracle() {
        let g = gnm_connected(18, 40, true, WeightDist::Uniform(0, 7), 5);
        let topo = setup(&g);
        let (res, _) = run_bf(
            &g,
            &topo,
            4,
            Direction::In,
            3,
            None,
            true,
            false,
            SimConfig::default(),
            Charging::Quiesce,
        )
        .unwrap();
        let oracle = hop_limited_distances(&g, 4, 3, Direction::In);
        let exact = dijkstra(&g, 4, Direction::In);
        for v in 0..g.n() {
            if res.entries[v].reached() {
                assert_eq!(res.entries[v].dist, oracle[v], "v={v}");
            } else if oracle[v] != u64::INF {
                assert!(exact[v] < oracle[v], "v={v}");
            }
        }
    }

    #[test]
    fn full_sssp_matches_dijkstra() {
        for seed in 0..4 {
            let g = gnm_connected(22, 50, true, WeightDist::Uniform(0, 11), seed);
            let topo = setup(&g);
            let (res, _) = run_full_sssp(
                &g,
                &topo,
                2,
                Direction::Out,
                false,
                SimConfig::default(),
                Charging::Quiesce,
            )
            .unwrap();
            let oracle = dijkstra(&g, 2, Direction::Out);
            for v in 0..g.n() {
                assert_eq!(res.entries[v].dist, oracle[v]);
            }
        }
    }

    #[test]
    fn hops_are_minimal_among_shortest() {
        let g = gnm_connected(16, 36, true, WeightDist::Uniform(1, 4), 8);
        let topo = setup(&g);
        let h = 6;
        let (res, _) = run_bf(
            &g,
            &topo,
            1,
            Direction::Out,
            h,
            None,
            true,
            false,
            SimConfig::default(),
            Charging::Quiesce,
        )
        .unwrap();
        let min_hops = hop_limited_min_hops(&g, 1, h as usize, Direction::Out);
        for v in 0..g.n() {
            if res.entries[v].reached() {
                assert_eq!(res.entries[v].hops as usize, min_hops[v].unwrap(), "v={v}");
            }
        }
    }

    #[test]
    fn parent_chain_consistent_after_repair() {
        for seed in 0..12 {
            let g = gnm_connected(20, 44, true, WeightDist::Uniform(0, 9), seed);
            let topo = setup(&g);
            let (res, _) = run_bf(
                &g,
                &topo,
                0,
                Direction::Out,
                4,
                None,
                true,
                false,
                SimConfig::default(),
                Charging::Quiesce,
            )
            .unwrap();
            for v in 0..g.n() as NodeId {
                let e = &res.entries[v as usize];
                if !e.reached() {
                    continue;
                }
                if let Some(p) = e.parent {
                    let pe = &res.entries[p as usize];
                    assert!(pe.reached(), "seed {seed}: parent of member detached");
                    assert_eq!(pe.hops + 1, e.hops, "seed {seed}");
                    let w_edge = g
                        .out_edges(p)
                        .filter(|&(t, _)| t == v)
                        .map(|(_, w)| w)
                        .min()
                        .expect("parent edge exists");
                    assert_eq!(pe.dist.plus(w_edge), e.dist, "seed {seed}");
                    assert!(res.children[p as usize].contains(&v));
                }
            }
        }
    }

    #[test]
    fn children_match_parents_exactly() {
        let g = gnm_connected(15, 30, false, WeightDist::Uniform(1, 6), 2);
        let topo = setup(&g);
        let (res, _) = run_bf(
            &g,
            &topo,
            3,
            Direction::Out,
            4,
            None,
            true,
            false,
            SimConfig::default(),
            Charging::Quiesce,
        )
        .unwrap();
        let mut derived: Vec<Vec<NodeId>> = vec![Vec::new(); g.n()];
        for v in 0..g.n() as NodeId {
            if res.entries[v as usize].reached() {
                if let Some(p) = res.entries[v as usize].parent {
                    derived[p as usize].push(v);
                }
            }
        }
        assert_eq!(derived, res.children);
    }

    #[test]
    fn seeded_init_extension() {
        // Path 0-1-2-3; seed node 2 with dist 10: node 3 should get 10 + w.
        let g = path(4, true, WeightDist::Unit, 0);
        let topo = setup(&g);
        let mut init = vec![u64::INF; 4];
        init[2] = 10;
        let (res, _) = run_bf(
            &g,
            &topo,
            0,
            Direction::Out,
            1,
            Some(BfSeeds::dists(&init)),
            false,
            false,
            SimConfig::default(),
            Charging::Quiesce,
        )
        .unwrap();
        assert_eq!(res.entries[3].dist, 11);
        assert_eq!(res.entries[1].dist, 1); // from the true source
    }

    #[test]
    fn worst_case_charging_exact_rounds() {
        let g = path(6, true, WeightDist::Unit, 0);
        let topo = setup(&g);
        let (_, report) = run_bf(
            &g,
            &topo,
            0,
            Direction::Out,
            5,
            None,
            true,
            false,
            SimConfig::default(),
            Charging::WorstCase,
        )
        .unwrap();
        // 5 relax + adopt + confirm + 5 detach window + 2 delivery slack
        assert_eq!(report.rounds, 5 + 2 + 5 + 2);
    }

    #[test]
    fn zero_weight_edges() {
        let g = Graph::from_edges(
            3,
            true,
            vec![
                congest_graph::Edge::new(0, 1, 0u64),
                congest_graph::Edge::new(1, 2, 0),
                congest_graph::Edge::new(0, 2, 0),
            ],
        );
        let topo = setup(&g);
        let (res, _) = run_bf(
            &g,
            &topo,
            0,
            Direction::Out,
            2,
            None,
            true,
            false,
            SimConfig::default(),
            Charging::Quiesce,
        )
        .unwrap();
        assert_eq!(res.entries[2].dist, 0);
        // min-hop tie-break: direct edge (1 hop) preferred over 2-hop
        assert_eq!(res.entries[2].hops, 1);
        assert_eq!(res.entries[2].parent, Some(0));
    }

    #[test]
    fn tracked_first_hops_telescope_on_full_sssp() {
        for seed in 0..6 {
            let g = gnm_connected(20, 44, true, WeightDist::Uniform(0, 9), seed);
            let topo = setup(&g);
            let (res, _) = run_full_sssp(
                &g,
                &topo,
                0,
                Direction::Out,
                true,
                SimConfig::default(),
                Charging::Quiesce,
            )
            .unwrap();
            let from0 = dijkstra(&g, 0, Direction::Out);
            assert!(res.entries[0].first.is_none(), "source has no first hop");
            for v in 1..g.n() {
                let e = &res.entries[v];
                if !e.reached() {
                    assert!(e.first.is_none());
                    continue;
                }
                let f = e.first.expect("reached non-source entry must carry a first hop");
                let w = g
                    .out_edges(0)
                    .filter(|&(t, _)| t == f)
                    .map(|(_, w)| w)
                    .min()
                    .expect("first hop must be an out-neighbor of the source");
                let fromf = dijkstra(&g, f, Direction::Out);
                // δ(s, v) = w(s, f) + δ(f, v): the recorded first hop lies
                // on a shortest path.
                assert_eq!(from0[v], w.plus(fromf[v]), "seed {seed} v={v} f={f}");
            }
        }
    }

    #[test]
    fn tracking_perturbs_nothing_but_payload() {
        let g = gnm_connected(18, 40, true, WeightDist::Uniform(0, 9), 4);
        let topo = setup(&g);
        let run = |track: bool| {
            run_bf(
                &g,
                &topo,
                0,
                Direction::Out,
                4,
                None,
                true,
                track,
                SimConfig::default(),
                Charging::Quiesce,
            )
            .unwrap()
        };
        let (tracked, rep_t) = run(true);
        let (plain, rep_p) = run(false);
        for v in 0..g.n() {
            assert_eq!(tracked.entries[v].dist, plain.entries[v].dist);
            assert_eq!(tracked.entries[v].hops, plain.entries[v].hops);
            assert_eq!(tracked.entries[v].parent, plain.entries[v].parent);
            assert!(plain.entries[v].first.is_none(), "untracked runs record no first hops");
        }
        assert_eq!(rep_t.rounds, rep_p.rounds);
        assert_eq!(rep_t.messages, rep_p.messages);
        assert_eq!(rep_t.node_sent, rep_p.node_sent);
        // The only difference on the wire: one extra id word per relax.
        assert_eq!(rep_t.max_msg_words, 3);
        assert_eq!(rep_p.max_msg_words, 2);
        assert!(rep_t.payload_words > rep_p.payload_words);
    }

    #[test]
    fn seeded_first_hops_propagate() {
        // Path 0-1-2-3; seed node 2 with dist 10 claiming its path from the
        // origin starts at node 1: node 3's relaxed entry must inherit that
        // first hop, while node 1 (relaxed by the source itself) becomes
        // its own first hop.
        let g = path(4, true, WeightDist::Unit, 0);
        let topo = setup(&g);
        let mut init = vec![u64::INF; 4];
        init[2] = 10;
        let mut first = vec![congest_graph::NO_SUCC; 4];
        first[2] = 1;
        let (res, _) = run_bf(
            &g,
            &topo,
            0,
            Direction::Out,
            1,
            Some(BfSeeds { dist: &init, first: Some(&first) }),
            false,
            true,
            SimConfig::default(),
            Charging::Quiesce,
        )
        .unwrap();
        assert_eq!(res.entries[3].dist, 11);
        assert_eq!(res.entries[3].first, Some(1), "seed first hop must ride the relaxation");
        assert_eq!(res.entries[1].first, Some(1), "source-adjacent node is its own first hop");
        assert_eq!(res.entries[2].first, Some(1), "seeded entry keeps its seed first hop");
    }

    #[test]
    fn parallel_edges_use_min_weight() {
        let g = Graph::from_edges(
            2,
            true,
            vec![congest_graph::Edge::new(0, 1, 9u64), congest_graph::Edge::new(0, 1, 2)],
        );
        let topo = setup(&g);
        let (res, _) = run_bf(
            &g,
            &topo,
            0,
            Direction::Out,
            1,
            None,
            true,
            false,
            SimConfig::default(),
            Charging::Quiesce,
        )
        .unwrap();
        assert_eq!(res.entries[1].dist, 2);
    }
}
