//! Algorithm 2 (randomized) and Algorithm 2′ (derandomized) blocker-set
//! construction — the paper's first main contribution (§3).
//!
//! Structure: stages i (score bands, Steps 2–16), phases j (Vi-count
//! bands, Steps 5–16), and selection steps (Steps 6–16). A selection step
//! either takes one high-coverage node (Steps 9–10) or a pairwise-
//! independently sampled set A (Steps 12–14), validated against the
//! good-set criterion (Definition 3.1). Helper algorithms:
//!
//! * score / score_ij — per-tree convergecasts (\[2\]'s Algorithm 3 and the
//!   Step 8 machinery) in [`crate::trees`];
//! * Compute-Pi / Compute-Pij (Algorithms 3–4) — realized by the
//!   ancestor-collection of Algorithm 7 Step 1 plus node-local checks
//!   against broadcast score data (same information, same O(|S|·h) cost;
//!   see DESIGN.md);
//! * Compute-|Pij| (Algorithm 5) — pipelined aggregation to the leader
//!   over a BFS tree (Algorithms 11/12) and a broadcast back;
//! * Remove-Subtrees (Algorithm 6) — [`crate::trees::remove_subtrees`].
//!
//! One deliberate deviation is documented in DESIGN.md §3.3: score values
//! are broadcast instead of Vi member ids (same O(n) cost, lets nodes skip
//! empty stages/phases locally), and the biased pairwise-independent space
//! is the classical affine GF(q)² space scanned lazily in blocks of n
//! points (the paper's linear-size biased space is unspecified).

use super::{BlockerResult, PathCtx};
use crate::config::BlockerParams;
use crate::csssp::SsspCollection;
use crate::trees::{convergecast_trees, convergecast_trees_budget, remove_subtrees};
use congest_derand::{AffineSpace, SampleSpace};
use congest_graph::{NodeId, Weight};
use congest_sim::primitives::{
    all_to_all_broadcast, broadcast_stream, build_bfs_tree, convergecast_budget, convergecast_sum,
    BfsTree,
};
use congest_sim::{Recorder, RunUntil, SimConfig, SimError, Topology};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// How selection steps pick candidate sets.
#[derive(Copy, Clone, Debug)]
pub enum Selection {
    /// Algorithm 2: the leader draws random sample points until one is
    /// good (expected ≤ 8 draws, Lemma 3.8).
    Randomized {
        /// RNG seed (leader-local).
        seed: u64,
    },
    /// Algorithm 2′/7: deterministic scan of the sample space in blocks of
    /// n points, each aggregated in O(n) rounds (Algorithms 11/12).
    Derandomized,
}

/// Counters for the quantities bounded by Lemmas 3.8–3.11.
#[derive(Clone, Debug, Default)]
pub struct Alg2Stats {
    /// Selection steps executed (Lemma 3.9 bounds these by O(log³n)).
    pub selection_steps: u64,
    /// Steps resolved by the Step 9/10 high-coverage singleton.
    pub singleton_picks: u64,
    /// Steps resolved by a good sampled set (Steps 12–14).
    pub set_picks: u64,
    /// Sample points examined by the leader.
    pub sample_points_examined: u64,
    /// Blocks aggregated by the derandomized scan.
    pub blocks_scanned: u64,
    /// Selection steps that fell back to the greedy singleton because no
    /// good point was found within the scan budget.
    pub fallbacks: u64,
    /// |A| of each accepted good set.
    pub good_set_sizes: Vec<usize>,
}

struct Driver<'a, W: Weight> {
    topo: &'a Topology,
    sim: SimConfig,
    coll: &'a SsspCollection<W>,
    ctx: PathCtx,
    bfs: BfsTree,
    params: BlockerParams,
    /// Globally-broadcast scores (every node's view after the score flood).
    scores: Vec<u64>,
    q: Vec<NodeId>,
    in_q: Vec<bool>,
    stats: Alg2Stats,
    rng: Option<ChaCha8Rng>,
}

impl<'a, W: Weight> Driver<'a, W> {
    /// Per-tree convergecast of alive-path counts + O(n) score flood.
    fn refresh_scores(&mut self, rec: &mut Recorder, label: &str) -> Result<(), SimError> {
        let n = self.coll.n();
        let s = self.coll.sources.len();
        let init: Vec<Vec<u64>> = (0..n)
            .map(|v| (0..s).map(|si| u64::from(self.ctx.alive(v as NodeId, si))).collect())
            .collect();
        let (acc, report) = convergecast_trees(
            self.topo,
            self.sim,
            self.coll,
            &init,
            convergecast_trees_budget(self.coll),
        )?;
        rec.record(format!("{label}: score convergecast"), report);
        self.scores = (0..n)
            .map(|v| {
                (0..s)
                    .filter(|&si| {
                        self.coll.is_member(v as NodeId, si) && self.coll.hops[v][si] >= 1
                    })
                    .map(|si| acc[v][si])
                    .sum()
            })
            .collect();
        // Flood (id, score) so every node can derive Vi for any stage
        // (Lemma 3.2 cost; carries score values instead of ids).
        let initial: Vec<Vec<(u64, NodeId)>> =
            (0..n)
                .map(|v| {
                    if self.scores[v] > 0 {
                        vec![(self.scores[v], v as NodeId)]
                    } else {
                        Vec::new()
                    }
                })
                .collect();
        let (_, report) = all_to_all_broadcast(self.topo, self.sim, initial, 2)?;
        rec.record(format!("{label}: score flood"), report);
        Ok(())
    }

    /// Alive paths with their number of Vi vertices: `(leaf, tree, n_vi)`.
    fn alive_with_nvi(&self, vi: &[bool]) -> Vec<(NodeId, usize, u32)> {
        self.ctx
            .alive_paths()
            .into_iter()
            .map(|(v, si)| {
                let nvi = self.ctx.path_vertices(v, si).iter().filter(|&&u| vi[u as usize]).count()
                    as u32;
                (v, si, nvi)
            })
            .collect()
    }

    /// Aggregates per-node vectors at the leader and publishes the totals
    /// (Algorithm 5 / Algorithms 11–12 + Lemma A.1 broadcast).
    fn aggregate_publish(
        &mut self,
        vals: Vec<Vec<u64>>,
        rec: &mut Recorder,
        label: &str,
    ) -> Result<Vec<u64>, SimError> {
        let k = vals.first().map(Vec::len).unwrap_or(0);
        let until = RunUntil::Quiesce { max: convergecast_budget(&self.bfs, k) };
        let (totals, rep) = convergecast_sum(self.topo, self.sim, &self.bfs, vals, until)?;
        rec.record(format!("{label}: aggregate"), rep);
        let (_, rep) = broadcast_stream(self.topo, self.sim, &self.bfs, totals.clone())?;
        rec.record(format!("{label}: publish"), rep);
        Ok(totals)
    }

    /// |Pij| for every j in 1..=jmax under the current Vi (Algorithm 5).
    fn pij_sizes(
        &mut self,
        vi: &[bool],
        jmax: usize,
        rec: &mut Recorder,
    ) -> Result<Vec<u64>, SimError> {
        let one_eps = 1.0 + self.params.eps;
        let paths = self.alive_with_nvi(vi);
        let n = self.coll.n();
        let mut vals = vec![vec![0u64; jmax]; n];
        for &(v, _, nvi) in &paths {
            for j in 1..=jmax {
                if f64::from(nvi) >= one_eps.powi(j as i32 - 1) {
                    vals[v as usize][j - 1] += 1;
                }
            }
        }
        self.aggregate_publish(vals, rec, "alg2: |Pij| sizes")
    }

    /// score_ij for every node (broadcast) plus the per-leaf Pij marks.
    fn scoreij(
        &mut self,
        vi: &[bool],
        thr_j: f64,
        rec: &mut Recorder,
    ) -> Result<Vec<u64>, SimError> {
        let n = self.coll.n();
        let s = self.coll.sources.len();
        let paths = self.alive_with_nvi(vi);
        let mut init = vec![vec![0u64; s]; n];
        for &(v, si, nvi) in &paths {
            if f64::from(nvi) >= thr_j {
                init[v as usize][si] = 1;
            }
        }
        let (acc, report) = convergecast_trees(
            self.topo,
            self.sim,
            self.coll,
            &init,
            convergecast_trees_budget(self.coll),
        )?;
        rec.record("alg2: scoreij convergecast", report);
        let scoreij: Vec<u64> = (0..n)
            .map(|v| {
                (0..s)
                    .filter(|&si| {
                        self.coll.is_member(v as NodeId, si) && self.coll.hops[v][si] >= 1
                    })
                    .map(|si| acc[v][si])
                    .sum()
            })
            .collect();
        // Step 8: broadcast scoreij values of Vi members.
        let initial: Vec<Vec<(u64, NodeId)>> =
            (0..n)
                .map(|v| {
                    if vi[v] && scoreij[v] > 0 {
                        vec![(scoreij[v], v as NodeId)]
                    } else {
                        Vec::new()
                    }
                })
                .collect();
        let (_, report) = all_to_all_broadcast(self.topo, self.sim, initial, 2)?;
        rec.record("alg2: scoreij broadcast", report);
        Ok(scoreij)
    }

    /// Coverage of candidate set A over Pi and Pij (leaf-local counts,
    /// aggregated at the leader, verdict published).
    fn coverage(
        &mut self,
        a: &[NodeId],
        vi: &[bool],
        thr_j: f64,
        rec: &mut Recorder,
    ) -> Result<(u64, u64), SimError> {
        let n = self.coll.n();
        let mut in_a = vec![false; n];
        for &v in a {
            in_a[v as usize] = true;
        }
        let paths = self.alive_with_nvi(vi);
        let mut vals = vec![vec![0u64; 2]; n];
        for &(v, si, nvi) in &paths {
            if nvi == 0 {
                continue; // not in Pi
            }
            let covered = self.ctx.path_vertices(v, si).iter().any(|&u| in_a[u as usize]);
            if covered {
                vals[v as usize][0] += 1;
                if f64::from(nvi) >= thr_j {
                    vals[v as usize][1] += 1;
                }
            }
        }
        let totals = self.aggregate_publish(vals, rec, "alg2: coverage check")?;
        Ok((totals[0], totals[1]))
    }

    fn is_good(&self, a_len: usize, cov_pi: u64, cov_pij: u64, i: i32, pij: u64) -> bool {
        if a_len == 0 {
            return false;
        }
        let one_eps = 1.0 + self.params.eps;
        let need_pi =
            a_len as f64 * one_eps.powi(i) * (1.0 - 3.0 * self.params.delta - self.params.eps);
        let need_pij = self.params.delta / 2.0 * pij as f64;
        cov_pi as f64 >= need_pi && cov_pij as f64 >= need_pij
    }

    /// Adds `nodes` to Q, removes the covered subtrees (Algorithm 6) and
    /// refreshes scores (Step 15–16).
    fn commit(
        &mut self,
        nodes: &[NodeId],
        rec: &mut Recorder,
        label: &str,
    ) -> Result<(), SimError> {
        for &c in nodes {
            if !self.in_q[c as usize] {
                self.in_q[c as usize] = true;
                self.q.push(c);
            }
        }
        let s = self.coll.sources.len();
        let mut roots = Vec::new();
        for &c in nodes {
            for si in 0..s {
                if self.coll.is_member(c, si) && self.coll.hops[c as usize][si] >= 1 {
                    roots.push((c, si));
                }
            }
        }
        let budget = RunUntil::Quiesce { max: (s as u64 + 2) * (self.coll.h as u64 + 2) + 64 };
        let (mask, report) =
            remove_subtrees(self.topo, self.sim, self.coll, &self.ctx.removed, &roots, budget)?;
        self.ctx.removed = mask;
        rec.record(format!("{label}: cleanup"), report);
        self.refresh_scores(rec, label)?;
        Ok(())
    }

    /// One selection step at stage i, phase j. Returns the chosen nodes.
    #[allow(clippy::too_many_lines)]
    fn selection_step(
        &mut self,
        i: i32,
        j: i32,
        vi_list: &[NodeId],
        vi: &[bool],
        pij_size: u64,
        rec: &mut Recorder,
    ) -> Result<Vec<NodeId>, SimError> {
        let one_eps = 1.0 + self.params.eps;
        let thr_j = one_eps.powi(j - 1);
        self.stats.selection_steps += 1;
        let scoreij = self.scoreij(vi, thr_j, rec)?;

        // Step 9: high-coverage singleton.
        let best = vi_list
            .iter()
            .copied()
            .max_by_key(|&v| (scoreij[v as usize], std::cmp::Reverse(v)))
            .expect("Vi nonempty");
        let single_threshold = self.params.delta.powi(3) / one_eps * pij_size as f64;
        if scoreij[best as usize] as f64 > single_threshold {
            self.stats.singleton_picks += 1;
            self.commit(&[best], rec, "alg2: singleton pick")?;
            return Ok(vec![best]);
        }

        // Steps 11-14: sampled good set with bias δ/(1+ε)^j.
        let p = self.params.delta / one_eps.powi(j);
        let space = AffineSpace::new(vi_list.len() as u64, p);
        let chosen: Option<Vec<NodeId>> = match &mut self.rng {
            Some(_) => {
                // Algorithm 2: leader draws sample points; each try costs a
                // point broadcast (O(D)), an A-id flood (Step 13, O(n)) and
                // a coverage aggregation (O(D)).
                let mut found = None;
                for _ in 0..64 {
                    let mu = self.rng.as_mut().unwrap().gen_range(0..space.len());
                    self.stats.sample_points_examined += 1;
                    let (_, rep) = broadcast_stream(self.topo, self.sim, &self.bfs, vec![mu])?;
                    rec.record("alg2: sample point broadcast", rep);
                    let a: Vec<NodeId> =
                        space.selected(mu).into_iter().map(|idx| vi_list[idx as usize]).collect();
                    // Step 13: members of A announce themselves.
                    let initial: Vec<Vec<NodeId>> = (0..self.coll.n() as NodeId)
                        .map(|v| if a.contains(&v) { vec![v] } else { Vec::new() })
                        .collect();
                    let (_, rep) = all_to_all_broadcast(self.topo, self.sim, initial, 1)?;
                    rec.record("alg2: A-id broadcast", rep);
                    let (cov_pi, cov_pij) = self.coverage(&a, vi, thr_j, rec)?;
                    if self.is_good(a.len(), cov_pi, cov_pij, i, pij_size) {
                        found = Some(a);
                        break;
                    }
                }
                found
            }
            None => {
                // Algorithm 2′/7: scan the space in blocks of n points;
                // each block is one pipelined ν-aggregation (Algs 11/12).
                let n = self.coll.n();
                let block = n as u64;
                let max_blocks = 8u64.min(space.len().div_ceil(block));
                let paths = self.alive_with_nvi(vi);
                let mut found = None;
                'blocks: for b in 0..max_blocks {
                    self.stats.blocks_scanned += 1;
                    let lo = b * block;
                    let hi = (lo + block).min(space.len());
                    let width = (hi - lo) as usize;
                    // σ vectors: per leaf, per µ: paths covered in Pi/Pij.
                    let mut vals = vec![vec![0u64; 2 * width]; n];
                    for &(v, si, nvi) in &paths {
                        if nvi == 0 {
                            continue;
                        }
                        let verts = self.ctx.path_vertices(v, si);
                        // map vertices to Vi indices once per path
                        let vi_idx: Vec<u64> = verts
                            .iter()
                            .filter(|&&u| vi[u as usize])
                            .map(|&u| vi_list.binary_search(&u).expect("in Vi") as u64)
                            .collect();
                        for (k, mu) in (lo..hi).enumerate() {
                            let covered = vi_idx.iter().any(|&idx| space.eval(mu, idx));
                            if covered {
                                vals[v as usize][2 * k] += 1;
                                if f64::from(nvi) >= thr_j {
                                    vals[v as usize][2 * k + 1] += 1;
                                }
                            }
                        }
                    }
                    let totals = self.aggregate_publish(vals, rec, "alg2: block ν-aggregation")?;
                    for (k, mu) in (lo..hi).enumerate() {
                        self.stats.sample_points_examined += 1;
                        let a_len = space.selected(mu).len();
                        if self.is_good(a_len, totals[2 * k], totals[2 * k + 1], i, pij_size) {
                            // Step 5 of Alg 7: publish the good point.
                            let (_, rep) =
                                broadcast_stream(self.topo, self.sim, &self.bfs, vec![mu])?;
                            rec.record("alg2: good point broadcast", rep);
                            let a: Vec<NodeId> = space
                                .selected(mu)
                                .into_iter()
                                .map(|idx| vi_list[idx as usize])
                                .collect();
                            found = Some(a);
                            break 'blocks;
                        }
                    }
                }
                found
            }
        };

        match chosen {
            Some(a) => {
                self.stats.set_picks += 1;
                self.stats.good_set_sizes.push(a.len());
                self.commit(&a, rec, "alg2: good set pick")?;
                Ok(a)
            }
            None => {
                // Guaranteed-progress fallback (tiny-instance constants;
                // see DESIGN.md). Never observed with paper parameters.
                self.stats.fallbacks += 1;
                self.commit(&[best], rec, "alg2: fallback pick")?;
                Ok(vec![best])
            }
        }
    }
}

/// Runs Algorithm 2 (randomized) or Algorithm 2′ (derandomized) on the
/// collection. Returns the blocker set and the lemma counters; round
/// accounting lands in `rec`.
///
/// # Errors
/// Propagates engine errors.
pub fn alg2_blocker<W: Weight>(
    topo: &Topology,
    sim: SimConfig,
    coll: &SsspCollection<W>,
    params: BlockerParams,
    selection: Selection,
    rec: &mut Recorder,
) -> Result<(BlockerResult, Alg2Stats), SimError> {
    assert!(params.eps > 0.0 && params.eps <= 0.3);
    assert!(params.delta > 0.0 && params.delta <= 0.3);
    assert!(1.0 - 3.0 * params.delta - params.eps > 0.0);

    let (ctx, report) = PathCtx::build(topo, sim, coll)?;
    rec.record("alg2: ancestors (Alg 7 Step 1)", report);
    let (bfs, report) = build_bfs_tree(topo, sim, 0)?;
    rec.record("alg2: leader BFS tree", report);

    let n = coll.n();
    let mut driver = Driver {
        topo,
        sim,
        coll,
        ctx,
        bfs,
        params,
        scores: vec![0; n],
        q: Vec::new(),
        in_q: vec![false; n],
        stats: Alg2Stats::default(),
        rng: match selection {
            Selection::Randomized { seed } => Some(ChaCha8Rng::seed_from_u64(seed)),
            Selection::Derandomized => None,
        },
    };
    driver.refresh_scores(rec, "alg2: initial")?;

    let one_eps = 1.0 + params.eps;
    let max_score = driver.scores.iter().copied().max().unwrap_or(0);
    if max_score == 0 {
        return Ok((BlockerResult { q: driver.q }, driver.stats));
    }
    let i_start = ((max_score as f64).ln() / one_eps.ln()).ceil() as i32 + 1;
    let jmax = (((coll.h.max(1)) as f64).ln() / one_eps.ln()).ceil().max(1.0) as usize;

    for i in (1..=i_start).rev() {
        let vi_threshold = one_eps.powi(i - 1);
        loop {
            // Steps 3-4 (+ Step 16 reconstruction): Vi from broadcast
            // scores, Pi/Pij membership leaf-local.
            let vi: Vec<bool> = driver.scores.iter().map(|&sc| sc as f64 >= vi_threshold).collect();
            let vi_list: Vec<NodeId> = (0..n as NodeId).filter(|&v| vi[v as usize]).collect();
            if vi_list.is_empty() {
                break;
            }
            let sizes = driver.pij_sizes(&vi, jmax, rec)?;
            // Work at the largest j whose Pij is nonempty (the paper's
            // descending phase order reaches exactly this j next).
            let Some(j) = (1..=jmax).rev().find(|&j| sizes[j - 1] > 0) else {
                break; // Pi empty for this stage
            };
            driver.selection_step(i, j as i32, &vi_list, &vi, sizes[j - 1], rec)?;
        }
    }
    debug_assert_eq!(driver.ctx.alive_count(), 0, "all paths must be covered");
    Ok((BlockerResult { q: driver.q }, driver.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocker::is_valid_blocker;
    use crate::blocker::tests::build_collection;
    use crate::config::BlockerParams;

    #[test]
    fn derandomized_valid_and_deterministic() {
        let (_, topo, coll) = build_collection(18, 40, 3, 4);
        let mut rec1 = Recorder::new();
        let (r1, s1) = alg2_blocker(
            &topo,
            SimConfig::default(),
            &coll,
            BlockerParams::default(),
            Selection::Derandomized,
            &mut rec1,
        )
        .unwrap();
        assert!(is_valid_blocker(&coll, &r1.q));
        let mut rec2 = Recorder::new();
        let (r2, _) = alg2_blocker(
            &topo,
            SimConfig::default(),
            &coll,
            BlockerParams::default(),
            Selection::Derandomized,
            &mut rec2,
        )
        .unwrap();
        assert_eq!(r1.q, r2.q, "derandomized run must be deterministic");
        assert_eq!(rec1.total_rounds(), rec2.total_rounds());
        assert_eq!(s1.singleton_picks + s1.set_picks + s1.fallbacks, s1.selection_steps);
    }

    #[test]
    fn randomized_valid_across_seeds() {
        let (_, topo, coll) = build_collection(16, 36, 2, 8);
        for seed in 0..3 {
            let mut rec = Recorder::new();
            let (r, _) = alg2_blocker(
                &topo,
                SimConfig::default(),
                &coll,
                BlockerParams::default(),
                Selection::Randomized { seed },
                &mut rec,
            )
            .unwrap();
            assert!(is_valid_blocker(&coll, &r.q), "seed {seed}");
        }
    }

    #[test]
    fn size_comparable_to_greedy() {
        let (_, topo, coll) = build_collection(20, 44, 3, 12);
        let mut rec = Recorder::new();
        let (res, _) = alg2_blocker(
            &topo,
            SimConfig::default(),
            &coll,
            BlockerParams::default(),
            Selection::Derandomized,
            &mut rec,
        )
        .unwrap();
        let mut grec = Recorder::new();
        let gres =
            crate::blocker::greedy_blocker(&topo, SimConfig::default(), &coll, &mut grec).unwrap();
        assert!(
            res.q.len() <= 4 * gres.q.len().max(1),
            "alg2 {} vs greedy {}",
            res.q.len(),
            gres.q.len()
        );
    }

    #[test]
    fn empty_collection_yields_empty_q() {
        let (_, topo, coll) = build_collection(10, 40, 8, 3);
        let mut rec = Recorder::new();
        let (res, stats) = alg2_blocker(
            &topo,
            SimConfig::default(),
            &coll,
            BlockerParams::default(),
            Selection::Derandomized,
            &mut rec,
        )
        .unwrap();
        let (ctx, _) = PathCtx::build(&topo, SimConfig::default(), &coll).unwrap();
        if ctx.alive_count() == 0 {
            assert!(res.q.is_empty());
            assert_eq!(stats.selection_steps, 0);
        }
    }
}
