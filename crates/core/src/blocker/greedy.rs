//! The deterministic greedy blocker-set baseline of Agarwal et al. \[2\].
//!
//! One vertex per iteration: compute `score(v)` (paths through v) by a
//! per-tree convergecast, broadcast scores (O(n) rounds), pick the global
//! maximum, remove the covered paths (Algorithm 6), re-score, repeat. The
//! startup costs O(|S|·h) rounds and every chosen vertex costs O(n) more —
//! this is exactly the `O(nh + n·|Q|)` bound whose `n·|Q|` term the
//! paper's Algorithm 2′ eliminates (§1, contribution 1).

use super::BlockerResult;
use crate::csssp::SsspCollection;
use crate::trees::{convergecast_trees, convergecast_trees_budget, remove_subtrees};
use congest_graph::{NodeId, Weight};
use congest_sim::primitives::all_to_all_broadcast;
use congest_sim::{Recorder, RunUntil, SimConfig, SimError, Topology};

/// Computes `score(v)` for every node under the current removal mask:
/// the number of alive full-length paths through v as a non-root vertex.
fn compute_scores<W: Weight>(
    topo: &Topology,
    sim: SimConfig,
    coll: &SsspCollection<W>,
    removed: &[Vec<bool>],
    rec: &mut Recorder,
    label: &str,
) -> Result<Vec<u64>, SimError> {
    let n = coll.n();
    let s = coll.sources.len();
    let init: Vec<Vec<u64>> = (0..n)
        .map(|v| {
            (0..s)
                .map(|si| u64::from(coll.is_full_leaf(v as NodeId, si) && !removed[v][si]))
                .collect()
        })
        .collect();
    let (acc, report) =
        convergecast_trees(topo, sim, coll, &init, convergecast_trees_budget(coll))?;
    rec.record(label, report);
    Ok((0..n)
        .map(|v| {
            (0..s)
                .filter(|&si| coll.is_member(v as NodeId, si) && coll.hops[v][si] >= 1)
                .map(|si| acc[v][si])
                .sum()
        })
        .collect())
}

/// Runs the greedy baseline; returns the blocker set and the number of
/// iterations (== |Q|). Round accounting lands in `rec`.
///
/// # Errors
/// Propagates engine errors.
pub fn greedy_blocker<W: Weight>(
    topo: &Topology,
    sim: SimConfig,
    coll: &SsspCollection<W>,
    rec: &mut Recorder,
) -> Result<BlockerResult, SimError> {
    let n = coll.n();
    let s = coll.sources.len();
    let mut removed = vec![vec![false; s]; n];
    let mut q: Vec<NodeId> = Vec::new();
    let mut scores = compute_scores(topo, sim, coll, &removed, rec, "greedy: initial scores")?;

    for iter in 0..n {
        // Broadcast (score, id) from every node holding a positive score
        // (Lemma A.2: O(n) rounds).
        let initial: Vec<Vec<(u64, NodeId)>> = (0..n)
            .map(|v| if scores[v] > 0 { vec![(scores[v], v as NodeId)] } else { Vec::new() })
            .collect();
        let (logs, report) = all_to_all_broadcast(topo, sim, initial, 2)?;
        rec.record(format!("greedy: score broadcast #{iter}"), report);
        // Every node picks the same maximum (tie: smaller id).
        let Some(&(_, c)) = logs[0].iter().max_by_key(|&&(sc, id)| (sc, std::cmp::Reverse(id)))
        else {
            break; // nothing left to cover
        };
        q.push(c);
        // Cleanup: remove subtrees rooted at c in every tree where c is a
        // non-root member (paths where c is the root are not hyperedges).
        let roots: Vec<(NodeId, usize)> = (0..s)
            .filter(|&si| coll.is_member(c, si) && coll.hops[c as usize][si] >= 1)
            .map(|si| (c, si))
            .collect();
        let budget = RunUntil::Quiesce { max: (s as u64 + 2) * (coll.h as u64 + 2) + 64 };
        let (mask, report) = remove_subtrees(topo, sim, coll, &removed, &roots, budget)?;
        removed = mask;
        rec.record(format!("greedy: cleanup #{iter}"), report);
        scores =
            compute_scores(topo, sim, coll, &removed, rec, &format!("greedy: rescore #{iter}"))?;
    }
    Ok(BlockerResult { q })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocker::is_valid_blocker;
    use crate::blocker::tests::build_collection;
    use crate::blocker::PathCtx;

    #[test]
    fn greedy_produces_valid_blocker() {
        for seed in [1u64, 4, 9] {
            let (_, topo, coll) = build_collection(18, 40, 3, seed);
            let mut rec = Recorder::new();
            let res = greedy_blocker(&topo, SimConfig::default(), &coll, &mut rec).unwrap();
            assert!(is_valid_blocker(&coll, &res.q), "seed {seed}");
        }
    }

    #[test]
    fn greedy_matches_sequential_greedy_cover() {
        // The distributed greedy must pick exactly the same vertices as the
        // sequential greedy set cover on the exported hypergraph.
        let (_, topo, coll) = build_collection(16, 36, 3, 2);
        let (ctx, _) = PathCtx::build(&topo, SimConfig::default(), &coll).unwrap();
        let hg = ctx.hypergraph(16);
        if hg.edges.is_empty() {
            return;
        }
        let oracle = congest_derand::greedy_cover(&hg);
        let mut rec = Recorder::new();
        let res = greedy_blocker(&topo, SimConfig::default(), &coll, &mut rec).unwrap();
        assert_eq!(res.q, oracle);
    }

    #[test]
    fn greedy_empty_when_no_full_paths() {
        // h larger than any shortest-path hop count: no depth-h leaves.
        let (_, topo, coll) = build_collection(10, 40, 8, 3);
        let mut rec = Recorder::new();
        let res = greedy_blocker(&topo, SimConfig::default(), &coll, &mut rec).unwrap();
        let (ctx, _) = PathCtx::build(&topo, SimConfig::default(), &coll).unwrap();
        if ctx.alive_count() == 0 {
            assert!(res.q.is_empty());
        }
    }

    #[test]
    fn greedy_rounds_grow_with_q() {
        // Round accounting: |Q|+1 score broadcasts of O(n) rounds each.
        let (_, topo, coll) = build_collection(20, 44, 2, 6);
        let mut rec = Recorder::new();
        let res = greedy_blocker(&topo, SimConfig::default(), &coll, &mut rec).unwrap();
        let broadcasts = rec.phases().iter().filter(|p| p.name.contains("score broadcast")).count();
        assert_eq!(broadcasts, res.q.len() + 1);
    }
}
