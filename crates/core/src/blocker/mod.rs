//! Blocker-set construction (§3): given an h-CSSSP collection, find a small
//! set Q hitting every root-to-leaf path of hop-length exactly h.
//!
//! Three constructions:
//! * [`greedy_blocker`] — the baseline of Agarwal et al. \[2\]: one max-score vertex
//!   per iteration with an O(n)-round cleanup, O(nh + n·|Q|) rounds total.
//!   This is the `n·|Q|` term the paper removes.
//! * [`alg2_blocker`] with [`Selection::Randomized`] — the paper's Algorithm 2.
//! * [`alg2_blocker`] with [`Selection::Derandomized`] — Algorithm 2′ (Algorithm 7
//!   with the ν-aggregation of Algorithms 11/12).
//!
//! Hyperedges exclude the tree root: a full-length path contributes its h
//! *non-root* vertices (§3.1: "each edge in F has exactly h vertices").
//! This matters for correctness of the APSP decomposition — a blocker at
//! depth ≥ 1 guarantees strict progress when shortest paths are split at
//! blocker nodes (see DESIGN.md §4).

mod alg2;
mod greedy;

pub use alg2::{alg2_blocker, Alg2Stats, Selection};
pub use greedy::greedy_blocker;

use crate::csssp::SsspCollection;
use congest_graph::{NodeId, Weight};
use congest_sim::{PhaseReport, SimConfig, SimError, Topology};

/// Outcome of a blocker-set construction.
#[derive(Clone, Debug)]
pub struct BlockerResult {
    /// The blocker set, in insertion order, deduplicated.
    pub q: Vec<NodeId>,
}

/// Shared path bookkeeping: which full-length paths are alive, and the
/// non-root vertex list of each. Central mirror of information that is
/// node-local in the protocols (each leaf knows its own paths via
/// [`crate::trees::collect_ancestors`]).
#[derive(Clone, Debug)]
pub struct PathCtx {
    /// `ancestors[v][si]`: ids root..parent for members (empty otherwise).
    pub ancestors: Vec<Vec<Vec<NodeId>>>,
    /// `removed[v][si]`: subtree-removal mask.
    pub removed: Vec<Vec<bool>>,
    /// `full_leaf[v][si]`.
    pub full_leaf: Vec<Vec<bool>>,
}

impl PathCtx {
    /// Builds the context by running the ancestor-collection protocol
    /// (Algorithm 7 Step 1; O(|S|·h) rounds, reported).
    ///
    /// # Errors
    /// Propagates engine errors.
    pub fn build<W: Weight>(
        topo: &Topology,
        sim: SimConfig,
        coll: &SsspCollection<W>,
    ) -> Result<(Self, PhaseReport), SimError> {
        let (ancestors, report) = crate::trees::collect_ancestors(topo, sim, coll)?;
        let n = coll.n();
        let s = coll.sources.len();
        let full_leaf =
            (0..n).map(|v| (0..s).map(|si| coll.is_full_leaf(v as NodeId, si)).collect()).collect();
        Ok((PathCtx { ancestors, removed: vec![vec![false; s]; n], full_leaf }, report))
    }

    /// `true` iff the path ending at `(v, si)` is an alive hyperedge.
    #[must_use]
    pub fn alive(&self, v: NodeId, si: usize) -> bool {
        self.full_leaf[v as usize][si] && !self.removed[v as usize][si]
    }

    /// Non-root vertices of the path ending at `(v, si)` (ancestors minus
    /// the root, plus the leaf itself).
    #[must_use]
    pub fn path_vertices(&self, v: NodeId, si: usize) -> Vec<NodeId> {
        let anc = &self.ancestors[v as usize][si];
        let mut verts: Vec<NodeId> = anc.iter().skip(1).copied().collect();
        verts.push(v);
        verts
    }

    /// All alive paths as `(leaf, tree)` pairs.
    #[must_use]
    pub fn alive_paths(&self) -> Vec<(NodeId, usize)> {
        let mut out = Vec::new();
        for v in 0..self.full_leaf.len() {
            for si in 0..self.full_leaf[v].len() {
                if self.alive(v as NodeId, si) {
                    out.push((v as NodeId, si));
                }
            }
        }
        out
    }

    /// Number of alive paths.
    #[must_use]
    pub fn alive_count(&self) -> u64 {
        self.alive_paths().len() as u64
    }

    /// Exports the alive paths as a hypergraph (oracle cross-checks against
    /// `congest-derand`'s sequential set cover).
    #[must_use]
    pub fn hypergraph(&self, n: usize) -> congest_derand::Hypergraph {
        let edges =
            self.alive_paths().into_iter().map(|(v, si)| self.path_vertices(v, si)).collect();
        congest_derand::Hypergraph::new(n, edges)
    }
}

/// Validates that `q` hits every full-length path of `coll` on a non-root
/// vertex. Used by tests and the experiment harness.
#[must_use]
pub fn is_valid_blocker<W: Weight>(coll: &SsspCollection<W>, q: &[NodeId]) -> bool {
    let mut in_q = vec![false; coll.n()];
    for &c in q {
        in_q[c as usize] = true;
    }
    for si in 0..coll.sources.len() {
        for v in 0..coll.n() as NodeId {
            if coll.is_full_leaf(v, si) {
                let path = coll.root_path(v, si).expect("full leaf is a member");
                // path is v..root; non-root vertices are all but the last.
                let covered = path[..path.len() - 1].iter().any(|&u| in_q[u as usize]);
                if !covered {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Charging;
    use crate::csssp::build_csssp;
    use congest_graph::generators::{gnm_connected, WeightDist};
    use congest_graph::seq::Direction;
    use congest_sim::Recorder;

    pub(crate) fn build_collection(
        n: usize,
        extra: usize,
        h: usize,
        seed: u64,
    ) -> (congest_graph::Graph<u64>, Topology, SsspCollection<u64>) {
        let g = gnm_connected(n, extra, true, WeightDist::Uniform(0, 7), seed);
        let topo = Topology::from_graph(&g);
        let mut rec = Recorder::new();
        let sources: Vec<NodeId> = (0..n as NodeId).collect();
        let coll = build_csssp(
            &g,
            &topo,
            &sources,
            h,
            Direction::Out,
            false,
            SimConfig::default(),
            Charging::Quiesce,
            &mut rec,
            &mut crate::recovery::Recovery::disabled(),
            "csssp",
        )
        .unwrap();
        (g, topo, coll)
    }

    #[test]
    fn path_ctx_matches_collection() {
        let (_, topo, coll) = build_collection(16, 32, 3, 5);
        let (ctx, _) = PathCtx::build(&topo, SimConfig::default(), &coll).unwrap();
        for (v, si) in ctx.alive_paths() {
            assert!(coll.is_full_leaf(v, si));
            let verts = ctx.path_vertices(v, si);
            assert_eq!(verts.len(), 3, "exactly h non-root vertices");
            assert_eq!(*verts.last().unwrap(), v);
            // consistency with root_path
            let rp = coll.root_path(v, si).unwrap();
            assert!(!verts.contains(&rp[rp.len() - 1]) || rp[rp.len() - 1] == v);
        }
    }

    #[test]
    fn hypergraph_edges_have_h_vertices() {
        let (_, topo, coll) = build_collection(14, 28, 2, 9);
        let (ctx, _) = PathCtx::build(&topo, SimConfig::default(), &coll).unwrap();
        let hg = ctx.hypergraph(14);
        for e in &hg.edges {
            assert!(e.len() <= 2);
            assert!(!e.is_empty());
        }
    }

    #[test]
    fn validity_checker_rejects_empty_when_paths_exist() {
        let (_, topo, coll) = build_collection(16, 32, 3, 5);
        let (ctx, _) = PathCtx::build(&topo, SimConfig::default(), &coll).unwrap();
        if ctx.alive_count() > 0 {
            assert!(!is_valid_blocker(&coll, &[]));
        }
        // all non-root vertices form a trivially valid blocker
        let all: Vec<NodeId> = (0..16).collect();
        assert!(is_valid_blocker(&coll, &all));
    }
}
