//! Bottleneck-node computation (Appendix A.6, Algorithms 13–14).
//!
//! Given the n^{2/3}-in-CSSSP collection for the blocker set Q, a node's
//! `total_count` is the number of messages it would forward if every
//! source pushed its distance value up every tree — i.e. the sum over
//! trees of its subtree sizes. Algorithm 13 repeatedly broadcasts the
//! counts (O(n) rounds), removes the maximum node (with its subtrees in
//! every tree), and stops when every node's count is at most `n·√|Q|`.
//! Lemma A.16: at most √|Q| nodes are ever removed.

use crate::csssp::SsspCollection;
use crate::trees::{convergecast_trees, convergecast_trees_budget, remove_subtrees};
use congest_graph::{NodeId, Weight};
use congest_sim::primitives::all_to_all_broadcast;
use congest_sim::{Recorder, RunUntil, SimConfig, SimError, Topology};

/// Outcome of Algorithm 13.
#[derive(Clone, Debug)]
pub struct BottleneckResult {
    /// The bottleneck set B, in removal order.
    pub b: Vec<NodeId>,
    /// Removal mask over `(node, tree)` pairs (B subtrees pruned).
    pub removed: Vec<Vec<bool>>,
    /// Maximum total_count before any removal.
    pub congestion_before: u64,
    /// Maximum total_count after all removals (≤ n·√|Q|, Lemma A.15).
    pub congestion_after: u64,
}

/// `count_{v,c}` for every (node, tree) pair under `removed`:
/// Algorithm 14 — subtree sizes of alive members, one pipelined
/// convergecast across all trees.
fn compute_counts<W: Weight>(
    topo: &Topology,
    sim: SimConfig,
    coll: &SsspCollection<W>,
    removed: &[Vec<bool>],
    rec: &mut Recorder,
    label: &str,
) -> Result<Vec<Vec<u64>>, SimError> {
    let n = coll.n();
    let s = coll.sources.len();
    let init: Vec<Vec<u64>> = (0..n)
        .map(|v| {
            (0..s).map(|si| u64::from(coll.is_member(v as NodeId, si) && !removed[v][si])).collect()
        })
        .collect();
    let (acc, report) =
        convergecast_trees(topo, sim, coll, &init, convergecast_trees_budget(coll))?;
    rec.record(label, report);
    Ok(acc)
}

/// Total messages node v must *forward* (tree roots forward nothing, so
/// their own trees are excluded).
fn totals<W: Weight>(
    coll: &SsspCollection<W>,
    removed: &[Vec<bool>],
    counts: &[Vec<u64>],
) -> Vec<u64> {
    let n = coll.n();
    let s = coll.sources.len();
    (0..n)
        .map(|v| {
            (0..s)
                .filter(|&si| {
                    coll.is_member(v as NodeId, si) && !removed[v][si] && coll.hops[v][si] >= 1
                })
                .map(|si| counts[v][si])
                .sum()
        })
        .collect()
}

/// Runs Algorithm 13 over the collection. `threshold` is the paper's
/// `n·√|Q|` (passed in so experiments can sweep it).
///
/// # Errors
/// Propagates engine errors.
pub fn compute_bottlenecks<W: Weight>(
    topo: &Topology,
    sim: SimConfig,
    coll: &SsspCollection<W>,
    threshold: u64,
    rec: &mut Recorder,
) -> Result<BottleneckResult, SimError> {
    let n = coll.n();
    let s = coll.sources.len();
    let mut removed = vec![vec![false; s]; n];
    let mut b: Vec<NodeId> = Vec::new();
    let mut counts = compute_counts(topo, sim, coll, &removed, rec, "bottleneck: initial counts")?;
    let congestion_before = totals(coll, &removed, &counts).into_iter().max().unwrap_or(0);
    let mut congestion_after;

    // Lemma A.16 bounds |B| by √|Q|; the +4 guards degenerate cases where
    // the threshold is tiny relative to the instance.
    let cap = (s as f64).sqrt().ceil() as usize + 4;
    loop {
        let tc = totals(coll, &removed, &counts);
        congestion_after = tc.iter().copied().max().unwrap_or(0);
        if congestion_after <= threshold {
            break;
        }
        assert!(b.len() < cap + n, "bottleneck loop failed to converge");
        // Step 4: broadcast (total_count, id); O(n) rounds.
        let initial: Vec<Vec<(u64, NodeId)>> = (0..n)
            .map(|v| if tc[v] > 0 { vec![(tc[v], v as NodeId)] } else { Vec::new() })
            .collect();
        let (logs, report) = all_to_all_broadcast(topo, sim, initial, 2)?;
        rec.record(format!("bottleneck: count broadcast #{}", b.len()), report);
        let &(_, node) = logs[0]
            .iter()
            .max_by_key(|&&(c, id)| (c, std::cmp::Reverse(id)))
            .expect("threshold exceeded, so counts exist");
        b.push(node);
        // Step 6: remove node's subtrees everywhere, then refresh counts
        // (the descendant/ancestor updates of [2,1], via re-aggregation).
        let roots: Vec<(NodeId, usize)> = (0..s)
            .filter(|&si| coll.is_member(node, si) && !removed[node as usize][si])
            .map(|si| (node, si))
            .collect();
        let budget = RunUntil::Quiesce { max: (s as u64 + 2) * (coll.h as u64 + 2) + 64 };
        let (mask, report) = remove_subtrees(topo, sim, coll, &removed, &roots, budget)?;
        removed = mask;
        rec.record(format!("bottleneck: prune #{}", b.len() - 1), report);
        counts = compute_counts(
            topo,
            sim,
            coll,
            &removed,
            rec,
            &format!("bottleneck: recount #{}", b.len() - 1),
        )?;
    }
    Ok(BottleneckResult { b, removed, congestion_before, congestion_after })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Charging;
    use crate::csssp::build_csssp;
    use congest_graph::generators::{gnm_connected, star, WeightDist};
    use congest_graph::seq::Direction;

    fn in_coll(
        g: &congest_graph::Graph<u64>,
        sources: &[NodeId],
        h: usize,
    ) -> (Topology, SsspCollection<u64>) {
        let topo = Topology::from_graph(g);
        let mut rec = Recorder::new();
        let coll = build_csssp(
            g,
            &topo,
            sources,
            h,
            Direction::In,
            false,
            SimConfig::default(),
            Charging::Quiesce,
            &mut rec,
            &mut crate::recovery::Recovery::disabled(),
            "cq",
        )
        .unwrap();
        (topo, coll)
    }

    #[test]
    fn counts_are_subtree_sizes() {
        let g = gnm_connected(14, 28, true, WeightDist::Uniform(0, 5), 3);
        let (topo, coll) = in_coll(&g, &[2, 9], 3);
        let mut rec = Recorder::new();
        let removed = vec![vec![false; 2]; 14];
        let counts =
            compute_counts(&topo, SimConfig::default(), &coll, &removed, &mut rec, "t").unwrap();
        for si in 0..2 {
            for v in 0..14u32 {
                if coll.is_member(v, si) {
                    // oracle: count descendants incl self
                    let mut cnt = 0;
                    for u in 0..14u32 {
                        if coll.root_path(u, si).map(|p| p.contains(&v)).unwrap_or(false) {
                            cnt += 1;
                        }
                    }
                    assert_eq!(counts[v as usize][si], cnt, "v={v} si={si}");
                }
            }
        }
    }

    #[test]
    fn star_hub_is_bottleneck() {
        // Star with hub 0: trees rooted at leaves route everything through
        // the hub, so with a low threshold the hub must be removed first.
        let g = star(12, true, WeightDist::Unit, 0);
        let sources: Vec<NodeId> = vec![1, 2, 3];
        let (topo, coll) = in_coll(&g, &sources, 2);
        let mut rec = Recorder::new();
        let res = compute_bottlenecks(&topo, SimConfig::default(), &coll, 5, &mut rec).unwrap();
        assert!(res.b.contains(&0), "hub not identified: {:?}", res.b);
        assert!(res.congestion_before > res.congestion_after);
        assert!(res.congestion_after <= 5);
    }

    #[test]
    fn high_threshold_removes_nothing() {
        let g = gnm_connected(16, 30, true, WeightDist::Uniform(1, 5), 7);
        let (topo, coll) = in_coll(&g, &[0, 5, 11], 3);
        let mut rec = Recorder::new();
        let res =
            compute_bottlenecks(&topo, SimConfig::default(), &coll, u64::MAX, &mut rec).unwrap();
        assert!(res.b.is_empty());
        assert_eq!(res.congestion_before, res.congestion_after);
    }

    #[test]
    fn paper_threshold_bounds_congestion() {
        let g = gnm_connected(20, 40, true, WeightDist::Uniform(0, 9), 11);
        let sources: Vec<NodeId> = vec![1, 4, 8, 13, 17];
        let (topo, coll) = in_coll(&g, &sources, 4);
        let threshold = (20.0 * (5.0f64).sqrt()) as u64;
        let mut rec = Recorder::new();
        let res =
            compute_bottlenecks(&topo, SimConfig::default(), &coll, threshold, &mut rec).unwrap();
        assert!(res.congestion_after <= threshold);
        // Lemma A.16 bound (loose on small instances)
        assert!(res.b.len() <= 5);
    }
}

#[cfg(test)]
mod threshold_sweep_tests {
    use super::*;
    use crate::config::Charging;
    use crate::csssp::build_csssp;
    use congest_graph::generators::{broom, WeightDist};
    use congest_graph::seq::Direction;

    /// Lowering the threshold monotonically grows B and shrinks the final
    /// congestion; the final congestion always respects the threshold.
    #[test]
    fn threshold_sweep_monotone() {
        let g = broom(24, true, WeightDist::Uniform(1, 5), 3);
        let topo = Topology::from_graph(&g);
        let sources: Vec<NodeId> = vec![0, 3, 6, 12];
        let mut rec = Recorder::new();
        let coll = build_csssp(
            &g,
            &topo,
            &sources,
            8,
            Direction::In,
            false,
            SimConfig::default(),
            Charging::Quiesce,
            &mut rec,
            &mut crate::recovery::Recovery::disabled(),
            "cq",
        )
        .unwrap();
        let mut prev_b = usize::MAX;
        for threshold in [5u64, 20, 80, 400] {
            let mut r = Recorder::new();
            let res =
                compute_bottlenecks(&topo, SimConfig::default(), &coll, threshold, &mut r).unwrap();
            assert!(res.congestion_after <= threshold);
            assert!(res.b.len() <= prev_b, "B must shrink as threshold grows");
            prev_b = res.b.len();
        }
    }
}
