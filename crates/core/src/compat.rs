//! Deprecated free-function shims for the pre-[`Solver`](crate::Solver)
//! API.
//!
//! These delegate to the same engines the builder runs, so results are
//! bit-identical; they exist only so downstream code can migrate
//! mechanically. The workspace itself builds with `deny(deprecated)` —
//! this module is the single place the shims may live (and its tests the
//! single place they may be called).
//!
//! | old call | new call |
//! |---|---|
//! | `apsp_agarwal_ramachandran(&g, &cfg, m, s)` | `Solver::builder(&g).config(cfg).blocker_method(m).step6_method(s).run()` |
//! | `apsp_ar18(&g, &cfg)` | `Solver::builder(&g).algorithm(Algorithm::Ar18).config(cfg).run()` |
//! | `apsp_naive(&g, &cfg)` | `Solver::builder(&g).algorithm(Algorithm::Naive).config(cfg).run()` |
//!
//! ## Migration note: Step-7 successor tracking
//!
//! Since the Step-7 tracking change, `ApspConfig` carries a
//! `track_successors` field (default **on**) and the outcome's `dist`
//! carries a target-major successor plane that
//! `congest_oracle::Oracle::from_dist` adopts without re-derivation.
//! Callers of the shims observe three differences:
//!
//! * `ApspConfig` struct literals need the new field (or
//!   `..Default::default()`).
//! * Distances are bit-identical with tracking on or off, but the wire
//!   payload is one id word wider per relax/push message — visible in the
//!   recorder's new `payload_words` / `max_msg_words` accounting, not in
//!   rounds or message counts.
//! * Code that wants the pre-tracking behavior (distances only, oracle
//!   derives successors) sets `track_successors: false` — or
//!   `Solver::builder(&g).track_successors(false)` on the builder path.

#![allow(deprecated)]

use crate::apsp::{ApspOutcome, BlockerMethod, Step6Method};
use crate::config::ApspConfig;
use crate::recovery::SolverError;
use congest_graph::{Graph, Weight};
use congest_sim::SimError;

/// The shims predate the fault plane and keep their [`SimError`] return
/// type; fault-injection runs must go through the [`Solver`](crate::Solver)
/// API, whose [`SolverError`] can express an exhausted recovery budget.
fn downgrade<T>(res: Result<T, SolverError>) -> Result<T, SimError> {
    res.map_err(|e| match e {
        SolverError::Sim(e) => e,
        SolverError::Unrecoverable { .. } => {
            unreachable!("recovery only arms with cfg.fault set, which the shims reject up front")
        }
    })
}

fn reject_fault_plan(cfg: &ApspConfig) {
    assert!(
        cfg.fault.is_none(),
        "fault injection requires the Solver API (Solver::builder(..).fault_plan(..))"
    );
}

/// Runs Algorithm 1 (the paper's Õ(n^{4/3}) APSP).
///
/// # Errors
/// Propagates engine errors.
///
/// # Panics
/// Panics if the communication graph is disconnected, or if `cfg.fault`
/// is set (fault-injection runs must use the `Solver` API).
#[deprecated(
    since = "0.1.0",
    note = "use `Solver::builder(&g).blocker_method(..).step6_method(..).run()` instead"
)]
pub fn apsp_agarwal_ramachandran<W: Weight>(
    g: &Graph<W>,
    cfg: &ApspConfig,
    method: BlockerMethod,
    step6: Step6Method,
) -> Result<ApspOutcome<W>, SimError> {
    reject_fault_plan(cfg);
    downgrade(crate::apsp::run_ar20(g, cfg, method, step6))
}

/// Runs the Õ(n^{3/2}) AR18-style baseline.
///
/// # Errors
/// Propagates engine errors.
///
/// # Panics
/// Panics if the communication graph is disconnected, or if `cfg.fault`
/// is set (fault-injection runs must use the `Solver` API).
#[deprecated(
    since = "0.1.0",
    note = "use `Solver::builder(&g).algorithm(Algorithm::Ar18).run()` instead"
)]
pub fn apsp_ar18<W: Weight>(g: &Graph<W>, cfg: &ApspConfig) -> Result<ApspOutcome<W>, SimError> {
    reject_fault_plan(cfg);
    downgrade(crate::baselines::run_ar18(g, cfg))
}

/// Runs one full Bellman–Ford per source (the naive O(n²) baseline).
///
/// # Errors
/// Propagates engine errors.
///
/// # Panics
/// Panics if the communication graph is disconnected, or if `cfg.fault`
/// is set (fault-injection runs must use the `Solver` API).
#[deprecated(
    since = "0.1.0",
    note = "use `Solver::builder(&g).algorithm(Algorithm::Naive).run()` instead"
)]
pub fn apsp_naive<W: Weight>(g: &Graph<W>, cfg: &ApspConfig) -> Result<ApspOutcome<W>, SimError> {
    reject_fault_plan(cfg);
    downgrade(crate::baselines::run_naive(g, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{Algorithm, Solver};
    use congest_graph::generators::{gnm_connected, WeightDist};

    /// The shims must stay bit-identical to the builder path they wrap.
    #[test]
    fn shims_match_solver() {
        let g = gnm_connected(13, 26, true, WeightDist::Uniform(0, 9), 5);
        let cfg = ApspConfig::default();
        let via_shim = apsp_agarwal_ramachandran(
            &g,
            &cfg,
            BlockerMethod::Derandomized,
            Step6Method::Pipelined,
        )
        .unwrap();
        let via_solver = Solver::builder(&g).run().unwrap();
        assert_eq!(via_shim.dist, via_solver.dist);
        assert_eq!(via_shim.recorder.total_rounds(), via_solver.recorder.total_rounds());

        let ar18 = apsp_ar18(&g, &cfg).unwrap();
        assert_eq!(ar18.dist, Solver::builder(&g).algorithm(Algorithm::Ar18).run().unwrap().dist);
        let naive = apsp_naive(&g, &cfg).unwrap();
        assert_eq!(naive.dist, Solver::builder(&g).algorithm(Algorithm::Naive).run().unwrap().dist);
    }
}
