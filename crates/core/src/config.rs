//! Shared configuration for the distributed APSP algorithms.

use congest_sim::fault::FaultSpec;
use congest_sim::{RunUntil, SimConfig};

/// How phase durations are charged (DESIGN.md §3.2).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Charging {
    /// Run every phase for its analytical round budget — the faithful
    /// CONGEST accounting (nodes cannot detect global quiescence).
    WorstCase,
    /// Stop a phase as soon as no messages are in flight and all nodes are
    /// idle — practical accounting. Same messages, fewer idle rounds.
    Quiesce,
}

impl Charging {
    /// Builds the [`RunUntil`] for a phase with analytical bound
    /// `worst_case` rounds. In quiescence mode the bound (padded) still
    /// serves as the safety budget.
    #[must_use]
    pub fn until(self, worst_case: u64) -> RunUntil {
        match self {
            Charging::WorstCase => RunUntil::Exact(worst_case),
            Charging::Quiesce => RunUntil::Quiesce { max: 4 * worst_case + 64 },
        }
    }
}

/// Parameters of the blocker-set construction (paper §3: ε, δ ≤ 1/12).
#[derive(Copy, Clone, Debug)]
pub struct BlockerParams {
    /// Stage/phase granularity constant ε.
    pub eps: f64,
    /// Selection probability constant δ.
    pub delta: f64,
}

impl Default for BlockerParams {
    fn default() -> Self {
        BlockerParams { eps: 1.0 / 12.0, delta: 1.0 / 12.0 }
    }
}

/// Top-level configuration for the APSP algorithms.
#[derive(Copy, Clone, Debug)]
pub struct ApspConfig {
    /// Hop parameter h; `None` means the paper's h = ⌈n^{1/3}⌉.
    pub h: Option<usize>,
    /// Round-charging mode.
    pub charging: Charging,
    /// Blocker-set constants.
    pub blocker: BlockerParams,
    /// Simulator settings (bandwidth etc.).
    pub sim: SimConfig,
    /// Seed for the randomized variants (ignored by deterministic ones).
    pub seed: u64,
    /// Step-7 successor tracking: when on (the default), every distance
    /// improvement also records the first hop it arrived through, and the
    /// outcome's `DistMatrix` carries a target-major successor plane the
    /// serving layer adopts without re-derivation. Tracking widens message
    /// payloads by one id word but never changes the computed distances,
    /// round counts, or message counts.
    pub track_successors: bool,
    /// Optional fault-injection plan: every pipeline phase runs under this
    /// spec (reseeded per phase and attempt) with phase-level
    /// detect-and-recover (see [`crate::recovery`]). `None` (the default)
    /// means the literal fault-free code path. Setting `sim.fault` here
    /// directly instead injects faults *without* recovery — useful for
    /// studying raw damage, but the solver then makes no exactness
    /// promise.
    pub fault: Option<FaultSpec>,
    /// Retry budget per phase under an active `fault` plan: a phase may
    /// run up to `1 + max_phase_retries` times before the solver gives up
    /// with [`crate::SolverError::Unrecoverable`]. Ignored without a plan.
    pub max_phase_retries: u32,
}

impl Default for ApspConfig {
    fn default() -> Self {
        ApspConfig {
            h: None,
            charging: Charging::Quiesce,
            blocker: BlockerParams::default(),
            sim: SimConfig::default(),
            seed: 0xC0FFEE,
            track_successors: true,
            fault: None,
            max_phase_retries: 4,
        }
    }
}

impl ApspConfig {
    /// The paper's h = ⌈n^{1/3}⌉ (Algorithm 1 input), or the override.
    #[must_use]
    pub fn hop_param(&self, n: usize) -> usize {
        self.h.unwrap_or_else(|| (n as f64).powf(1.0 / 3.0).ceil() as usize).max(1)
    }

    /// The paper's second-level parameter n^{2/3} used by Algorithms 8/9.
    #[must_use]
    pub fn hop_param_sq(&self, n: usize) -> usize {
        let h = self.hop_param(n);
        (h * h).min(n.saturating_sub(1).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_h_is_cube_root() {
        let cfg = ApspConfig::default();
        assert_eq!(cfg.hop_param(8), 2);
        assert_eq!(cfg.hop_param(27), 3);
        assert_eq!(cfg.hop_param(28), 4); // ceil
        assert_eq!(cfg.hop_param(1), 1);
    }

    #[test]
    fn h_override() {
        let cfg = ApspConfig { h: Some(5), ..Default::default() };
        assert_eq!(cfg.hop_param(1000), 5);
        assert_eq!(cfg.hop_param_sq(1000), 25);
    }

    #[test]
    fn hop_sq_capped_by_n() {
        let cfg = ApspConfig { h: Some(10), ..Default::default() };
        assert_eq!(cfg.hop_param_sq(20), 19);
    }

    #[test]
    fn charging_until() {
        assert!(matches!(Charging::WorstCase.until(10), RunUntil::Exact(10)));
        assert!(matches!(Charging::Quiesce.until(10), RunUntil::Quiesce { max: 104 }));
    }
}
