//! h-hop Consistent SSSP collections (CSSSP, Definition 2.1 / Appendix A.2).
//!
//! Following \[1\]: run 2h rounds of synchronous Bellman–Ford from every
//! source (O(|S|·h) rounds total, Lemma A.4) and retain only the first h
//! hops of every tree. The (dist, hops, parent-id) tie-breaking in
//! [`crate::bf`] selects, for every (source, node) pair, one canonical
//! minimum-hop shortest path, which makes the retained trees a consistent
//! collection: a u→v tree path is the same in every tree that contains it.
//! [`SsspCollection::check_consistency`] verifies this (used by tests).

use crate::bf::run_bf;
use crate::config::Charging;
use crate::recovery::{sentinels, Recovery, SolverError};
use congest_graph::seq::Direction;
use congest_graph::{DistMatrix, Graph, NodeId, Weight, NO_SUCC};
use congest_sim::{PhaseReport, Recorder, SimConfig, Topology};

/// A collection of rooted h-hop trees, one per source, stored as per-node
/// local knowledge: entry `[v][si]` is node v's state in the tree of
/// `sources[si]`.
#[derive(Clone, Debug)]
pub struct SsspCollection<W> {
    /// Tree roots.
    pub sources: Vec<NodeId>,
    /// Height cap h.
    pub h: usize,
    /// Tree orientation (Out: paths from root; In: paths into root).
    pub dir: Direction,
    /// `dist[v][si]`: δ_h(root, v) (Out) or δ_h(v, root) (In); INF if
    /// absent. Flat `n × |S|` matrix.
    pub dist: DistMatrix<W>,
    /// Hop depth in the tree; `u32::MAX` if absent.
    pub hops: Vec<Vec<u32>>,
    /// Parent toward the root.
    pub parent: Vec<Vec<Option<NodeId>>>,
    /// Children away from the root (members only).
    pub children: Vec<Vec<Vec<NodeId>>>,
    /// `first[v][si]`: the first hop out of the root on the canonical tree
    /// path to `v` (Out direction; the root's successor toward `v`), as
    /// threaded through the relax messages when the collection was built
    /// with successor tracking. [`NO_SUCC`] at the root, for non-members,
    /// or when the collection is untracked.
    pub first: Vec<Vec<NodeId>>,
    /// Whether the collection was built with successor tracking (i.e. the
    /// `first` plane is meaningful). Consumers that thread routing
    /// information further — the Step-7 extension — assert on this instead
    /// of silently misattributing path origins.
    pub tracked: bool,
}

impl<W: Weight> SsspCollection<W> {
    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.hops.len()
    }

    /// `true` iff `v` belongs to the tree of source index `si`.
    #[must_use]
    pub fn is_member(&self, v: NodeId, si: usize) -> bool {
        self.hops[v as usize][si] != u32::MAX
    }

    /// `true` iff `v` is a *full leaf* of tree `si`: at depth exactly h.
    /// Root-to-full-leaf paths are the hyperedges of the blocker problem
    /// (§3.1: "each edge in F has exactly h vertices — we do not need to
    /// cover paths that have less than h hops").
    #[must_use]
    pub fn is_full_leaf(&self, v: NodeId, si: usize) -> bool {
        self.hops[v as usize][si] == self.h as u32
    }

    /// The tree path from `v` to the root of tree `si` (inclusive),
    /// following parent pointers. Returns `None` if `v` is not a member.
    #[must_use]
    pub fn root_path(&self, v: NodeId, si: usize) -> Option<Vec<NodeId>> {
        if !self.is_member(v, si) {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur as usize][si] {
            path.push(p);
            cur = p;
        }
        debug_assert_eq!(cur, self.sources[si]);
        Some(path)
    }

    /// Removes `v` (and implicitly its whole subtree, which callers prune
    /// via tree traversal) from tree `si`. Used by the orchestrated mirror
    /// of Remove-Subtrees; the distributed protocol lives in
    /// `crate::trees`.
    pub fn remove_node(&mut self, v: NodeId, si: usize) {
        self.hops[v as usize][si] = u32::MAX;
        self.dist[v as usize][si] = W::INF;
        self.parent[v as usize][si] = None;
        self.first[v as usize][si] = NO_SUCC;
        self.children[v as usize][si].clear();
    }

    /// Consistency check per Definition 2.1: every (u, v) pair linked in
    /// several trees uses the same path, and every tree contains each
    /// vertex that has an ≤h-hop optimal path from/to the root. Returns a
    /// description of the first violation.
    ///
    /// # Errors
    /// Returns a human-readable violation description.
    pub fn check_consistency(&self, g: &Graph<W>) -> Result<(), String> {
        use congest_graph::seq::{dijkstra, hop_limited_distances, hop_limited_min_hops};
        let n = self.n();
        // (a) membership + distances.
        for (si, &s) in self.sources.iter().enumerate() {
            let d2h = hop_limited_distances(g, s, 2 * self.h, self.dir);
            let mh = hop_limited_min_hops(g, s, 2 * self.h, self.dir);
            let exact = dijkstra(g, s, self.dir);
            for v in 0..n {
                let member = self.is_member(v as NodeId, si);
                let within_h = matches!(mh[v], Some(k) if k <= self.h);
                if member {
                    if !within_h {
                        return Err(format!("tree {s}: node {v} member beyond depth h"));
                    }
                    if self.dist[v][si] != d2h[v] {
                        return Err(format!(
                            "tree {s}: node {v} dist {:?} != δ2h {:?}",
                            self.dist[v][si], d2h[v]
                        ));
                    }
                    if self.hops[v][si] as usize != mh[v].unwrap() {
                        return Err(format!("tree {s}: node {v} hops not minimal"));
                    }
                } else if within_h {
                    // Horizon repair may drop a ≤h-hop node, but only when
                    // its true distance needs more than 2h hops (Definition
                    // A.3 then exempts it: no ≤h-hop path achieves δ(s,v)).
                    if exact[v] >= d2h[v] {
                        return Err(format!(
                            "tree {s}: node {v} dropped although δ == δ2h (must be member)"
                        ));
                    }
                }
            }
        }
        // (b) path consistency across trees: the sub-path between two nodes
        // is identical in every tree where one is the ancestor of the other.
        let mut canonical: std::collections::HashMap<(NodeId, NodeId), Vec<NodeId>> =
            std::collections::HashMap::new();
        for si in 0..self.sources.len() {
            for v in 0..n as NodeId {
                let Some(path) = self.root_path(v, si) else { continue };
                // path is v..root; record each suffix pair (ancestor, v).
                for (k, &anc) in path.iter().enumerate().skip(1) {
                    let seg: Vec<NodeId> = path[..=k].to_vec();
                    match canonical.entry((anc, v)) {
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(seg);
                        }
                        std::collections::hash_map::Entry::Occupied(e) => {
                            if e.get() != &seg {
                                return Err(format!(
                                    "pair ({anc}, {v}): paths differ across trees"
                                ));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Builds the h-CSSSP for `sources` by running 2h-hop Bellman–Ford per
/// source in sequence and truncating at depth h (Lemma A.4; O(|S|·h)
/// rounds). Phases are recorded into `rec` (one merged entry).
///
/// With `track` on, the per-source runs thread first hops through the
/// relaxation (one extra id word per relax message) and the collection's
/// `first` plane reports, at every member `v`, the root's successor toward
/// `v` — the routing seed Step 7 consumes.
///
/// Every per-source tree runs through `rc` as its own recoverable phase
/// (sentinel: [`sentinels::repaired_tree`] — the repair sub-phase restores
/// full parent telescoping, so damage to any surviving entry is locally
/// detectable).
///
/// # Errors
/// Propagates engine errors; [`SolverError::Unrecoverable`] when a tree
/// exhausts the retry budget.
#[allow(clippy::too_many_arguments)]
pub fn build_csssp<W: Weight>(
    g: &Graph<W>,
    topo: &Topology,
    sources: &[NodeId],
    h: usize,
    dir: Direction,
    track: bool,
    sim: SimConfig,
    charging: Charging,
    rec: &mut Recorder,
    rc: &mut Recovery,
    label: &str,
) -> Result<SsspCollection<W>, SolverError> {
    let n = g.n();
    let mut dist = DistMatrix::filled(n, sources.len(), W::INF);
    let mut hops = vec![Vec::with_capacity(sources.len()); n];
    let mut parent = vec![Vec::with_capacity(sources.len()); n];
    let mut first = vec![Vec::with_capacity(sources.len()); n];
    let mut children: Vec<Vec<Vec<NodeId>>> = vec![Vec::with_capacity(sources.len()); n];
    let mut total = PhaseReport { node_sent: vec![0; n], ..Default::default() };
    for (si, &s) in sources.iter().enumerate() {
        let (res, rep) = rc.phase(
            &format!("{label} [tree {s}]"),
            sim,
            |sim| run_bf(g, topo, s, dir, 2 * h as u64, None, true, track, sim, charging),
            |res| sentinels::repaired_tree(g, dir, s, res),
        )?;
        total.rounds += rep.rounds;
        total.messages += rep.messages;
        total.payload_words += rep.payload_words;
        total.faults.merge(&rep.faults);
        total.max_msg_words = total.max_msg_words.max(rep.max_msg_words);
        for (t, s2) in total.node_sent.iter_mut().zip(rep.node_sent.iter()) {
            *t += s2;
        }
        for v in 0..n {
            let e = &res.entries[v];
            // Truncate to h hops (keeps exactly the vertices whose
            // canonical minimum-hop optimal path has ≤ h hops).
            if e.reached() && e.hops <= h as u32 {
                dist.set(v, si, e.dist);
                hops[v].push(e.hops);
                parent[v].push(e.parent);
                first[v].push(e.first.unwrap_or(NO_SUCC));
                children[v].push(
                    res.children[v]
                        .iter()
                        .copied()
                        .filter(|&c| {
                            let ce = &res.entries[c as usize];
                            ce.reached() && ce.hops <= h as u32
                        })
                        .collect(),
                );
            } else {
                hops[v].push(u32::MAX);
                parent[v].push(None);
                first[v].push(NO_SUCC);
                children[v].push(Vec::new());
            }
        }
    }
    rec.record(label, total);
    Ok(SsspCollection {
        sources: sources.to_vec(),
        h,
        dir,
        dist,
        hops,
        parent,
        children,
        first,
        tracked: track,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{gnm_connected, Family, WeightDist};

    fn build_with(
        g: &Graph<u64>,
        sources: &[NodeId],
        h: usize,
        dir: Direction,
        track: bool,
    ) -> SsspCollection<u64> {
        let topo = Topology::from_graph(g);
        let mut rec = Recorder::new();
        build_csssp(
            g,
            &topo,
            sources,
            h,
            dir,
            track,
            SimConfig::default(),
            Charging::Quiesce,
            &mut rec,
            &mut Recovery::disabled(),
            "csssp",
        )
        .unwrap()
    }

    fn build(g: &Graph<u64>, sources: &[NodeId], h: usize, dir: Direction) -> SsspCollection<u64> {
        build_with(g, sources, h, dir, false)
    }

    #[test]
    fn consistency_on_families() {
        for fam in Family::ALL {
            let g = fam.build(18, true, WeightDist::Uniform(0, 6), 13);
            let sources: Vec<NodeId> = (0..g.n() as NodeId).collect();
            let c = build(&g, &sources, 3, Direction::Out);
            c.check_consistency(&g).unwrap_or_else(|e| panic!("{}: {e}", fam.name()));
        }
    }

    #[test]
    fn consistency_in_direction() {
        let g = gnm_connected(16, 36, true, WeightDist::Uniform(0, 8), 21);
        let sources: Vec<NodeId> = (0..g.n() as NodeId).collect();
        let c = build(&g, &sources, 2, Direction::In);
        c.check_consistency(&g).unwrap();
    }

    #[test]
    fn root_path_walks_to_source() {
        let g = gnm_connected(14, 30, false, WeightDist::Uniform(1, 5), 2);
        let c = build(&g, &[3, 7], 4, Direction::Out);
        for v in 0..14u32 {
            for si in 0..2 {
                if let Some(p) = c.root_path(v, si) {
                    assert_eq!(p[0], v);
                    assert_eq!(*p.last().unwrap(), c.sources[si]);
                    assert_eq!(p.len() as u32 - 1, c.hops[v as usize][si]);
                }
            }
        }
    }

    #[test]
    fn full_leaves_at_depth_h() {
        let g = congest_graph::generators::path(8, true, WeightDist::Unit, 0);
        let c = build(&g, &[0], 3, Direction::Out);
        assert!(c.is_full_leaf(3, 0));
        assert!(!c.is_full_leaf(2, 0));
        assert!(!c.is_member(4, 0)); // beyond h hops on a path
    }

    #[test]
    fn children_are_members_only() {
        let g = gnm_connected(15, 25, true, WeightDist::Uniform(0, 4), 6);
        let sources: Vec<NodeId> = (0..15).collect();
        let c = build(&g, &sources, 2, Direction::Out);
        for v in 0..15usize {
            for si in 0..15 {
                for &ch in &c.children[v][si] {
                    assert!(c.is_member(ch, si));
                    assert_eq!(c.parent[ch as usize][si], Some(v as NodeId));
                    assert_eq!(c.hops[ch as usize][si], c.hops[v][si] + 1);
                }
            }
        }
    }

    #[test]
    fn tracked_first_hops_realize_the_stored_distance() {
        use congest_graph::seq::hop_limited_distances;
        let h = 3;
        for seed in [9u64, 21] {
            let g = gnm_connected(16, 36, true, WeightDist::Uniform(0, 6), seed);
            let sources: Vec<NodeId> = (0..g.n() as NodeId).collect();
            let c = build_with(&g, &sources, h, Direction::Out, true);
            for (si, &s) in c.sources.iter().enumerate() {
                for v in 0..g.n() {
                    if !c.is_member(v as NodeId, si) || v == s as usize {
                        assert_eq!(c.first[v][si], NO_SUCC);
                        continue;
                    }
                    let f = c.first[v][si];
                    assert_ne!(f, NO_SUCC, "member {v} of tree {s} must have a first hop");
                    let w = g
                        .out_edges(s)
                        .filter(|&(t, _)| t == f)
                        .map(|(_, w)| w)
                        .min()
                        .expect("first hop must be an out-neighbor of the root");
                    // δ_2h(s, v) decomposes exactly over the recorded first
                    // hop: min-weight edge s→f plus the best ≤2h-1-hop
                    // remainder (both directions of the inequality hold,
                    // see the Step-7 tracking argument).
                    let rest = hop_limited_distances(&g, f, 2 * h - 1, Direction::Out);
                    assert_eq!(c.dist[v][si], w.plus(rest[v]), "seed {seed} tree {s} node {v}");
                }
            }
        }
    }

    #[test]
    fn untracked_collection_has_empty_first_plane() {
        let g = gnm_connected(12, 24, true, WeightDist::Uniform(1, 5), 3);
        let sources: Vec<NodeId> = (0..12).collect();
        let c = build(&g, &sources, 2, Direction::Out);
        assert!(c.first.iter().flatten().all(|&f| f == NO_SUCC));
    }

    #[test]
    fn rounds_scale_with_sources_times_h() {
        let g = gnm_connected(20, 40, false, WeightDist::Uniform(1, 9), 3);
        let topo = Topology::from_graph(&g);
        let mut rec = Recorder::new();
        let sources: Vec<NodeId> = (0..20).collect();
        let h = 3;
        let _ = build_csssp(
            &g,
            &topo,
            &sources,
            h,
            Direction::Out,
            false,
            SimConfig::default(),
            Charging::WorstCase,
            &mut rec,
            &mut Recovery::disabled(),
            "csssp",
        )
        .unwrap();
        // Exact charging: per source 2h relax + adopt/confirm + 2h detach
        // window + delivery slack = 4h + 4 rounds.
        assert_eq!(rec.total_rounds(), 20 * (4 * h as u64 + 4));
    }
}
