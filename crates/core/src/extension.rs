//! Step 7 of Algorithm 1: h-hop shortest-path extension (§5).
//!
//! For each source x in sequence, run h rounds of Bellman–Ford where every
//! blocker node c starts at its known δ(x, c) and every node t starts at
//! its δ_h(x, t) from the Step-1 CSSSP. Extended h-hop paths from blockers
//! then reach every sink with the exact δ(x, t) (Lemma 5.1; O(nh) rounds
//! total).
//!
//! With successor tracking on, every seed is *routed* — it carries the
//! first hop out of x on the path its value summarizes (Step-1 trees for
//! the δ_h seeds, the Step-6 delivery for the blocker seeds) — and the
//! extension's relax messages keep threading that first hop forward. After
//! the run for source x, node t's entry names x's successor toward t, and
//! the per-source results aggregate into the target-major successor plane
//! on the returned matrix: no reverse-BFS post-pass anywhere.

use crate::bf::{run_bf, BfSeeds};
use crate::config::ApspConfig;
use crate::csssp::SsspCollection;
use crate::pipeline::RoutedTable;
use crate::recovery::{sentinels, Recovery, SolverError};
use congest_graph::seq::Direction;
use congest_graph::{DistMatrix, Graph, NodeId, Weight, NO_SUCC};
use congest_sim::{Recorder, SimConfig, Topology};

/// Runs the extension for every source and returns the full distance
/// matrix `dist[x][t]` — carrying the target-major successor plane when
/// `cfg.track_successors` is on.
///
/// * `coll` — the Step-1 h-hop CSSSP (out direction, S = V; tracked when
///   successor tracking is on).
/// * `q` / `at_blocker` — blocker ids and the `|Q| × n` table
///   `at_blocker.dist[qi][x] = δ(x, q_qi)` as delivered by Step 6 (each
///   blocker knows its own column, with the first hop out of x riding
///   along when tracked).
///
/// Every per-source extension runs through `rc` as its own recoverable
/// phase (sentinel: [`sentinels::exact_row`] — the extension's output row
/// is a complete distance vector, so the relaxation fixed point is
/// checkable locally).
///
/// # Errors
/// Propagates engine errors; [`SolverError::Unrecoverable`] when a source
/// exhausts the retry budget.
///
/// # Panics
/// Panics when `cfg.track_successors` is on but `coll` or a non-empty
/// `at_blocker` carries no routing information — tracking over
/// routing-less inputs would produce an invalid plane.
#[allow(clippy::too_many_arguments)]
pub fn extend_all_sources<W: Weight>(
    g: &Graph<W>,
    topo: &Topology,
    cfg: &ApspConfig,
    coll: &SsspCollection<W>,
    q: &[NodeId],
    at_blocker: &RoutedTable<W>,
    rec: &mut Recorder,
    rc: &mut Recovery,
) -> Result<DistMatrix<W>, SolverError> {
    let n = g.n();
    let h = coll.h as u64;
    let sim: SimConfig = cfg.sim;
    let track = cfg.track_successors;
    if track {
        // Fail fast instead of silently misattributing path origins: a
        // tracked extension over routing-less inputs would seed NO_SUCC
        // first hops and record blocker/tree neighbors as the sources'
        // successors — an invalid plane.
        assert!(
            coll.tracked,
            "successor tracking needs a tracked Step-1 collection (build_csssp with track: true)"
        );
        assert!(
            q.is_empty() || at_blocker.is_tracked(),
            "successor tracking needs a routed blocker table (RoutedTable::tracked)"
        );
    }
    let mut dist = DistMatrix::square(n, W::INF);
    if track {
        dist = dist.with_empty_successors();
    }
    for x in 0..n as NodeId {
        let xi = x as usize;
        // Initialization known locally at each node: blockers hold the
        // Step-6 value; every tree member holds its Step-1 δ_h(x, ·).
        // Seed selection is identical with tracking on or off — the first
        // hops ride along without participating in any comparison.
        let mut init = vec![W::INF; n];
        let mut init_first = track.then(|| vec![NO_SUCC; n]);
        for (qi, &c) in q.iter().enumerate() {
            init[c as usize] = at_blocker.dist[qi][xi];
            if let Some(fi) = init_first.as_mut() {
                fi[c as usize] = at_blocker.first_at(qi, xi);
            }
        }
        for t in 0..n {
            let d = coll.dist[t][xi];
            if d < init[t] {
                init[t] = d;
                if let Some(fi) = init_first.as_mut() {
                    fi[t] = coll.first[t][xi];
                }
            }
        }
        let (res, rep) = rc.phase(
            &format!("step7: extension from {x}"),
            sim,
            |sim| {
                let seeds = BfSeeds { dist: &init, first: init_first.as_deref() };
                run_bf(g, topo, x, Direction::Out, h, Some(seeds), false, track, sim, cfg.charging)
            },
            |res| sentinels::exact_row(g, Direction::Out, x, |t| res.entries[t].dist),
        )?;
        rec.record(format!("step7: extension from {x}"), rep);
        for t in 0..n {
            dist[xi][t] = res.entries[t].dist;
            if track {
                // Target-major aggregation: x's successor toward t.
                dist.set_successor(x, t as NodeId, res.entries[t].first.unwrap_or(NO_SUCC));
            }
        }
    }
    Ok(dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Charging;
    use crate::csssp::build_csssp;
    use congest_graph::generators::{gnm_connected, WeightDist};
    use congest_graph::seq::apsp_dijkstra;

    /// With oracle-exact blocker values, the extension must produce the
    /// exact APSP matrix whenever every (x, t) pair either has an ≤h-hop
    /// shortest path or a blocker within h hops of t on a shortest path.
    /// Feeding ALL nodes as blockers guarantees that unconditionally.
    #[test]
    fn extension_with_all_blockers_is_exact() {
        let n = 14;
        let g = gnm_connected(n, 30, true, WeightDist::Uniform(0, 9), 4);
        let topo = Topology::from_graph(&g);
        // This harness feeds oracle distances without routing info, so run
        // the extension untracked.
        let cfg = ApspConfig { h: Some(2), track_successors: false, ..Default::default() };
        let mut rec = Recorder::new();
        let sources: Vec<NodeId> = (0..n as NodeId).collect();
        let coll = build_csssp(
            &g,
            &topo,
            &sources,
            2,
            congest_graph::seq::Direction::Out,
            false,
            SimConfig::default(),
            Charging::Quiesce,
            &mut rec,
            &mut Recovery::disabled(),
            "csssp",
        )
        .unwrap();
        let exact = apsp_dijkstra(&g);
        let q: Vec<NodeId> = (0..n as NodeId).collect();
        // at_blocker[qi][x] = δ(x, qi)
        let at_blocker = RoutedTable::untracked(congest_graph::DistMatrix::from_rows(
            (0..n).map(|c| (0..n).map(|x| exact[x][c]).collect()).collect(),
        ));
        let dist = extend_all_sources(
            &g,
            &topo,
            &cfg,
            &coll,
            &q,
            &at_blocker,
            &mut rec,
            &mut Recovery::disabled(),
        )
        .unwrap();
        assert_eq!(dist, exact);
    }

    #[test]
    fn extension_without_blockers_gives_h_hop_distances() {
        let n = 12;
        let g = gnm_connected(n, 24, true, WeightDist::Uniform(1, 7), 6);
        let topo = Topology::from_graph(&g);
        let h = 3;
        let cfg = ApspConfig { h: Some(h), track_successors: false, ..Default::default() };
        let mut rec = Recorder::new();
        let sources: Vec<NodeId> = (0..n as NodeId).collect();
        let coll = build_csssp(
            &g,
            &topo,
            &sources,
            h,
            congest_graph::seq::Direction::Out,
            false,
            SimConfig::default(),
            Charging::Quiesce,
            &mut rec,
            &mut Recovery::disabled(),
            "csssp",
        )
        .unwrap();
        let empty = RoutedTable::untracked(congest_graph::DistMatrix::filled(0, n, u64::INF));
        let dist = extend_all_sources(
            &g,
            &topo,
            &cfg,
            &coll,
            &[],
            &empty,
            &mut rec,
            &mut Recovery::disabled(),
        )
        .unwrap();
        // with no blockers, result must be within [δ, δ_2h]: at least the
        // h-hop reachability of the CSSSP extended by h more hops.
        let exact = apsp_dijkstra(&g);
        for x in 0..n {
            for t in 0..n {
                assert!(dist[x][t] >= exact[x][t]);
                if coll.dist[t][x] != u64::INF {
                    assert!(dist[x][t] <= coll.dist[t][x]);
                }
            }
        }
    }
}
