//! # congest-apsp
//!
//! The paper's primary contribution: deterministic `Õ(n^{4/3})`-round
//! weighted APSP in the CONGEST model (Agarwal & Ramachandran, SPAA 2020),
//! with every substrate algorithm it depends on, plus the baselines it is
//! compared against in Table 1.
//!
//! ## Quickstart
//!
//! ```
//! use congest_apsp::{apsp_agarwal_ramachandran, ApspConfig, BlockerMethod, Step6Method};
//! use congest_graph::generators::{gnm_connected, WeightDist};
//!
//! let g = gnm_connected(16, 32, true, WeightDist::Uniform(0, 9), 42);
//! let out = apsp_agarwal_ramachandran(
//!     &g,
//!     &ApspConfig::default(),
//!     BlockerMethod::Derandomized,
//!     Step6Method::Pipelined,
//! )
//! .unwrap();
//! assert_eq!(out.dist, congest_graph::seq::apsp_dijkstra(&g));
//! println!("{}", out.recorder.table());
//! ```

#![warn(missing_docs)]
// Index-based loops are used deliberately where they mirror the paper's
// per-node pseudocode or iterate parallel arrays; iterator rewrites would
// obscure the correspondence.
#![allow(clippy::needless_range_loop)]

pub mod apsp;
pub mod baselines;
pub mod bf;
pub mod blocker;
pub mod bottleneck;
pub mod config;
pub mod csssp;
pub mod extension;
pub mod pipeline;
pub mod trees;

pub use apsp::{apsp_agarwal_ramachandran, ApspMeta, ApspOutcome, BlockerMethod, Step6Method};
pub use baselines::{apsp_ar18, apsp_naive};
pub use config::{ApspConfig, BlockerParams, Charging};
