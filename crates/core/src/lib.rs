//! # congest-apsp
//!
//! The paper's primary contribution: deterministic `Õ(n^{4/3})`-round
//! weighted APSP in the CONGEST model (Agarwal & Ramachandran, SPAA 2020),
//! with every substrate algorithm it depends on, plus the baselines it is
//! compared against in Table 1.
//!
//! ## Quickstart — the [`Solver`] facade
//!
//! All three algorithms are reached through one builder; every knob
//! defaults to the paper's headline configuration, and the result carries
//! the full distance matrix in a single flat
//! [`DistMatrix`](congest_graph::DistMatrix) arena:
//!
//! ```
//! use congest_apsp::{Algorithm, BlockerMethod, Solver, Step6Method, Verbosity};
//! use congest_graph::generators::{gnm_connected, WeightDist};
//!
//! let g = gnm_connected(16, 32, true, WeightDist::Uniform(0, 9), 42);
//!
//! // The paper's deterministic Õ(n^{4/3}) configuration is the default.
//! let out = Solver::builder(&g).run().unwrap();
//! assert_eq!(out.dist, congest_graph::seq::apsp_dijkstra(&g));
//! println!("{}", out.recorder.table());
//!
//! // Every knob is an explicit builder method.
//! let compared = Solver::builder(&g)
//!     .algorithm(Algorithm::Ar18)   // the Õ(n^{3/2}) predecessor
//!     .verbosity(Verbosity::Summary) // collapse phase accounting
//!     .run()
//!     .unwrap();
//! assert_eq!(compared.dist, out.dist);
//!
//! // Knobs of the paper's pipeline: blocker construction and Step 6.
//! let strawman = Solver::builder(&g)
//!     .blocker_method(BlockerMethod::Greedy)
//!     .step6_method(Step6Method::TrivialBroadcast)
//!     .run()
//!     .unwrap();
//! assert_eq!(strawman.dist, out.dist);
//! ```
//!
//! ## Step-7 successor tracking (routing, not just distances)
//!
//! By default every algorithm also performs *distributed successor
//! tracking*: each relax/push message carries the first hop of the path it
//! summarizes (one extra O(log n)-bit id word, visible in the recorder's
//! payload accounting), so as distances settle every node also learns its
//! next hop, exactly as in the AR18 deterministic APSP construction. The
//! outcome's `dist` then carries a target-major successor plane:
//!
//! ```
//! use congest_apsp::Solver;
//! use congest_graph::generators::{gnm_connected, WeightDist};
//!
//! let g = gnm_connected(12, 24, true, WeightDist::Uniform(1, 9), 7);
//! let out = Solver::builder(&g).run().unwrap();
//! let plane = out.dist.successors().expect("tracking is on by default");
//! assert_eq!(plane.len(), 12 * 12);
//! // dist.successor(u, v) = first hop from u toward v.
//! let distances_only = Solver::builder(&g).track_successors(false).run().unwrap();
//! assert!(distances_only.dist.successors().is_none());
//! assert_eq!(out.dist, distances_only.dist); // tracking never perturbs distances
//! ```
//!
//! The serving layer picks the result up without copying:
//! `out.into_oracle(&g)` (via `congest_oracle::IntoOracle`) moves the n²
//! arena — and the successor plane, when present — straight into a
//! query-ready `Oracle`, skipping the oracle's reverse-BFS successor
//! derivation entirely (`congest_oracle::successor_derivations` witnesses
//! the zero-derivation handoff).
//!
//! ## Fault model & recovery
//!
//! The pipeline is self-verifying: armed with a seeded
//! [`FaultSpec`](congest_sim::fault::FaultSpec) via
//! [`SolverBuilder::fault_plan`](solver::SolverBuilder::fault_plan), every
//! phase runs inside a detect-and-recover loop ([`Recovery`]). An attempt
//! is accepted only if the engine counted **zero injected faults** for it
//! *and* the phase's invariant sentinel (tree telescoping, row fixpoints,
//! flood completeness, transpose equality — see [`recovery::sentinels`])
//! passes; anything else re-runs just that phase under a fresh
//! deterministic per-attempt salt, up to
//! [`max_phase_retries`](solver::SolverBuilder::max_phase_retries). A
//! final whole-matrix certificate guards the assembled result.
//!
//! The contract, enforced by the differential `fault_matrix` test suite:
//! under *any* seeded plan, [`Solver::run`] returns distances (and
//! successor plane, and recorded per-phase rounds) **bit-identical** to
//! the fault-free run, or the typed [`SolverError::Unrecoverable`] — never
//! silently wrong answers, never a hang. The outcome's
//! [`FaultReport`](ApspOutcome::fault_report) records what recovery
//! absorbed (injections, retries, rounds lost to rejected attempts).
//!
//! ```
//! use congest_apsp::{Solver, SolverError};
//! use congest_graph::generators::{gnm_connected, WeightDist};
//! use congest_sim::fault::FaultSpec;
//!
//! let g = gnm_connected(14, 28, true, WeightDist::Uniform(0, 9), 3);
//! let clean = Solver::builder(&g).run().unwrap();
//! let plan = FaultSpec::seeded(7).drops(200).corruption(100);
//! match Solver::builder(&g).fault_plan(plan).max_phase_retries(8).run() {
//!     Ok(out) => {
//!         assert_eq!(out.dist, clean.dist); // recovered == bit-identical
//!         println!("absorbed: {:?}", out.fault_report);
//!     }
//!     Err(SolverError::Unrecoverable { phase, attempts, .. }) => {
//!         println!("refused after {attempts} attempts in {phase}");
//!     }
//!     Err(e) => panic!("armed plans never leak raw engine errors: {e}"),
//! }
//! ```
//!
//! With no plan armed the recovery layer is zero-cost: one attempt per
//! phase on the exact configuration, no sentinel evaluation, byte-identical
//! behavior — and the deprecated [`compat`] shims reject armed plans up
//! front, so fault injection is exclusive to the builder API.
//!
//! ## Migrating from the free functions
//!
//! The pre-facade entry points (`apsp_agarwal_ramachandran`, `apsp_ar18`,
//! `apsp_naive`) still exist as `#[deprecated]` shims in [`compat`] and
//! behave bit-identically; see that module's table for the one-line
//! replacements. New code — and everything inside this workspace, which
//! builds with `deny(deprecated)` — uses the builder.

#![warn(missing_docs)]
#![deny(deprecated)]
// Index-based loops are used deliberately where they mirror the paper's
// per-node pseudocode or iterate parallel arrays; iterator rewrites would
// obscure the correspondence.
#![allow(clippy::needless_range_loop)]

pub mod apsp;
pub mod baselines;
pub mod bf;
pub mod blocker;
pub mod bottleneck;
pub mod compat;
pub mod config;
pub mod csssp;
pub mod extension;
pub mod pipeline;
pub mod recovery;
pub mod solver;
pub mod trees;

pub use apsp::{ApspMeta, ApspOutcome, BlockerMethod, Step6Method};
#[allow(deprecated)]
pub use compat::{apsp_agarwal_ramachandran, apsp_ar18, apsp_naive};
pub use config::{ApspConfig, BlockerParams, Charging};
pub use recovery::{FaultReport, Recovery, SolverError};
pub use solver::{Algorithm, Solver, SolverBuilder, Verbosity};
