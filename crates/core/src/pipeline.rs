//! Step 6 of Algorithm 1: the reversed q-sink shortest paths problem (§4).
//!
//! Every node x holds δ(x, c) for every blocker c ∈ Q (computed locally in
//! Step 5); the values must reach their blockers. The paper splits by the
//! hop-length of the shortest path:
//!
//! * **Far case** (Algorithm 8, hops > n^{2/3}): a second-level blocker
//!   set Q′ over the n^{2/3}-in-CSSSP of Q; full SSSPs from each c′ ∈ Q′
//!   and one broadcast of the (x, c′) table let each c combine
//!   δ(x,c′) + δ(c′,c) locally.
//! * **Near case** (Algorithm 9, hops ≤ n^{2/3}): prune bottleneck nodes B
//!   (Algorithm 13) so per-node congestion drops to n·√|Q|, handle pruned
//!   sources via B exactly like the far case, then push the remaining
//!   values up the in-trees with the simple cyclic **round-robin** of
//!   Steps 8–9 — the paper's second main contribution. Algorithm 10's
//!   frames/stages are the analysis; we instrument the run with
//!   per-checkpoint "active tree" counts to reproduce the Lemma 4.8
//!   progress measure (experiment F3).

use crate::bf::run_full_sssp;
use crate::blocker::{alg2_blocker, Selection};
use crate::bottleneck::{compute_bottlenecks, BottleneckResult};
use crate::config::{ApspConfig, BlockerParams};
use crate::csssp::build_csssp;
use congest_graph::seq::Direction;
use congest_graph::{DistMatrix, Graph, NodeId, Weight, NO_SUCC};
use congest_sim::primitives::all_to_all_broadcast;
use congest_sim::{
    Engine, Envelope, NodeEnv, NodeLogic, Outbox, Recorder, RunUntil, SimConfig, SimError, Topology,
};
use std::collections::VecDeque;

/// Queue discipline of the near-case push (Step 9 uses round-robin; the
/// alternatives exist for the F4 ablation of this design choice).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum PushDiscipline {
    /// The paper's cyclic round-robin over the blocker order O.
    #[default]
    RoundRobin,
    /// Always drain the lowest-indexed nonempty queue first (no fairness).
    FixedPriority,
    /// Always serve the longest queue (greedy load heuristic).
    LongestFirst,
}

/// A value table paired with an optional first-hop plane of the same
/// shape — the routing-aware currency of Steps 5–7.
///
/// `dist[r][c]` is a distance whose path starts at some origin node
/// (conventionally the *source* coordinate of the table: row `x` for the
/// n×|Q| `dvals` table, column `x` for the |Q|×n blocker table), and
/// `first_at(r, c)` is the first edge out of that origin on a path
/// realizing the value ([`NO_SUCC`] for zero-length paths, unreachable
/// pairs, or untracked tables). Keeping the two planes together is what
/// lets Step 6 deliver *routed* distances to the blockers and Step 7 seed
/// its extension runs with paths anchored at the true origin.
#[derive(Clone, Debug)]
pub struct RoutedTable<W> {
    /// The value table.
    pub dist: DistMatrix<W>,
    /// The parallel first-hop plane (row-major, same shape); `None` when
    /// the producing pipeline ran with successor tracking off.
    pub first: Option<Box<[NodeId]>>,
}

impl<W: Weight> RoutedTable<W> {
    /// Wraps a table without routing information (tracking off).
    #[must_use]
    pub fn untracked(dist: DistMatrix<W>) -> Self {
        RoutedTable { dist, first: None }
    }

    /// Wraps a table with an empty ([`NO_SUCC`]-filled) first-hop plane.
    #[must_use]
    pub fn tracked(dist: DistMatrix<W>) -> Self {
        let cells = dist.rows() * dist.cols();
        RoutedTable { dist, first: Some(vec![NO_SUCC; cells].into_boxed_slice()) }
    }

    /// `true` iff the table carries a first-hop plane.
    #[must_use]
    pub fn is_tracked(&self) -> bool {
        self.first.is_some()
    }

    /// First hop recorded for cell `(r, c)`; [`NO_SUCC`] when untracked.
    ///
    /// # Panics
    /// Panics if `(r, c)` is out of range.
    #[inline]
    #[must_use]
    pub fn first_at(&self, r: usize, c: usize) -> NodeId {
        let (rows, cols) = (self.dist.rows(), self.dist.cols());
        assert!(r < rows && c < cols, "cell ({r}, {c}) out of range");
        self.first.as_ref().map_or(NO_SUCC, |f| f[r * cols + c])
    }

    /// Records `first` for cell `(r, c)`; no-op when untracked.
    ///
    /// # Panics
    /// Panics if `(r, c)` is out of range.
    #[inline]
    pub fn set_first(&mut self, r: usize, c: usize, first: NodeId) {
        let (rows, cols) = (self.dist.rows(), self.dist.cols());
        assert!(r < rows && c < cols, "cell ({r}, {c}) out of range");
        if let Some(f) = self.first.as_mut() {
            f[r * cols + c] = first;
        }
    }
}

/// Statistics from one Step-6 run (experiments T3/F3).
#[derive(Clone, Debug, Default)]
pub struct Step6Stats {
    /// |Q′| (far-case second-level blockers).
    pub q_prime_size: usize,
    /// |B| (near-case bottleneck nodes).
    pub b_size: usize,
    /// Max per-node congestion before bottleneck pruning.
    pub congestion_before: u64,
    /// Max per-node congestion after pruning (≤ n√|Q|).
    pub congestion_after: u64,
    /// Rounds spent in the round-robin push.
    pub round_robin_rounds: u64,
    /// Messages forwarded by the round-robin push.
    pub round_robin_messages: u64,
    /// `(round, max over nodes of #blocker-queues still nonempty)` sampled
    /// at powers of two — the empirical Lemma 4.8 progress measure.
    pub progress: Vec<(u64, usize)>,
}

// ---------------------------------------------------------------------
// Round-robin push (Algorithm 9 Steps 6-9 / Algorithm 10)
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
struct RrMsg<W> {
    qi: u32,
    x: NodeId,
    dist: W,
    /// First hop from `x` on the path realizing `dist` ([`NO_SUCC`] when
    /// the run does not track successors); one extra id word on the wire.
    first: NodeId,
}

struct RrNode<W> {
    discipline: PushDiscipline,
    /// Per tree: channel index of the parent toward the blocker root
    /// (pre-resolved so the push uses [`Outbox::send_nbr`]).
    parent_ni: Vec<Option<usize>>,
    /// Per tree: FIFO of (source, value, first hop) messages to forward.
    queues: Vec<VecDeque<(NodeId, W, NodeId)>>,
    /// Cyclic pointer into the blocker order O (Step 7).
    ptr: usize,
    outstanding: usize,
    /// Trees this node is the root of.
    root_of: Vec<bool>,
    /// Values received as root: (qi, x, dist, first hop).
    received: Vec<(u32, NodeId, W, NodeId)>,
    /// (round, nonempty-queue count) at power-of-two rounds.
    checkpoints: Vec<(u64, usize)>,
    /// Whether the push carries first hops (affects payload accounting).
    track: bool,
}

impl<W: Weight> NodeLogic for RrNode<W> {
    type Msg = RrMsg<W>;

    fn on_round(
        &mut self,
        env: &NodeEnv<'_>,
        inbox: &[Envelope<RrMsg<W>>],
        out: &mut Outbox<'_, RrMsg<W>>,
    ) {
        for e in inbox {
            let RrMsg { qi, x, dist, first } = e.msg;
            if self.root_of[qi as usize] {
                self.received.push((qi, x, dist, first));
            } else {
                self.queues[qi as usize].push_back((x, dist, first));
                self.outstanding += 1;
            }
        }
        if env.round.is_power_of_two() || env.round == 0 {
            let active = self.queues.iter().filter(|q| !q.is_empty()).count();
            self.checkpoints.push((env.round, active));
        }
        // One unsent message per round; the queue choice is the Step 7-9
        // design decision under ablation.
        let k = self.queues.len();
        let next = match self.discipline {
            PushDiscipline::RoundRobin => {
                (0..k).map(|t| (self.ptr + t) % k).find(|&qi| !self.queues[qi].is_empty())
            }
            PushDiscipline::FixedPriority => (0..k).find(|&qi| !self.queues[qi].is_empty()),
            PushDiscipline::LongestFirst => (0..k)
                .filter(|&qi| !self.queues[qi].is_empty())
                .max_by_key(|&qi| self.queues[qi].len()),
        };
        if let Some(qi) = next {
            let (x, dist, first) = self.queues[qi].pop_front().expect("nonempty");
            let ni = self.parent_ni[qi].expect("queued message implies a parent");
            out.send_nbr(ni, RrMsg { qi: qi as u32, x, dist, first });
            self.ptr = (qi + 1) % k;
            self.outstanding -= 1;
        }
    }

    fn active(&self) -> bool {
        self.outstanding > 0
    }

    fn msg_words(&self, _msg: &Self::Msg) -> u32 {
        // tree index + source id + distance, plus the first-hop id when
        // successor tracking rides along.
        if self.track {
            4
        } else {
            3
        }
    }
}

/// The reversed q-sink propagation: delivers the `n × |Q|` table
/// `dvals.dist[x][qi] = δ(x, q[qi])` (with its first-hop plane, when
/// tracked) from every x to blocker `q[qi]`. Returns the `|Q| × n` table
/// `out.dist[qi][x]` as known at the blocker (INF where no path exists) —
/// tracked iff `dvals` is — plus the stats.
///
/// # Errors
/// Propagates engine errors.
#[allow(clippy::too_many_lines)]
pub fn propagate_to_blockers<W: Weight>(
    g: &Graph<W>,
    topo: &Topology,
    cfg: &ApspConfig,
    params: BlockerParams,
    q: &[NodeId],
    dvals: &RoutedTable<W>,
    rec: &mut Recorder,
) -> Result<(RoutedTable<W>, Step6Stats), SimError> {
    propagate_to_blockers_with(g, topo, cfg, params, q, dvals, PushDiscipline::RoundRobin, rec)
}

/// [`propagate_to_blockers`] with an explicit near-case queue discipline
/// (F4 ablation).
///
/// # Errors
/// Propagates engine errors.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
pub fn propagate_to_blockers_with<W: Weight>(
    g: &Graph<W>,
    topo: &Topology,
    cfg: &ApspConfig,
    params: BlockerParams,
    q: &[NodeId],
    dvals: &RoutedTable<W>,
    discipline: PushDiscipline,
    rec: &mut Recorder,
) -> Result<(RoutedTable<W>, Step6Stats), SimError> {
    let n = g.n();
    let track = dvals.is_tracked();
    let mut stats = Step6Stats::default();
    let mut out = if track {
        RoutedTable::tracked(DistMatrix::filled(q.len(), n, W::INF))
    } else {
        RoutedTable::untracked(DistMatrix::filled(q.len(), n, W::INF))
    };
    // A blocker trivially knows its own row entry (a zero-length path: no
    // first hop).
    for (qi, &c) in q.iter().enumerate() {
        out.dist[qi][c as usize] = W::ZERO;
    }
    if q.is_empty() {
        return Ok((out, stats));
    }
    let h2 = cfg.hop_param_sq(n);
    let sim = cfg.sim;

    // Shared substrate: the n^{2/3}-in-CSSSP for source set Q (Alg 8
    // Step 1 / Alg 9 input). In-direction trees: no first-hop tracking
    // needed, the push below forwards the origin's first hop verbatim.
    // Recovery is disabled here on purpose: the solver retries Step 6 as
    // one compound unit, so nested per-tree retries would only skew the
    // per-attempt fault accounting.
    let cq = build_csssp(
        g,
        topo,
        q,
        h2,
        Direction::In,
        false,
        sim,
        cfg.charging,
        rec,
        &mut crate::recovery::Recovery::disabled(),
        "step6: n^{2/3}-in-CSSSP for Q",
    )
    .map_err(|e| match e {
        crate::recovery::SolverError::Sim(e) => e,
        crate::recovery::SolverError::Unrecoverable { .. } => {
            unreachable!("disabled recovery never exhausts a retry budget")
        }
    })?;

    // ---------------- Algorithm 8 (far case) ----------------
    let mut qp_rec = Recorder::new();
    let (qp_res, _) = alg2_blocker(topo, sim, &cq, params, Selection::Derandomized, &mut qp_rec)?;
    rec.absorb("step6/alg8: Q' ", qp_rec);
    stats.q_prime_size = qp_res.q.len();
    apply_relay_set(g, topo, cfg, q, &qp_res.q, &mut out, rec, "alg8")?;

    // ---------------- Algorithm 9 (near case) ----------------
    // Step 1: bottleneck nodes with the paper's n√|Q| threshold.
    let threshold = ((n as f64) * (q.len() as f64).sqrt()).ceil() as u64;
    let BottleneckResult { b, removed, congestion_before, congestion_after } =
        compute_bottlenecks(topo, sim, &cq, threshold, rec)?;
    stats.b_size = b.len();
    stats.congestion_before = congestion_before;
    stats.congestion_after = congestion_after;
    // Steps 2-4: SSSPs + broadcast for each b ∈ B.
    apply_relay_set(g, topo, cfg, q, &b, &mut out, rec, "alg9-B")?;

    // Steps 6-9: round-robin push along the pruned trees.
    let engine = Engine::new(topo, sim);
    let mut nodes: Vec<RrNode<W>> = (0..n)
        .map(|v| {
            let nbrs = topo.neighbors(v as NodeId);
            let parent_ni: Vec<Option<usize>> = (0..q.len())
                .map(|qi| {
                    if removed[v][qi] {
                        None
                    } else {
                        cq.parent[v][qi]
                            .map(|p| nbrs.binary_search(&p).expect("tree parent is a neighbor"))
                    }
                })
                .collect();
            let mut queues: Vec<VecDeque<(NodeId, W, NodeId)>> = vec![VecDeque::new(); q.len()];
            let mut outstanding = 0;
            for (qi, &c) in q.iter().enumerate() {
                let vn = v as NodeId;
                if vn != c && cq.is_member(vn, qi) && !removed[v][qi] && !dvals.dist[v][qi].is_inf()
                {
                    queues[qi].push_back((vn, dvals.dist[v][qi], dvals.first_at(v, qi)));
                    outstanding += 1;
                }
            }
            RrNode {
                discipline,
                parent_ni,
                queues,
                ptr: 0,
                outstanding,
                root_of: (0..q.len()).map(|qi| q[qi] == v as NodeId).collect(),
                received: Vec::new(),
                checkpoints: Vec::new(),
                track,
            }
        })
        .collect();
    // Budget: total message-hops ≤ n·|Q|·h2 (every value travels at most
    // h2 tree hops), far looser than the paper's Õ(n^{4/3}) bound.
    let budget = (n as u64) * (q.len() as u64) * (h2 as u64 + 2) + 4 * n as u64 + 64;
    let report = engine.run(&mut nodes, RunUntil::Quiesce { max: budget })?;
    stats.round_robin_rounds = report.rounds;
    stats.round_robin_messages = report.messages;
    rec.record("step6/alg9: round-robin push", report);
    // Collect at the blockers; aggregate the progress measure.
    let mut progress: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
    for (v, nd) in nodes.into_iter().enumerate() {
        for (qi, x, dist, first) in nd.received {
            debug_assert_eq!(q[qi as usize] as usize, v);
            if dist < out.dist[qi as usize][x as usize] {
                out.dist[qi as usize][x as usize] = dist;
                out.set_first(qi as usize, x as usize, first);
            }
        }
        for (round, active) in nd.checkpoints {
            let e = progress.entry(round).or_insert(0);
            *e = (*e).max(active);
        }
    }
    stats.progress = progress.into_iter().collect();
    Ok((out, stats))
}

/// Shared far-case/bottleneck relay machinery (Alg 8 Steps 3-5, Alg 9
/// Steps 2-4): for each relay r, run full in- and out-SSSP, broadcast
/// every (x, r, δ(x,r)) and let each blocker c combine δ(x,r) + δ(r,c).
///
/// When `out` is tracked, the broadcast items additionally carry x's next
/// hop toward the relay (its in-SSSP parent — local knowledge at x), so
/// each blocker learns the *routed* value. When x is the relay itself the
/// combined path starts on the relay's out-tree; the relay's out-SSSP runs
/// with first-hop tracking for exactly that case.
#[allow(clippy::too_many_arguments)]
fn apply_relay_set<W: Weight>(
    g: &Graph<W>,
    topo: &Topology,
    cfg: &ApspConfig,
    q: &[NodeId],
    relays: &[NodeId],
    out: &mut RoutedTable<W>,
    rec: &mut Recorder,
    label: &str,
) -> Result<(), SimError> {
    if relays.is_empty() {
        return Ok(());
    }
    let n = g.n();
    let sim = cfg.sim;
    let track = out.is_tracked();
    // δ(x, r) at x (in-SSSP) and δ(r, c) at c (out-SSSP), r in sequence.
    // The routing side-tables are only materialized when tracking is on.
    let mut to_relay: Vec<Vec<W>> = Vec::with_capacity(relays.len()); // [ri][x]
    let mut to_relay_next: Vec<Vec<NodeId>> = Vec::new(); // [ri][x], tracked only
    let mut from_relay: Vec<Vec<W>> = Vec::with_capacity(relays.len()); // [ri][v]
    let mut from_relay_first: Vec<Vec<NodeId>> = Vec::new(); // [ri][v], tracked only
    for &r in relays {
        let (res_in, rep) = run_full_sssp(g, topo, r, Direction::In, false, sim, cfg.charging)?;
        rec.record(format!("step6/{label}: in-SSSP({r})"), rep);
        to_relay.push(res_in.entries.iter().map(|e| e.dist).collect());
        let (res_out, rep) = run_full_sssp(g, topo, r, Direction::Out, track, sim, cfg.charging)?;
        rec.record(format!("step6/{label}: out-SSSP({r})"), rep);
        from_relay.push(res_out.entries.iter().map(|e| e.dist).collect());
        if track {
            to_relay_next
                .push(res_in.entries.iter().map(|e| e.parent.unwrap_or(NO_SUCC)).collect());
            from_relay_first
                .push(res_out.entries.iter().map(|e| e.first.unwrap_or(NO_SUCC)).collect());
        }
    }
    // Broadcast (x, ri, δ(x, r_ri)) plus x's next hop toward the relay:
    // n·|relays| values in O(n·|relays|) rounds (Lemma A.2 / Alg 8 Step 4).
    let initial: Vec<Vec<BroadcastItem<W>>> = (0..n)
        .map(|x| {
            (0..relays.len())
                .filter(|&ri| !to_relay[ri][x].is_inf())
                .map(|ri| BroadcastItem {
                    x: x as NodeId,
                    ri: ri as u32,
                    dist: DistKey(to_relay[ri][x]),
                    first: if track { to_relay_next[ri][x] } else { NO_SUCC },
                })
                .collect()
        })
        .collect();
    // W must be hashable for the flood; distances are compared exactly, so
    // forward them as opaque payloads keyed by (x, ri).
    let (_, rep) = all_to_all_broadcast(topo, sim, initial, if track { 4 } else { 3 })?;
    rec.record(format!("step6/{label}: (x, r) table broadcast"), rep);
    // Local combine at each blocker (the orchestrator mirrors what node c
    // now knows: the broadcast delivered the full table everywhere).
    for (qi, &c) in q.iter().enumerate() {
        for (ri, &r) in relays.iter().enumerate() {
            let rc = from_relay[ri][c as usize];
            if rc.is_inf() {
                continue;
            }
            for x in 0..n {
                let xr = to_relay[ri][x];
                if xr.is_inf() {
                    continue;
                }
                let via = xr.plus(rc);
                if via < out.dist[qi][x] {
                    out.dist[qi][x] = via;
                    if track {
                        // Path x →(in-tree) r →(out-tree) c: it starts on
                        // the in-tree segment unless x is the relay itself.
                        let f = if x == r as usize {
                            from_relay_first[ri][c as usize]
                        } else {
                            to_relay_next[ri][x]
                        };
                        out.set_first(qi, x, f);
                    }
                }
            }
        }
    }
    Ok(())
}

/// Flood payload: one (source, relay, distance, first hop) table entry.
#[derive(Clone, Debug, PartialEq, Eq)]
struct BroadcastItem<W: Weight> {
    x: NodeId,
    ri: u32,
    dist: DistKey<W>,
    /// First hop from `x` ([`NO_SUCC`] when untracked or zero-length).
    first: NodeId,
}

impl<W: Weight> std::hash::Hash for BroadcastItem<W> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.x.hash(state);
        self.ri.hash(state);
        self.dist.hash(state);
        self.first.hash(state);
    }
}

/// Hash/Eq adapter for weights (weights are `Ord + Eq`; hashing goes
/// through the debug-stable byte representation of the ordering key).
#[derive(Clone, Debug, PartialEq, Eq)]
struct DistKey<W>(W);

impl<W: Weight> std::hash::Hash for DistKey<W> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Weights are opaque; hash via their debug formatting, which is
        // stable for the concrete types used (u32/u64/F64).
        format!("{:?}", self.0).hash(state);
    }
}

/// Trivial deterministic alternative to Algorithms 8+9: broadcast all
/// n·|Q| values (the Õ(n^{5/3}) strawman the paper improves on; §4 "A
/// trivial solution is to broadcast all these messages in the network").
///
/// # Errors
/// Propagates engine errors.
pub fn propagate_trivial_broadcast<W: Weight>(
    topo: &Topology,
    sim: SimConfig,
    q: &[NodeId],
    dvals: &RoutedTable<W>,
    rec: &mut Recorder,
) -> Result<RoutedTable<W>, SimError> {
    let n = topo.n();
    let track = dvals.is_tracked();
    let initial: Vec<Vec<BroadcastItem<W>>> = (0..n)
        .map(|x| {
            (0..q.len())
                .filter(|&qi| !dvals.dist[x][qi].is_inf())
                .map(|qi| BroadcastItem {
                    x: x as NodeId,
                    ri: qi as u32,
                    dist: DistKey(dvals.dist[x][qi]),
                    first: dvals.first_at(x, qi),
                })
                .collect()
        })
        .collect();
    let (logs, rep) = all_to_all_broadcast(topo, sim, initial, if track { 4 } else { 3 })?;
    rec.record("step6-trivial: full broadcast", rep);
    let mut out = if track {
        RoutedTable::tracked(DistMatrix::filled(q.len(), n, W::INF))
    } else {
        RoutedTable::untracked(DistMatrix::filled(q.len(), n, W::INF))
    };
    for (qi, &c) in q.iter().enumerate() {
        out.dist[qi][c as usize] = W::ZERO;
        for item in &logs[c as usize] {
            if item.ri as usize == qi && item.dist.0 < out.dist[qi][item.x as usize] {
                out.dist[qi][item.x as usize] = item.dist.0;
                out.set_first(qi, item.x as usize, item.first);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{gnm_connected, WeightDist};
    use congest_graph::seq::{apsp_dijkstra, dijkstra};

    /// Oracle-driven harness: feed exact δ(x,c) values and verify delivery.
    fn run_case(n: usize, extra: usize, seed: u64, q: Vec<NodeId>) {
        let g = gnm_connected(n, extra, true, WeightDist::Uniform(0, 9), seed);
        let topo = Topology::from_graph(&g);
        let cfg = ApspConfig::default();
        let exact = apsp_dijkstra(&g);
        let dvals = RoutedTable::untracked(DistMatrix::from_rows(
            (0..n).map(|x| q.iter().map(|&c| exact[x][c as usize]).collect()).collect(),
        ));
        let mut rec = Recorder::new();
        let (out, stats) =
            propagate_to_blockers(&g, &topo, &cfg, BlockerParams::default(), &q, &dvals, &mut rec)
                .unwrap();
        for (qi, &c) in q.iter().enumerate() {
            let oracle = dijkstra(&g, c, Direction::In);
            for x in 0..n {
                assert_eq!(
                    out.dist[qi][x], oracle[x],
                    "seed {seed}: blocker {c} missing/incorrect δ({x},{c})"
                );
            }
        }
        // paper invariant: post-pruning congestion within threshold
        let threshold = ((n as f64) * (q.len() as f64).sqrt()).ceil() as u64;
        assert!(stats.congestion_after <= threshold);
    }

    #[test]
    fn delivers_exact_values_small() {
        run_case(14, 30, 3, vec![2, 7, 11]);
    }

    #[test]
    fn delivers_exact_values_more_blockers() {
        run_case(18, 36, 9, vec![0, 4, 8, 12, 16]);
    }

    #[test]
    fn delivers_on_sparse_graph() {
        run_case(16, 8, 5, vec![3, 10]);
    }

    /// A tracked dvals table (exact distances + any valid first hop per
    /// value) must reach the blockers with first hops that telescope in the
    /// exact metric — whichever of the three delivery mechanisms (alg8
    /// relays, alg9 bottleneck relays, round-robin push) carried each value.
    #[test]
    fn tracked_delivery_first_hops_telescope() {
        let n = 16;
        let g = gnm_connected(n, 34, true, WeightDist::Uniform(0, 9), 12);
        let topo = Topology::from_graph(&g);
        let cfg = ApspConfig::default();
        let q: Vec<NodeId> = vec![2, 7, 11];
        let exact = apsp_dijkstra(&g);
        let min_edge = |u: usize, f: NodeId| {
            g.out_edges(u as NodeId).filter(|&(t, _)| t == f).map(|(_, w)| w).min()
        };
        let mut dvals = RoutedTable::tracked(DistMatrix::filled(n, q.len(), u64::INF));
        for x in 0..n {
            for (qi, &c) in q.iter().enumerate() {
                let d = exact[x][c as usize];
                dvals.dist[x][qi] = d;
                if x != c as usize && d != u64::INF {
                    // Any out-neighbor on a shortest path is a valid first
                    // hop; pick the smallest-id one.
                    let f = g
                        .out_edges(x as NodeId)
                        .filter(|&(t, w)| w.plus(exact[t as usize][c as usize]) == d)
                        .map(|(t, _)| t)
                        .min()
                        .expect("finite distance implies a shortest-path edge");
                    dvals.set_first(x, qi, f);
                }
            }
        }
        let mut rec = Recorder::new();
        let (out, _) =
            propagate_to_blockers(&g, &topo, &cfg, BlockerParams::default(), &q, &dvals, &mut rec)
                .unwrap();
        assert!(out.is_tracked());
        for (qi, &c) in q.iter().enumerate() {
            for x in 0..n {
                let d = out.dist[qi][x];
                if x == c as usize {
                    assert_eq!(out.first_at(qi, x), NO_SUCC, "zero-length path has no first hop");
                    continue;
                }
                if d == u64::INF {
                    continue;
                }
                let f = out.first_at(qi, x);
                assert_ne!(f, NO_SUCC, "delivered δ({x},{c}) lost its first hop");
                let w = min_edge(x, f).expect("first hop must be an out-neighbor");
                assert_eq!(
                    d,
                    w.plus(exact[f as usize][c as usize]),
                    "blocker {c}, source {x}: first hop {f} does not telescope"
                );
            }
        }
    }

    #[test]
    fn empty_q_is_noop() {
        let g = gnm_connected(8, 16, true, WeightDist::Unit, 1);
        let topo = Topology::from_graph(&g);
        let cfg = ApspConfig::default();
        let mut rec = Recorder::new();
        let (out, stats) = propagate_to_blockers::<u64>(
            &g,
            &topo,
            &cfg,
            BlockerParams::default(),
            &[],
            &RoutedTable::untracked(DistMatrix::filled(8, 0, u64::INF)),
            &mut rec,
        )
        .unwrap();
        assert_eq!(out.dist.rows(), 0);
        assert_eq!(stats.round_robin_rounds, 0);
    }

    #[test]
    fn trivial_broadcast_delivers_same() {
        let n = 14;
        let g = gnm_connected(n, 30, true, WeightDist::Uniform(0, 9), 3);
        let topo = Topology::from_graph(&g);
        let q: Vec<NodeId> = vec![2, 7, 11];
        let exact = apsp_dijkstra(&g);
        let dvals = RoutedTable::untracked(DistMatrix::from_rows(
            (0..n).map(|x| q.iter().map(|&c| exact[x][c as usize]).collect()).collect(),
        ));
        let mut rec = Recorder::new();
        let out =
            propagate_trivial_broadcast(&topo, SimConfig::default(), &q, &dvals, &mut rec).unwrap();
        for (qi, &c) in q.iter().enumerate() {
            for x in 0..n {
                assert_eq!(out.dist[qi][x], exact[x][c as usize], "blocker {c} x {x}");
            }
        }
    }

    #[test]
    fn progress_measure_monotone() {
        let n = 16;
        let g = gnm_connected(n, 32, true, WeightDist::Uniform(1, 9), 8);
        let topo = Topology::from_graph(&g);
        let cfg = ApspConfig::default();
        let q: Vec<NodeId> = vec![1, 5, 9, 13];
        let exact = apsp_dijkstra(&g);
        let dvals = RoutedTable::untracked(DistMatrix::from_rows(
            (0..n).map(|x| q.iter().map(|&c| exact[x][c as usize]).collect()).collect(),
        ));
        let mut rec = Recorder::new();
        let (_, stats) =
            propagate_to_blockers(&g, &topo, &cfg, BlockerParams::default(), &q, &dvals, &mut rec)
                .unwrap();
        // the max active-tree count must never increase over checkpoints
        // beyond its starting value's neighborhood (weak monotonicity: the
        // final checkpoint is 0 or the run ended early)
        if let (Some(first), Some(last)) = (stats.progress.first(), stats.progress.last()) {
            assert!(last.1 <= first.1.max(1));
        }
    }
}

#[cfg(test)]
mod discipline_tests {
    use super::*;
    use congest_graph::generators::{gnm_connected, WeightDist};
    use congest_graph::seq::apsp_dijkstra;

    /// All queue disciplines must deliver every value; only round counts
    /// may differ (F4 ablation).
    #[test]
    fn all_disciplines_deliver() {
        let n = 18;
        let g = gnm_connected(n, 36, true, WeightDist::Uniform(0, 9), 6);
        let topo = Topology::from_graph(&g);
        let cfg = ApspConfig::default();
        let q: Vec<NodeId> = vec![0, 5, 9, 14];
        let exact = apsp_dijkstra(&g);
        let dvals = RoutedTable::untracked(DistMatrix::from_rows(
            (0..n).map(|x| q.iter().map(|&c| exact[x][c as usize]).collect()).collect(),
        ));
        let mut reference: Option<DistMatrix<u64>> = None;
        for d in [
            PushDiscipline::RoundRobin,
            PushDiscipline::FixedPriority,
            PushDiscipline::LongestFirst,
        ] {
            let mut rec = Recorder::new();
            let (out, _) = propagate_to_blockers_with(
                &g,
                &topo,
                &cfg,
                crate::config::BlockerParams::default(),
                &q,
                &dvals,
                d,
                &mut rec,
            )
            .unwrap();
            match &reference {
                None => reference = Some(out.dist),
                Some(r) => assert_eq!(&out.dist, r, "{d:?} delivered different values"),
            }
        }
    }
}
