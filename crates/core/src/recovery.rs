//! Phase-level detect-and-recover for the APSP pipeline.
//!
//! The CONGEST engine can inject deterministic faults (see
//! `congest_sim::fault`); this module is the compute side's answer. Every
//! pipeline phase runs through a [`Recovery`] handle that
//!
//! 1. salts the fault seed per attempt (so a retry does not replay the
//!    identical fault pattern),
//! 2. checks the engine's per-phase fault counters and a cheap *invariant
//!    sentinel* on the phase output, and
//! 3. re-runs only the failed phase, up to a bounded number of retries.
//!
//! ## The accept rule and the bit-identical contract
//!
//! An attempt is accepted iff the engine injected **zero** faults into it
//! *and* the phase sentinel passes. Because every protocol in this
//! workspace is deterministic, a zero-fault attempt is bit-identical to
//! the fault-free execution of the same phase on the same inputs — so a
//! run in which every phase eventually passes produces distances,
//! successor planes, and phase accounting **bit-identical to the
//! fault-free run**. A phase that cannot produce a clean attempt within
//! the retry budget surfaces as [`SolverError::Unrecoverable`]. Wrong
//! answers are structurally impossible; hangs are bounded by the engine's
//! per-phase round budgets.
//!
//! The sentinels ([`sentinels`]) are the *detection* half: they re-check
//! phase invariants locally (fixed-point relaxation checks, parent
//! telescoping, flood-log completeness, routed-table transposition) and
//! would flag damage even if the counters were unavailable. Some are
//! complete certificates (full-horizon SSSP), some are one-sided
//! (hop-limited trees) — documented per function.
//!
//! With no fault plan configured, [`Recovery`] runs every attempt exactly
//! once on the base configuration and evaluates no sentinel: the fast
//! path is byte-identical to a build without this module.

use crate::csssp::SsspCollection;
use congest_graph::seq::Direction;
use congest_graph::{DistMatrix, Graph, NodeId, Weight};
use congest_sim::fault::{FaultCounters, FaultSpec};
use congest_sim::{PhaseReport, Recorder, SimConfig, SimError};

/// Errors surfaced by [`crate::Solver::run`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolverError {
    /// The engine aborted and no recovery was configured (protocol bug or
    /// exhausted safety budget — see [`SimError`]).
    Sim(SimError),
    /// A pipeline phase could not produce a fault-free attempt within the
    /// configured retry budget. The computed state is discarded: the
    /// solver never returns damaged distances.
    Unrecoverable {
        /// Label of the phase that exhausted its budget.
        phase: String,
        /// Attempts consumed (1 initial + retries).
        attempts: u32,
        /// The engine error of the last attempt, if it aborted (as opposed
        /// to completing with injected faults or a tripped sentinel).
        last_error: Option<SimError>,
    },
}

impl core::fmt::Display for SolverError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SolverError::Sim(e) => write!(f, "engine error: {e}"),
            SolverError::Unrecoverable { phase, attempts, last_error } => {
                write!(f, "phase {phase:?} unrecoverable after {attempts} attempts")?;
                if let Some(e) = last_error {
                    write!(f, " (last engine error: {e})")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SolverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolverError::Sim(e) => Some(e),
            SolverError::Unrecoverable { last_error, .. } => {
                last_error.as_ref().map(|e| e as &(dyn std::error::Error + 'static))
            }
        }
    }
}

impl From<SimError> for SolverError {
    fn from(e: SimError) -> Self {
        SolverError::Sim(e)
    }
}

/// What the fault plane did to a run, carried on
/// [`ApspOutcome`](crate::ApspOutcome). All-zero when no fault plan was
/// configured (or none of its decisions hit).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Faults injected across *all* attempts, including rejected ones.
    /// (Accepted attempts are fault-free by the accept rule, so everything
    /// here was absorbed by recovery.)
    pub faults: FaultCounters,
    /// Number of phases that needed at least one retry.
    pub phases_retried: u64,
    /// Total retries across all phases.
    pub retries: u64,
    /// Simulated rounds spent on rejected attempts — the round-complexity
    /// price of recovery.
    pub rounds_lost: u64,
    /// Number of attempts rejected by a sentinel (as opposed to the fault
    /// counters alone).
    pub sentinel_trips: u64,
}

impl FaultReport {
    /// `true` iff the fault plane never interfered with the run.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self == &FaultReport::default()
    }
}

/// Telemetry: a retry is worth seeing on a trace timeline. No-op while
/// the global plane is disabled.
fn note_retry(phase: &str, attempt: u32) {
    if congest_telemetry::enabled() {
        let tele = congest_telemetry::global();
        tele.registry().counter("recovery.retries").inc();
        tele.instant(
            "recovery.retry",
            vec![
                ("phase".to_string(), phase.to_string()),
                ("attempt".to_string(), attempt.to_string()),
            ],
        );
    }
}

/// Telemetry: a sentinel rejecting an attempt, ditto.
fn note_sentinel_trip(phase: &str) {
    if congest_telemetry::enabled() {
        let tele = congest_telemetry::global();
        tele.registry().counter("recovery.sentinel_trips").inc();
        tele.instant("recovery.sentinel_trip", vec![("phase".to_string(), phase.to_string())]);
    }
}

/// Per-run retry orchestrator threaded through the pipeline phases.
#[derive(Clone, Debug)]
pub struct Recovery {
    spec: Option<FaultSpec>,
    max_retries: u32,
    report: FaultReport,
    /// Monotone per-phase counter: combined with the attempt index it
    /// salts the fault seed so every (phase, attempt) pair sees an
    /// independent deterministic fault pattern.
    seq: u64,
}

impl Recovery {
    /// A recovery handle for the given fault spec (an inactive or absent
    /// spec disables recovery entirely).
    #[must_use]
    pub fn new(fault: Option<FaultSpec>, max_retries: u32) -> Self {
        Recovery {
            spec: fault.filter(FaultSpec::is_active),
            max_retries,
            report: FaultReport::default(),
            seq: 0,
        }
    }

    /// A handle configured from the solver knobs.
    #[must_use]
    pub fn from_config(cfg: &crate::ApspConfig) -> Self {
        Recovery::new(cfg.fault, cfg.max_phase_retries)
    }

    /// A handle that injects nothing and retries nothing — every phase
    /// runs exactly once on its base configuration (the fast path; used by
    /// direct callers of the phase functions, e.g. tests and benches).
    #[must_use]
    pub fn disabled() -> Self {
        Recovery::new(None, 0)
    }

    /// `true` iff a fault plan is active (sentinels will be evaluated).
    #[must_use]
    pub fn active(&self) -> bool {
        self.spec.is_some()
    }

    /// The accumulated [`FaultReport`].
    #[must_use]
    pub fn report(&self) -> FaultReport {
        self.report
    }

    /// The simulator config for `(seq, attempt)`, fault seed salted.
    fn salted(&self, base: SimConfig, seq: u64, attempt: u32) -> SimConfig {
        let spec = self.spec.expect("salted() is only reached with an active spec");
        SimConfig { fault: Some(spec.reseeded((seq << 16) | u64::from(attempt))), ..base }
    }

    /// Runs one single-engine phase with detect-and-recover.
    ///
    /// `attempt` runs the phase on the given simulator config and returns
    /// the phase output plus its report; `sentinel` re-checks the output's
    /// invariant (evaluated only under an active fault plan). With no
    /// plan, the attempt runs exactly once on `base` — byte-identical to
    /// calling it directly.
    ///
    /// # Errors
    /// [`SolverError::Sim`] without a plan; [`SolverError::Unrecoverable`]
    /// when the retry budget is exhausted.
    pub fn phase<T>(
        &mut self,
        name: &str,
        base: SimConfig,
        mut attempt: impl FnMut(SimConfig) -> Result<(T, PhaseReport), SimError>,
        sentinel: impl Fn(&T) -> Result<(), String>,
    ) -> Result<(T, PhaseReport), SolverError> {
        if self.spec.is_none() {
            return Ok(attempt(base)?);
        }
        let seq = self.seq;
        self.seq += 1;
        let mut last_error = None;
        for attempt_no in 0..=self.max_retries {
            if attempt_no > 0 {
                self.report.retries += 1;
                if attempt_no == 1 {
                    self.report.phases_retried += 1;
                }
                note_retry(name, attempt_no);
            }
            match attempt(self.salted(base, seq, attempt_no)) {
                Err(e) => last_error = Some(e),
                Ok((t, rep)) => {
                    self.report.faults.merge(&rep.faults);
                    let clean = rep.faults.is_zero();
                    let verified = sentinel(&t).is_ok();
                    if !verified {
                        self.report.sentinel_trips += 1;
                        note_sentinel_trip(name);
                    }
                    if clean && verified {
                        return Ok((t, rep));
                    }
                    self.report.rounds_lost += rep.rounds;
                    last_error = None;
                }
            }
        }
        Err(SolverError::Unrecoverable {
            phase: name.to_string(),
            attempts: self.max_retries + 1,
            last_error,
        })
    }

    /// Runs one *multi-engine* phase (e.g. the blocker construction or the
    /// Step-6 pipeline) with detect-and-recover. The attempt records its
    /// sub-phases into a scratch [`Recorder`]; only an accepted attempt's
    /// recording is absorbed into `rec` (under `prefix`), so rejected
    /// attempts never pollute the run's accounting — under faults, the
    /// final recorder equals the fault-free run's recorder exactly.
    ///
    /// # Errors
    /// As [`Recovery::phase`].
    pub fn compound<T>(
        &mut self,
        name: &str,
        prefix: &str,
        base: SimConfig,
        rec: &mut Recorder,
        mut attempt: impl FnMut(SimConfig, &mut Recorder) -> Result<T, SimError>,
        sentinel: impl Fn(&T) -> Result<(), String>,
    ) -> Result<T, SolverError> {
        if self.spec.is_none() {
            let mut scratch = Recorder::new();
            let t = attempt(base, &mut scratch)?;
            rec.absorb(prefix, scratch);
            return Ok(t);
        }
        let seq = self.seq;
        self.seq += 1;
        let mut last_error = None;
        for attempt_no in 0..=self.max_retries {
            if attempt_no > 0 {
                self.report.retries += 1;
                if attempt_no == 1 {
                    self.report.phases_retried += 1;
                }
                note_retry(name, attempt_no);
            }
            let mut scratch = Recorder::new();
            match attempt(self.salted(base, seq, attempt_no), &mut scratch) {
                Err(e) => last_error = Some(e),
                Ok(t) => {
                    let faults = scratch.total_faults();
                    self.report.faults.merge(&faults);
                    let clean = faults.is_zero();
                    let verified = sentinel(&t).is_ok();
                    if !verified {
                        self.report.sentinel_trips += 1;
                        note_sentinel_trip(name);
                    }
                    if clean && verified {
                        rec.absorb(prefix, scratch);
                        return Ok(t);
                    }
                    self.report.rounds_lost += scratch.total_rounds();
                    last_error = None;
                }
            }
        }
        Err(SolverError::Unrecoverable {
            phase: name.to_string(),
            attempts: self.max_retries + 1,
            last_error,
        })
    }
}

/// Runs the end-of-pipeline whole-matrix certificate
/// ([`sentinels::matrix_exact`]) when a fault plan is active. Per-phase
/// sentinels make reaching this point with damage (vanishingly) unlikely;
/// a trip here means detection failed somewhere upstream, so there is
/// nothing sound to retry — it surfaces as
/// [`SolverError::Unrecoverable`].
pub(crate) fn final_certificate<W: Weight>(
    g: &Graph<W>,
    dist: &DistMatrix<W>,
    rc: &Recovery,
) -> Result<(), SolverError> {
    if !rc.active() {
        return Ok(());
    }
    sentinels::matrix_exact(g, dist).map_err(|e| SolverError::Unrecoverable {
        phase: format!("final matrix certificate ({e})"),
        attempts: 1,
        last_error: None,
    })
}

/// End-of-phase invariant sentinels. Each is a *local* re-check of what a
/// phase's output must look like — no oracle calls, no extra
/// communication rounds — evaluated only while a fault plan is active.
pub mod sentinels {
    use super::{Direction, DistMatrix, Graph, NodeId, SsspCollection, Weight};
    use crate::bf::BfTreeResult;

    /// The minimum weight of the direction-appropriate edge `p → v`
    /// (`None` if absent).
    fn edge_w<W: Weight>(g: &Graph<W>, dir: Direction, p: NodeId, v: NodeId) -> Option<W> {
        let it: Box<dyn Iterator<Item = (NodeId, W)>> = match dir {
            Direction::Out => Box::new(g.out_edges(p)),
            Direction::In => Box::new(g.in_edges(p)),
        };
        it.filter(|&(t, _)| t == v).map(|(_, w)| w).min()
    }

    /// Sentinel for a repaired hop-limited tree (Step 1 CSSSP trees):
    /// the root is at distance zero and every surviving parent pointer
    /// telescopes — `dist(v) = dist(parent) + w(parent, v)` with hop depth
    /// `hops(parent) + 1`. This certifies every recorded distance is
    /// *realizable* (an actual walk of that weight exists); it is
    /// one-sided — it cannot certify minimality under a hop limit.
    ///
    /// # Errors
    /// Describes the first violated link.
    pub fn repaired_tree<W: Weight>(
        g: &Graph<W>,
        dir: Direction,
        source: NodeId,
        res: &BfTreeResult<W>,
    ) -> Result<(), String> {
        let root = &res.entries[source as usize];
        if root.dist != W::ZERO || root.hops != 0 {
            return Err(format!("root {source} not at (0 dist, 0 hops)"));
        }
        for (v, e) in res.entries.iter().enumerate() {
            if !e.reached() {
                continue;
            }
            let Some(p) = e.parent else { continue };
            let pe = &res.entries[p as usize];
            if !pe.reached() {
                return Err(format!("node {v}: parent {p} detached"));
            }
            if pe.hops.checked_add(1) != Some(e.hops) {
                return Err(format!("node {v}: hop depth does not extend parent {p}"));
            }
            let Some(w) = edge_w(g, dir, p, v as NodeId) else {
                return Err(format!("node {v}: parent {p} is not a neighbor"));
            };
            if e.dist != pe.dist.plus(w) {
                return Err(format!("node {v}: distance does not telescope over parent {p}"));
            }
        }
        Ok(())
    }

    /// Sentinel for a raw (repair-free) hop-limited tree (Step 3 in-SSSPs):
    /// the root is at zero and every reached entry is within the hop
    /// budget. Parent linkage is intentionally *not* checked — without the
    /// repair sub-phase a parent's entry may legitimately have improved in
    /// the final receipt round (the horizon artifact, see `crate::bf`), so
    /// telescoping does not hold even on clean runs.
    ///
    /// # Errors
    /// Describes the first violation.
    pub fn bounded_tree<W: Weight>(
        source: NodeId,
        h: u64,
        res: &BfTreeResult<W>,
    ) -> Result<(), String> {
        let root = &res.entries[source as usize];
        if root.dist != W::ZERO || root.hops != 0 {
            return Err(format!("root {source} not at (0 dist, 0 hops)"));
        }
        for (v, e) in res.entries.iter().enumerate() {
            if e.reached() && u64::from(e.hops) > h {
                return Err(format!("node {v}: {} hops exceeds budget {h}", e.hops));
            }
        }
        Ok(())
    }

    /// Sentinel for a phase whose output row is a *complete* distance
    /// vector `d(v) = δ(src, v)` (full-horizon SSSP; Step-7 extension
    /// rows): `d(src) = 0` and the relaxation fixed point holds over every
    /// edge — `d(v) ≤ d(u) + w(u, v)` (direction-appropriate). Combined
    /// with `d ≥ δ` realizability this is a complete exactness
    /// certificate; on its own it bounds `d` from above by no more than
    /// one damaged relaxation.
    ///
    /// # Errors
    /// Describes the first violated edge.
    pub fn exact_row<W: Weight>(
        g: &Graph<W>,
        dir: Direction,
        source: NodeId,
        dist: impl Fn(usize) -> W,
    ) -> Result<(), String> {
        if dist(source as usize) != W::ZERO {
            return Err(format!("source {source} not at distance zero"));
        }
        for u in 0..g.n() as NodeId {
            let du = dist(u as usize);
            for (v, w) in g.out_edges(u) {
                // Out: d(v) ≤ d(u) + w.  In: d(u) ≤ d(v) + w.
                let (relaxed, over) = match dir {
                    Direction::Out => (dist(v as usize), du.plus(w)),
                    Direction::In => (du, dist(v as usize).plus(w)),
                };
                if relaxed > over {
                    return Err(format!("edge {u}->{v}: fixed point violated"));
                }
            }
        }
        Ok(())
    }

    /// Sentinel for the blocker set (Step 2): every root-to-full-leaf path
    /// in the CSSSP — the hyperedges of the paper's covering problem —
    /// must contain a blocker. Complete for the phase's contract.
    ///
    /// # Errors
    /// Describes the first uncovered path.
    pub fn blocker_covers<W: Weight>(coll: &SsspCollection<W>, q: &[NodeId]) -> Result<(), String> {
        let in_q: std::collections::HashSet<NodeId> = q.iter().copied().collect();
        for si in 0..coll.sources.len() {
            for v in 0..coll.n() as NodeId {
                if !coll.is_full_leaf(v, si) {
                    continue;
                }
                let path = coll.root_path(v, si).expect("full leaf is a member");
                if !path.iter().any(|x| in_q.contains(x)) {
                    return Err(format!("full-leaf path (tree {si}, leaf {v}) uncovered"));
                }
            }
        }
        Ok(())
    }

    /// Sentinel for an all-to-all flood (Step 4): every node's log holds
    /// exactly the number of items fed in — a lost frame starves the
    /// subtree behind it. Complete for drops (the flood pipeline delivers
    /// each item once per node on exactly one path).
    ///
    /// # Errors
    /// Names the first starved node.
    pub fn flood_complete<T>(logs: &[Vec<T>], expected: usize) -> Result<(), String> {
        for (v, log) in logs.iter().enumerate() {
            if log.len() != expected {
                return Err(format!("node {v} logged {} of {expected} items", log.len()));
            }
        }
        Ok(())
    }

    /// Sentinel for Step 6 (delivery of `δ(·, q)` columns to their
    /// blockers): the delivered `|Q| × n` table must be the exact
    /// transpose of the locally computed `n × |Q|` source table — Step 6
    /// only *routes* known-exact values, so full equality is checkable.
    ///
    /// # Errors
    /// Names the first mismatched cell.
    pub fn transposed_delivery<W: Weight>(
        at_blocker: &DistMatrix<W>,
        dvals: &DistMatrix<W>,
    ) -> Result<(), String> {
        for qi in 0..at_blocker.rows() {
            for x in 0..at_blocker.cols() {
                if at_blocker[qi][x] != dvals[x][qi] {
                    return Err(format!("cell (q{qi}, {x}) diverges from the source table"));
                }
            }
        }
        Ok(())
    }

    /// Final whole-matrix sentinel (after Step 7, fault-active runs only):
    /// zero diagonal, the relaxation fixed point on every row, and — when
    /// the successor plane is tracked — first-hop telescoping
    /// `d(u, v) = w(u, s) + d(s, v)` for `s = successor(u, v)`. Fixed
    /// point bounds every entry from above by δ; telescoping certifies
    /// realizability, so together they are a complete exactness
    /// certificate.
    ///
    /// # Errors
    /// Describes the first violation.
    pub fn matrix_exact<W: Weight>(g: &Graph<W>, dist: &DistMatrix<W>) -> Result<(), String> {
        let n = g.n();
        for x in 0..n {
            if dist[x][x] != W::ZERO {
                return Err(format!("diagonal ({x}, {x}) not zero"));
            }
            exact_row(g, Direction::Out, x as NodeId, |t| dist[x][t])
                .map_err(|e| format!("row {x}: {e}"))?;
        }
        if dist.successors().is_some() {
            for u in 0..n as NodeId {
                for v in 0..n as NodeId {
                    if u == v {
                        continue;
                    }
                    let Some(s) = dist.successor(u, v) else { continue };
                    let Some(w) = edge_w(g, Direction::Out, u, s) else {
                        return Err(format!("successor({u}, {v}) = {s} is not a neighbor"));
                    };
                    if dist[u as usize][v as usize] != w.plus(dist[s as usize][v as usize]) {
                        return Err(format!("successor({u}, {v}) does not telescope"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_phase(rounds: u64, faults: u64) -> (u8, PhaseReport) {
        let rep = PhaseReport {
            rounds,
            faults: FaultCounters { injected: faults, dropped: faults, ..FaultCounters::default() },
            ..PhaseReport::default()
        };
        (7, rep)
    }

    #[test]
    fn disabled_recovery_runs_once_and_skips_sentinels() {
        let mut rc = Recovery::disabled();
        let mut calls = 0;
        let out = rc.phase(
            "p",
            SimConfig::default(),
            |sim| {
                calls += 1;
                assert!(sim.fault.is_none(), "no plan must reach the engine");
                Ok(ok_phase(3, 0))
            },
            |_| Err("sentinel must not be evaluated".into()),
        );
        assert!(out.is_ok());
        assert_eq!(calls, 1);
        assert!(rc.report().is_clean());
    }

    #[test]
    fn faulted_attempts_are_retried_until_clean() {
        let spec = FaultSpec::seeded(1).drops(1);
        let mut rc = Recovery::new(Some(spec), 4);
        let mut calls = 0;
        let (v, rep) = rc
            .phase(
                "p",
                SimConfig::default(),
                |sim| {
                    assert!(sim.fault.is_some(), "attempts must carry the salted plan");
                    calls += 1;
                    // Two damaged attempts, then a clean one.
                    Ok(ok_phase(10, u64::from(calls <= 2)))
                },
                |_| Ok(()),
            )
            .unwrap();
        assert_eq!((v, calls), (7, 3));
        assert!(rep.faults.is_zero(), "the accepted report is fault-free");
        let r = rc.report();
        assert_eq!(r.retries, 2);
        assert_eq!(r.phases_retried, 1);
        assert_eq!(r.rounds_lost, 20);
        assert_eq!(r.faults.injected, 2);
        assert_eq!(r.sentinel_trips, 0);
    }

    #[test]
    fn sentinel_trip_rejects_a_clean_attempt() {
        let spec = FaultSpec::seeded(2).drops(1);
        let mut rc = Recovery::new(Some(spec), 2);
        let mut calls = 0;
        let out = rc.phase(
            "p",
            SimConfig::default(),
            |_| {
                calls += 1;
                Ok(ok_phase(1, 0))
            },
            |_| Err("always broken".into()),
        );
        assert!(matches!(
            out,
            Err(SolverError::Unrecoverable { attempts: 3, last_error: None, .. })
        ));
        assert_eq!(calls, 3);
        assert_eq!(rc.report().sentinel_trips, 3);
    }

    #[test]
    fn engine_errors_are_retryable_and_reported() {
        let spec = FaultSpec::seeded(3).drops(1);
        let mut rc = Recovery::new(Some(spec), 1);
        let out: Result<(u8, PhaseReport), _> = rc.phase(
            "budget",
            SimConfig::default(),
            |_| Err(SimError::RoundBudgetExhausted { budget: 9 }),
            |_| Ok(()),
        );
        match out {
            Err(SolverError::Unrecoverable { phase, attempts, last_error }) => {
                assert_eq!(phase, "budget");
                assert_eq!(attempts, 2);
                assert_eq!(last_error, Some(SimError::RoundBudgetExhausted { budget: 9 }));
            }
            other => panic!("expected Unrecoverable, got {other:?}"),
        }
    }

    #[test]
    fn attempts_get_distinct_fault_seeds() {
        let spec = FaultSpec::seeded(4).drops(1);
        let mut rc = Recovery::new(Some(spec), 3);
        let mut seeds = Vec::new();
        let _ = rc.phase(
            "p",
            SimConfig::default(),
            |sim| {
                seeds.push(sim.fault.unwrap().seed);
                Ok(ok_phase(1, 1)) // never clean → exhausts the budget
            },
            |_| Ok(()),
        );
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "each attempt needs an independent pattern");
    }

    #[test]
    fn compound_absorbs_only_the_accepted_attempt() {
        let spec = FaultSpec::seeded(5).drops(1);
        let mut rc = Recovery::new(Some(spec), 3);
        let mut rec = Recorder::new();
        let mut calls = 0;
        let out = rc.compound(
            "c",
            "pre/",
            SimConfig::default(),
            &mut rec,
            |_, scratch| {
                calls += 1;
                let (_, rep) = ok_phase(5, u64::from(calls == 1));
                scratch.record(format!("sub{calls}"), rep);
                Ok(calls)
            },
            |_| Ok(()),
        );
        assert_eq!(out.unwrap(), 2);
        assert_eq!(rec.phases().len(), 1, "the rejected attempt's recording is discarded");
        assert_eq!(rec.phases()[0].name, "pre/sub2");
        assert!(rec.total_faults().is_zero());
        assert_eq!(rc.report().rounds_lost, 5);
    }
}
