//! The unified [`Solver`] facade — one typed entry point for every APSP
//! algorithm in the workspace.
//!
//! Historically the three algorithms were three disconnected free
//! functions with ad-hoc signatures (`apsp_agarwal_ramachandran`,
//! `apsp_ar18`, `apsp_naive`). The facade replaces them with a builder:
//!
//! ```
//! use congest_apsp::{Algorithm, BlockerMethod, Solver, Step6Method};
//! use congest_graph::generators::{gnm_connected, WeightDist};
//!
//! let g = gnm_connected(16, 32, true, WeightDist::Uniform(0, 9), 42);
//! let out = Solver::builder(&g)
//!     .algorithm(Algorithm::Ar20) // the paper's Õ(n^{4/3}) pipeline
//!     .blocker_method(BlockerMethod::Derandomized)
//!     .step6_method(Step6Method::Pipelined)
//!     .run()
//!     .unwrap();
//! assert_eq!(out.dist, congest_graph::seq::apsp_dijkstra(&g));
//! ```
//!
//! Every knob has the paper's headline configuration as its default, so
//! `Solver::builder(&g).run()` is the deterministic Õ(n^{4/3}) result.
//! The builder is the single place future scaling work (sharded compute,
//! alternate backends, trace-driven workloads) plugs into without growing
//! yet another free-function signature.

use crate::apsp::{run_ar20, ApspOutcome, BlockerMethod, Step6Method};
use crate::baselines::{run_ar18, run_naive};
use crate::config::{ApspConfig, BlockerParams, Charging};
use crate::recovery::SolverError;
use congest_graph::{Graph, Weight};
use congest_sim::fault::FaultSpec;
use congest_sim::{PhaseReport, Recorder, SimConfig};

/// Which APSP algorithm the [`Solver`] runs.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Algorithm {
    /// Agarwal–Ramachandran SPAA 2020 — the paper's deterministic
    /// Õ(n^{4/3})-round Algorithm 1 (the default).
    #[default]
    Ar20,
    /// The Õ(n^{3/2}) predecessor (Agarwal, Ramachandran, King &
    /// Pontecorvi, PODC 2018 reconstruction). Ignores the blocker/Step-6
    /// knobs: it always uses the greedy blocker set and a full broadcast.
    Ar18,
    /// One full Bellman–Ford per source — the folklore O(n²) baseline.
    /// Ignores the blocker/Step-6 knobs.
    Naive,
}

/// How much phase-level detail the returned [`Recorder`] keeps.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Verbosity {
    /// Keep every phase (the full per-step table) — the default.
    #[default]
    PerPhase,
    /// Collapse all phases into a single `total` entry: totals survive,
    /// per-phase breakdown does not (cheap to keep around in bulk runs).
    Summary,
    /// Drop all accounting; `total_rounds()` reads 0.
    Silent,
}

/// Builder for a [`Solver`]; obtained via [`Solver::builder`].
#[derive(Clone, Debug)]
pub struct SolverBuilder<'g, W: Weight> {
    solver: Solver<'g, W>,
}

impl<'g, W: Weight> SolverBuilder<'g, W> {
    /// Selects the algorithm (default [`Algorithm::Ar20`]).
    #[must_use]
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.solver.algorithm = algorithm;
        self
    }

    /// Selects the Step-2 blocker construction (default
    /// [`BlockerMethod::Derandomized`]; [`Algorithm::Ar20`] only).
    #[must_use]
    pub fn blocker_method(mut self, method: BlockerMethod) -> Self {
        self.solver.blocker = method;
        self
    }

    /// Selects the Step-6 implementation (default
    /// [`Step6Method::Pipelined`]; [`Algorithm::Ar20`] only).
    #[must_use]
    pub fn step6_method(mut self, method: Step6Method) -> Self {
        self.solver.step6 = method;
        self
    }

    /// Replaces the whole [`ApspConfig`] (hop parameter, charging,
    /// blocker constants, simulator settings, seed) in one call.
    #[must_use]
    pub fn config(mut self, cfg: ApspConfig) -> Self {
        self.solver.cfg = cfg;
        self
    }

    /// Overrides the hop parameter h (default: the paper's ⌈n^{1/3}⌉).
    #[must_use]
    pub fn hop_param(mut self, h: usize) -> Self {
        self.solver.cfg.h = Some(h);
        self
    }

    /// Sets the round-charging mode (default [`Charging::Quiesce`]).
    #[must_use]
    pub fn charging(mut self, charging: Charging) -> Self {
        self.solver.cfg.charging = charging;
        self
    }

    /// Sets the simulator configuration (bandwidth, parallelism).
    #[must_use]
    pub fn sim(mut self, sim: SimConfig) -> Self {
        self.solver.cfg.sim = sim;
        self
    }

    /// Sets the seed for the randomized blocker variant (ignored by the
    /// deterministic configurations).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.solver.cfg.seed = seed;
        self
    }

    /// Sets the blocker-set constants ε, δ.
    #[must_use]
    pub fn blocker_params(mut self, params: BlockerParams) -> Self {
        self.solver.cfg.blocker = params;
        self
    }

    /// Arms the deterministic fault-injection plane: every pipeline phase
    /// runs under `spec` (reseeded per phase and attempt) with phase-level
    /// detect-and-recover (see [`crate::recovery`]). A successful run's
    /// distances are bit-identical to the fault-free run; an exhausted
    /// retry budget surfaces as
    /// [`SolverError::Unrecoverable`] —
    /// the solver never returns damaged results. An inactive (all-zero)
    /// spec is equivalent to not calling this at all.
    #[must_use]
    pub fn fault_plan(mut self, spec: FaultSpec) -> Self {
        self.solver.cfg.fault = Some(spec);
        self
    }

    /// Sets the per-phase retry budget under an active fault plan
    /// (default 4; ignored without one).
    #[must_use]
    pub fn max_phase_retries(mut self, retries: u32) -> Self {
        self.solver.cfg.max_phase_retries = retries;
        self
    }

    /// Toggles Step-7 successor tracking (default **on** for every
    /// algorithm). When on, the distributed phases thread first hops
    /// through their messages and the outcome's `dist` carries the
    /// target-major successor plane, making
    /// `congest_oracle::IntoOracle::into_oracle` a zero-derivation adopt.
    /// When off, the outcome is distances-only and the oracle falls back
    /// to its reverse-BFS derivation. Tracking never changes the computed
    /// distances, round counts, or message counts — only the per-message
    /// payload width (one extra id word on relax/push messages).
    #[must_use]
    pub fn track_successors(mut self, track: bool) -> Self {
        self.solver.cfg.track_successors = track;
        self
    }

    /// Sets the recorder verbosity (default [`Verbosity::PerPhase`]).
    #[must_use]
    pub fn verbosity(mut self, verbosity: Verbosity) -> Self {
        self.solver.verbosity = verbosity;
        self
    }

    /// Finalizes the configuration into a reusable [`Solver`].
    #[must_use]
    pub fn build(self) -> Solver<'g, W> {
        self.solver
    }

    /// Convenience: [`build`](Self::build) + [`Solver::run`] in one call.
    ///
    /// # Errors
    /// As [`Solver::run`].
    pub fn run(self) -> Result<ApspOutcome<W>, SolverError> {
        self.build().run()
    }
}

/// A fully configured APSP run over a borrowed graph. Reusable: `run` can
/// be called repeatedly (the deterministic configurations are bit-stable
/// across calls).
#[derive(Clone, Debug)]
pub struct Solver<'g, W: Weight> {
    g: &'g Graph<W>,
    cfg: ApspConfig,
    algorithm: Algorithm,
    blocker: BlockerMethod,
    step6: Step6Method,
    verbosity: Verbosity,
}

impl<'g, W: Weight> Solver<'g, W> {
    /// Starts a builder over `g` with the paper's headline defaults:
    /// `Ar20` / `Derandomized` / `Pipelined`, h = ⌈n^{1/3}⌉, quiescence
    /// charging, per-phase recording.
    #[must_use]
    pub fn builder(g: &'g Graph<W>) -> SolverBuilder<'g, W> {
        SolverBuilder {
            solver: Solver {
                g,
                cfg: ApspConfig::default(),
                algorithm: Algorithm::default(),
                blocker: BlockerMethod::Derandomized,
                step6: Step6Method::Pipelined,
                verbosity: Verbosity::default(),
            },
        }
    }

    /// The configured algorithm.
    #[must_use]
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The configured [`ApspConfig`].
    #[must_use]
    pub fn config(&self) -> &ApspConfig {
        &self.cfg
    }

    /// Runs the configured algorithm to completion.
    ///
    /// # Errors
    /// [`SolverError::Sim`] on an engine abort without a fault plan;
    /// [`SolverError::Unrecoverable`] when an armed fault plan defeats the
    /// per-phase retry budget. Never damaged results: a successful outcome
    /// is bit-identical to the fault-free run.
    ///
    /// # Panics
    /// Panics if the communication graph is disconnected.
    pub fn run(&self) -> Result<ApspOutcome<W>, SolverError> {
        let span = congest_telemetry::with(|t| t.span_start("solver.run"));
        let result = match self.algorithm {
            Algorithm::Ar20 => run_ar20(self.g, &self.cfg, self.blocker, self.step6),
            Algorithm::Ar18 => run_ar18(self.g, &self.cfg),
            Algorithm::Naive => run_naive(self.g, &self.cfg),
        };
        if let Some(id) = span {
            // Emit the per-phase slices from the *full* recorder (span
            // names = `Recorder` phase labels), then close the solver
            // span annotated with the algorithm, the knob set, and the
            // recovery outcome — before any verbosity collapse.
            let tele = congest_telemetry::global();
            match &result {
                Ok(out) => {
                    out.recorder.trace_phases();
                    tele.span_end_with(id, self.span_attrs(out));
                }
                Err(e) => tele.span_end_with(id, vec![("error".to_string(), e.to_string())]),
            }
        }
        let mut out = result?;
        match self.verbosity {
            Verbosity::PerPhase => {}
            Verbosity::Summary => out.recorder = summarize(&out.recorder),
            Verbosity::Silent => out.recorder = Recorder::new(),
        }
        Ok(out)
    }

    /// Solver-span annotations: algorithm, knob set, recovery outcome.
    fn span_attrs(&self, out: &ApspOutcome<W>) -> Vec<(String, String)> {
        let fr = out.fault_report;
        let mut attrs = vec![
            ("algorithm".to_string(), format!("{:?}", self.algorithm)),
            ("blocker_method".to_string(), format!("{:?}", self.blocker)),
            ("step6_method".to_string(), format!("{:?}", self.step6)),
            ("n".to_string(), self.g.n().to_string()),
            ("h".to_string(), out.meta.h.to_string()),
            ("charging".to_string(), format!("{:?}", self.cfg.charging)),
            ("seed".to_string(), self.cfg.seed.to_string()),
            ("track_successors".to_string(), self.cfg.track_successors.to_string()),
            ("bandwidth".to_string(), self.cfg.sim.bandwidth.to_string()),
            ("retries".to_string(), fr.retries.to_string()),
            ("sentinel_trips".to_string(), fr.sentinel_trips.to_string()),
        ];
        if fr.faults.injected > 0 {
            attrs.push(("faults_injected".to_string(), fr.faults.injected.to_string()));
            attrs.push(("rounds_lost".to_string(), fr.rounds_lost.to_string()));
        }
        attrs
    }
}

/// Collapses a recorder into a single `total` phase preserving the
/// aggregate rounds/messages/congestion numbers.
fn summarize(rec: &Recorder) -> Recorder {
    let mut total = PhaseReport {
        rounds: rec.total_rounds(),
        messages: rec.total_messages(),
        node_sent: rec.node_sent_totals(),
        payload_words: rec.total_payload_words(),
        max_msg_words: rec.max_msg_words(),
        faults: rec.total_faults(),
        ..Default::default()
    };
    total.peak_in_flight = rec.phases().iter().map(|p| p.peak_in_flight).max().unwrap_or(0);
    let mut out = Recorder::new();
    out.record("total", total);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{gnm_connected, WeightDist};
    use congest_graph::seq::apsp_dijkstra;

    fn graph() -> Graph<u64> {
        gnm_connected(14, 28, true, WeightDist::Uniform(0, 9), 11)
    }

    #[test]
    fn defaults_are_the_paper_configuration() {
        let g = graph();
        let out = Solver::builder(&g).run().unwrap();
        assert_eq!(out.dist, apsp_dijkstra(&g));
        assert_eq!(out.meta.h, 3); // ceil(14^{1/3})
        assert!(out.recorder.phases().len() > 1, "per-phase detail by default");
    }

    #[test]
    fn every_algorithm_is_exact() {
        let g = graph();
        let oracle = apsp_dijkstra(&g);
        for algorithm in [Algorithm::Ar20, Algorithm::Ar18, Algorithm::Naive] {
            let out = Solver::builder(&g).algorithm(algorithm).run().unwrap();
            assert_eq!(out.dist, oracle, "{algorithm:?}");
        }
    }

    #[test]
    fn summary_verbosity_preserves_totals() {
        let g = graph();
        let full = Solver::builder(&g).run().unwrap();
        let summary = Solver::builder(&g).verbosity(Verbosity::Summary).run().unwrap();
        assert_eq!(summary.recorder.phases().len(), 1);
        assert_eq!(summary.recorder.total_rounds(), full.recorder.total_rounds());
        assert_eq!(summary.recorder.total_messages(), full.recorder.total_messages());
        // One collapsed phase means congestion aggregates across the whole
        // run, so it can only grow relative to the per-phase maximum.
        assert_eq!(
            summary.recorder.max_node_congestion(),
            full.recorder.node_sent_totals().into_iter().max().unwrap_or(0)
        );
        assert!(summary.recorder.max_node_congestion() >= full.recorder.max_node_congestion());
        let silent = Solver::builder(&g).verbosity(Verbosity::Silent).run().unwrap();
        assert!(silent.recorder.phases().is_empty());
        assert_eq!(silent.dist, full.dist);
    }

    #[test]
    fn builder_knobs_reach_the_config() {
        let g = graph();
        let solver = Solver::builder(&g)
            .hop_param(2)
            .charging(Charging::WorstCase)
            .seed(7)
            .blocker_params(BlockerParams { eps: 0.05, delta: 0.05 })
            .build();
        assert_eq!(solver.config().h, Some(2));
        assert_eq!(solver.config().charging, Charging::WorstCase);
        assert_eq!(solver.config().seed, 7);
        let out = solver.run().unwrap();
        assert_eq!(out.meta.h, 2);
        assert_eq!(out.dist, apsp_dijkstra(&g));
    }

    #[test]
    fn solver_is_reusable_and_deterministic() {
        let g = graph();
        let solver = Solver::builder(&g).build();
        let a = solver.run().unwrap();
        let b = solver.run().unwrap();
        assert_eq!(a.dist, b.dist);
        assert_eq!(a.recorder.total_rounds(), b.recorder.total_rounds());
    }
}
