//! Pipelined multi-tree protocols over a CSSSP collection.
//!
//! Three communication patterns recur throughout §3 and Appendix A.6, all
//! operating on every tree of a collection at once with per-channel FIFO
//! queues and one message per channel per round:
//!
//! * [`convergecast_trees`] — bottom-up aggregation of a `u64` value per
//!   (node, tree): computes `score(v)` (Alg 2 Step 1, via the Algorithm-3
//!   machinery of \[2\]), `score_ij(v)` (Step 8) and `count_{v,c}`
//!   (Algorithm 14).
//! * [`remove_subtrees`] — Algorithm 6: top-down removal tokens from a set
//!   of roots, marking every (node, tree) pair in their subtrees.
//! * [`collect_ancestors`] — Algorithm 7 Step 1 (the Ancestors algorithm
//!   of \[2\]): every node learns the ids on its root path in every tree,
//!   streamed one id per round per channel, one source at a time.
//!
//! The paper charges O(|S|·h) rounds for these (sequential per source);
//! the convergecast and removal protocols here pipeline across trees and
//! finish in O(h + congestion) ≤ O(|S|·h) rounds, which only tightens the
//! measured constants.

use crate::csssp::SsspCollection;
use congest_graph::{NodeId, Weight};
use congest_sim::{
    Engine, Envelope, NodeEnv, NodeLogic, Outbox, PhaseReport, RunUntil, SimConfig, SimError,
    Topology,
};
use std::collections::VecDeque;

// ---------------------------------------------------------------------
// Convergecast
// ---------------------------------------------------------------------

struct ConvTreeNode {
    /// Per tree: parent (None for roots / non-members).
    parent: Vec<Option<NodeId>>,
    /// Per tree: children not yet reported.
    pending: Vec<u32>,
    /// Per tree: accumulated value (own init + children).
    acc: Vec<u64>,
    /// Per neighbor (index into env.neighbors): FIFO of tree indices ready
    /// to send on that channel.
    queues: Vec<VecDeque<u32>>,
    /// Trees ready to enqueue (pending == 0) but not yet enqueued.
    ready: VecDeque<u32>,
    outstanding: usize,
}

impl NodeLogic for ConvTreeNode {
    type Msg = (u32, u64);

    fn on_round(
        &mut self,
        env: &NodeEnv<'_>,
        inbox: &[Envelope<(u32, u64)>],
        out: &mut Outbox<'_, (u32, u64)>,
    ) {
        for e in inbox {
            let (si, val) = e.msg;
            self.acc[si as usize] += val;
            self.pending[si as usize] -= 1;
            if self.pending[si as usize] == 0 {
                self.ready.push_back(si);
            }
        }
        // Move newly-ready trees into their channel queues.
        while let Some(si) = self.ready.pop_front() {
            if let Some(p) = self.parent[si as usize] {
                let ni = env.neighbor_index(p).expect("parent is a neighbor");
                self.queues[ni].push_back(si);
            } else {
                // Root or non-member: nothing to send.
                self.outstanding -= 1;
            }
        }
        // One message per channel per round, addressed by channel index.
        for ni in 0..self.queues.len() {
            if let Some(si) = self.queues[ni].pop_front() {
                out.send_nbr(ni, (si, self.acc[si as usize]));
                self.outstanding -= 1;
            }
        }
    }

    fn active(&self) -> bool {
        self.outstanding > 0
    }
}

/// Bottom-up pipelined aggregation over every tree of `coll`: node v's
/// result for tree si is `init[v][si]` plus the results of its children.
/// Returns the full per-(node, tree) aggregate matrix.
///
/// # Errors
/// Propagates engine errors.
pub fn convergecast_trees<W: Weight>(
    topo: &Topology,
    sim: SimConfig,
    coll: &SsspCollection<W>,
    init: &[Vec<u64>],
    until: RunUntil,
) -> Result<(Vec<Vec<u64>>, PhaseReport), SimError> {
    let n = topo.n();
    let s = coll.sources.len();
    let engine = Engine::new(topo, sim);
    let mut nodes: Vec<ConvTreeNode> = (0..n)
        .map(|v| {
            let pending: Vec<u32> = (0..s).map(|si| coll.children[v][si].len() as u32).collect();
            let mut ready = VecDeque::new();
            let mut outstanding = 0;
            for si in 0..s {
                if coll.is_member(v as NodeId, si) {
                    outstanding += 1;
                    if pending[si] == 0 {
                        ready.push_back(si as u32);
                    }
                }
            }
            ConvTreeNode {
                parent: (0..s).map(|si| coll.parent[v][si]).collect(),
                pending,
                acc: init[v].clone(),
                queues: vec![VecDeque::new(); topo.neighbors(v as NodeId).len()],
                ready,
                outstanding,
            }
        })
        .collect();
    let report = engine.run(&mut nodes, until)?;
    Ok((nodes.into_iter().map(|nd| nd.acc).collect(), report))
}

/// Generous quiescence budget for [`convergecast_trees`]: never worse than
/// the paper's sequential O(|S|·h) accounting.
#[must_use]
pub fn convergecast_trees_budget<W: Weight>(coll: &SsspCollection<W>) -> RunUntil {
    let s = coll.sources.len() as u64;
    let h = coll.h as u64;
    RunUntil::Quiesce { max: (s + 2) * (h + 2) + 64 }
}

// ---------------------------------------------------------------------
// Remove-Subtrees (Algorithm 6)
// ---------------------------------------------------------------------

struct RemoveNode {
    /// Per tree: children lists.
    children: Vec<Vec<NodeId>>,
    /// Per tree: removal mark.
    removed: Vec<bool>,
    /// Channel FIFO queues of tree indices to forward.
    queues: Vec<VecDeque<u32>>,
    queued: usize,
}

impl RemoveNode {
    fn mark(&mut self, si: u32, neighbors: &[NodeId]) {
        if self.removed[si as usize] {
            return;
        }
        self.removed[si as usize] = true;
        for i in 0..self.children[si as usize].len() {
            let c = self.children[si as usize][i];
            let ni = neighbors.binary_search(&c).expect("child is a neighbor");
            self.queues[ni].push_back(si);
            self.queued += 1;
        }
    }
}

impl NodeLogic for RemoveNode {
    type Msg = u32;

    fn on_round(&mut self, env: &NodeEnv<'_>, inbox: &[Envelope<u32>], out: &mut Outbox<'_, u32>) {
        for e in inbox {
            self.mark(e.msg, env.neighbors);
        }
        for ni in 0..self.queues.len() {
            if let Some(si) = self.queues[ni].pop_front() {
                out.send_nbr(ni, si);
                self.queued -= 1;
            }
        }
    }

    fn active(&self) -> bool {
        self.queued > 0
    }
}

/// Algorithm 6, pipelined across all trees: removes the subtrees rooted at
/// each `(node, tree-index)` pair in `roots` and returns the removal mask
/// (`mask[v][si]`), OR-ed with the supplied existing mask.
///
/// # Errors
/// Propagates engine errors.
pub fn remove_subtrees<W: Weight>(
    topo: &Topology,
    sim: SimConfig,
    coll: &SsspCollection<W>,
    existing_mask: &[Vec<bool>],
    roots: &[(NodeId, usize)],
    until: RunUntil,
) -> Result<(Vec<Vec<bool>>, PhaseReport), SimError> {
    let n = topo.n();
    let s = coll.sources.len();
    let engine = Engine::new(topo, sim);
    let mut nodes: Vec<RemoveNode> = (0..n)
        .map(|v| RemoveNode {
            children: (0..s).map(|si| coll.children[v][si].clone()).collect(),
            removed: vec![false; s],
            queues: vec![VecDeque::new(); topo.neighbors(v as NodeId).len()],
            queued: 0,
        })
        .collect();
    // Seed: each root marks itself locally in round 0 (no communication).
    for &(z, si) in roots {
        if coll.is_member(z, si) {
            let neighbors = topo.neighbors(z);
            nodes[z as usize].mark(si as u32, neighbors);
        }
    }
    let report = engine.run(&mut nodes, until)?;
    let mask: Vec<Vec<bool>> = nodes
        .into_iter()
        .enumerate()
        .map(|(v, nd)| (0..s).map(|si| nd.removed[si] || existing_mask[v][si]).collect())
        .collect();
    Ok((mask, report))
}

// ---------------------------------------------------------------------
// Ancestor collection (Algorithm 7 Step 1 / Ancestors of [2])
// ---------------------------------------------------------------------

struct AncestorNode {
    /// This tree's children of the node.
    children: Vec<NodeId>,
    /// Whether this node is a member of the current tree.
    member: bool,
    /// Received root-path ids so far, root first (without self).
    path: Vec<NodeId>,
    /// Expected path length (own depth).
    depth: usize,
    /// Next index of `path ++ [self]` to forward to children.
    next_fwd: usize,
}

impl NodeLogic for AncestorNode {
    type Msg = NodeId;

    fn on_round(
        &mut self,
        env: &NodeEnv<'_>,
        inbox: &[Envelope<NodeId>],
        out: &mut Outbox<'_, NodeId>,
    ) {
        for e in inbox {
            self.path.push(e.msg);
        }
        if !self.member || self.children.is_empty() {
            return;
        }
        // Stream a child must receive, in index order: our root path
        // (indices 0..depth) followed by our own id (index = depth). Index
        // k is available once it has arrived from our parent; our own id
        // only goes out after the full prefix.
        let k = self.next_fwd;
        if k <= self.depth {
            let item = if k < self.path.len() {
                Some(self.path[k])
            } else if k == self.depth && self.path.len() == self.depth {
                Some(env.id)
            } else {
                None
            };
            if let Some(item) = item {
                for i in 0..self.children.len() {
                    let c = self.children[i];
                    out.send(c, item);
                }
                self.next_fwd += 1;
            }
        }
    }

    fn active(&self) -> bool {
        self.member && !self.children.is_empty() && self.next_fwd <= self.depth
    }
}

/// Per-node, per-tree root-path id lists (`ancestors[v][si]`, root first,
/// excluding the node itself).
pub type AncestorLists = Vec<Vec<Vec<NodeId>>>;

/// Collects, at every member node and for every tree, the ids on its root
/// path (root first, excluding the node itself). Runs per source in
/// sequence: O(h) rounds each, O(|S|·h) total — the Algorithm 7 Step 1
/// cost.
///
/// # Errors
/// Propagates engine errors.
pub fn collect_ancestors<W: Weight>(
    topo: &Topology,
    sim: SimConfig,
    coll: &SsspCollection<W>,
) -> Result<(AncestorLists, PhaseReport), SimError> {
    let n = topo.n();
    let s = coll.sources.len();
    let engine = Engine::new(topo, sim);
    let mut result: Vec<Vec<Vec<NodeId>>> = vec![vec![Vec::new(); s]; n];
    let mut total = PhaseReport { node_sent: vec![0; n], ..Default::default() };
    for si in 0..s {
        let mut nodes: Vec<AncestorNode> = (0..n)
            .map(|v| AncestorNode {
                children: coll.children[v][si].clone(),
                member: coll.is_member(v as NodeId, si),
                path: Vec::new(),
                depth: if coll.is_member(v as NodeId, si) { coll.hops[v][si] as usize } else { 0 },
                next_fwd: 0,
            })
            .collect();
        let budget = 4 * (coll.h as u64 + 2) + 16;
        let report = engine.run(&mut nodes, RunUntil::Quiesce { max: budget })?;
        total.rounds += report.rounds;
        total.messages += report.messages;
        total.payload_words += report.payload_words;
        total.max_msg_words = total.max_msg_words.max(report.max_msg_words);
        total.faults.merge(&report.faults);
        for (t, s2) in total.node_sent.iter_mut().zip(report.node_sent.iter()) {
            *t += s2;
        }
        for (v, nd) in nodes.into_iter().enumerate() {
            result[v][si] = nd.path;
        }
    }
    Ok((result, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Charging;
    use crate::csssp::build_csssp;
    use congest_graph::generators::{gnm_connected, path, WeightDist};
    use congest_graph::seq::Direction;
    use congest_graph::Graph;
    use congest_sim::Recorder;

    fn build(
        n: usize,
        extra: usize,
        h: usize,
        seed: u64,
    ) -> (Graph<u64>, Topology, SsspCollection<u64>) {
        let g = gnm_connected(n, extra, true, WeightDist::Uniform(0, 7), seed);
        let topo = Topology::from_graph(&g);
        let mut rec = Recorder::new();
        let sources: Vec<NodeId> = (0..n as NodeId).collect();
        let coll = build_csssp(
            &g,
            &topo,
            &sources,
            h,
            Direction::Out,
            false,
            SimConfig::default(),
            Charging::Quiesce,
            &mut rec,
            &mut crate::recovery::Recovery::disabled(),
            "csssp",
        )
        .unwrap();
        (g, topo, coll)
    }

    /// Oracle: subtree aggregate by central traversal.
    fn oracle_aggregate(coll: &SsspCollection<u64>, init: &[Vec<u64>]) -> Vec<Vec<u64>> {
        let n = coll.n();
        let s = coll.sources.len();
        let mut acc = vec![vec![0u64; s]; n];
        for si in 0..s {
            // process nodes in decreasing depth
            let mut order: Vec<NodeId> =
                (0..n as NodeId).filter(|&v| coll.is_member(v, si)).collect();
            order.sort_by_key(|&v| std::cmp::Reverse(coll.hops[v as usize][si]));
            for &v in &order {
                let mut sum = init[v as usize][si];
                for &c in &coll.children[v as usize][si] {
                    sum += acc[c as usize][si];
                }
                acc[v as usize][si] = sum;
            }
        }
        acc
    }

    #[test]
    fn convergecast_matches_oracle() {
        let (_, topo, coll) = build(18, 40, 3, 7);
        let init: Vec<Vec<u64>> = (0..18)
            .map(|v| {
                (0..coll.sources.len())
                    .map(|si| u64::from(coll.is_full_leaf(v as NodeId, si)))
                    .collect()
            })
            .collect();
        let (acc, _) = convergecast_trees(
            &topo,
            SimConfig::default(),
            &coll,
            &init,
            convergecast_trees_budget(&coll),
        )
        .unwrap();
        let oracle = oracle_aggregate(&coll, &init);
        for v in 0..18 {
            for si in 0..coll.sources.len() {
                if coll.is_member(v as NodeId, si) {
                    assert_eq!(acc[v][si], oracle[v][si], "v={v} si={si}");
                }
            }
        }
    }

    #[test]
    fn convergecast_root_gets_total_leaf_count() {
        let g = path(6, true, WeightDist::Unit, 0);
        let topo = Topology::from_graph(&g);
        let mut rec = Recorder::new();
        let coll = build_csssp(
            &g,
            &topo,
            &[0],
            3,
            Direction::Out,
            false,
            SimConfig::default(),
            Charging::Quiesce,
            &mut rec,
            &mut crate::recovery::Recovery::disabled(),
            "c",
        )
        .unwrap();
        let init: Vec<Vec<u64>> =
            (0..6).map(|v| vec![u64::from(coll.is_full_leaf(v as NodeId, 0))]).collect();
        let (acc, _) = convergecast_trees(
            &topo,
            SimConfig::default(),
            &coll,
            &init,
            convergecast_trees_budget(&coll),
        )
        .unwrap();
        // Single path: only node 3 is at depth exactly 3.
        assert_eq!(acc[0][0], 1);
        assert_eq!(acc[3][0], 1);
    }

    #[test]
    fn convergecast_pipelines() {
        // n trees over a path graph; sequential would be ~n*h rounds, the
        // pipelined version must be O(n + h).
        let g = path(24, true, WeightDist::Unit, 0);
        let topo = Topology::from_graph(&g);
        let mut rec = Recorder::new();
        let sources: Vec<NodeId> = (0..24).collect();
        let coll = build_csssp(
            &g,
            &topo,
            &sources,
            4,
            Direction::Out,
            false,
            SimConfig::default(),
            Charging::Quiesce,
            &mut rec,
            &mut crate::recovery::Recovery::disabled(),
            "c",
        )
        .unwrap();
        let init: Vec<Vec<u64>> = vec![vec![1u64; 24]; 24];
        let (_, report) = convergecast_trees(
            &topo,
            SimConfig::default(),
            &coll,
            &init,
            convergecast_trees_budget(&coll),
        )
        .unwrap();
        assert!(report.rounds <= 24 + 4 * 4 + 16, "rounds = {}", report.rounds);
    }

    #[test]
    fn remove_subtrees_marks_descendants() {
        let (_, topo, coll) = build(16, 30, 3, 3);
        let blank = vec![vec![false; coll.sources.len()]; 16];
        // remove subtree of node 5 in every tree where it's a member
        let roots: Vec<(NodeId, usize)> = (0..coll.sources.len())
            .filter(|&si| coll.is_member(5, si))
            .map(|si| (5 as NodeId, si))
            .collect();
        let (mask, _) = remove_subtrees(
            &topo,
            SimConfig::default(),
            &coll,
            &blank,
            &roots,
            RunUntil::Quiesce { max: 4000 },
        )
        .unwrap();
        for si in 0..coll.sources.len() {
            for v in 0..16u32 {
                // oracle: v below-or-at 5 in tree si?
                let below = coll.root_path(v, si).map(|p| p.contains(&5)).unwrap_or(false);
                assert_eq!(mask[v as usize][si], below, "v={v} si={si}");
            }
        }
    }

    #[test]
    fn remove_subtrees_respects_existing_mask() {
        let (_, topo, coll) = build(12, 20, 2, 5);
        let mut existing = vec![vec![false; coll.sources.len()]; 12];
        existing[7][0] = true;
        let (mask, _) = remove_subtrees(
            &topo,
            SimConfig::default(),
            &coll,
            &existing,
            &[],
            RunUntil::Quiesce { max: 100 },
        )
        .unwrap();
        assert!(mask[7][0]);
    }

    #[test]
    fn ancestors_match_root_paths() {
        let (_, topo, coll) = build(15, 30, 3, 11);
        let (anc, report) = collect_ancestors(&topo, SimConfig::default(), &coll).unwrap();
        for v in 0..15u32 {
            for si in 0..coll.sources.len() {
                if let Some(path) = coll.root_path(v, si) {
                    // root_path is v..root; ancestors are root..parent.
                    let mut expected: Vec<NodeId> = path.into_iter().rev().collect();
                    expected.pop(); // drop v itself
                    assert_eq!(anc[v as usize][si], expected, "v={v} si={si}");
                } else {
                    assert!(anc[v as usize][si].is_empty());
                }
            }
        }
        assert!(report.rounds > 0);
    }
}
