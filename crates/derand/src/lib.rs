//! # congest-derand
//!
//! Derandomization machinery for the CONGEST APSP reproduction:
//! pairwise-independent sample spaces (Luby's GF(2) linear-size space from
//! Appendix A.3 and the classical biased affine space over GF(q)), prime
//! utilities, and the Berger–Rompel–Shor hypergraph set-cover algorithm
//! that the paper's blocker-set construction distributes (§3).

#![warn(missing_docs)]
#![deny(deprecated)]

mod pairwise;
pub mod primes;
mod setcover;

pub use pairwise::{AffineSpace, Gf2Space, SampleSpace};
pub use setcover::{
    brs_cover, greedy_cover, verify_cover, BrsParams, BrsStats, Hypergraph, Selection,
};
