//! Pairwise-independent sample spaces.
//!
//! Two constructions back the paper's derandomization (§3.2, Appendix A.3):
//!
//! 1. [`Gf2Space`] — Luby's linear-size space: pick l with 2n < 2^l ≤ 4n,
//!    associate with index i the l-bit vector of 2i+1 (last bit forced to
//!    1, exactly the paper's encoding), and for a sample point z ∈ {0,1}^l
//!    set `X_i(z) = ⊕_k (i_k · z_k)`. The X_i are uniform on {0,1} and
//!    pairwise independent. This is the construction the paper cites; it
//!    produces *unbiased* (p = 1/2) bits.
//!
//! 2. [`AffineSpace`] — the classical biased construction over GF(q):
//!    sample points are pairs (a, b) ∈ GF(q)², and
//!    `X_v = [ (a·v + b) mod q < k ]` with k = round(p·q). The X_v are
//!    pairwise independent with bias k/q (within 1/q of the requested p).
//!    Algorithm 2 samples with bias p = δ/(1+ε)^j < 1/2, which the GF(2)
//!    space cannot express; the paper leaves the biased linear-size space
//!    unspecified, so we use this classical q²-point space and enumerate it
//!    lazily in blocks (see DESIGN.md §3.3 for why this preserves the
//!    behaviour that matters).

use crate::primes::next_prime;

/// Common interface of the two sample spaces: an indexed family of 0/1
/// assignments `X^{(µ)} : {0..n_vars} -> {0,1}` that is pairwise
/// independent when µ is uniform.
pub trait SampleSpace {
    /// Number of sample points.
    fn len(&self) -> u64;
    /// `true` if the space is empty (never the case in practice).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Number of indexed variables.
    fn n_vars(&self) -> u64;
    /// Marginal probability `Pr[X_v = 1]`.
    fn bias(&self) -> f64;
    /// Evaluates variable `v` under sample point `mu`.
    fn eval(&self, mu: u64, v: u64) -> bool;
    /// The set bits of sample point `mu` (the selected set A).
    fn selected(&self, mu: u64) -> Vec<u64> {
        (0..self.n_vars()).filter(|&v| self.eval(mu, v)).collect()
    }
}

/// Luby's GF(2) space (Appendix A.3): size 2^l with 2n < 2^l ≤ 4n.
#[derive(Clone, Debug)]
pub struct Gf2Space {
    n_vars: u64,
    l: u32,
}

impl Gf2Space {
    /// Builds the space for `n_vars` variables.
    #[must_use]
    pub fn new(n_vars: u64) -> Self {
        assert!(n_vars >= 1);
        // smallest l with 2^l > 2n  (then 2^l <= 4n automatically)
        let l = 64 - (2 * n_vars).leading_zeros();
        Gf2Space { n_vars, l }
    }

    /// The string length l (for inspection in tests).
    #[must_use]
    pub fn l(&self) -> u32 {
        self.l
    }
}

impl SampleSpace for Gf2Space {
    fn len(&self) -> u64 {
        1u64 << self.l
    }
    fn n_vars(&self) -> u64 {
        self.n_vars
    }
    fn bias(&self) -> f64 {
        0.5
    }
    fn eval(&self, mu: u64, v: u64) -> bool {
        debug_assert!(mu < self.len() && v < self.n_vars);
        // index vector: binary encoding of v with last bit forced to 1
        let iv = (v << 1) | 1;
        ((iv & mu).count_ones() & 1) == 1
    }
}

/// Classical affine pairwise-independent space over GF(q) with bias ≈ p.
#[derive(Clone, Debug)]
pub struct AffineSpace {
    n_vars: u64,
    q: u64,
    k: u64,
}

impl AffineSpace {
    /// Builds a space for `n_vars` variables with marginal probability as
    /// close to `p` as q permits. `q` is the smallest prime ≥ max(n_vars,
    /// 2/p, 17), so the realized bias `k/q` is within 1/q of `p` and at
    /// least 1/q > 0.
    #[must_use]
    pub fn new(n_vars: u64, p: f64) -> Self {
        assert!(n_vars >= 1);
        assert!((0.0..=1.0).contains(&p), "bias must be a probability, got {p}");
        let lower = (2.0 / p.max(1e-9)).ceil() as u64;
        let q = next_prime(n_vars.max(lower).max(17));
        let k = ((p * q as f64).round() as u64).clamp(1, q - 1);
        AffineSpace { n_vars, q, k }
    }

    /// The field size.
    #[must_use]
    pub fn q(&self) -> u64 {
        self.q
    }

    /// The threshold k (bias = k/q).
    #[must_use]
    pub fn k(&self) -> u64 {
        self.k
    }
}

impl SampleSpace for AffineSpace {
    fn len(&self) -> u64 {
        self.q * self.q
    }
    fn n_vars(&self) -> u64 {
        self.n_vars
    }
    fn bias(&self) -> f64 {
        self.k as f64 / self.q as f64
    }
    fn eval(&self, mu: u64, v: u64) -> bool {
        debug_assert!(mu < self.len() && v < self.n_vars);
        // Enumerate with `a` varying fastest: a = 0 (the degenerate
        // all-or-nothing assignments) appears only once per q points, so
        // fixed-order scans (Algorithm 2′) hit diverse sets immediately.
        let (a, b) = (mu % self.q, mu / self.q);
        let h = (crate::primes::mod_mul(a, v % self.q, self.q) + b) % self.q;
        h < self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively verify exact pairwise independence: for all pairs
    /// (v, v'), the joint distribution of (X_v, X_v') over the whole space
    /// factorizes.
    fn assert_pairwise_independent(space: &impl SampleSpace) {
        let n = space.n_vars();
        let m = space.len();
        let ones: Vec<u64> =
            (0..n).map(|v| (0..m).filter(|&mu| space.eval(mu, v)).count() as u64).collect();
        for v in 0..n {
            // exact marginal
            let expect = (space.bias() * m as f64).round() as u64;
            assert_eq!(ones[v as usize], expect, "marginal of X_{v}");
        }
        for v in 0..n {
            for w in (v + 1)..n {
                let both = (0..m).filter(|&mu| space.eval(mu, v) && space.eval(mu, w)).count();
                let expected = ones[v as usize] as u128 * ones[w as usize] as u128;
                assert_eq!(
                    both as u128 * m as u128,
                    expected,
                    "pairwise independence of (X_{v}, X_{w})"
                );
            }
        }
    }

    #[test]
    fn gf2_space_size_in_range() {
        for n in [1u64, 2, 3, 5, 8, 17, 100] {
            let s = Gf2Space::new(n);
            assert!(s.len() > 2 * n, "n={n}: {} <= 2n", s.len());
            assert!(s.len() <= 4 * n.max(1), "n={n}: {} > 4n", s.len());
        }
    }

    #[test]
    fn gf2_exact_pairwise_independence() {
        for n in [2u64, 5, 9, 16] {
            assert_pairwise_independent(&Gf2Space::new(n));
        }
    }

    #[test]
    fn affine_exact_pairwise_independence() {
        // small spaces checked exhaustively
        for (n, p) in [(5u64, 0.25), (8, 0.1), (12, 0.5), (3, 0.07)] {
            let s = AffineSpace::new(n, p);
            assert!(s.n_vars() <= s.q());
            assert_pairwise_independent(&s);
        }
    }

    #[test]
    fn affine_bias_close() {
        let s = AffineSpace::new(50, 0.125);
        assert!((s.bias() - 0.125).abs() <= 1.0 / s.q() as f64);
    }

    #[test]
    fn selected_matches_eval() {
        let s = AffineSpace::new(10, 0.3);
        for mu in [0u64, 1, 7, s.len() - 1] {
            let sel = s.selected(mu);
            for v in 0..10 {
                assert_eq!(sel.contains(&v), s.eval(mu, v));
            }
        }
    }

    #[test]
    fn gf2_expected_set_size_near_half() {
        let s = Gf2Space::new(20);
        let total: u64 = (0..s.len()).map(|mu| s.selected(mu).len() as u64).sum();
        let avg = total as f64 / s.len() as f64;
        assert!((avg - 10.0).abs() < 0.51, "avg = {avg}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Exact marginals of the affine space for arbitrary parameters:
        /// every variable is 1 on exactly k·q of the q² points.
        #[test]
        fn affine_exact_marginals(n in 1u64..40, p in 0.01f64..0.9) {
            let s = AffineSpace::new(n, p);
            let v = n - 1;
            let ones = (0..s.len()).filter(|&mu| s.eval(mu, v)).count() as u64;
            prop_assert_eq!(ones, s.k() * s.q());
        }

        /// Exact pairwise independence for random variable pairs (checked
        /// on the full space; q is small for small n).
        #[test]
        fn affine_pairwise_product_rule(n in 2u64..12, p in 0.05f64..0.5, a in 0u64..12, b in 0u64..12) {
            let (a, b) = (a % n, b % n);
            prop_assume!(a != b);
            let s = AffineSpace::new(n, p);
            let both = (0..s.len()).filter(|&mu| s.eval(mu, a) && s.eval(mu, b)).count() as u128;
            prop_assert_eq!(both * (s.len() as u128), (s.k() * s.q()) as u128 * (s.k() * s.q()) as u128);
        }

        /// GF(2) space: XOR-linearity makes each variable exactly balanced.
        #[test]
        fn gf2_balanced(n in 1u64..200, v in 0u64..200) {
            let v = v % n;
            let s = Gf2Space::new(n);
            let ones = (0..s.len()).filter(|&mu| s.eval(mu, v)).count() as u64;
            prop_assert_eq!(ones * 2, s.len());
        }
    }
}
