//! Deterministic primality testing and prime search (for the GF(q) affine
//! pairwise-independent sample space).

/// Deterministic Miller–Rabin for `u64` using the known-complete witness set
/// {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}.
#[must_use]
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = mod_pow(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mod_mul(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// `(a * b) % m` without overflow.
#[must_use]
pub fn mod_mul(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// `(base ^ exp) % m` by square-and-multiply.
#[must_use]
pub fn mod_pow(mut base: u64, mut exp: u64, m: u64) -> u64 {
    let mut acc = 1u64 % m;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mod_mul(acc, base, m);
        }
        base = mod_mul(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Smallest prime `>= n`.
#[must_use]
pub fn next_prime(mut n: u64) -> u64 {
    if n <= 2 {
        return 2;
    }
    if n.is_multiple_of(2) {
        n += 1;
    }
    while !is_prime(n) {
        n += 2;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let primes: Vec<u64> = (0..60).filter(|&n| is_prime(n)).collect();
        assert_eq!(primes, vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59]);
    }

    #[test]
    fn carmichael_rejected() {
        for c in [561u64, 1105, 1729, 2465, 2821, 6601] {
            assert!(!is_prime(c), "{c} is Carmichael, not prime");
        }
    }

    #[test]
    fn large_known_prime() {
        assert!(is_prime(2_147_483_647)); // 2^31 - 1
        assert!(!is_prime(2_147_483_649));
    }

    #[test]
    fn next_prime_works() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(2), 2);
        assert_eq!(next_prime(3), 3);
        assert_eq!(next_prime(4), 5);
        assert_eq!(next_prime(90), 97);
        assert_eq!(next_prime(97), 97);
    }

    #[test]
    fn mod_arith() {
        assert_eq!(mod_pow(2, 10, 1000), 24);
        assert_eq!(
            mod_mul(u64::MAX / 2, 3, u64::MAX - 58),
            ((u64::MAX / 2) as u128 * 3 % (u64::MAX - 58) as u128) as u64
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// is_prime agrees with trial division on the u32 range.
        #[test]
        fn matches_trial_division(n in 2u64..200_000) {
            let trial = (2..=((n as f64).sqrt() as u64)).all(|d| n % d != 0);
            prop_assert_eq!(is_prime(n), trial);
        }

        /// next_prime returns a prime ≥ n with no prime in between.
        #[test]
        fn next_prime_is_next(n in 2u64..50_000) {
            let p = next_prime(n);
            prop_assert!(p >= n && is_prime(p));
            for q in n..p {
                prop_assert!(!is_prime(q));
            }
        }

        /// mod_pow satisfies Fermat's little theorem for prime moduli.
        #[test]
        fn fermat_little(a in 1u64..1000) {
            let p = 1_000_003u64; // prime
            prop_assert_eq!(mod_pow(a, p - 1, p), 1);
        }
    }
}
