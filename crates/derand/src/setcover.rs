//! Hypergraph set cover: greedy baseline and the Berger–Rompel–Shor (BRS)
//! stage/phase/selection algorithm that the paper's blocker-set algorithm
//! distributes (§3, citing \[4\]).
//!
//! This sequential implementation exists for three reasons: it is a
//! substrate the paper depends on ("we adapt the efficient NC algorithm in
//! Berger et al."); it provides an executable specification that the
//! distributed Algorithm 2/2′ in `congest-apsp` is property-tested against;
//! and it lets the sample-space machinery be exercised in isolation.

use crate::pairwise::{AffineSpace, SampleSpace};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A hypergraph: `edges[e]` lists the vertices of hyperedge `e` (deduped).
#[derive(Clone, Debug)]
pub struct Hypergraph {
    /// Number of vertices.
    pub n: usize,
    /// Hyperedges as vertex lists.
    pub edges: Vec<Vec<u32>>,
}

impl Hypergraph {
    /// Builds a hypergraph, deduplicating vertices inside each edge.
    #[must_use]
    pub fn new(n: usize, mut edges: Vec<Vec<u32>>) -> Self {
        for e in &mut edges {
            e.sort_unstable();
            e.dedup();
            assert!(e.iter().all(|&v| (v as usize) < n), "vertex out of range");
            assert!(!e.is_empty(), "empty hyperedge cannot be covered");
        }
        Hypergraph { n, edges }
    }

    /// Maximum edge cardinality.
    #[must_use]
    pub fn max_edge_size(&self) -> usize {
        self.edges.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// `true` iff `cover` hits every edge of `hg`.
#[must_use]
pub fn verify_cover(hg: &Hypergraph, cover: &[u32]) -> bool {
    let mut in_cover = vec![false; hg.n];
    for &v in cover {
        in_cover[v as usize] = true;
    }
    hg.edges.iter().all(|e| e.iter().any(|&v| in_cover[v as usize]))
}

/// Classic greedy set cover (ln-approximation); the paper's size analysis
/// (Lemma 3.10) is relative to this.
#[must_use]
pub fn greedy_cover(hg: &Hypergraph) -> Vec<u32> {
    let mut alive: Vec<bool> = vec![true; hg.edges.len()];
    let mut alive_count = hg.edges.len();
    let mut score = vec![0u64; hg.n];
    for e in &hg.edges {
        for &v in e {
            score[v as usize] += 1;
        }
    }
    let mut cover = Vec::new();
    while alive_count > 0 {
        let best = (0..hg.n).max_by_key(|&v| (score[v], std::cmp::Reverse(v))).unwrap() as u32;
        assert!(score[best as usize] > 0, "uncoverable edge remains");
        cover.push(best);
        for (ei, e) in hg.edges.iter().enumerate() {
            if alive[ei] && e.binary_search(&best).is_ok() {
                alive[ei] = false;
                alive_count -= 1;
                for &v in e {
                    score[v as usize] -= 1;
                }
            }
        }
    }
    cover
}

/// Parameters of the BRS algorithm; the paper requires ε, δ ≤ 1/12.
#[derive(Copy, Clone, Debug)]
pub struct BrsParams {
    /// Stage/phase granularity constant.
    pub eps: f64,
    /// Selection probability constant.
    pub delta: f64,
}

impl Default for BrsParams {
    fn default() -> Self {
        BrsParams { eps: 1.0 / 12.0, delta: 1.0 / 12.0 }
    }
}

impl BrsParams {
    /// Small-instance preset: with the paper's δ = 1/12, the Step 9
    /// single-node threshold `δ³/(1+ε)·|Pij|` is below 1 unless
    /// |Pij| > ~1700, so at simulable sizes every selection resolves via
    /// the singleton branch and the pairwise-independent sampling path
    /// never runs. This preset raises δ (voiding the constant-factor
    /// guarantees of Lemmas 3.8–3.10 but not correctness) so experiments
    /// can exercise and measure the good-set machinery.
    #[must_use]
    pub fn exercise_sampling() -> Self {
        BrsParams { eps: 1.0 / 12.0, delta: 1.0 / 6.0 }
    }
}

/// How selection steps choose candidate sets.
#[derive(Copy, Clone, Debug)]
pub enum Selection {
    /// Algorithm 2: draw pairwise-independent sample points at random and
    /// retry until a good set appears (expected ≤ 8 tries, Lemma 3.8).
    Randomized {
        /// RNG seed.
        seed: u64,
    },
    /// Algorithm 2′/7: scan the affine sample space in a fixed order and
    /// take the first good point.
    Derandomized,
}

/// Counters exposing the quantities bounded by Lemmas 3.8–3.10.
#[derive(Clone, Debug, Default)]
pub struct BrsStats {
    /// Total selection steps (iterations of the Steps 6–16 while loop).
    pub selection_steps: u64,
    /// Steps resolved by the high-coverage single node (Step 10).
    pub singleton_picks: u64,
    /// Steps resolved by a good set A (Steps 12–14).
    pub set_picks: u64,
    /// Sample points examined across all selection steps.
    pub sample_points_examined: u64,
    /// Times no good point was found and the algorithm fell back to the
    /// highest-score node (never observed in practice; see DESIGN.md).
    pub fallbacks: u64,
    /// Sizes |A| of each accepted good set.
    pub good_set_sizes: Vec<usize>,
}

struct BrsState<'h> {
    hg: &'h Hypergraph,
    alive: Vec<bool>,
    alive_count: usize,
    score: Vec<u64>,
    cover: Vec<u32>,
    stats: BrsStats,
}

impl<'h> BrsState<'h> {
    fn new(hg: &'h Hypergraph) -> Self {
        let mut score = vec![0u64; hg.n];
        for e in &hg.edges {
            for &v in e {
                score[v as usize] += 1;
            }
        }
        BrsState {
            hg,
            alive: vec![true; hg.edges.len()],
            alive_count: hg.edges.len(),
            score,
            cover: Vec::new(),
            stats: BrsStats::default(),
        }
    }

    fn add_to_cover(&mut self, nodes: &[u32]) {
        let mut in_set = vec![false; self.hg.n];
        for &v in nodes {
            if !in_set[v as usize] {
                in_set[v as usize] = true;
                self.cover.push(v);
            }
        }
        for (ei, e) in self.hg.edges.iter().enumerate() {
            if self.alive[ei] && e.iter().any(|&v| in_set[v as usize]) {
                self.alive[ei] = false;
                self.alive_count -= 1;
                for &v in e {
                    self.score[v as usize] -= 1;
                }
            }
        }
    }

    /// Edges of Pi (alive, ≥1 vertex in Vi) and how many Vi-vertices each has.
    fn pi_with_counts(&self, in_vi: &[bool]) -> Vec<(usize, usize)> {
        self.hg
            .edges
            .iter()
            .enumerate()
            .filter(|&(ei, _)| self.alive[ei])
            .filter_map(|(ei, e)| {
                let c = e.iter().filter(|&&v| in_vi[v as usize]).count();
                (c > 0).then_some((ei, c))
            })
            .collect()
    }
}

/// Covers covered-count of `set` over the given edge list.
fn coverage(hg: &Hypergraph, edges: &[usize], in_set: &[bool]) -> usize {
    edges.iter().filter(|&&ei| hg.edges[ei].iter().any(|&v| in_set[v as usize])).count()
}

/// The BRS set cover (sequential executable specification of the paper's
/// Algorithm 2 / 2′). Returns the cover and the stats counters.
///
/// # Panics
/// Panics if some edge is empty (uncoverable).
#[must_use]
pub fn brs_cover(hg: &Hypergraph, params: BrsParams, selection: Selection) -> (Vec<u32>, BrsStats) {
    // The paper requires ε, δ ≤ 1/12 for the Lemma 3.8–3.10 guarantees;
    // values up to 0.3 are accepted for small-instance experimentation
    // (coverage progress still holds because 1 - 3δ - ε stays positive).
    assert!(params.eps > 0.0 && params.eps <= 0.3);
    assert!(params.delta > 0.0 && params.delta <= 0.3);
    assert!(1.0 - 3.0 * params.delta - params.eps > 0.0);
    let mut st = BrsState::new(hg);
    let one_eps = 1.0 + params.eps;
    let mut rng = match selection {
        Selection::Randomized { seed } => Some(ChaCha8Rng::seed_from_u64(seed)),
        Selection::Derandomized => None,
    };

    let max_score0 = st.score.iter().copied().max().unwrap_or(0);
    if max_score0 == 0 {
        return (st.cover, st.stats);
    }
    let i_start = (max_score0 as f64).log(one_eps).ceil() as i64 + 1;
    let h_max = hg.max_edge_size().max(1);
    let j_start = ((h_max as f64).log(one_eps).ceil() as i64).max(1);

    for i in (1..=i_start).rev() {
        // Invariant: every score < (1+eps)^i.
        let vi_threshold = one_eps.powi(i as i32 - 1);
        for j in (1..=j_start).rev() {
            loop {
                // Recompute Vi and Pi (Steps 3-4 / Step 16).
                let mut in_vi = vec![false; hg.n];
                for (v, flag) in in_vi.iter_mut().enumerate() {
                    if st.score[v] as f64 >= vi_threshold {
                        *flag = true;
                    }
                }
                let pi = st.pi_with_counts(&in_vi);
                if pi.is_empty() {
                    break;
                }
                let pij_threshold = one_eps.powi(j as i32 - 1);
                let pij: Vec<usize> = pi
                    .iter()
                    .filter(|&&(_, c)| c as f64 >= pij_threshold)
                    .map(|&(ei, _)| ei)
                    .collect();
                if pij.is_empty() {
                    break;
                }
                st.stats.selection_steps += 1;

                // scoreij over Pij.
                let mut scoreij = vec![0u64; hg.n];
                for &ei in &pij {
                    for &v in &hg.edges[ei] {
                        if in_vi[v as usize] {
                            scoreij[v as usize] += 1;
                        }
                    }
                }
                let single_threshold = params.delta.powi(3) / one_eps * pij.len() as f64;
                let best = (0..hg.n)
                    .filter(|&v| in_vi[v])
                    .max_by_key(|&v| (scoreij[v], std::cmp::Reverse(v)));
                if let Some(c) = best {
                    if scoreij[c] as f64 > single_threshold {
                        st.stats.singleton_picks += 1;
                        st.add_to_cover(&[c as u32]);
                        continue;
                    }
                }

                // Selection of a good set A over Vi with bias δ/(1+ε)^j.
                let vi_list: Vec<u32> = (0..hg.n as u32).filter(|&v| in_vi[v as usize]).collect();
                let p = params.delta / one_eps.powi(j as i32);
                let space = AffineSpace::new(vi_list.len() as u64, p);
                let pi_edges: Vec<usize> = pi.iter().map(|&(ei, _)| ei).collect();
                #[allow(clippy::type_complexity)]
                let is_good = |sel: &[u64]| -> bool {
                    if sel.is_empty() {
                        return false;
                    }
                    let mut in_set = vec![false; hg.n];
                    for &idx in sel {
                        in_set[vi_list[idx as usize] as usize] = true;
                    }
                    let cov_pi = coverage(hg, &pi_edges, &in_set);
                    let cov_pij = coverage(hg, &pij, &in_set);
                    let need_pi = sel.len() as f64
                        * one_eps.powi(i as i32)
                        * (1.0 - 3.0 * params.delta - params.eps);
                    let need_pij = params.delta / 2.0 * pij.len() as f64;
                    cov_pi as f64 >= need_pi && cov_pij as f64 >= need_pij
                };

                let mut chosen: Option<Vec<u64>> = None;
                match &mut rng {
                    Some(rng) => {
                        // Algorithm 2: retry random sample points.
                        for _ in 0..256 {
                            let mu = rng.gen_range(0..space.len());
                            st.stats.sample_points_examined += 1;
                            let sel = space.selected(mu);
                            if is_good(&sel) {
                                chosen = Some(sel);
                                break;
                            }
                        }
                    }
                    None => {
                        // Algorithm 2′: deterministic scan of the space.
                        for mu in 0..space.len() {
                            st.stats.sample_points_examined += 1;
                            let sel = space.selected(mu);
                            if is_good(&sel) {
                                chosen = Some(sel);
                                break;
                            }
                        }
                    }
                }

                match chosen {
                    Some(sel) => {
                        st.stats.set_picks += 1;
                        st.stats.good_set_sizes.push(sel.len());
                        let nodes: Vec<u32> =
                            sel.iter().map(|&idx| vi_list[idx as usize]).collect();
                        st.add_to_cover(&nodes);
                    }
                    None => {
                        // No good point (possible only on tiny instances
                        // where the non-asymptotic constants bind): fall
                        // back to the greedy pick to preserve progress.
                        st.stats.fallbacks += 1;
                        let c = best.expect("Vi nonempty when Pij nonempty") as u32;
                        st.add_to_cover(&[c]);
                    }
                }
            }
        }
        if st.alive_count == 0 {
            break;
        }
    }
    debug_assert_eq!(st.alive_count, 0, "BRS must cover everything");
    (st.cover, st.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn random_hypergraph(n: usize, m: usize, max_size: usize, seed: u64) -> Hypergraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let edges = (0..m)
            .map(|_| {
                let size = rng.gen_range(1..=max_size);
                (0..size).map(|_| rng.gen_range(0..n) as u32).collect()
            })
            .collect();
        Hypergraph::new(n, edges)
    }

    #[test]
    fn greedy_covers() {
        let hg = random_hypergraph(30, 60, 5, 1);
        let cover = greedy_cover(&hg);
        assert!(verify_cover(&hg, &cover));
    }

    #[test]
    fn greedy_is_minimal_on_disjoint_edges() {
        let hg = Hypergraph::new(6, vec![vec![0, 1], vec![2, 3], vec![4, 5]]);
        let cover = greedy_cover(&hg);
        assert_eq!(cover.len(), 3);
    }

    #[test]
    fn brs_randomized_covers() {
        for seed in 0..5 {
            let hg = random_hypergraph(40, 80, 6, seed);
            let (cover, stats) =
                brs_cover(&hg, BrsParams::default(), Selection::Randomized { seed });
            assert!(verify_cover(&hg, &cover), "seed {seed}");
            assert!(stats.selection_steps > 0);
        }
    }

    #[test]
    fn brs_derandomized_covers_and_is_deterministic() {
        let hg = random_hypergraph(35, 70, 5, 9);
        let (c1, s1) = brs_cover(&hg, BrsParams::default(), Selection::Derandomized);
        let (c2, _) = brs_cover(&hg, BrsParams::default(), Selection::Derandomized);
        assert!(verify_cover(&hg, &c1));
        assert_eq!(c1, c2, "derandomized run must be deterministic");
        assert_eq!(s1.fallbacks + s1.set_picks + s1.singleton_picks, s1.selection_steps);
    }

    #[test]
    fn brs_size_comparable_to_greedy() {
        // Lemma 3.10: BRS cover ≤ 1/(1-3δ-ε) · greedy ≈ 1.5x, plus the
        // O(log³) singleton picks; allow a loose 4x on small instances.
        let mut total_brs = 0usize;
        let mut total_greedy = 0usize;
        for seed in 0..8 {
            let hg = random_hypergraph(50, 120, 6, 100 + seed);
            let g = greedy_cover(&hg);
            let (b, _) = brs_cover(&hg, BrsParams::default(), Selection::Derandomized);
            total_brs += b.len();
            total_greedy += g.len();
        }
        assert!(total_brs <= 4 * total_greedy, "BRS {total_brs} vs greedy {total_greedy}");
    }

    #[test]
    fn brs_selection_steps_polylog() {
        let hg = random_hypergraph(60, 200, 8, 77);
        let (_, stats) = brs_cover(&hg, BrsParams::default(), Selection::Derandomized);
        // Lemma 3.9: O(log^3 n / (δ³ε²)); for n=60 this constant-heavy bound
        // is astronomically loose — just check the count is sane.
        assert!(stats.selection_steps < 2000, "steps = {}", stats.selection_steps);
    }

    #[test]
    fn single_vertex_edges() {
        let hg = Hypergraph::new(4, vec![vec![1], vec![3]]);
        let (cover, _) = brs_cover(&hg, BrsParams::default(), Selection::Derandomized);
        let mut c = cover.clone();
        c.sort_unstable();
        assert_eq!(c, vec![1, 3]);
    }

    #[test]
    fn verify_cover_rejects_bad() {
        let hg = Hypergraph::new(4, vec![vec![0, 1], vec![2, 3]]);
        assert!(!verify_cover(&hg, &[0]));
        assert!(verify_cover(&hg, &[0, 2]));
    }

    #[test]
    #[should_panic(expected = "empty hyperedge")]
    fn empty_edge_rejected() {
        let _ = Hypergraph::new(3, vec![vec![]]);
    }
}

#[cfg(test)]
mod sampling_path_tests {
    use super::*;

    /// Many same-size edges over many vertices with flat scores: the
    /// singleton threshold `δ³/(1+ε)·|Pij|` exceeds every scoreij, forcing
    /// the pairwise-independent set-selection path.
    fn flat_instance(groups: usize, size: usize) -> Hypergraph {
        let n = groups * size;
        let edges =
            (0..groups).map(|g| ((g * size) as u32..(g * size + size) as u32).collect()).collect();
        Hypergraph::new(n, edges)
    }

    #[test]
    fn set_selection_path_exercised_derandomized() {
        let hg = flat_instance(400, 3);
        let (cover, stats) =
            brs_cover(&hg, BrsParams::exercise_sampling(), Selection::Derandomized);
        assert!(verify_cover(&hg, &cover));
        assert!(stats.set_picks > 0, "sampling path not exercised: {stats:?}");
        assert_eq!(stats.fallbacks, 0, "no fallback expected: {stats:?}");
    }

    #[test]
    fn set_selection_path_exercised_randomized() {
        let hg = flat_instance(400, 3);
        let (cover, stats) =
            brs_cover(&hg, BrsParams::exercise_sampling(), Selection::Randomized { seed: 5 });
        assert!(verify_cover(&hg, &cover));
        assert!(stats.set_picks > 0, "sampling path not exercised: {stats:?}");
    }

    #[test]
    fn randomized_good_set_rate_at_least_eighth() {
        // Lemma 3.8 empirically: among random sample points in a selection
        // step, a decent fraction are good. We measure indirectly: the
        // average number of points examined per accepted set should be
        // well under 8x retries... allow a loose bound.
        let hg = flat_instance(400, 3);
        let (_, stats) =
            brs_cover(&hg, BrsParams::exercise_sampling(), Selection::Randomized { seed: 11 });
        if stats.set_picks > 0 {
            let avg = stats.sample_points_examined as f64 / stats.set_picks as f64;
            assert!(avg <= 64.0, "avg sample points per good set = {avg}");
        }
    }
}
