//! Deterministic, seeded graph generators.
//!
//! Every generator takes an explicit seed and produces the same graph for
//! the same parameters on every platform (ChaCha8 RNG), so simulator
//! transcripts and experiment tables are reproducible.
//!
//! All generators guarantee a *connected communication graph*, which the
//! paper's algorithms require (broadcast must reach every node). For sparse
//! random families this is achieved by overlaying a random spanning tree.

use crate::graph::{Edge, Graph};
use crate::NodeId;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Distribution of edge weights.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum WeightDist {
    /// Every edge has weight 1 (unweighted shortest paths).
    Unit,
    /// Uniform integer weights in `[lo, hi]` inclusive.
    Uniform(u64, u64),
    /// With probability `p_zero` the weight is 0, otherwise uniform in
    /// `[1, hi]`. Exercises the zero-weight-edge support the paper claims.
    ZeroInflated {
        /// Probability of a zero-weight edge, in `\[0, 1\]`.
        p_zero: f64,
        /// Upper bound for the non-zero weights.
        hi: u64,
    },
}

impl WeightDist {
    fn sample(self, rng: &mut impl Rng) -> u64 {
        match self {
            WeightDist::Unit => 1,
            WeightDist::Uniform(lo, hi) => rng.gen_range(lo..=hi),
            WeightDist::ZeroInflated { p_zero, hi } => {
                if rng.gen_bool(p_zero) {
                    0
                } else {
                    rng.gen_range(1..=hi)
                }
            }
        }
    }
}

fn rng_for(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// A simple path `0 - 1 - ... - n-1`.
#[must_use]
pub fn path(n: usize, directed: bool, dist: WeightDist, seed: u64) -> Graph<u64> {
    let mut rng = rng_for(seed);
    let edges = (0..n.saturating_sub(1))
        .map(|i| Edge::new(i as NodeId, (i + 1) as NodeId, dist.sample(&mut rng)))
        .collect();
    Graph::from_edges(n.max(1), directed, edges)
}

/// A cycle on n nodes (n >= 3).
#[must_use]
pub fn cycle(n: usize, directed: bool, dist: WeightDist, seed: u64) -> Graph<u64> {
    assert!(n >= 3, "cycle needs at least 3 nodes");
    let mut rng = rng_for(seed);
    let edges = (0..n)
        .map(|i| Edge::new(i as NodeId, ((i + 1) % n) as NodeId, dist.sample(&mut rng)))
        .collect();
    Graph::from_edges(n, directed, edges)
}

/// A `rows x cols` grid with 4-neighborhood edges; undirected-style edges in
/// both orientations when `directed`.
#[must_use]
pub fn grid(rows: usize, cols: usize, directed: bool, dist: WeightDist, seed: u64) -> Graph<u64> {
    assert!(rows >= 1 && cols >= 1);
    let mut rng = rng_for(seed);
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push(Edge::new(id(r, c), id(r, c + 1), dist.sample(&mut rng)));
                if directed {
                    edges.push(Edge::new(id(r, c + 1), id(r, c), dist.sample(&mut rng)));
                }
            }
            if r + 1 < rows {
                edges.push(Edge::new(id(r, c), id(r + 1, c), dist.sample(&mut rng)));
                if directed {
                    edges.push(Edge::new(id(r + 1, c), id(r, c), dist.sample(&mut rng)));
                }
            }
        }
    }
    Graph::from_edges(rows * cols, directed, edges)
}

/// A star: node 0 is the hub.
#[must_use]
pub fn star(n: usize, directed: bool, dist: WeightDist, seed: u64) -> Graph<u64> {
    assert!(n >= 2);
    let mut rng = rng_for(seed);
    let mut edges = Vec::new();
    for v in 1..n {
        edges.push(Edge::new(0, v as NodeId, dist.sample(&mut rng)));
        if directed {
            edges.push(Edge::new(v as NodeId, 0, dist.sample(&mut rng)));
        }
    }
    Graph::from_edges(n, directed, edges)
}

/// The complete graph on n nodes.
#[must_use]
pub fn complete(n: usize, directed: bool, dist: WeightDist, seed: u64) -> Graph<u64> {
    let mut rng = rng_for(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in 0..n {
            if u == v {
                continue;
            }
            if directed || u < v {
                edges.push(Edge::new(u as NodeId, v as NodeId, dist.sample(&mut rng)));
            }
        }
    }
    Graph::from_edges(n, directed, edges)
}

/// A uniformly random labelled tree (via random attachment), plus weights.
#[must_use]
pub fn random_tree(n: usize, directed: bool, dist: WeightDist, seed: u64) -> Graph<u64> {
    let mut rng = rng_for(seed);
    let mut edges = Vec::new();
    for v in 1..n {
        let parent = rng.gen_range(0..v) as NodeId;
        edges.push(Edge::new(parent, v as NodeId, dist.sample(&mut rng)));
        if directed {
            edges.push(Edge::new(v as NodeId, parent, dist.sample(&mut rng)));
        }
    }
    Graph::from_edges(n.max(1), directed, edges)
}

/// Connected G(n, m): a random spanning tree plus `m` extra uniformly random
/// edges (duplicates and loops re-drawn; for directed graphs the tree edges
/// are inserted in both orientations so the *communication* graph stays
/// connected while reachability remains interesting).
#[must_use]
pub fn gnm_connected(
    n: usize,
    extra_edges: usize,
    directed: bool,
    dist: WeightDist,
    seed: u64,
) -> Graph<u64> {
    assert!(n >= 2);
    let mut rng = rng_for(seed);
    let mut edges = Vec::new();
    // Random spanning tree over a random permutation of labels.
    let mut perm: Vec<NodeId> = (0..n as NodeId).collect();
    perm.shuffle(&mut rng);
    for i in 1..n {
        let a = perm[rng.gen_range(0..i)];
        let b = perm[i];
        edges.push(Edge::new(a, b, dist.sample(&mut rng)));
        if directed {
            edges.push(Edge::new(b, a, dist.sample(&mut rng)));
        }
    }
    let mut placed = 0;
    while placed < extra_edges {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u == v {
            continue;
        }
        edges.push(Edge::new(u, v, dist.sample(&mut rng)));
        placed += 1;
    }
    Graph::from_edges(n, directed, edges)
}

/// Preferential-attachment graph: each new node attaches to `k` existing
/// nodes chosen proportionally to current degree (Barabási–Albert flavour).
#[must_use]
pub fn preferential_attachment(
    n: usize,
    k: usize,
    directed: bool,
    dist: WeightDist,
    seed: u64,
) -> Graph<u64> {
    assert!(n >= 2 && k >= 1);
    let mut rng = rng_for(seed);
    let mut edges: Vec<Edge<u64>> = Vec::new();
    // Repeated-endpoint list implements degree-proportional sampling.
    let mut endpoints: Vec<NodeId> = vec![0, 1];
    edges.push(Edge::new(0, 1, dist.sample(&mut rng)));
    if directed {
        edges.push(Edge::new(1, 0, dist.sample(&mut rng)));
    }
    for v in 2..n {
        let mut chosen = std::collections::BTreeSet::new();
        let attach = k.min(v);
        while chosen.len() < attach {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            chosen.insert(t);
        }
        for &t in &chosen {
            edges.push(Edge::new(v as NodeId, t, dist.sample(&mut rng)));
            if directed {
                edges.push(Edge::new(t, v as NodeId, dist.sample(&mut rng)));
            }
            endpoints.push(t);
            endpoints.push(v as NodeId);
        }
    }
    Graph::from_edges(n, directed, edges)
}

/// A "broom": a long path of length `n/2` whose end fans out into a bushy
/// star. Stresses hop-limited algorithms — many shortest paths have large
/// hop counts, so blocker sets must sit on the handle.
#[must_use]
pub fn broom(n: usize, directed: bool, dist: WeightDist, seed: u64) -> Graph<u64> {
    assert!(n >= 4);
    let mut rng = rng_for(seed);
    let handle = n / 2;
    let mut edges = Vec::new();
    for i in 0..handle {
        edges.push(Edge::new(i as NodeId, (i + 1) as NodeId, dist.sample(&mut rng)));
        if directed {
            edges.push(Edge::new((i + 1) as NodeId, i as NodeId, dist.sample(&mut rng)));
        }
    }
    for v in handle + 1..n {
        edges.push(Edge::new(handle as NodeId, v as NodeId, dist.sample(&mut rng)));
        if directed {
            edges.push(Edge::new(v as NodeId, handle as NodeId, dist.sample(&mut rng)));
        }
    }
    Graph::from_edges(n, directed, edges)
}

/// `layers` layers of `width` nodes; every node in layer i connects to every
/// node in layer i+1. Hop distance between extreme layers is `layers - 1`,
/// which makes h-hop truncation effects visible.
#[must_use]
pub fn layered(
    layers: usize,
    width: usize,
    directed: bool,
    dist: WeightDist,
    seed: u64,
) -> Graph<u64> {
    assert!(layers >= 2 && width >= 1);
    let mut rng = rng_for(seed);
    let id = |l: usize, i: usize| (l * width + i) as NodeId;
    let mut edges = Vec::new();
    for l in 0..layers - 1 {
        for a in 0..width {
            for b in 0..width {
                edges.push(Edge::new(id(l, a), id(l + 1, b), dist.sample(&mut rng)));
                if directed {
                    edges.push(Edge::new(id(l + 1, b), id(l, a), dist.sample(&mut rng)));
                }
            }
        }
    }
    Graph::from_edges(layers * width, directed, edges)
}

/// Enumerable graph families for the test and benchmark harnesses.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Family {
    /// Simple path.
    Path,
    /// Cycle.
    Cycle,
    /// Near-square grid.
    Grid,
    /// Star.
    Star,
    /// Random tree.
    RandomTree,
    /// Connected sparse random graph, m ~ 3n.
    SparseRandom,
    /// Connected denser random graph, m ~ n^{1.5}.
    DenseRandom,
    /// Preferential attachment, k = 2.
    Scalefree,
    /// Broom (long handle + star head).
    Broom,
    /// Layered complete bipartite stack.
    Layered,
}

impl Family {
    /// All families, for exhaustive sweeps.
    pub const ALL: [Family; 10] = [
        Family::Path,
        Family::Cycle,
        Family::Grid,
        Family::Star,
        Family::RandomTree,
        Family::SparseRandom,
        Family::DenseRandom,
        Family::Scalefree,
        Family::Broom,
        Family::Layered,
    ];

    /// Short, stable name for table output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Family::Path => "path",
            Family::Cycle => "cycle",
            Family::Grid => "grid",
            Family::Star => "star",
            Family::RandomTree => "tree",
            Family::SparseRandom => "gnm-sparse",
            Family::DenseRandom => "gnm-dense",
            Family::Scalefree => "scalefree",
            Family::Broom => "broom",
            Family::Layered => "layered",
        }
    }

    /// Builds an instance with ~n nodes (exact n for most families).
    #[must_use]
    pub fn build(self, n: usize, directed: bool, dist: WeightDist, seed: u64) -> Graph<u64> {
        match self {
            Family::Path => path(n, directed, dist, seed),
            Family::Cycle => cycle(n.max(3), directed, dist, seed),
            Family::Grid => {
                let side = (n as f64).sqrt().round().max(1.0) as usize;
                grid(side, side.max(1), directed, dist, seed)
            }
            Family::Star => star(n.max(2), directed, dist, seed),
            Family::RandomTree => random_tree(n, directed, dist, seed),
            Family::SparseRandom => gnm_connected(n.max(2), 2 * n, directed, dist, seed),
            Family::DenseRandom => {
                let m = ((n as f64).powf(1.5) as usize).max(n);
                gnm_connected(n.max(2), m, directed, dist, seed)
            }
            Family::Scalefree => preferential_attachment(n.max(2), 2, directed, dist, seed),
            Family::Broom => broom(n.max(4), directed, dist, seed),
            Family::Layered => {
                let width = ((n as f64).sqrt() / 1.5).round().max(1.0) as usize;
                let layers = (n / width).max(2);
                layered(layers, width, directed, dist, seed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_families_connected_and_sized() {
        for fam in Family::ALL {
            for &directed in &[false, true] {
                let g = fam.build(24, directed, WeightDist::Uniform(0, 10), 7);
                assert!(g.is_comm_connected(), "{} disconnected", fam.name());
                assert!(g.n() >= 16, "{} too small: {}", fam.name(), g.n());
            }
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = gnm_connected(30, 60, true, WeightDist::Uniform(1, 9), 42);
        let b = gnm_connected(30, 60, true, WeightDist::Uniform(1, 9), 42);
        assert_eq!(a.edges(), b.edges());
        let c = gnm_connected(30, 60, true, WeightDist::Uniform(1, 9), 43);
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn zero_inflated_produces_zeros() {
        let g = gnm_connected(40, 120, false, WeightDist::ZeroInflated { p_zero: 0.5, hi: 5 }, 3);
        assert!(g.edges().iter().any(|e| e.weight == 0));
        assert!(g.edges().iter().any(|e| e.weight > 0));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4, false, WeightDist::Unit, 0);
        assert_eq!(g.n(), 12);
        // 3*3 horizontal + 2*4 vertical = 17 undirected edges
        assert_eq!(g.m(), 17);
    }

    #[test]
    fn broom_has_handle_and_head() {
        let g = broom(12, false, WeightDist::Unit, 0);
        assert_eq!(g.n(), 12);
        assert_eq!(g.comm_bfs_depth(0), Some(7)); // 6 handle hops + 1 fan hop
    }

    #[test]
    fn layered_hop_depth() {
        let g = layered(5, 3, false, WeightDist::Unit, 0);
        assert_eq!(g.n(), 15);
        assert_eq!(g.comm_bfs_depth(0), Some(4));
    }

    #[test]
    fn pref_attachment_degrees() {
        let g = preferential_attachment(50, 2, false, WeightDist::Unit, 1);
        assert!(g.is_comm_connected());
        // every node beyond the first two attaches with k=2 edges
        assert!(g.m() >= 48);
    }
}
