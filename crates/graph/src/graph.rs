//! Weighted graph representation.
//!
//! A [`Graph`] stores a directed or undirected weighted graph in CSR
//! (compressed sparse row) form with *both* out- and in-adjacency, because
//! the paper's algorithms need out-SSSP trees (Step 1), in-SSSP trees
//! (Steps 3, Alg 8/9) and the *underlying undirected communication graph*
//! `UG` (§1.1: even for directed inputs, the communication channels are
//! bidirectional).

use crate::weight::Weight;
use crate::NodeId;

/// A directed edge `(from, to, weight)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Edge<W> {
    /// Tail vertex.
    pub from: NodeId,
    /// Head vertex.
    pub to: NodeId,
    /// Non-negative weight.
    pub weight: W,
}

impl<W> Edge<W> {
    /// Convenience constructor.
    pub fn new(from: NodeId, to: NodeId, weight: W) -> Self {
        Edge { from, to, weight }
    }
}

/// CSR adjacency: `index[v]..index[v+1]` delimits `targets`/`weights` rows.
#[derive(Clone, Debug)]
struct Csr<W> {
    index: Vec<u32>,
    targets: Vec<NodeId>,
    weights: Vec<W>,
}

impl<W: Weight> Csr<W> {
    fn build(n: usize, edges: impl Iterator<Item = (NodeId, NodeId, W)> + Clone) -> Self {
        let mut counts = vec![0u32; n + 1];
        for (from, _, _) in edges.clone() {
            counts[from as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let index = counts.clone();
        let total = index[n] as usize;
        let mut targets = vec![0 as NodeId; total];
        let mut weights = vec![W::ZERO; total];
        let mut cursor = index.clone();
        for (from, to, w) in edges {
            let slot = cursor[from as usize] as usize;
            targets[slot] = to;
            weights[slot] = w;
            cursor[from as usize] += 1;
        }
        // Sort each row by target id for deterministic iteration order.
        let mut csr = Csr { index, targets, weights };
        for v in 0..n {
            let (lo, hi) = (csr.index[v] as usize, csr.index[v + 1] as usize);
            let mut row: Vec<(NodeId, W)> = csr.targets[lo..hi]
                .iter()
                .copied()
                .zip(csr.weights[lo..hi].iter().copied())
                .collect();
            row.sort_by_key(|&(t, _)| t);
            for (i, (t, w)) in row.into_iter().enumerate() {
                csr.targets[lo + i] = t;
                csr.weights[lo + i] = w;
            }
        }
        csr
    }

    #[inline]
    fn row(&self, v: NodeId) -> impl Iterator<Item = (NodeId, W)> + '_ {
        let lo = self.index[v as usize] as usize;
        let hi = self.index[v as usize + 1] as usize;
        self.targets[lo..hi].iter().copied().zip(self.weights[lo..hi].iter().copied())
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        (self.index[v as usize + 1] - self.index[v as usize]) as usize
    }

    #[inline]
    fn row_slices(&self, v: NodeId) -> (&[NodeId], &[W]) {
        let lo = self.index[v as usize] as usize;
        let hi = self.index[v as usize + 1] as usize;
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }
}

/// A weighted graph with n nodes, usable as both the shortest-path input and
/// the CONGEST communication topology.
#[derive(Clone, Debug)]
pub struct Graph<W> {
    n: usize,
    directed: bool,
    edges: Vec<Edge<W>>,
    out: Csr<W>,
    into: Csr<W>,
    /// Underlying undirected communication adjacency (deduplicated union of
    /// out- and in-neighbors), one sorted row per node.
    comm: Vec<Vec<NodeId>>,
}

impl<W: Weight> Graph<W> {
    /// Builds a graph from an edge list.
    ///
    /// For undirected graphs each listed edge is traversable in both
    /// directions (it is stored once but mirrored in both adjacencies).
    /// Self-loops are rejected: they never participate in shortest paths and
    /// the CONGEST model has no self-channels. Parallel edges are allowed;
    /// shortest-path algorithms simply see both.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= n` or an edge is a self-loop.
    #[must_use]
    pub fn from_edges(n: usize, directed: bool, edges: Vec<Edge<W>>) -> Self {
        assert!(n > 0, "graph must have at least one node");
        assert!(n <= u32::MAX as usize / 4, "node count {n} exceeds NodeId capacity");
        for e in &edges {
            assert!(
                (e.from as usize) < n && (e.to as usize) < n,
                "edge ({}, {}) out of range for n = {n}",
                e.from,
                e.to
            );
            assert!(e.from != e.to, "self-loop at node {}", e.from);
        }

        let fwd = edges.iter().map(|e| (e.from, e.to, e.weight));
        let bwd = edges.iter().map(|e| (e.to, e.from, e.weight));

        let (out, into) = if directed {
            (Csr::build(n, fwd.clone()), Csr::build(n, bwd.clone()))
        } else {
            let both = fwd.clone().chain(bwd.clone()).collect::<Vec<_>>();
            (Csr::build(n, both.iter().copied()), Csr::build(n, both.iter().copied()))
        };

        let mut comm: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for e in &edges {
            comm[e.from as usize].push(e.to);
            comm[e.to as usize].push(e.from);
        }
        for row in &mut comm {
            row.sort_unstable();
            row.dedup();
        }

        Graph { n, directed, edges, out, into, comm }
    }

    /// Number of nodes.
    #[inline]
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of listed edges (an undirected edge counts once).
    #[inline]
    #[must_use]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph is directed.
    #[inline]
    #[must_use]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// The original edge list.
    #[inline]
    #[must_use]
    pub fn edges(&self) -> &[Edge<W>] {
        &self.edges
    }

    /// Outgoing `(neighbor, weight)` pairs of `v`, sorted by neighbor id.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> impl Iterator<Item = (NodeId, W)> + '_ {
        self.out.row(v)
    }

    /// Incoming edges of `v` as `(source, weight)` pairs, sorted by source id.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = (NodeId, W)> + '_ {
        self.into.row(v)
    }

    /// Outgoing adjacency of `v` as parallel `(targets, weights)` CSR row
    /// slices, sorted by target id. The zero-cost access path for dense
    /// per-edge scans (e.g. successor-matrix derivation in the oracle).
    #[inline]
    #[must_use]
    pub fn out_row(&self, v: NodeId) -> (&[NodeId], &[W]) {
        self.out.row_slices(v)
    }

    /// Incoming adjacency of `v` as parallel `(sources, weights)` CSR row
    /// slices, sorted by source id.
    #[inline]
    #[must_use]
    pub fn in_row(&self, v: NodeId) -> (&[NodeId], &[W]) {
        self.into.row_slices(v)
    }

    /// Out-degree of `v`.
    #[inline]
    #[must_use]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out.degree(v)
    }

    /// In-degree of `v`.
    #[inline]
    #[must_use]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.into.degree(v)
    }

    /// Communication neighbors of `v` in the underlying undirected graph
    /// (used by the CONGEST simulator; §1.1 of the paper).
    #[inline]
    #[must_use]
    pub fn comm_neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.comm[v as usize]
    }

    /// Total number of undirected communication channels.
    #[must_use]
    pub fn comm_channel_count(&self) -> usize {
        self.comm.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// `true` iff `u` and `v` share a communication channel.
    #[must_use]
    pub fn are_comm_neighbors(&self, u: NodeId, v: NodeId) -> bool {
        self.comm[u as usize].binary_search(&v).is_ok()
    }

    /// Whether the *communication* graph is connected (a prerequisite for
    /// every distributed algorithm in the paper; broadcast must reach all
    /// nodes).
    #[must_use]
    pub fn is_comm_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![0 as NodeId];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(v) = stack.pop() {
            for &w in self.comm_neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == self.n
    }

    /// Hop eccentricity of `root` in the communication graph, i.e. the BFS
    /// depth. Returns `None` if some node is unreachable.
    #[must_use]
    pub fn comm_bfs_depth(&self, root: NodeId) -> Option<usize> {
        let mut depth = vec![usize::MAX; self.n];
        let mut queue = std::collections::VecDeque::new();
        depth[root as usize] = 0;
        queue.push_back(root);
        let mut max_depth = 0;
        let mut reached = 1usize;
        while let Some(v) = queue.pop_front() {
            for &w in self.comm_neighbors(v) {
                if depth[w as usize] == usize::MAX {
                    depth[w as usize] = depth[v as usize] + 1;
                    max_depth = max_depth.max(depth[w as usize]);
                    reached += 1;
                    queue.push_back(w);
                }
            }
        }
        (reached == self.n).then_some(max_depth)
    }

    /// Maps the weights of the graph through `f`, preserving structure.
    #[must_use]
    pub fn map_weights<W2: Weight>(&self, mut f: impl FnMut(W) -> W2) -> Graph<W2> {
        let edges = self.edges.iter().map(|e| Edge::new(e.from, e.to, f(e.weight))).collect();
        Graph::from_edges(self.n, self.directed, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph<u64> {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        Graph::from_edges(
            4,
            true,
            vec![Edge::new(0, 1, 1), Edge::new(1, 3, 1), Edge::new(0, 2, 5), Edge::new(2, 3, 1)],
        )
    }

    #[test]
    fn csr_out_in_rows() {
        let g = diamond();
        let out0: Vec<_> = g.out_edges(0).collect();
        assert_eq!(out0, vec![(1, 1), (2, 5)]);
        let in3: Vec<_> = g.in_edges(3).collect();
        assert_eq!(in3, vec![(1, 1), (2, 1)]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
    }

    #[test]
    fn comm_graph_is_undirected_union() {
        let g = diamond();
        assert_eq!(g.comm_neighbors(0), &[1, 2]);
        assert_eq!(g.comm_neighbors(3), &[1, 2]);
        assert!(g.are_comm_neighbors(3, 1));
        assert!(g.are_comm_neighbors(1, 3));
        assert!(!g.are_comm_neighbors(0, 3));
        assert!(g.is_comm_connected());
        assert_eq!(g.comm_channel_count(), 4);
    }

    #[test]
    fn row_slices_mirror_edge_iterators() {
        let g = diamond();
        for v in 0..4u32 {
            let (t, w) = g.out_row(v);
            let pairs: Vec<_> = t.iter().copied().zip(w.iter().copied()).collect();
            assert_eq!(pairs, g.out_edges(v).collect::<Vec<_>>());
            let (s, w) = g.in_row(v);
            let pairs: Vec<_> = s.iter().copied().zip(w.iter().copied()).collect();
            assert_eq!(pairs, g.in_edges(v).collect::<Vec<_>>());
        }
    }

    #[test]
    fn undirected_edges_mirrored() {
        let g = Graph::from_edges(3, false, vec![Edge::new(0, 1, 2u64), Edge::new(1, 2, 3)]);
        let out1: Vec<_> = g.out_edges(1).collect();
        assert_eq!(out1, vec![(0, 2), (2, 3)]);
        let in1: Vec<_> = g.in_edges(1).collect();
        assert_eq!(in1, vec![(0, 2), (2, 3)]);
    }

    #[test]
    fn disconnected_detected() {
        let g: Graph<u64> = Graph::from_edges(4, true, vec![Edge::new(0, 1, 1)]);
        assert!(!g.is_comm_connected());
        assert_eq!(g.comm_bfs_depth(0), None);
    }

    #[test]
    fn bfs_depth_path() {
        let g: Graph<u64> = Graph::from_edges(
            4,
            true,
            vec![Edge::new(0, 1, 1), Edge::new(1, 2, 1), Edge::new(2, 3, 1)],
        );
        assert_eq!(g.comm_bfs_depth(0), Some(3));
        assert_eq!(g.comm_bfs_depth(1), Some(2));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let _ = Graph::<u64>::from_edges(2, true, vec![Edge::new(1, 1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let _ = Graph::<u64>::from_edges(2, true, vec![Edge::new(0, 5, 1)]);
    }

    #[test]
    fn map_weights_preserves_structure() {
        let g = diamond();
        let g2 = g.map_weights(|w| crate::F64::new(w as f64));
        assert_eq!(g2.n(), 4);
        assert_eq!(g2.m(), 4);
        let out0: Vec<_> = g2.out_edges(0).map(|(t, w)| (t, w.get())).collect();
        assert_eq!(out0, vec![(1, 1.0), (2, 5.0)]);
    }
}
