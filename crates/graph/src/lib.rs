//! # congest-graph
//!
//! Graph substrate for the CONGEST APSP reproduction: weighted
//! directed/undirected graphs in CSR form, seeded generators for every
//! workload family used in the experiments, and sequential reference
//! shortest-path algorithms (Dijkstra, Floyd–Warshall, exact `δ_h`
//! hop-limited distances) that serve as correctness oracles.
//!
//! The distributed algorithms live in `congest-apsp`; the network simulator
//! in `congest-sim`. This crate is deliberately free of any distributed
//! machinery so oracles cannot share bugs with the system under test.

#![warn(missing_docs)]
#![deny(deprecated)]

pub mod generators;
mod graph;
pub mod matrix;
pub mod seq;
mod weight;

pub use graph::{Edge, Graph};
pub use matrix::{DistMatrix, NO_SUCC};
pub use weight::{Weight, F64};

/// Compact node identifier (vertices are numbered `0..n`).
pub type NodeId = u32;

#[cfg(test)]
mod proptests {
    use crate::generators::{gnm_connected, WeightDist};
    use crate::seq::{apsp_dijkstra, floyd_warshall};
    use crate::weight::Weight;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Dijkstra and Floyd–Warshall agree on random graphs — two
        /// independent oracles cross-checking each other.
        #[test]
        fn oracles_agree(n in 2usize..24, extra in 0usize..40, seed in 0u64..1000, directed: bool) {
            let g = gnm_connected(n, extra, directed, WeightDist::Uniform(0, 12), seed);
            prop_assert_eq!(apsp_dijkstra(&g), floyd_warshall(&g));
        }

        /// Triangle inequality holds for the computed metric.
        #[test]
        fn triangle_inequality(n in 2usize..16, extra in 0usize..30, seed in 0u64..1000) {
            let g = gnm_connected(n, extra, true, WeightDist::Uniform(0, 9), seed);
            let d = apsp_dijkstra(&g);
            for i in 0..g.n() {
                for j in 0..g.n() {
                    for k in 0..g.n() {
                        prop_assert!(d[i][j] <= d[i][k].plus(d[k][j]));
                    }
                }
            }
        }

        /// Weight laws for u64.
        #[test]
        fn weight_laws_u64(a in 0u64..u64::INF, b in 0u64..u64::INF) {
            prop_assert_eq!(a.plus(u64::ZERO), a);
            prop_assert_eq!(a.plus(u64::INF), u64::INF);
            prop_assert!(a.plus(b) >= a);
        }
    }
}
