//! Flat row-major distance matrices — the single arena shared from the
//! compute pipeline to the serving layer.
//!
//! Historically every layer of the workspace represented an n×n (or k×n)
//! distance table as `Vec<Vec<W>>`: n separate heap allocations, poor
//! locality, and an O(n²) flatten-copy at the compute→serve boundary when
//! `congest_oracle` rebuilt its own arena. [`DistMatrix`] replaces all of
//! that with one contiguous `Vec<W>` plus the shape, so the oracle can take
//! ownership of the arena by move.
//!
//! The matrix is rectangular in general (`rows × cols`): the APSP outcome
//! is square (`n × n`), but intermediate tables — `δ(x, q_i)` per blocker,
//! CSSSP per-source columns — are `n × |Q|` or `|Q| × n` and use the same
//! type.
//!
//! `m[r][c]` indexing keeps working: `Index<usize>` returns the row slice,
//! so migrated call sites read exactly as before.
//!
//! ## The optional successor plane
//!
//! A square matrix may carry a *successor plane*: one `NodeId` per cell,
//! stored **target-major** (`succ[v*n + u]` = next hop from `u` toward
//! target `v`, [`NO_SUCC`] when `u == v` or `v` is unreachable). This is
//! exactly the layout `congest_oracle::Oracle` serves path queries from, so
//! a producer that already knows successors can hand both arenas over
//! without any re-derivation.

use crate::weight::Weight;
use crate::NodeId;
use std::ops::{Index, IndexMut};

/// Sentinel successor value: "no next hop" (unreachable target, or the
/// diagonal). Never collides with a real node id — graph construction caps
/// node counts well below `NodeId::MAX`.
pub const NO_SUCC: NodeId = NodeId::MAX;

/// A flat, row-major `rows × cols` matrix of weights in a single arena,
/// with an optional target-major successor plane (square matrices only).
///
/// Equality compares the shape and the distances only: the auxiliary
/// successor plane is ignored, so a producer that fills the plane still
/// compares equal to a reference matrix that does not carry one.
#[derive(Clone, Debug)]
pub struct DistMatrix<W> {
    rows: usize,
    cols: usize,
    data: Box<[W]>,
    succ: Option<Box<[NodeId]>>,
}

impl<W: PartialEq> PartialEq for DistMatrix<W> {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.data == other.data
    }
}

impl<W: Eq> Eq for DistMatrix<W> {}

impl<W: Weight> DistMatrix<W> {
    /// A `rows × cols` matrix with every cell set to `fill`.
    #[must_use]
    pub fn filled(rows: usize, cols: usize, fill: W) -> Self {
        DistMatrix { rows, cols, data: vec![fill; rows * cols].into_boxed_slice(), succ: None }
    }

    /// A square `n × n` matrix with every cell set to `fill`.
    #[must_use]
    pub fn square(n: usize, fill: W) -> Self {
        Self::filled(n, n, fill)
    }

    /// Wraps an existing row-major arena.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_flat(rows: usize, cols: usize, data: Vec<W>) -> Self {
        assert_eq!(data.len(), rows * cols, "arena length must equal rows * cols");
        DistMatrix { rows, cols, data: data.into_boxed_slice(), succ: None }
    }

    /// Migration helper: flattens a nested `Vec<Vec<W>>` (every inner vec
    /// must have the same length). An empty outer vec yields a `0 × 0`
    /// matrix.
    ///
    /// # Panics
    /// Panics if the rows are ragged.
    #[must_use]
    pub fn from_rows(rows: Vec<Vec<W>>) -> Self {
        let nrows = rows.len();
        let cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(nrows * cols);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "row {r} has length {} != {cols}", row.len());
            data.extend_from_slice(row);
        }
        DistMatrix { rows: nrows, cols, data: data.into_boxed_slice(), succ: None }
    }

    /// Attaches a target-major successor plane (see module docs).
    ///
    /// # Panics
    /// Panics if the matrix is not square or `succ.len() != rows * cols`.
    #[must_use]
    pub fn with_successors(mut self, succ: Vec<NodeId>) -> Self {
        assert_eq!(self.rows, self.cols, "successor planes require a square matrix");
        assert_eq!(succ.len(), self.rows * self.cols, "successor plane has wrong length");
        self.succ = Some(succ.into_boxed_slice());
        self
    }

    /// Attaches an empty (all-[`NO_SUCC`]) successor plane, ready to be
    /// filled cell by cell via [`set_successor`](Self::set_successor) —
    /// the constructor compute pipelines use while they aggregate
    /// per-source next hops into the target-major layout.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    #[must_use]
    pub fn with_empty_successors(self) -> Self {
        let cells = self.rows * self.cols;
        self.with_successors(vec![NO_SUCC; cells])
    }

    /// Records `s` as the next hop from `u` toward target `v` in the
    /// attached successor plane ([`NO_SUCC`] clears the cell).
    ///
    /// # Panics
    /// Panics if no plane is attached or `u`/`v` is out of range (an
    /// unchecked flat-index write would silently steer a different pair).
    #[inline]
    pub fn set_successor(&mut self, u: NodeId, v: NodeId, s: NodeId) {
        let n = self.cols;
        assert!((u as usize) < n && (v as usize) < self.rows, "node ({u}, {v}) out of range");
        let succ = self.succ.as_deref_mut().expect("no successor plane attached");
        succ[v as usize * n + u as usize] = s;
    }

    /// Number of rows.
    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Side length of a square matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    #[inline]
    #[must_use]
    pub fn n(&self) -> usize {
        assert_eq!(self.rows, self.cols, "n() requires a square matrix");
        self.rows
    }

    /// `true` iff the matrix has no cells.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The cell at `(r, c)`.
    ///
    /// # Panics
    /// Panics if `r` or `c` is out of range (the column check is a real
    /// assert: in a flat arena an oversized `c` would otherwise silently
    /// alias into the next row).
    #[inline]
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> W {
        assert!(c < self.cols, "column {c} out of range");
        self.data[r * self.cols + c]
    }

    /// Sets the cell at `(r, c)`.
    ///
    /// # Panics
    /// Panics if `r` or `c` is out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, w: W) {
        assert!(c < self.cols, "column {c} out of range");
        self.data[r * self.cols + c] = w;
    }

    /// Row `r` as a contiguous slice.
    ///
    /// # Panics
    /// Panics if `r >= rows` (an explicit assert: slice-range arithmetic
    /// alone would accept any `r` on a zero-column matrix).
    #[inline]
    #[must_use]
    pub fn row(&self, r: usize) -> &[W] {
        assert!(r < self.rows, "row {r} out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable contiguous slice.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    #[inline]
    #[must_use]
    pub fn row_mut(&mut self, r: usize) -> &mut [W] {
        assert!(r < self.rows, "row {r} out of range");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The whole arena, row-major.
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[W] {
        &self.data
    }

    /// The successor plane, if one is attached.
    #[inline]
    #[must_use]
    pub fn successors(&self) -> Option<&[NodeId]> {
        self.succ.as_deref()
    }

    /// The next hop from `u` toward target `v` per the successor plane;
    /// `None` when no plane is attached or the plane holds [`NO_SUCC`].
    ///
    /// # Panics
    /// Panics if a plane is attached and `u` or `v` is out of range (an
    /// unchecked flat-index read would silently answer for a different
    /// pair).
    #[inline]
    #[must_use]
    pub fn successor(&self, u: NodeId, v: NodeId) -> Option<NodeId> {
        let succ = self.succ.as_deref()?;
        assert!(
            (u as usize) < self.cols && (v as usize) < self.rows,
            "node ({u}, {v}) out of range"
        );
        let s = succ[v as usize * self.cols + u as usize];
        (s != NO_SUCC).then_some(s)
    }

    /// Consumes the matrix, returning the distance arena and the optional
    /// successor plane — the zero-copy handoff the serving layer builds on.
    #[must_use]
    pub fn into_parts(self) -> (Box<[W]>, Option<Box<[NodeId]>>) {
        (self.data, self.succ)
    }
}

impl<W: Weight> Index<usize> for DistMatrix<W> {
    type Output = [W];

    #[inline]
    fn index(&self, r: usize) -> &[W] {
        self.row(r)
    }
}

impl<W: Weight> IndexMut<usize> for DistMatrix<W> {
    #[inline]
    fn index_mut(&mut self, r: usize) -> &mut [W] {
        self.row_mut(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_and_set_get() {
        let mut m = DistMatrix::filled(2, 3, u64::INF);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        m.set(1, 2, 7);
        assert_eq!(m.get(1, 2), 7);
        assert_eq!(m.get(0, 0), u64::INF);
        assert_eq!(m.row(1), &[u64::INF, u64::INF, 7]);
    }

    #[test]
    fn index_sugar_reads_and_writes() {
        let mut m = DistMatrix::square(2, 0u64);
        m[0][1] = 5;
        m[1][0] = 9;
        assert_eq!(m[0][1], 5);
        assert_eq!(m[1][0], 9);
        assert_eq!(m.as_slice(), &[0, 5, 9, 0]);
    }

    #[test]
    fn from_rows_round_trip() {
        let rows = vec![vec![1u64, 2, 3], vec![4, 5, 6]];
        let m = DistMatrix::from_rows(rows.clone());
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(m.row(r), row.as_slice());
            for (c, &w) in row.iter().enumerate() {
                assert_eq!(m.get(r, c), w);
            }
        }
        assert_eq!(m.as_slice(), &[1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn from_rows_empty() {
        let m = DistMatrix::<u64>::from_rows(Vec::new());
        assert_eq!((m.rows(), m.cols()), (0, 0));
        assert!(m.is_empty());
        let zero_cols = DistMatrix::<u64>::from_rows(vec![Vec::new(); 4]);
        assert_eq!((zero_cols.rows(), zero_cols.cols()), (4, 0));
        assert!(zero_cols.row(2).is_empty());
    }

    #[test]
    #[should_panic(expected = "row 1 has length")]
    fn ragged_rows_rejected() {
        let _ = DistMatrix::from_rows(vec![vec![1u64, 2], vec![3]]);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn n_requires_square() {
        let _ = DistMatrix::filled(2, 3, 0u64).n();
    }

    #[test]
    fn successor_plane() {
        // 2-node line 0 -> 1: toward target 0 nothing moves (1 can't reach
        // 0), toward target 1 node 0 steps to 1.
        let m = DistMatrix::from_rows(vec![vec![0u64, 1], vec![u64::INF, 0]])
            .with_successors(vec![NO_SUCC, NO_SUCC, 1, NO_SUCC]);
        assert_eq!(m.successor(0, 1), Some(1));
        assert_eq!(m.successor(1, 0), None);
        assert_eq!(m.successor(0, 0), None);
        let (data, succ) = m.into_parts();
        assert_eq!(&*data, &[0, 1, u64::INF, 0]);
        assert_eq!(&*succ.unwrap(), &[NO_SUCC, NO_SUCC, 1, NO_SUCC]);
    }

    #[test]
    fn empty_plane_filled_incrementally() {
        let mut m =
            DistMatrix::from_rows(vec![vec![0u64, 1], vec![u64::INF, 0]]).with_empty_successors();
        assert_eq!(m.successor(0, 1), None, "fresh plane starts empty");
        m.set_successor(0, 1, 1);
        assert_eq!(m.successor(0, 1), Some(1));
        m.set_successor(0, 1, NO_SUCC);
        assert_eq!(m.successor(0, 1), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_successor_bounds_checked() {
        let mut m = DistMatrix::square(2, 0u64).with_empty_successors();
        m.set_successor(2, 0, 1);
    }

    #[test]
    #[should_panic(expected = "no successor plane")]
    fn set_successor_requires_plane() {
        let mut m = DistMatrix::square(2, 0u64);
        m.set_successor(0, 1, 1);
    }

    #[test]
    #[should_panic(expected = "column 3 out of range")]
    fn get_rejects_column_overflow() {
        // A flat arena would otherwise alias (r, cols) to (r+1, 0).
        let m = DistMatrix::filled(3, 3, 0u64);
        let _ = m.get(0, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn successor_rejects_out_of_range_node() {
        let m = DistMatrix::from_rows(vec![vec![0u64, 1], vec![u64::INF, 0]])
            .with_successors(vec![NO_SUCC, NO_SUCC, 1, NO_SUCC]);
        let _ = m.successor(2, 0); // flat index would land on pair (0, 1)
    }

    #[test]
    fn equality_ignores_successor_plane() {
        let plain = DistMatrix::from_rows(vec![vec![0u64, 1], vec![u64::INF, 0]]);
        let with_plane = plain.clone().with_successors(vec![NO_SUCC, NO_SUCC, 1, NO_SUCC]);
        assert_eq!(plain, with_plane, "the auxiliary plane must not break distance equality");
        let different = DistMatrix::from_rows(vec![vec![0u64, 2], vec![u64::INF, 0]]);
        assert_ne!(plain, different);
    }

    #[test]
    fn into_parts_moves_arena() {
        let m = DistMatrix::from_flat(1, 2, vec![3u64, 4]);
        let ptr = m.as_slice().as_ptr();
        let (data, succ) = m.into_parts();
        assert_eq!(data.as_ptr(), ptr, "into_parts must move, not copy");
        assert!(succ.is_none());
    }
}
