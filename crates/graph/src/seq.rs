//! Sequential reference shortest-path algorithms.
//!
//! These are the *correctness oracles* for the distributed algorithms: every
//! distributed APSP run is checked against [`apsp_dijkstra`], and every
//! h-hop structure against [`hop_limited_distances`] (which computes the
//! paper's `δ_h(u, v)` exactly via dynamic programming over hop counts).

use crate::graph::Graph;
use crate::matrix::DistMatrix;
use crate::weight::Weight;
use crate::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which adjacency to traverse.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Follow edges forward: distances *from* the source.
    Out,
    /// Follow edges backward: distances *to* the sink (the paper's in-SSSP).
    In,
}

fn neighbors<'a, W: Weight>(
    g: &'a Graph<W>,
    v: NodeId,
    dir: Direction,
) -> Box<dyn Iterator<Item = (NodeId, W)> + 'a> {
    match dir {
        Direction::Out => Box::new(g.out_edges(v)),
        Direction::In => Box::new(g.in_edges(v)),
    }
}

/// Single-source shortest path distances via Dijkstra (non-negative
/// weights). `dist[v] == W::INF` iff `v` is unreachable.
#[must_use]
pub fn dijkstra<W: Weight>(g: &Graph<W>, source: NodeId, dir: Direction) -> Vec<W> {
    let mut dist = vec![W::INF; g.n()];
    let mut heap: BinaryHeap<Reverse<(W, NodeId)>> = BinaryHeap::new();
    dist[source as usize] = W::ZERO;
    heap.push(Reverse((W::ZERO, source)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for (w, wt) in neighbors(g, v, dir) {
            let nd = d.plus(wt);
            if nd < dist[w as usize] {
                dist[w as usize] = nd;
                heap.push(Reverse((nd, w)));
            }
        }
    }
    dist
}

/// Exact APSP matrix (`dist[x][t] = δ(x, t)`) via one Dijkstra per source,
/// written straight into a flat [`DistMatrix`] arena.
#[must_use]
pub fn apsp_dijkstra<W: Weight>(g: &Graph<W>) -> DistMatrix<W> {
    let n = g.n();
    let mut data = Vec::with_capacity(n * n);
    for s in 0..n as NodeId {
        data.extend_from_slice(&dijkstra(g, s, Direction::Out));
    }
    DistMatrix::from_flat(n, n, data)
}

/// Exact APSP via Floyd–Warshall; an independent oracle used to
/// cross-validate [`apsp_dijkstra`] in tests.
#[must_use]
pub fn floyd_warshall<W: Weight>(g: &Graph<W>) -> DistMatrix<W> {
    let n = g.n();
    let mut d = DistMatrix::square(n, W::INF);
    for v in 0..n {
        d.set(v, v, W::ZERO);
    }
    for v in 0..n as NodeId {
        for (t, w) in g.out_edges(v) {
            if w < d.get(v as usize, t as usize) {
                d.set(v as usize, t as usize, w);
            }
        }
    }
    for k in 0..n {
        for i in 0..n {
            if d.get(i, k).is_inf() {
                continue;
            }
            for j in 0..n {
                let via = d.get(i, k).plus(d.get(k, j));
                if via < d.get(i, j) {
                    d.set(i, j, via);
                }
            }
        }
    }
    d
}

/// `δ_h` — the minimum weight of a path with **at most h hops** from (or
/// to, per `dir`) `source`, via DP over hop counts in O(h·m).
///
/// `result[v] == W::INF` iff no ≤h-hop path exists.
#[must_use]
pub fn hop_limited_distances<W: Weight>(
    g: &Graph<W>,
    source: NodeId,
    h: usize,
    dir: Direction,
) -> Vec<W> {
    let n = g.n();
    let mut cur = vec![W::INF; n];
    cur[source as usize] = W::ZERO;
    let mut next = cur.clone();
    for _ in 0..h {
        for v in 0..n as NodeId {
            if cur[v as usize].is_inf() {
                continue;
            }
            for (t, w) in neighbors(g, v, dir) {
                let nd = cur[v as usize].plus(w);
                if nd < next[t as usize] {
                    next[t as usize] = nd;
                }
            }
        }
        cur.copy_from_slice(&next);
    }
    cur
}

/// For every node: the minimum hop count among all ≤h-hop paths from
/// `source` achieving `δ_h`; `None` if unreachable within h hops.
///
/// Used to validate CSSSP tree depths (a vertex must appear at its minimal
/// optimal depth).
#[must_use]
pub fn hop_limited_min_hops<W: Weight>(
    g: &Graph<W>,
    source: NodeId,
    h: usize,
    dir: Direction,
) -> Vec<Option<usize>> {
    let n = g.n();
    // per_hop[k][v] = best distance with <= k hops
    let mut per_hop = Vec::with_capacity(h + 1);
    let mut cur = vec![W::INF; n];
    cur[source as usize] = W::ZERO;
    per_hop.push(cur.clone());
    let mut next = cur.clone();
    for _ in 0..h {
        for v in 0..n as NodeId {
            if cur[v as usize].is_inf() {
                continue;
            }
            for (t, w) in neighbors(g, v, dir) {
                let nd = cur[v as usize].plus(w);
                if nd < next[t as usize] {
                    next[t as usize] = nd;
                }
            }
        }
        cur.copy_from_slice(&next);
        per_hop.push(cur.clone());
    }
    (0..n)
        .map(|v| {
            let best = per_hop[h][v];
            if best.is_inf() {
                None
            } else {
                Some((0..=h).find(|&k| per_hop[k][v] == best).expect("monotone DP"))
            }
        })
        .collect()
}

/// Exact weighted hop-diameter proxy: max over reachable pairs of the
/// minimal hop count among shortest paths. Expensive (O(n·n·m)); intended
/// for tests and small experiment set-up only.
#[must_use]
pub fn max_shortest_path_hops<W: Weight>(g: &Graph<W>) -> usize {
    let n = g.n();
    let mut worst = 0;
    for s in 0..n as NodeId {
        let exact = dijkstra(g, s, Direction::Out);
        let hops = hop_limited_min_hops(g, s, n, Direction::Out);
        for v in 0..n {
            if !exact[v].is_inf() {
                if let Some(k) = hops[v] {
                    worst = worst.max(k);
                }
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{gnm_connected, path, Family, WeightDist};
    use crate::graph::Edge;

    #[test]
    fn dijkstra_diamond() {
        let g = Graph::from_edges(
            4,
            true,
            vec![Edge::new(0, 1, 1u64), Edge::new(1, 3, 1), Edge::new(0, 2, 5), Edge::new(2, 3, 1)],
        );
        assert_eq!(dijkstra(&g, 0, Direction::Out), vec![0, 1, 5, 2]);
        assert_eq!(dijkstra(&g, 3, Direction::In), vec![2, 1, 1, 0]);
        assert_eq!(dijkstra(&g, 3, Direction::Out), vec![u64::INF, u64::INF, u64::INF, 0]);
    }

    #[test]
    fn dijkstra_matches_floyd_warshall_on_families() {
        for fam in Family::ALL {
            let g = fam.build(20, true, WeightDist::Uniform(0, 7), 11);
            let a = apsp_dijkstra(&g);
            let b = floyd_warshall(&g);
            assert_eq!(a, b, "family {}", fam.name());
        }
    }

    #[test]
    fn hop_limited_converges_to_exact() {
        let g = gnm_connected(25, 50, true, WeightDist::Uniform(1, 9), 5);
        let exact = dijkstra(&g, 0, Direction::Out);
        let hop_n = hop_limited_distances(&g, 0, g.n(), Direction::Out);
        assert_eq!(exact, hop_n);
    }

    #[test]
    fn hop_limited_truncates() {
        let g = path(5, true, WeightDist::Unit, 0);
        let d2 = hop_limited_distances(&g, 0, 2, Direction::Out);
        assert_eq!(d2, vec![0, 1, 2, u64::INF, u64::INF]);
        let din = hop_limited_distances(&g, 4, 2, Direction::In);
        assert_eq!(din, vec![u64::INF, u64::INF, 2, 1, 0]);
    }

    #[test]
    fn hop_limited_monotone_in_h() {
        let g = gnm_connected(20, 40, false, WeightDist::Uniform(0, 5), 9);
        let mut prev = hop_limited_distances(&g, 3, 0, Direction::Out);
        for h in 1..g.n() {
            let cur = hop_limited_distances(&g, 3, h, Direction::Out);
            for v in 0..g.n() {
                assert!(cur[v] <= prev[v], "h-hop distance must be monotone in h");
            }
            prev = cur;
        }
    }

    #[test]
    fn min_hops_on_tie() {
        // Two equal-weight routes with different hop counts: 0->2 direct (w 2)
        // vs 0->1->2 (w 1+1). min hops at equal dist must be 1.
        let g = Graph::from_edges(
            3,
            true,
            vec![Edge::new(0, 1, 1u64), Edge::new(1, 2, 1), Edge::new(0, 2, 2)],
        );
        let hops = hop_limited_min_hops(&g, 0, 2, Direction::Out);
        assert_eq!(hops, vec![Some(0), Some(1), Some(1)]);
    }

    #[test]
    fn zero_weights_supported() {
        let g = Graph::from_edges(3, true, vec![Edge::new(0, 1, 0u64), Edge::new(1, 2, 0)]);
        assert_eq!(dijkstra(&g, 0, Direction::Out), vec![0, 0, 0]);
        assert_eq!(hop_limited_distances(&g, 0, 1, Direction::Out), vec![0, 0, u64::INF]);
    }

    #[test]
    fn f64_weights_work() {
        use crate::F64;
        let g = Graph::from_edges(
            3,
            true,
            vec![
                Edge::new(0, 1, F64::new(0.5)),
                Edge::new(1, 2, F64::new(0.25)),
                Edge::new(0, 2, F64::new(1.0)),
            ],
        );
        let d = dijkstra(&g, 0, Direction::Out);
        assert_eq!(d[2], F64::new(0.75));
    }

    #[test]
    fn max_hops_path() {
        let g = path(6, true, WeightDist::Unit, 0);
        assert_eq!(max_shortest_path_hops(&g), 5);
    }
}
