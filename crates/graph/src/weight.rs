//! Edge-weight abstraction.
//!
//! The paper allows *arbitrary non-negative* edge weights (§1.1). We model
//! this with the [`Weight`] trait: a totally ordered additive monoid with a
//! zero and an absorbing "infinity" used for unreachable distances. Two
//! instantiations are provided:
//!
//! * [`u64`] — exact integer weights; used by all correctness tests so that
//!   distance comparisons are exact.
//! * [`F64`] — a total-order wrapper over `f64` demonstrating arbitrary real
//!   weights (the CONGEST word model assumes a distance value fits in O(1)
//!   words either way).

use core::fmt::Debug;
use core::ops::Add;

/// A totally ordered, additively monotone weight type with `ZERO` and an
/// absorbing `INF` sentinel for "unreachable".
///
/// Laws (checked by property tests in this crate):
/// * `ZERO <= w` for every valid weight `w` (non-negativity),
/// * `w.plus(ZERO) == w`,
/// * `INF.plus(w) == INF` and `w.plus(INF) == INF`,
/// * `plus` is monotone in both arguments.
pub trait Weight:
    Copy + Clone + Ord + PartialOrd + Eq + PartialEq + Debug + Send + Sync + 'static
{
    /// The additive identity (distance of a node to itself).
    const ZERO: Self;
    /// Absorbing sentinel representing an unreachable distance.
    const INF: Self;

    /// Saturating addition: absorbs at `INF` and never overflows. Named
    /// `plus` (not `saturating_add`) to avoid colliding with the inherent
    /// method on the integer types, which is not `INF`-absorbing.
    #[must_use]
    fn plus(self, other: Self) -> Self;

    /// `true` iff this value is the `INF` sentinel.
    #[inline]
    fn is_inf(self) -> bool {
        self == Self::INF
    }
}

impl Weight for u64 {
    const ZERO: Self = 0;
    // Leave generous headroom so that summing n INF/4 terms cannot wrap.
    const INF: Self = u64::MAX / 4;

    #[inline]
    fn plus(self, other: Self) -> Self {
        if self >= Self::INF || other >= Self::INF {
            Self::INF
        } else {
            // Both operands < u64::MAX/4, so the sum cannot overflow, but it
            // may exceed INF; clamp to keep INF absorbing.
            core::cmp::min(self + other, Self::INF)
        }
    }
}

impl Weight for u32 {
    const ZERO: Self = 0;
    const INF: Self = u32::MAX / 4;

    #[inline]
    fn plus(self, other: Self) -> Self {
        if self >= Self::INF || other >= Self::INF {
            Self::INF
        } else {
            core::cmp::min(self + other, Self::INF)
        }
    }
}

/// Total-order `f64` wrapper for real-valued weights.
///
/// Ordering uses [`f64::total_cmp`]; construction rejects NaN and negative
/// values so every `F64` in a graph is a valid non-negative weight.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct F64(f64);

impl F64 {
    /// Wraps a non-negative finite value.
    ///
    /// # Panics
    /// Panics if `v` is NaN or negative (infinity is reserved for
    /// [`Weight::INF`]).
    #[must_use]
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "F64 weight must not be NaN");
        assert!(v >= 0.0, "F64 weight must be non-negative, got {v}");
        F64(v)
    }

    /// Returns the underlying float.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for F64 {}

impl PartialOrd for F64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64 {
    #[inline]
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for F64 {
    type Output = F64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        F64(self.0 + rhs.0)
    }
}

impl Weight for F64 {
    const ZERO: Self = F64(0.0);
    const INF: Self = F64(f64::INFINITY);

    #[inline]
    fn plus(self, other: Self) -> Self {
        if self.is_inf() || other.is_inf() {
            Self::INF
        } else {
            F64(self.0 + other.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_inf_absorbs() {
        assert_eq!(u64::INF.plus(5), u64::INF);
        assert_eq!(5u64.plus(u64::INF), u64::INF);
        assert_eq!(u64::INF.plus(u64::INF), u64::INF);
    }

    #[test]
    fn u64_near_inf_clamps() {
        let big = u64::INF - 1;
        assert_eq!(big.plus(big), u64::INF);
        assert_eq!(big.plus(0), big);
    }

    #[test]
    fn u64_zero_identity() {
        for w in [0u64, 1, 17, u64::INF - 1, u64::INF] {
            assert_eq!(w.plus(0), w);
        }
    }

    #[test]
    fn f64_ordering_total() {
        let a = F64::new(1.5);
        let b = F64::new(2.5);
        assert!(a < b);
        assert!(F64::ZERO < a);
        assert!(b < F64::INF);
    }

    #[test]
    fn f64_inf_absorbs() {
        assert_eq!(F64::INF.plus(F64::new(3.0)), F64::INF);
        assert_eq!(F64::new(3.0).plus(F64::INF), F64::INF);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn f64_rejects_negative() {
        let _ = F64::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn f64_rejects_nan() {
        let _ = F64::new(f64::NAN);
    }

    #[test]
    fn u32_inf_absorbs() {
        assert_eq!(u32::INF.plus(5), u32::INF);
        assert_eq!(5u32.plus(u32::INF), u32::INF);
    }
}
