//! The sharded, read-mostly concurrent query server.
//!
//! A [`QueryEngine`] wraps an `Arc`'d [`Oracle`] and answers
//! `dist` / `path` / `k_nearest` queries from any number of threads:
//! distance and k-nearest reads touch only the immutable snapshot (no
//! locks at all), while path reconstruction goes through a per-shard LRU
//! cache of `Arc<[NodeId]>` walks so hot routes are served without
//! re-walking the successor matrix and shard mutexes are only ever held
//! for O(1) cache operations.

use crate::lru::LruCache;
use crate::oracle::Oracle;
use crate::paged::PagedOracle;
use congest_graph::{NodeId, Weight};
use congest_telemetry::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Tuning knobs for a [`QueryEngine`].
#[derive(Copy, Clone, Debug)]
pub struct EngineConfig {
    /// Number of cache shards (rounded up to a power of two, min 1). More
    /// shards mean less lock contention between worker threads.
    pub shards: usize,
    /// LRU capacity of each shard's path cache; 0 disables path caching.
    pub cache_per_shard: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { shards: 16, cache_per_shard: 1024 }
    }
}

/// A query that could not be answered.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// A node id at or beyond the snapshot's node count.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes in the snapshot.
        n: usize,
    },
    /// The successor plane disagrees with the distance arena: a finite
    /// distance whose successor walk dead-ends, cycles, or exceeds the
    /// node count. Only a damaged or hand-forged snapshot can produce
    /// this — validated builds ([`crate::Oracle::from_dist`], the
    /// snapshot loader) reject such planes up front.
    CorruptSuccessors {
        /// Walk origin.
        u: NodeId,
        /// Walk target.
        v: NodeId,
    },
    /// A paged backend could not materialize a snapshot block: the read
    /// failed or the block's checksum did not match. `block` is the
    /// block's position in the v2 index (dist blocks first, then
    /// successor blocks), so the message names exactly which region of
    /// the file is damaged. Eager backends never return this.
    BlockUnavailable {
        /// Index position of the unreadable block.
        block: u32,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range (n = {n})")
            }
            QueryError::CorruptSuccessors { u, v } => {
                write!(f, "corrupt successor matrix: walk {u} -> {v} dead-ends or cycles")
            }
            QueryError::BlockUnavailable { block } => {
                write!(f, "snapshot block {block} unavailable: read or checksum failure")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Path-cache counters — per shard ([`QueryEngine::shard_stats`]) or
/// aggregated across shards ([`QueryEngine::cache_stats`]).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Path queries served from a shard cache.
    pub hits: u64,
    /// Path queries that had to walk the successor matrix.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of path queries served from cache, in `[0, 1]`
    /// (0.0 when no query has been counted yet).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

type PathCache = LruCache<(NodeId, NodeId), Arc<[NodeId]>>;

/// One cache shard: the LRU plus its own hit/miss counters, so per-shard
/// load is observable without adding any cross-shard coordination (the
/// aggregate is the sum).
struct Shard {
    cache: Mutex<PathCache>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Cached handles into the global telemetry registry, fetched once at
/// engine construction so the per-op hot path never touches the
/// registry lock. Recording happens only while telemetry is enabled.
struct OpHists {
    dist: Arc<Histogram>,
    path: Arc<Histogram>,
    k_nearest: Arc<Histogram>,
    dist_batch: Arc<Histogram>,
    path_batch: Arc<Histogram>,
}

impl OpHists {
    fn new() -> Self {
        let reg = congest_telemetry::global().registry();
        OpHists {
            dist: reg.histogram("oracle.op.dist_ns"),
            path: reg.histogram("oracle.op.path_ns"),
            k_nearest: reg.histogram("oracle.op.k_nearest_ns"),
            dist_batch: reg.histogram("oracle.op.dist_batch_ns"),
            path_batch: reg.histogram("oracle.op.path_batch_ns"),
        }
    }
}

/// Records `t0`'s elapsed nanoseconds into `hist`; `t0` is only `Some`
/// when telemetry was enabled at op entry.
#[inline]
fn record_op(hist: &Histogram, t0: Option<Instant>) {
    if let Some(t0) = t0 {
        hist.record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
}

/// The snapshot the engine reads from: fully resident in RAM (eager) or
/// paged in block-by-block from a v2 file under a byte budget. The
/// eager arm never fails once node ids are bounds-checked; the paged arm
/// can additionally surface [`QueryError::BlockUnavailable`].
enum Backend<W> {
    Eager(Arc<Oracle<W>>),
    Paged(Arc<PagedOracle<W>>),
}

impl<W: Weight> Backend<W> {
    fn n(&self) -> usize {
        match self {
            Backend::Eager(o) => o.n(),
            Backend::Paged(p) => p.n(),
        }
    }

    /// Caller must have bounds-checked `u` and `v`.
    fn distance(&self, u: NodeId, v: NodeId) -> Result<W, QueryError> {
        match self {
            Backend::Eager(o) => Ok(o.distance(u, v)),
            Backend::Paged(p) => p.distance(u, v),
        }
    }

    /// Caller must have bounds-checked `u` and `v`.
    fn try_path(&self, u: NodeId, v: NodeId) -> Result<Option<Vec<NodeId>>, QueryError> {
        match self {
            Backend::Eager(o) => o.try_path(u, v),
            Backend::Paged(p) => p.try_path(u, v),
        }
    }

    /// Caller must have bounds-checked `u`.
    fn k_nearest(&self, u: NodeId, k: usize) -> Result<Vec<(NodeId, W)>, QueryError> {
        match self {
            Backend::Eager(o) => Ok(o.k_nearest(u, k)),
            Backend::Paged(p) => p.k_nearest(u, k),
        }
    }
}

/// Sharded concurrent query server over an immutable oracle snapshot.
///
/// Cheap to share: clone the `Arc<QueryEngine>` (or just `&`-borrow it)
/// into worker threads.
///
/// Observability: while the global `congest_telemetry` plane is enabled,
/// every `dist`/`path`/`k_nearest` call records its latency into the
/// `oracle.op.*_ns` histograms (p50/p99/p999 readable from exports), and
/// [`publish_gauges`](Self::publish_gauges) snapshots per-shard cache
/// state into gauges. Disabled, the only cost per op is one relaxed
/// atomic load.
pub struct QueryEngine<W> {
    backend: Backend<W>,
    shards: Box<[Shard]>,
    mask: u64,
    op_hists: OpHists,
}

impl<W: Weight> QueryEngine<W> {
    fn with_backend(backend: Backend<W>, cfg: EngineConfig) -> Self {
        let shards = cfg.shards.max(1).next_power_of_two();
        QueryEngine {
            backend,
            shards: (0..shards)
                .map(|_| Shard {
                    cache: Mutex::new(LruCache::new(cfg.cache_per_shard)),
                    hits: AtomicU64::new(0),
                    misses: AtomicU64::new(0),
                })
                .collect(),
            mask: shards as u64 - 1,
            op_hists: OpHists::new(),
        }
    }

    /// Builds an engine serving a fully-resident `oracle` with the given
    /// sharding/caching configuration.
    #[must_use]
    pub fn new(oracle: Arc<Oracle<W>>, cfg: EngineConfig) -> Self {
        Self::with_backend(Backend::Eager(oracle), cfg)
    }

    /// Builds an engine serving a lazily-paged v2 snapshot
    /// ([`PagedOracle::open`]) with the given sharding/caching
    /// configuration. Query semantics are identical to the eager path —
    /// same answers, bit for bit — plus the possibility of
    /// [`QueryError::BlockUnavailable`] when the file goes bad under us.
    #[must_use]
    pub fn new_paged(paged: Arc<PagedOracle<W>>, cfg: EngineConfig) -> Self {
        Self::with_backend(Backend::Paged(paged), cfg)
    }

    /// Number of nodes in the snapshot being served, whichever backend
    /// holds it.
    #[must_use]
    pub fn n(&self) -> usize {
        self.backend.n()
    }

    /// The fully-resident snapshot being served, or `None` for a paged
    /// backend.
    #[must_use]
    pub fn oracle(&self) -> Option<&Arc<Oracle<W>>> {
        match &self.backend {
            Backend::Eager(o) => Some(o),
            Backend::Paged(_) => None,
        }
    }

    /// The paged backend being served, or `None` for an eager one.
    #[must_use]
    pub fn paged(&self) -> Option<&Arc<PagedOracle<W>>> {
        match &self.backend {
            Backend::Paged(p) => Some(p),
            Backend::Eager(_) => None,
        }
    }

    /// Number of cache shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn check(&self, node: NodeId) -> Result<(), QueryError> {
        let n = self.backend.n();
        if (node as usize) < n {
            Ok(())
        } else {
            Err(QueryError::NodeOutOfRange { node, n })
        }
    }

    fn shard_index(&self, u: NodeId, v: NodeId) -> u64 {
        // SplitMix64 finalizer over the packed pair: cheap and well mixed.
        let mut z = (u64::from(u) << 32) | u64::from(v);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        z & self.mask
    }

    fn shard(&self, u: NodeId, v: NodeId) -> &Shard {
        &self.shards[self.shard_index(u, v) as usize]
    }

    /// `δ(u, v)`; `Ok(None)` when `v` is unreachable from `u`.
    ///
    /// Lock-free: reads only the immutable distance arena.
    ///
    /// # Errors
    /// [`QueryError::NodeOutOfRange`] for invalid node ids.
    pub fn dist(&self, u: NodeId, v: NodeId) -> Result<Option<W>, QueryError> {
        let t0 = congest_telemetry::enabled().then(Instant::now);
        let r = self.dist_impl(u, v);
        record_op(&self.op_hists.dist, t0);
        r
    }

    fn dist_impl(&self, u: NodeId, v: NodeId) -> Result<Option<W>, QueryError> {
        self.check(u)?;
        self.check(v)?;
        let d = self.backend.distance(u, v)?;
        Ok((!d.is_inf()).then_some(d))
    }

    /// A shortest `u → v` vertex walk; `Ok(None)` when unreachable.
    ///
    /// Served from the shard cache when hot; otherwise reconstructed in
    /// O(path length) and cached.
    ///
    /// # Errors
    /// [`QueryError::NodeOutOfRange`] for invalid node ids;
    /// [`QueryError::CorruptSuccessors`] if the snapshot's successor plane
    /// cannot realize a walk for a finite distance (never a panic, so one
    /// damaged snapshot cannot take down a serving thread).
    ///
    /// # Panics
    /// Panics only if a shard mutex was poisoned by a panicking thread.
    pub fn path(&self, u: NodeId, v: NodeId) -> Result<Option<Arc<[NodeId]>>, QueryError> {
        let t0 = congest_telemetry::enabled().then(Instant::now);
        let r = self.path_impl(u, v);
        record_op(&self.op_hists.path, t0);
        r
    }

    fn path_impl(&self, u: NodeId, v: NodeId) -> Result<Option<Arc<[NodeId]>>, QueryError> {
        self.check(u)?;
        self.check(v)?;
        if self.backend.distance(u, v)?.is_inf() {
            return Ok(None);
        }
        let shard = self.shard(u, v);
        if let Some(p) = shard.cache.lock().expect("shard cache poisoned").get(&(u, v)) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(p));
        }
        shard.misses.fetch_add(1, Ordering::Relaxed);
        // The distance is finite, so a `None` walk means the plane lost
        // the pair — corrupt, not unreachable.
        let walk = self.backend.try_path(u, v)?.ok_or(QueryError::CorruptSuccessors { u, v })?;
        let p: Arc<[NodeId]> = walk.into();
        shard.cache.lock().expect("shard cache poisoned").insert((u, v), p.clone());
        Ok(Some(p))
    }

    /// Answers a whole frame of distance queries in one call: one
    /// telemetry timestamp and one bounds-checked arena sweep for the
    /// batch instead of per-call overhead. Results are positional —
    /// `out[i]` answers `pairs[i]` — and each entry fails independently,
    /// so one bad id cannot poison its neighbors.
    ///
    /// This is the entry point the network serving front-end uses to
    /// amortize dispatch across a pipelined frame of requests.
    #[must_use]
    pub fn dist_batch(&self, pairs: &[(NodeId, NodeId)]) -> Vec<Result<Option<W>, QueryError>> {
        let t0 = congest_telemetry::enabled().then(Instant::now);
        let n = self.backend.n();
        let out = pairs
            .iter()
            .map(|&(u, v)| {
                for node in [u, v] {
                    if node as usize >= n {
                        return Err(QueryError::NodeOutOfRange { node, n });
                    }
                }
                let d = self.backend.distance(u, v)?;
                Ok((!d.is_inf()).then_some(d))
            })
            .collect();
        record_op(&self.op_hists.dist_batch, t0);
        out
    }

    /// Answers a whole frame of path queries in one call, amortizing
    /// cache locking across the batch: requests are grouped by shard, so
    /// every touched shard's mutex is taken **once** for all its probes
    /// (and once more for all its inserts) instead of once per request.
    /// Reconstruction of cache misses happens outside any lock. Results
    /// are positional: `out[i]` answers `pairs[i]`.
    ///
    /// # Panics
    /// Panics only if a shard mutex was poisoned by a panicking thread.
    #[must_use]
    #[allow(clippy::type_complexity)]
    pub fn path_batch(
        &self,
        pairs: &[(NodeId, NodeId)],
    ) -> Vec<Result<Option<Arc<[NodeId]>>, QueryError>> {
        let t0 = congest_telemetry::enabled().then(Instant::now);
        let n = self.backend.n();
        let mut out: Vec<Result<Option<Arc<[NodeId]>>, QueryError>> =
            Vec::with_capacity(pairs.len());
        // (shard, request index) for every pair that needs a cache probe.
        let mut pending: Vec<(u64, u32)> = Vec::new();
        for (i, &(u, v)) in pairs.iter().enumerate() {
            let bad = [u, v].into_iter().find(|&node| node as usize >= n);
            if let Some(node) = bad {
                out.push(Err(QueryError::NodeOutOfRange { node, n }));
                continue;
            }
            match self.backend.distance(u, v) {
                Err(e) => out.push(Err(e)),
                Ok(d) if d.is_inf() => out.push(Ok(None)),
                Ok(_) => {
                    pending.push((self.shard_index(u, v), i as u32));
                    out.push(Ok(None)); // placeholder, overwritten below
                }
            }
        }
        // Group by shard: one lock acquisition serves every probe (and
        // later every insert) destined for that shard.
        pending.sort_unstable();
        let mut misses: Vec<u32> = Vec::new();
        let mut g = 0;
        while g < pending.len() {
            let shard_id = pending[g].0;
            let end = g + pending[g..].partition_point(|&(s, _)| s == shard_id);
            let shard = &self.shards[shard_id as usize];
            let (mut hits, mut shard_misses) = (0u64, 0u64);
            {
                let mut cache = shard.cache.lock().expect("shard cache poisoned");
                for &(_, i) in &pending[g..end] {
                    let key = pairs[i as usize];
                    if let Some(p) = cache.get(&key) {
                        out[i as usize] = Ok(Some(p));
                        hits += 1;
                    } else {
                        misses.push(i);
                        shard_misses += 1;
                    }
                }
            }
            shard.hits.fetch_add(hits, Ordering::Relaxed);
            shard.misses.fetch_add(shard_misses, Ordering::Relaxed);
            g = end;
        }
        // Reconstruct misses with no lock held (the expensive part).
        let mut walked: Vec<(u64, u32)> = Vec::with_capacity(misses.len());
        for i in misses {
            let (u, v) = pairs[i as usize];
            match self.backend.try_path(u, v) {
                Ok(Some(walk)) => {
                    out[i as usize] = Ok(Some(walk.into()));
                    walked.push((self.shard_index(u, v), i));
                }
                // Finite distance with no walk: the plane lost the pair.
                Ok(None) => out[i as usize] = Err(QueryError::CorruptSuccessors { u, v }),
                Err(e) => out[i as usize] = Err(e),
            }
        }
        // Insert the fresh walks, again one lock per touched shard.
        walked.sort_unstable();
        let mut g = 0;
        while g < walked.len() {
            let shard_id = walked[g].0;
            let end = g + walked[g..].partition_point(|&(s, _)| s == shard_id);
            let mut cache =
                self.shards[shard_id as usize].cache.lock().expect("shard cache poisoned");
            for &(_, i) in &walked[g..end] {
                if let Ok(Some(p)) = &out[i as usize] {
                    cache.insert(pairs[i as usize], p.clone());
                }
            }
            g = end;
        }
        record_op(&self.op_hists.path_batch, t0);
        out
    }

    /// The `k` nearest other nodes to `u` (see [`Oracle::k_nearest`]).
    ///
    /// Lock-free: reads only the immutable distance arena.
    ///
    /// # Errors
    /// [`QueryError::NodeOutOfRange`] for an invalid node id.
    pub fn k_nearest(&self, u: NodeId, k: usize) -> Result<Vec<(NodeId, W)>, QueryError> {
        let t0 = congest_telemetry::enabled().then(Instant::now);
        self.check(u).inspect_err(|_| record_op(&self.op_hists.k_nearest, t0))?;
        let r = self.backend.k_nearest(u, k);
        record_op(&self.op_hists.k_nearest, t0);
        r
    }

    /// Total number of paths currently resident across all shard caches.
    ///
    /// # Panics
    /// Panics only if a shard mutex was poisoned by a panicking thread.
    #[must_use]
    pub fn cached_paths(&self) -> usize {
        self.shards.iter().map(|s| s.cache.lock().expect("shard cache poisoned").len()).sum()
    }

    /// Aggregate path-cache hit/miss counters (the sum over
    /// [`shard_stats`](Self::shard_stats)).
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &*self.shards {
            total.hits += s.hits.load(Ordering::Relaxed);
            total.misses += s.misses.load(Ordering::Relaxed);
        }
        total
    }

    /// Per-shard path-cache hit/miss counters, indexed by shard.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards
            .iter()
            .map(|s| CacheStats {
                hits: s.hits.load(Ordering::Relaxed),
                misses: s.misses.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Snapshots per-shard cache state into the global telemetry
    /// registry as gauges (`oracle.cache.shard<i>.hits` / `.misses` /
    /// `.resident`) plus an aggregate `oracle.cache.hit_rate_bp` gauge
    /// in basis points. No-op while telemetry is disabled.
    ///
    /// # Panics
    /// Panics only if a shard mutex was poisoned by a panicking thread.
    pub fn publish_gauges(&self) {
        if !congest_telemetry::enabled() {
            return;
        }
        let reg = congest_telemetry::global().registry();
        for (i, s) in self.shards.iter().enumerate() {
            let clamp = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
            let resident = s.cache.lock().expect("shard cache poisoned").len();
            reg.gauge(&format!("oracle.cache.shard{i}.hits"))
                .set(clamp(s.hits.load(Ordering::Relaxed)));
            reg.gauge(&format!("oracle.cache.shard{i}.misses"))
                .set(clamp(s.misses.load(Ordering::Relaxed)));
            reg.gauge(&format!("oracle.cache.shard{i}.resident"))
                .set(i64::try_from(resident).unwrap_or(i64::MAX));
        }
        let rate_bp = (self.cache_stats().hit_rate() * 10_000.0).round() as i64;
        reg.gauge("oracle.cache.hit_rate_bp").set(rate_bp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{gnm_connected, WeightDist};
    use congest_graph::seq::apsp_dijkstra;

    fn engine(
        n: usize,
        seed: u64,
        cfg: EngineConfig,
    ) -> (QueryEngine<u64>, congest_graph::DistMatrix<u64>) {
        let g = gnm_connected(n, 2 * n, true, WeightDist::Uniform(0, 9), seed);
        let dist = apsp_dijkstra(&g);
        let oracle = Arc::new(Oracle::from_dist(&g, dist.clone()));
        (QueryEngine::new(oracle, cfg), dist)
    }

    #[test]
    fn answers_match_oracle() {
        let (e, dist) = engine(24, 5, EngineConfig::default());
        for u in 0..24u32 {
            for v in 0..24u32 {
                let expect = dist[u as usize][v as usize];
                let got = e.dist(u, v).unwrap();
                assert_eq!(got, (!expect.is_inf()).then_some(expect));
                if let Some(p) = e.path(u, v).unwrap() {
                    assert_eq!(p[0], u);
                    assert_eq!(*p.last().unwrap(), v);
                } else {
                    assert!(expect.is_inf());
                }
            }
        }
    }

    #[test]
    fn out_of_range_is_an_error() {
        let (e, _) = engine(10, 1, EngineConfig::default());
        assert_eq!(e.dist(0, 10).unwrap_err(), QueryError::NodeOutOfRange { node: 10, n: 10 });
        assert_eq!(e.path(99, 0).unwrap_err(), QueryError::NodeOutOfRange { node: 99, n: 10 });
        assert_eq!(e.k_nearest(10, 3).unwrap_err(), QueryError::NodeOutOfRange { node: 10, n: 10 });
        assert_eq!(format!("{}", e.dist(0, 10).unwrap_err()), "node 10 out of range (n = 10)");
    }

    #[test]
    fn corrupt_snapshot_is_an_error_not_a_panic() {
        use crate::oracle::NO_SUCC;
        // Forged arenas: finite distances, but toward target 1 node 0
        // names itself (cycle) and toward target 0 node 1 has no
        // successor at all. A serving thread must get typed errors, and
        // untouched queries on the same snapshot must keep working.
        let dist = vec![0u64, 1, 1, 0].into_boxed_slice();
        let mut succ = vec![NO_SUCC; 4];
        succ[2] = 0; // toward target 1, from node 0: points at itself
        let o = Arc::new(Oracle::from_parts(2, dist, succ.into_boxed_slice()));
        let e = QueryEngine::new(o, EngineConfig::default());
        assert_eq!(e.path(0, 1).unwrap_err(), QueryError::CorruptSuccessors { u: 0, v: 1 });
        assert_eq!(e.path(1, 0).unwrap_err(), QueryError::CorruptSuccessors { u: 1, v: 0 });
        assert_eq!(
            format!("{}", e.path(0, 1).unwrap_err()),
            "corrupt successor matrix: walk 0 -> 1 dead-ends or cycles"
        );
        // Distance reads bypass the plane entirely and still serve.
        assert_eq!(e.dist(0, 1).unwrap(), Some(1));
        assert_eq!(e.path(0, 0).unwrap().as_deref(), Some(&[0u32][..]));
        // Nothing corrupt may have been cached.
        assert_eq!(e.cached_paths(), 1);
    }

    #[test]
    fn cache_hits_on_repeat_queries() {
        let (e, _) = engine(16, 2, EngineConfig { shards: 4, cache_per_shard: 64 });
        for _ in 0..10 {
            let _ = e.path(0, 15).unwrap();
        }
        let stats = e.cache_stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 9);
        assert_eq!(e.cached_paths(), 1);
    }

    #[test]
    fn zero_cache_capacity_still_serves() {
        let (e, _) = engine(12, 3, EngineConfig { shards: 2, cache_per_shard: 0 });
        for _ in 0..3 {
            assert!(e.path(0, 11).unwrap().is_some());
        }
        let stats = e.cache_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 3);
    }

    #[test]
    fn concurrent_readers_agree_with_sequential() {
        let (e, dist) = engine(32, 7, EngineConfig { shards: 8, cache_per_shard: 128 });
        let n = 32u32;
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let e = &e;
                let dist = &dist;
                scope.spawn(move || {
                    let mut state = u64::from(t) + 1;
                    for _ in 0..2000 {
                        // xorshift over the pair space
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        let u = (state % u64::from(n)) as u32;
                        let v = ((state >> 32) % u64::from(n)) as u32;
                        let d = e.dist(u, v).unwrap();
                        assert_eq!(d.is_none(), dist[u as usize][v as usize].is_inf());
                        if let Some(p) = e.path(u, v).unwrap() {
                            assert_eq!((p[0], *p.last().unwrap()), (u, v));
                        }
                    }
                });
            }
        });
        let stats = e.cache_stats();
        assert!(stats.hits + stats.misses > 0);
        assert!(stats.hits > stats.misses, "repeat queries should mostly hit: {stats:?}");
    }

    #[test]
    fn per_shard_stats_sum_to_the_aggregate() {
        let (e, _) = engine(16, 2, EngineConfig { shards: 4, cache_per_shard: 64 });
        for u in 0..16u32 {
            for v in 0..16u32 {
                let _ = e.path(u, v).unwrap();
            }
        }
        for _ in 0..5 {
            let _ = e.path(0, 15).unwrap();
        }
        let shards = e.shard_stats();
        assert_eq!(shards.len(), 4);
        let agg = e.cache_stats();
        assert_eq!(shards.iter().map(|s| s.hits).sum::<u64>(), agg.hits);
        assert_eq!(shards.iter().map(|s| s.misses).sum::<u64>(), agg.misses);
        assert!(shards.iter().filter(|s| s.hits + s.misses > 0).count() > 1, "load spreads");
    }

    #[test]
    fn hit_rate_is_a_fraction_of_path_queries() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        assert_eq!(CacheStats { hits: 3, misses: 1 }.hit_rate(), 0.75);
        let (e, _) = engine(16, 2, EngineConfig { shards: 4, cache_per_shard: 64 });
        for _ in 0..10 {
            let _ = e.path(0, 15).unwrap();
        }
        assert_eq!(e.cache_stats().hit_rate(), 0.9);
    }

    #[test]
    fn publish_gauges_snapshots_per_shard_state() {
        let (e, _) = engine(16, 6, EngineConfig { shards: 2, cache_per_shard: 64 });
        for _ in 0..4 {
            let _ = e.path(1, 14).unwrap();
        }
        e.publish_gauges(); // disabled: must be a no-op
        let tele = congest_telemetry::enable();
        e.publish_gauges();
        congest_telemetry::disable();
        let gauges = tele.registry().gauges();
        let get = |name: &str| {
            gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v).unwrap_or_else(|| {
                panic!("missing gauge {name}");
            })
        };
        let shard_total: i64 = (0..2)
            .map(|i| {
                get(&format!("oracle.cache.shard{i}.hits"))
                    + get(&format!("oracle.cache.shard{i}.misses"))
            })
            .sum();
        assert_eq!(shard_total, 4);
        assert_eq!(get("oracle.cache.hit_rate_bp"), 7500);
        let resident: i64 = (0..2).map(|i| get(&format!("oracle.cache.shard{i}.resident"))).sum();
        assert_eq!(resident, 1);
    }

    #[test]
    fn dist_batch_matches_per_call() {
        let (e, _) = engine(24, 5, EngineConfig::default());
        let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
        for u in 0..24u32 {
            for v in 0..24u32 {
                pairs.push((u, v));
            }
        }
        pairs.push((24, 0)); // out of range, mid-batch
        pairs.push((0, 99));
        let batch = e.dist_batch(&pairs);
        assert_eq!(batch.len(), pairs.len());
        for (&(u, v), got) in pairs.iter().zip(&batch) {
            assert_eq!(*got, e.dist(u, v), "batch answer for ({u}, {v})");
        }
    }

    #[test]
    fn path_batch_matches_per_call_and_locks_per_shard() {
        // Each shard's capacity covers the whole pair universe, so the
        // second batch cannot suffer evictions.
        let (e, _) = engine(16, 2, EngineConfig { shards: 4, cache_per_shard: 256 });
        let pairs: Vec<(NodeId, NodeId)> =
            (0..16u32).flat_map(|u| (0..16u32).map(move |v| (u, v))).collect();
        let batch = e.path_batch(&pairs);
        for (&(u, v), got) in pairs.iter().zip(&batch) {
            assert_eq!(*got, e.path(u, v), "batch answer for ({u}, {v})");
        }
        // Everything the batch reconstructed is now cached: a second
        // batch must be all hits.
        let before = e.cache_stats();
        let again = e.path_batch(&pairs);
        assert_eq!(again, batch);
        let after = e.cache_stats();
        assert_eq!(after.misses, before.misses, "second batch re-walks nothing");
        assert_eq!(after.hits - before.hits, pairs.len() as u64);
    }

    #[test]
    fn path_batch_mixes_errors_hits_and_unreachable() {
        use crate::oracle::NO_SUCC;
        // Forged 2-node snapshot: 0 -> 1 has a finite distance but a
        // dead-ended plane; 1 -> 0 is unreachable.
        let dist = vec![0u64, 1, u64::INF, 0].into_boxed_slice();
        let succ = vec![NO_SUCC; 4].into_boxed_slice();
        let o = Arc::new(Oracle::from_parts(2, dist, succ));
        let e = QueryEngine::new(o, EngineConfig::default());
        let got = e.path_batch(&[(0, 0), (0, 1), (1, 0), (7, 0)]);
        assert_eq!(got[0], Ok(Some(vec![0u32].into())));
        assert_eq!(got[1], Err(QueryError::CorruptSuccessors { u: 0, v: 1 }));
        assert_eq!(got[2], Ok(None));
        assert_eq!(got[3], Err(QueryError::NodeOutOfRange { node: 7, n: 2 }));
    }

    #[test]
    fn empty_batches_are_fine() {
        let (e, _) = engine(8, 4, EngineConfig::default());
        assert!(e.dist_batch(&[]).is_empty());
        assert!(e.path_batch(&[]).is_empty());
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let (e, _) = engine(8, 4, EngineConfig { shards: 5, cache_per_shard: 8 });
        assert_eq!(e.shard_count(), 8);
        let (e, _) = engine(8, 4, EngineConfig { shards: 0, cache_per_shard: 8 });
        assert_eq!(e.shard_count(), 1);
    }
}
