//! The blocked v2 snapshot format: writer, eager reader, and the layout
//! parsing shared with the lazy [`PagedOracle`](crate::PagedOracle)
//! backend.
//!
//! See the [`snapshot`](crate::snapshot) module docs for the wire layout.
//! The design constraints, in order:
//!
//! * **Streamable writes** — blocks are emitted front-to-back and the
//!   index lands at the tail, so [`Oracle::save_v2_to`] needs no seeks
//!   and never materializes the n²×12 image.
//! * **Eager header + index validation, lazy everything else** — a
//!   reader can prove the file's *shape* (and that the index is not
//!   hostile: entries must exactly tile the span between header and
//!   index) from O(blocks) bytes, then fetch and checksum individual
//!   blocks on demand.
//! * **Optional successor plane** — the n²×4 plane is the pure
//!   reconstruction accelerator; dropping it on disk shrinks the file by
//!   a third, and readers re-derive per-target columns from the embedded
//!   graph via the reverse-BFS derivation.

use crate::oracle::{derive_target_from_col, tick_derivation, Oracle, NO_SUCC};
use crate::snapshot::{
    atomic_write, check_plane, fnv1a, FnvWriter, PortableWeight, SnapshotError, ENCODE_CHUNK,
    MAGIC, VERSION_V2,
};
use congest_graph::{Edge, Graph, NodeId, Weight};
use congest_sim::parallel::par_indexed_map;
use std::io::Write;
use std::path::Path;

/// v2 header length: v1's 20 bytes + block_rows (4) + header FNV (8).
pub(crate) const HEADER_V2_LEN: usize = 32;
/// Footer length: index offset + index len + index FNV + footer FNV.
pub(crate) const FOOTER_LEN: usize = 32;
/// Index entry length: offset + len + FNV, 8 bytes each.
pub(crate) const INDEX_ENTRY_LEN: usize = 24;
/// Flag bit: the target-major successor plane is present on disk.
pub(crate) const FLAG_SUCC: u8 = 1;
/// Flag bit: the graph edge list is present on disk (enables successor
/// re-derivation when the plane is absent).
pub(crate) const FLAG_GRAPH: u8 = 2;

/// Knobs for writing a v2 snapshot.
#[derive(Copy, Clone, Debug)]
pub struct V2Config<'g, W> {
    /// Distance-matrix rows per block (also successor-plane targets per
    /// block). Small blocks page at finer granularity; large blocks
    /// amortize checksum and read overhead.
    pub block_rows: u32,
    /// Omit the n²×4 successor plane on disk (requires `graph`), cutting
    /// the file by a third; readers re-derive successor columns on
    /// demand, counted by [`successor_derivations`](crate::successor_derivations).
    pub drop_successors: bool,
    /// Embed the graph's edge list so plane-less snapshots can re-derive
    /// successors (and paged readers can derive per-target).
    pub graph: Option<&'g Graph<W>>,
}

impl<W> Default for V2Config<'static, W> {
    fn default() -> Self {
        V2Config { block_rows: 64, drop_successors: false, graph: None }
    }
}

/// Parsed v2 header.
#[derive(Copy, Clone, Debug)]
pub(crate) struct HeaderV2 {
    pub(crate) n: usize,
    pub(crate) block_rows: usize,
    pub(crate) has_succ: bool,
    pub(crate) has_graph: bool,
}

impl HeaderV2 {
    /// Number of row blocks each plane is cut into.
    pub(crate) fn blocks(&self) -> usize {
        self.n.div_ceil(self.block_rows)
    }

    /// Rows covered by block `b` (the last block may be short).
    pub(crate) fn rows_in_block(&self, b: usize) -> usize {
        let start = b * self.block_rows;
        self.block_rows.min(self.n - start)
    }
}

/// One index entry: where a block lives and what it must hash to.
#[derive(Copy, Clone, Debug)]
pub(crate) struct IndexEntry {
    pub(crate) offset: u64,
    pub(crate) len: u64,
    pub(crate) fnv: u64,
}

/// The fully validated index of a v2 file, split into its three
/// sections. Graph entries carry their index position so failures can
/// name the block.
pub(crate) struct LayoutV2 {
    pub(crate) dist: Vec<IndexEntry>,
    pub(crate) succ: Vec<IndexEntry>,
    pub(crate) graph: Option<(u32, IndexEntry)>,
}

/// Validates the fixed 32-byte v2 header (caller guarantees
/// `bytes.len() >= HEADER_V2_LEN`).
pub(crate) fn parse_header_v2(bytes: &[u8], expected_tag: u8) -> Result<HeaderV2, SnapshotError> {
    if &bytes[0..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[8], bytes[9]]);
    if version != VERSION_V2 {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    if fnv1a(&bytes[..24]) != u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes")) {
        return Err(SnapshotError::ChecksumMismatch);
    }
    if bytes[10] != expected_tag {
        return Err(SnapshotError::WeightTypeMismatch { found: bytes[10], expected: expected_tag });
    }
    let flags = bytes[11];
    if flags & !(FLAG_SUCC | FLAG_GRAPH) != 0 {
        return Err(SnapshotError::Corrupt("unknown v2 flags"));
    }
    if flags == 0 {
        return Err(SnapshotError::Corrupt("v2 snapshot has neither successors nor graph"));
    }
    let n_raw = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let n = usize::try_from(n_raw)
        .ok()
        .filter(|&n| n >= 1 && n <= u32::MAX as usize / 4)
        .ok_or(SnapshotError::Corrupt("node count out of range"))?;
    let block_rows = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes")) as usize;
    if block_rows == 0 {
        return Err(SnapshotError::Corrupt("block_rows must be at least 1"));
    }
    Ok(HeaderV2 {
        n,
        block_rows,
        has_succ: flags & FLAG_SUCC != 0,
        has_graph: flags & FLAG_GRAPH != 0,
    })
}

/// Validates the 32-byte footer against the file length; returns
/// `(index_offset, index_len, index_fnv)`.
pub(crate) fn parse_footer(file_len: u64, bytes: &[u8]) -> Result<(u64, u64, u64), SnapshotError> {
    if fnv1a(&bytes[..24]) != u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes")) {
        return Err(SnapshotError::ChecksumMismatch);
    }
    let index_offset = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
    let index_len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let index_fnv = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let end = index_offset
        .checked_add(index_len)
        .ok_or(SnapshotError::Corrupt("index range overflows"))?;
    if index_offset < HEADER_V2_LEN as u64 || end != file_len - FOOTER_LEN as u64 {
        return Err(SnapshotError::Corrupt("index out of range"));
    }
    Ok((index_offset, index_len, index_fnv))
}

/// Validates the index blob: checksum, entry count, and — the hostile-
/// index defense — that the entries exactly tile `[32, index_offset)` in
/// order with the exact per-block payload sizes, so no entry can overlap
/// another, point outside the file, or leave unaccounted gaps.
pub(crate) fn parse_index(
    header: HeaderV2,
    index_bytes: &[u8],
    index_offset: u64,
    index_fnv: u64,
) -> Result<LayoutV2, SnapshotError> {
    if fnv1a(index_bytes) != index_fnv {
        return Err(SnapshotError::ChecksumMismatch);
    }
    let blocks = header.blocks() as u64;
    let entries = blocks * (1 + u64::from(header.has_succ)) + u64::from(header.has_graph);
    if index_bytes.len() as u64 != entries * INDEX_ENTRY_LEN as u64 {
        return Err(SnapshotError::Corrupt("index size mismatch"));
    }
    let mut parsed = index_bytes.chunks_exact(INDEX_ENTRY_LEN).map(|c| IndexEntry {
        offset: u64::from_le_bytes(c[0..8].try_into().expect("8 bytes")),
        len: u64::from_le_bytes(c[8..16].try_into().expect("8 bytes")),
        fnv: u64::from_le_bytes(c[16..24].try_into().expect("8 bytes")),
    });
    let mut cursor = HEADER_V2_LEN as u64;
    let mut take = |expected_len: Option<u64>| -> Result<IndexEntry, SnapshotError> {
        let e = parsed.next().expect("entry count checked above");
        if e.offset != cursor {
            return Err(SnapshotError::Corrupt("index entries do not tile the file"));
        }
        if let Some(len) = expected_len {
            if e.len != len {
                return Err(SnapshotError::Corrupt("index entry length mismatch"));
            }
        }
        cursor = cursor
            .checked_add(e.len)
            .filter(|&end| end <= index_offset)
            .ok_or(SnapshotError::Corrupt("index entry out of range"))?;
        Ok(e)
    };
    let n = header.n as u64;
    let mut dist = Vec::with_capacity(blocks as usize);
    for b in 0..header.blocks() {
        dist.push(take(Some(header.rows_in_block(b) as u64 * n * 8))?);
    }
    let mut succ = Vec::new();
    if header.has_succ {
        succ.reserve(blocks as usize);
        for b in 0..header.blocks() {
            succ.push(take(Some(header.rows_in_block(b) as u64 * n * 4))?);
        }
    }
    let graph = if header.has_graph {
        let pos = (entries - 1) as u32;
        let e = take(None)?;
        if e.len < 9 {
            return Err(SnapshotError::Corrupt("graph section too short"));
        }
        Some((pos, e))
    } else {
        None
    };
    if cursor != index_offset {
        return Err(SnapshotError::Corrupt("index entries do not cover the file"));
    }
    Ok(LayoutV2 { dist, succ, graph })
}

/// Decodes the (checksum-verified) graph section blob. `entry_pos` names
/// the index entry in errors.
pub(crate) fn parse_graph_section<W: PortableWeight>(
    blob: &[u8],
    n: usize,
    entry_pos: u32,
) -> Result<Graph<W>, SnapshotError> {
    let bad = |what| SnapshotError::BlockCorrupt { block: entry_pos, what };
    if blob.len() < 9 {
        return Err(bad("graph section too short"));
    }
    let directed = match blob[0] {
        0 => false,
        1 => true,
        _ => return Err(bad("invalid directed flag")),
    };
    let m = u64::from_le_bytes(blob[1..9].try_into().expect("8 bytes"));
    let expected = 9u64
        .checked_add(m.checked_mul(16).ok_or(bad("graph size overflows"))?)
        .ok_or(bad("graph size overflows"))?;
    if blob.len() as u64 != expected {
        return Err(bad("graph size mismatch"));
    }
    let mut edges = Vec::with_capacity(m as usize);
    for rec in blob[9..].chunks_exact(16) {
        let from = NodeId::from_le_bytes(rec[0..4].try_into().expect("4 bytes"));
        let to = NodeId::from_le_bytes(rec[4..8].try_into().expect("4 bytes"));
        if from as usize >= n || to as usize >= n {
            return Err(bad("edge endpoint out of range"));
        }
        let w = W::decode(rec[8..16].try_into().expect("8 bytes"))
            .filter(|w| !w.is_inf())
            .ok_or(bad("invalid edge weight encoding"))?;
        edges.push(Edge { from, to, weight: w });
    }
    Ok(Graph::from_edges(n, directed, edges))
}

/// Derives the full target-major successor plane from the embedded graph
/// (one parallel reverse BFS per target), validating that the distances
/// actually belong to that graph. Ticks the process-wide derivation
/// counter once.
fn derive_plane<W: Weight>(
    g: &Graph<W>,
    n: usize,
    dist: &[W],
) -> Result<Box<[NodeId]>, SnapshotError> {
    tick_derivation();
    let mut succ = vec![NO_SUCC; n * n].into_boxed_slice();
    let mut cols: Vec<&mut [NodeId]> = succ.chunks_mut(n).collect();
    let results = par_indexed_map(&mut cols, |v, col| {
        let dcol: Vec<W> = (0..n).map(|u| dist[u * n + v]).collect();
        derive_target_from_col(g, &dcol, v as NodeId, col)
    });
    if results.iter().any(|r| r.is_err()) {
        return Err(SnapshotError::Corrupt("distances inconsistent with embedded graph"));
    }
    Ok(succ)
}

/// Eagerly deserializes a v2 snapshot: validates header, footer, index
/// and **every** block checksum, decodes both planes (re-deriving the
/// successor plane from the embedded graph when it was dropped on disk),
/// and enforces the same cross-arena invariants the v1 loader does.
pub(crate) fn from_bytes_v2<W: PortableWeight>(bytes: &[u8]) -> Result<Oracle<W>, SnapshotError> {
    let min = HEADER_V2_LEN + FOOTER_LEN;
    if bytes.len() < min {
        return Err(SnapshotError::Truncated { expected: min, got: bytes.len() });
    }
    let header = parse_header_v2(bytes, W::TAG)?;
    let (ioff, ilen, ifnv) = parse_footer(bytes.len() as u64, &bytes[bytes.len() - FOOTER_LEN..])?;
    let layout = parse_index(header, &bytes[ioff as usize..(ioff + ilen) as usize], ioff, ifnv)?;
    let n = header.n;

    let block = |e: &IndexEntry, pos: u32| -> Result<&[u8], SnapshotError> {
        let blob = &bytes[e.offset as usize..(e.offset + e.len) as usize];
        if fnv1a(blob) != e.fnv {
            return Err(SnapshotError::BlockCorrupt { block: pos, what: "checksum mismatch" });
        }
        Ok(blob)
    };

    let mut dist: Vec<W> = Vec::with_capacity(n * n);
    for (b, e) in layout.dist.iter().enumerate() {
        let blob = block(e, b as u32)?;
        for chunk in blob.chunks_exact(8) {
            let w = W::decode(chunk.try_into().expect("8-byte chunk")).ok_or(
                SnapshotError::BlockCorrupt { block: b as u32, what: "invalid weight encoding" },
            )?;
            dist.push(w);
        }
    }
    for u in 0..n {
        if dist[u * n + u] != W::ZERO {
            return Err(SnapshotError::Corrupt("nonzero diagonal distance"));
        }
    }

    // The graph section is validated (checksum + structure) whenever
    // present, even if the successor plane makes it redundant for this
    // load: "every bit flip in the file is detected" must hold for the
    // whole file, not just the bytes this particular read path consumed.
    let graph: Option<Graph<W>> = match layout.graph {
        Some((pos, ref e)) => Some(parse_graph_section(block(e, pos)?, n, pos)?),
        None => None,
    };

    let succ: Box<[NodeId]> = if header.has_succ {
        let mut succ = Vec::with_capacity(n * n);
        let base = layout.dist.len() as u32;
        for (b, e) in layout.succ.iter().enumerate() {
            let pos = base + b as u32;
            let blob = block(e, pos)?;
            for chunk in blob.chunks_exact(4) {
                let s = NodeId::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
                if s != NO_SUCC && s as usize >= n {
                    return Err(SnapshotError::BlockCorrupt {
                        block: pos,
                        what: "successor id out of range",
                    });
                }
                succ.push(s);
            }
        }
        check_plane(n, &dist, &succ).map_err(SnapshotError::Corrupt)?;
        succ.into_boxed_slice()
    } else {
        let g = graph.as_ref().expect("header flags guarantee a graph when successors are absent");
        derive_plane(g, n, &dist)?
    };
    Ok(Oracle::from_parts(n, dist.into_boxed_slice(), succ))
}

impl<W: PortableWeight> Oracle<W> {
    /// Serializes the oracle into the blocked v2 snapshot format.
    ///
    /// # Errors
    /// Rejects inconsistent configuration (zero `block_rows`, dropping
    /// successors without an embedded graph, a graph of the wrong size).
    pub fn to_bytes_v2(&self, cfg: &V2Config<'_, W>) -> Result<Vec<u8>, SnapshotError> {
        let mut buf = Vec::new();
        self.save_v2_to(&mut buf, cfg)?;
        Ok(buf)
    }

    /// Streams the blocked v2 snapshot into `w` front-to-back (no seeks,
    /// no n² staging buffer): header, dist blocks, successor blocks,
    /// graph section, index, footer.
    ///
    /// # Errors
    /// Rejects inconsistent configuration; propagates `w`'s failures as
    /// [`SnapshotError::Io`].
    pub fn save_v2_to(&self, w: impl Write, cfg: &V2Config<'_, W>) -> Result<(), SnapshotError> {
        let n = self.n();
        if n == 0 {
            return Err(SnapshotError::Corrupt("v2 snapshot requires at least one node"));
        }
        if cfg.block_rows == 0 {
            return Err(SnapshotError::Corrupt("block_rows must be at least 1"));
        }
        if cfg.drop_successors && cfg.graph.is_none() {
            return Err(SnapshotError::Corrupt("dropping successors requires an embedded graph"));
        }
        if let Some(g) = cfg.graph {
            if g.n() != n {
                return Err(SnapshotError::Corrupt("embedded graph node count mismatch"));
            }
        }
        let br = cfg.block_rows as usize;
        let header = HeaderV2 {
            n,
            block_rows: br,
            has_succ: !cfg.drop_successors,
            has_graph: cfg.graph.is_some(),
        };
        let flags = (if header.has_succ { FLAG_SUCC } else { 0 })
            | (if header.has_graph { FLAG_GRAPH } else { 0 });

        let mut w = w;
        let mut head = Vec::with_capacity(HEADER_V2_LEN);
        head.extend_from_slice(MAGIC);
        head.extend_from_slice(&VERSION_V2.to_le_bytes());
        head.push(W::TAG);
        head.push(flags);
        head.extend_from_slice(&(n as u64).to_le_bytes());
        head.extend_from_slice(&cfg.block_rows.to_le_bytes());
        let hsum = fnv1a(&head);
        head.extend_from_slice(&hsum.to_le_bytes());
        w.write_all(&head).map_err(SnapshotError::Io)?;

        let mut offset = HEADER_V2_LEN as u64;
        let mut index: Vec<IndexEntry> = Vec::new();
        type Encode<'a> =
            dyn FnMut(&mut FnvWriter<&mut dyn Write>) -> Result<u64, SnapshotError> + 'a;
        let mut emit = |w: &mut dyn Write, encode: &mut Encode<'_>| -> Result<(), SnapshotError> {
            let mut fw = FnvWriter::new(w);
            let len = encode(&mut fw)?;
            index.push(IndexEntry { offset, len, fnv: fw.hash() });
            offset += len;
            Ok(())
        };

        for b in 0..header.blocks() {
            let rows = header.rows_in_block(b);
            let cells = &self.dist_arena()[b * br * n..b * br * n + rows * n];
            emit(&mut w, &mut |fw| {
                let mut chunk: Vec<u8> = Vec::with_capacity(ENCODE_CHUNK);
                for &d in cells {
                    chunk.extend_from_slice(&d.encode());
                    if chunk.len() >= ENCODE_CHUNK {
                        fw.write_all(&chunk).map_err(SnapshotError::Io)?;
                        chunk.clear();
                    }
                }
                fw.write_all(&chunk).map_err(SnapshotError::Io)?;
                Ok(rows as u64 * n as u64 * 8)
            })?;
        }
        if header.has_succ {
            for b in 0..header.blocks() {
                let rows = header.rows_in_block(b);
                let cells = &self.succ_arena()[b * br * n..b * br * n + rows * n];
                emit(&mut w, &mut |fw| {
                    let mut chunk: Vec<u8> = Vec::with_capacity(ENCODE_CHUNK);
                    for &s in cells {
                        chunk.extend_from_slice(&s.to_le_bytes());
                        if chunk.len() >= ENCODE_CHUNK {
                            fw.write_all(&chunk).map_err(SnapshotError::Io)?;
                            chunk.clear();
                        }
                    }
                    fw.write_all(&chunk).map_err(SnapshotError::Io)?;
                    Ok(rows as u64 * n as u64 * 4)
                })?;
            }
        }
        if let Some(g) = cfg.graph {
            emit(&mut w, &mut |fw| {
                fw.write_all(&[u8::from(g.is_directed())]).map_err(SnapshotError::Io)?;
                fw.write_all(&(g.m() as u64).to_le_bytes()).map_err(SnapshotError::Io)?;
                let mut chunk: Vec<u8> = Vec::with_capacity(ENCODE_CHUNK);
                for e in g.edges() {
                    chunk.extend_from_slice(&e.from.to_le_bytes());
                    chunk.extend_from_slice(&e.to.to_le_bytes());
                    chunk.extend_from_slice(&e.weight.encode());
                    if chunk.len() >= ENCODE_CHUNK {
                        fw.write_all(&chunk).map_err(SnapshotError::Io)?;
                        chunk.clear();
                    }
                }
                fw.write_all(&chunk).map_err(SnapshotError::Io)?;
                Ok(9 + g.m() as u64 * 16)
            })?;
        }

        let mut ibytes = Vec::with_capacity(index.len() * INDEX_ENTRY_LEN);
        for e in &index {
            ibytes.extend_from_slice(&e.offset.to_le_bytes());
            ibytes.extend_from_slice(&e.len.to_le_bytes());
            ibytes.extend_from_slice(&e.fnv.to_le_bytes());
        }
        let ifnv = fnv1a(&ibytes);
        w.write_all(&ibytes).map_err(SnapshotError::Io)?;
        let mut footer = Vec::with_capacity(FOOTER_LEN);
        footer.extend_from_slice(&offset.to_le_bytes());
        footer.extend_from_slice(&(ibytes.len() as u64).to_le_bytes());
        footer.extend_from_slice(&ifnv.to_le_bytes());
        let fsum = fnv1a(&footer);
        footer.extend_from_slice(&fsum.to_le_bytes());
        w.write_all(&footer).map_err(SnapshotError::Io)?;
        Ok(())
    }

    /// Writes the blocked v2 snapshot to `path` atomically (temp file +
    /// fsync + rename, like [`save`](Oracle::save)).
    ///
    /// # Errors
    /// Rejects inconsistent configuration; propagates filesystem
    /// failures as [`SnapshotError::Io`].
    pub fn save_v2(
        &self,
        path: impl AsRef<Path>,
        cfg: &V2Config<'_, W>,
    ) -> Result<(), SnapshotError> {
        atomic_write(path.as_ref(), |w| self.save_v2_to(w, cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{gnm_connected, WeightDist};
    use congest_graph::seq::apsp_dijkstra;

    fn sample() -> (Graph<u64>, Oracle<u64>) {
        let g = gnm_connected(13, 30, true, WeightDist::Uniform(0, 9), 11);
        let o = Oracle::from_dist(&g, apsp_dijkstra(&g));
        (g, o)
    }

    #[test]
    fn v2_round_trip_with_successors() {
        let (_, o) = sample();
        for block_rows in [1u32, 3, 5, 13, 64] {
            let cfg = V2Config { block_rows, ..V2Config::default() };
            let bytes = o.to_bytes_v2(&cfg).unwrap();
            let o2 = Oracle::<u64>::from_bytes(&bytes).unwrap();
            assert_eq!(o, o2, "block_rows = {block_rows}");
        }
    }

    #[test]
    fn v2_round_trip_without_successors_derives() {
        let (g, o) = sample();
        let cfg = V2Config { block_rows: 4, drop_successors: true, graph: Some(&g) };
        let bytes = o.to_bytes_v2(&cfg).unwrap();
        let before = crate::successor_derivations();
        let o2 = Oracle::<u64>::from_bytes(&bytes).unwrap();
        assert!(crate::successor_derivations() > before, "plane must be re-derived");
        // Derivation may pick different (equally shortest) successors,
        // but distances are bit-identical and paths must telescope.
        assert_eq!(o.n(), o2.n());
        for u in 0..o.n() as NodeId {
            for v in 0..o.n() as NodeId {
                assert_eq!(o.distance(u, v), o2.distance(u, v));
                match (o.path(u, v), o2.path(u, v)) {
                    (Some(_), Some(p2)) => {
                        assert_eq!(p2[0], u);
                        assert_eq!(*p2.last().unwrap(), v);
                    }
                    (None, None) => {}
                    (a, b) => panic!("reachability mismatch at ({u}, {v}): {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn v2_misconfiguration_rejected() {
        let (g, o) = sample();
        assert!(matches!(
            o.to_bytes_v2(&V2Config { block_rows: 0, ..V2Config::default() }),
            Err(SnapshotError::Corrupt("block_rows must be at least 1"))
        ));
        assert!(matches!(
            o.to_bytes_v2(&V2Config { drop_successors: true, ..V2Config::default() }),
            Err(SnapshotError::Corrupt("dropping successors requires an embedded graph"))
        ));
        let small = gnm_connected(4, 6, true, WeightDist::Uniform(1, 3), 1);
        assert!(matches!(
            o.to_bytes_v2(&V2Config { block_rows: 4, drop_successors: false, graph: Some(&small) }),
            Err(SnapshotError::Corrupt("embedded graph node count mismatch"))
        ));
        let _ = g;
    }

    #[test]
    fn v2_zero_flags_rejected() {
        let (_, o) = sample();
        let mut bytes = o.to_bytes_v2(&V2Config::default()).unwrap();
        bytes[11] = 0;
        // Re-seal the header so the flags byte itself is reached.
        let h = fnv1a(&bytes[..24]);
        bytes[24..32].copy_from_slice(&h.to_le_bytes());
        assert!(matches!(
            Oracle::<u64>::from_bytes(&bytes).unwrap_err(),
            SnapshotError::Corrupt("v2 snapshot has neither successors nor graph")
        ));
    }

    #[test]
    fn v2_header_flip_is_checksum_mismatch() {
        let (_, o) = sample();
        let mut bytes = o.to_bytes_v2(&V2Config::default()).unwrap();
        bytes[20] ^= 1; // block_rows, covered by the header checksum
        assert!(matches!(
            Oracle::<u64>::from_bytes(&bytes).unwrap_err(),
            SnapshotError::ChecksumMismatch
        ));
    }
}
