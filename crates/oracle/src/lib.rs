//! # congest-oracle
//!
//! The **serving layer** on top of the CONGEST APSP reproduction: turns a
//! computed all-pairs shortest-path solution into a production-shaped
//! distance oracle — compute once, snapshot to disk, serve
//! distance/route/k-nearest queries from many threads.
//!
//! Three pieces, composable but independent:
//!
//! * [`Oracle`] — a compact query-ready snapshot: all `n²` distances in one
//!   flat arena plus a target-major successor matrix, giving O(path-length)
//!   shortest-path reconstruction (cycle-safe even with zero-weight edges;
//!   see [`oracle`] module docs). A Step-7-tracking pipeline outcome (the
//!   `congest_apsp::Solver` default) already carries the successor plane,
//!   which the oracle validates and adopts **by move** — zero reverse-BFS
//!   derivation, witnessed by [`successor_derivations`]; the derivation
//!   survives only as the fallback for plane-less outcomes and old
//!   snapshots.
//! * snapshot persistence — a versioned, checksummed binary format with no
//!   external dependencies; malformed input is always a [`SnapshotError`],
//!   never a panic. Two formats share one loader: the monolithic v1
//!   ([`Oracle::save`] / [`Oracle::load`] / [`Oracle::to_bytes`] /
//!   [`Oracle::from_bytes`]) and the blocked, per-block-checksummed v2
//!   ([`Oracle::save_v2`] with [`V2Config`]), which can drop the successor
//!   plane on disk and embed the graph instead. Saves are atomic: temp
//!   file + fsync + rename, so a crashed writer can never leave a torn
//!   snapshot where a watcher might load it.
//! * [`PagedOracle`] — the out-of-core backend: opens a v2 snapshot,
//!   validates only header + index eagerly, and pages blocks in lazily
//!   under a byte budget ([`PagedConfig`]) with per-block checksum
//!   verification on first touch — serving snapshots larger than RAM.
//! * [`QueryEngine`] — a sharded read-mostly server over **either**
//!   backend ([`QueryEngine::new`] eager / [`QueryEngine::new_paged`]):
//!   lock-free distance and k-nearest reads over the `Arc`'d snapshot,
//!   plus a per-shard LRU path cache so concurrent workers answering hot
//!   routes never contend on a single lock.
//!
//! ## Quickstart: compute → snapshot → serve
//!
//! ```
//! use congest_apsp::Solver;
//! use congest_graph::generators::{gnm_connected, WeightDist};
//! use congest_oracle::{EngineConfig, IntoOracle, Oracle, QueryEngine};
//! use std::sync::Arc;
//!
//! // 1. Compute: the paper's deterministic APSP pipeline is the Solver
//! //    default, and `into_oracle` moves its flat distance arena — plus
//! //    the Step-7 successor plane the pipeline filled during compute —
//! //    straight into the serving layer: no n² copy and no reverse-BFS
//! //    derivation at the boundary.
//! let g = gnm_connected(16, 32, true, WeightDist::Uniform(1, 9), 42);
//! let before = congest_oracle::successor_derivations();
//! let oracle = Solver::builder(&g).run().unwrap().into_oracle(&g);
//! assert_eq!(congest_oracle::successor_derivations(), before, "zero-derivation handoff");
//!
//! // 2. Snapshot: round-trip the oracle through bytes.
//! let bytes = oracle.to_bytes();
//! let restored = Oracle::<u64>::from_bytes(&bytes).unwrap();
//! assert_eq!(oracle, restored);
//!
//! // 3. Serve: shared, concurrent queries.
//! let engine = QueryEngine::new(Arc::new(restored), EngineConfig::default());
//! let d = engine.dist(0, 7).unwrap().expect("connected graph");
//! let route = engine.path(0, 7).unwrap().expect("connected graph");
//! assert_eq!(route.first(), Some(&0));
//! assert_eq!(route.last(), Some(&7));
//! let near = engine.k_nearest(0, 3).unwrap();
//! assert_eq!(near.len(), 3);
//! assert!(near.windows(2).all(|w| w[0].1 <= w[1].1), "sorted by distance");
//! # let _ = d;
//! ```

#![warn(missing_docs)]
#![deny(deprecated)]

mod engine;
mod format_v2;
mod lru;
pub mod oracle;
mod paged;
mod snapshot;

pub use engine::{CacheStats, EngineConfig, QueryEngine, QueryError};
pub use format_v2::V2Config;
pub use oracle::{successor_derivations, IntoOracle, Oracle, NO_SUCC};
pub use paged::{PagedConfig, PagedOracle, PagedStats};
pub use snapshot::{PortableWeight, SnapshotError, MAGIC, VERSION, VERSION_V2};
