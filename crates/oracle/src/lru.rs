//! A compact intrusive-list LRU cache used for per-shard path caching.
//!
//! Slots live in one `Vec`; the recency order is a doubly-linked list of
//! slot indices, so `get`/`insert` are O(1) with no per-entry allocation
//! beyond the slot itself.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: u32 = u32::MAX;

struct Slot<K, V> {
    key: K,
    val: V,
    prev: u32,
    next: u32,
}

/// Fixed-capacity least-recently-used cache.
pub struct LruCache<K, V> {
    cap: usize,
    map: HashMap<K, u32>,
    slots: Vec<Slot<K, V>>,
    /// Most recently used slot.
    head: u32,
    /// Least recently used slot (evicted first).
    tail: u32,
}

impl<K: Eq + Hash + Copy, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `cap` entries. A capacity of 0
    /// disables caching (`insert` is a no-op, `get` always misses).
    pub fn new(cap: usize) -> Self {
        LruCache {
            cap,
            map: HashMap::with_capacity(cap.min(1 << 20)),
            slots: Vec::with_capacity(cap.min(1 << 20)),
            head: NIL,
            tail: NIL,
        }
    }

    /// Creates a cache with no entry-count limit. Eviction is the
    /// caller's job via [`pop_lru`](LruCache::pop_lru) — the shape the
    /// paged oracle's byte-budgeted page cache needs, where entries have
    /// wildly different sizes and a count cap is meaningless.
    pub fn unbounded() -> Self {
        LruCache { cap: usize::MAX, map: HashMap::new(), slots: Vec::new(), head: NIL, tail: NIL }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Removes and returns the least-recently-used entry, or `None` when
    /// the cache is empty. Lets callers run their own eviction policy
    /// (e.g. a byte budget) on top of the recency order.
    pub fn pop_lru(&mut self) -> Option<(K, V)> {
        if self.tail == NIL {
            return None;
        }
        let i = self.tail;
        self.unlink(i);
        self.map.remove(&self.slots[i as usize].key);
        let last = u32::try_from(self.slots.len() - 1).expect("cache capacity exceeds u32");
        let slot = self.slots.swap_remove(i as usize);
        if i != last {
            // The former last slot moved into position `i`: re-point its
            // map entry and its neighbors' (or the head/tail) links.
            let (key, prev, next) = {
                let s = &self.slots[i as usize];
                (s.key, s.prev, s.next)
            };
            self.map.insert(key, i);
            if prev != NIL {
                self.slots[prev as usize].next = i;
            } else if self.head == last {
                self.head = i;
            }
            if next != NIL {
                self.slots[next as usize].prev = i;
            } else if self.tail == last {
                self.tail = i;
            }
        }
        Some((slot.key, slot.val))
    }

    /// Looks up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let &i = self.map.get(key)?;
        self.unlink(i);
        self.push_front(i);
        Some(self.slots[i as usize].val.clone())
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used entry
    /// when at capacity.
    pub fn insert(&mut self, key: K, val: V) {
        if self.cap == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slots[i as usize].val = val;
            self.unlink(i);
            self.push_front(i);
            return;
        }
        let i = if self.slots.len() < self.cap {
            let i = u32::try_from(self.slots.len()).expect("cache capacity exceeds u32");
            self.slots.push(Slot { key, val, prev: NIL, next: NIL });
            i
        } else {
            // Reuse the LRU slot for the new entry.
            let i = self.tail;
            self.unlink(i);
            let slot = &mut self.slots[i as usize];
            self.map.remove(&slot.key);
            slot.key = key;
            slot.val = val;
            i
        };
        self.map.insert(key, i);
        self.push_front(i);
    }

    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let s = &self.slots[i as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else if self.head == i {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else if self.tail == i {
            self.tail = prev;
        }
        let s = &mut self.slots[i as usize];
        s.prev = NIL;
        s.next = NIL;
    }

    fn push_front(&mut self, i: u32) {
        let old_head = self.head;
        {
            let s = &mut self.slots[i as usize];
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head as usize].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(10)); // 1 is now MRU
        c.insert(3, 30); // evicts 2
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn refresh_updates_value_and_recency() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // refresh: 2 becomes LRU
        c.insert(3, 30); // evicts 2
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.get(&2), None);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, 10);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn capacity_one() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&2), Some(20));
    }

    #[test]
    fn pop_lru_returns_oldest_first() {
        let mut c: LruCache<u32, u32> = LruCache::unbounded();
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        assert_eq!(c.get(&1), Some(10)); // promote 1: order is now 2, 3, 1
        assert_eq!(c.pop_lru(), Some((2, 20)));
        assert_eq!(c.pop_lru(), Some((3, 30)));
        assert_eq!(c.get(&1), Some(10), "survivor still resolves after swaps");
        assert_eq!(c.pop_lru(), Some((1, 10)));
        assert_eq!(c.pop_lru(), None);
        assert_eq!(c.len(), 0);
        // Cache stays usable after draining.
        c.insert(4, 40);
        assert_eq!(c.get(&4), Some(40));
    }

    #[test]
    fn pop_lru_interleaved_with_inserts() {
        let mut c: LruCache<u64, u64> = LruCache::unbounded();
        for i in 0..100u64 {
            c.insert(i, i * 2);
            if i % 3 == 0 {
                let (k, v) = c.pop_lru().unwrap();
                assert_eq!(v, k * 2);
            }
        }
        let mut drained = Vec::new();
        while let Some((k, _)) = c.pop_lru() {
            drained.push(k);
        }
        assert!(!drained.is_empty());
        let mut sorted = drained.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), drained.len(), "no key drained twice");
    }

    #[test]
    fn churn_keeps_consistency() {
        let mut c: LruCache<u64, u64> = LruCache::new(8);
        for i in 0..1000u64 {
            c.insert(i % 13, i);
            assert!(c.len() <= 8);
            if let Some(v) = c.get(&(i % 7)) {
                // Values are inserted under key `value % 13`.
                assert_eq!(v % 13, i % 7);
            }
        }
    }
}
