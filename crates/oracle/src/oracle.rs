//! The [`Oracle`]: a compact, query-ready form of an all-pairs
//! shortest-path solution.
//!
//! Distances live in a single flat arena (`Box<[W]>`, row-major, no nested
//! `Vec`s), and a successor matrix derived from the distances plus the
//! graph's adjacency enables O(path-length) shortest-path reconstruction.
//!
//! The successor matrix is stored *target-major*: `succ[v*n + u]` is the
//! next hop on a shortest path from `u` toward target `v`. This makes the
//! per-target derivation write one contiguous row (so targets parallelize
//! cleanly) and keeps a whole path walk inside one n-sized row.
//!
//! ## Where successors come from
//!
//! A Step-7-tracking pipeline outcome (the `congest_apsp::Solver` default)
//! already carries the target-major successor plane, filled while the
//! distance messages propagated; [`Oracle::from_dist`] validates it
//! (`check_plane` + a graph-consistency telescoping sweep) and adopts it
//! by move. The reverse-BFS derivation below runs only for plane-less
//! matrices — tracking-off runs, hand-built matrices, old snapshots — and
//! every derivation ticks the process-wide [`successor_derivations`]
//! counter, so the zero-derivation fast path is observable.
//!
//! ## Why the fallback derives by reverse BFS, not greedy matching
//!
//! The obvious derivation — for each `(u, v)` pick any neighbor `w` with
//! `δ(u,v) = wt(u,w) + δ(w,v)` — is wrong in the presence of zero-weight
//! edges: two nodes joined by a zero-weight 2-cycle can elect *each other*
//! as successor and the path walk never terminates. Instead, for every
//! target `v` we run a reverse BFS over the shortest-path DAG: a node `u`
//! is only assigned a successor `w` that has already been assigned (or is
//! `v` itself), so successor chains strictly decrease in hop level and a
//! walk finishes in at most `n - 1` steps.

use crate::engine::QueryError;
use congest_apsp::ApspOutcome;
use congest_graph::{DistMatrix, Graph, NodeId, Weight};
use congest_sim::parallel::par_indexed_map;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};

pub use congest_graph::NO_SUCC;

/// Process-wide count of reverse-BFS successor derivations performed by
/// [`Oracle::from_dist`]: one increment per oracle built from a matrix
/// *without* a successor plane. Adopting a producer-supplied plane never
/// increments it — the observable witness that `into_oracle` on a tracked
/// pipeline outcome is zero-derivation.
static DERIVATIONS: AtomicU64 = AtomicU64::new(0);

/// Reads the process-wide derivation counter (see [`Oracle::from_dist`]).
/// Tests and benchmarks compare before/after values to prove a build took
/// the supplied-plane fast path.
#[must_use]
pub fn successor_derivations() -> u64 {
    DERIVATIONS.load(Ordering::Relaxed)
}

/// Ticks the derivation counter from the other derivation sites: a v2
/// snapshot loaded without its successor plane (one tick per load) and
/// the paged backend's on-demand per-target derivation (one tick per
/// derived column).
pub(crate) fn tick_derivation() {
    DERIVATIONS.fetch_add(1, Ordering::Relaxed);
}

/// A compact distance + successor oracle over a fixed graph snapshot.
///
/// Built once from an APSP solution ([`Oracle::from_outcome`] /
/// [`Oracle::from_dist`]), then serves `distance`, `path` and `k_nearest`
/// queries with no further access to the graph. All storage is two flat
/// arenas: `n²` distances and `n²` successor ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Oracle<W> {
    n: usize,
    /// Row-major distances: `dist[u*n + v] = δ(u, v)`.
    dist: Box<[W]>,
    /// Target-major successors: `succ[v*n + u]` = next hop from `u`
    /// toward `v`, or [`NO_SUCC`].
    succ: Box<[NodeId]>,
}

impl<W: Weight> Oracle<W> {
    /// Builds an oracle from a distributed APSP run, consuming the outcome.
    /// The n² distance arena is *moved* out of the outcome — no per-row
    /// allocation and no n² copy happens on this path.
    ///
    /// # Panics
    /// Panics if `out` was not computed on `g` (dimension or diagonal
    /// mismatch, or distances inconsistent with `g`'s adjacency).
    #[must_use]
    pub fn from_outcome(g: &Graph<W>, out: ApspOutcome<W>) -> Self {
        Self::from_dist(g, out.into_dist())
    }

    /// Builds an oracle from an exact distance matrix for `g`
    /// (`dist[u][v] = δ(u, v)`, `W::INF` when unreachable), consuming the
    /// matrix: its flat arena becomes the oracle's distance storage by
    /// move.
    ///
    /// If the matrix carries a successor plane it is validated and adopted
    /// (also by move) — the zero-derivation fast path a Step-7-tracking
    /// pipeline run takes, observable via [`successor_derivations`];
    /// otherwise successors are derived from the distances plus `g`'s
    /// adjacency, parallelized over targets (one reverse BFS per target,
    /// O(n·m) total work).
    ///
    /// # Panics
    /// Panics if the matrix is not `n×n`, a diagonal entry is not zero, the
    /// matrix is inconsistent with `g` (some finite `dist[u][v]` not
    /// realizable as an edge walk in `g` — e.g. a matrix for a different
    /// graph), or an attached successor plane is inconsistent with the
    /// distances or with `g` (a non-edge or non-telescoping step).
    #[must_use]
    pub fn from_dist(g: &Graph<W>, dist: DistMatrix<W>) -> Self {
        let n = g.n();
        assert_eq!(dist.rows(), n, "distance matrix must have one row per node");
        assert_eq!(dist.cols(), n, "distance matrix must be square");
        for u in 0..n {
            assert_eq!(dist.get(u, u), W::ZERO, "diagonal entry δ({u},{u}) must be zero");
        }
        let (arena, succ_plane) = dist.into_parts();

        // Build timing: a supplied plane pays validation, a missing one
        // pays the reverse-BFS derivation — both worth a span + histogram
        // when telemetry is on (the 231 ms vs 370 ms gap at n = 2^11 is
        // exactly what PR 4 bought; keep it observable).
        let build_t0 = congest_telemetry::enabled().then(std::time::Instant::now);
        let supplied = succ_plane.is_some();

        let succ = match succ_plane {
            Some(succ) => {
                // A producer-supplied plane replaces the derivation, but
                // must satisfy the snapshot loader's invariants (successor
                // iff distinct + reachable, every chain terminates) ...
                if let Err(what) = crate::snapshot::check_plane(n, &arena, &succ) {
                    panic!("supplied successor plane invalid: {what}");
                }
                // ... plus the graph-consistency contract the derived path
                // gets from `derive_target`: every successor step must be
                // an edge of `g` whose weight telescopes, so `path` walks
                // are real min-weight walks in `g` (and a matrix/plane for
                // a different graph is rejected). One O(m log m) adjacency
                // precompute keeps the n² pair sweep at a binary-search
                // lookup per cell instead of an O(deg) edge scan.
                let min_out: Vec<Vec<(NodeId, W)>> = (0..n as NodeId)
                    .map(|u| {
                        let mut adj: Vec<(NodeId, W)> = g.out_edges(u).collect();
                        adj.sort_unstable();
                        // sorted by (target, weight): the first entry per
                        // target holds the min parallel weight
                        adj.dedup_by_key(|e| e.0);
                        adj
                    })
                    .collect();
                // Targets are independent; sweep them in parallel like the
                // derive path does.
                let mut cols: Vec<&[NodeId]> = succ.chunks(n).collect();
                let results = {
                    let (arena, min_out) = (&arena, &min_out);
                    par_indexed_map(&mut cols, move |v, col| -> Result<(), String> {
                        for (u, &s) in col.iter().enumerate() {
                            if s == NO_SUCC {
                                continue;
                            }
                            let adj = &min_out[u];
                            let Ok(i) = adj.binary_search_by_key(&s, |&(t, _)| t) else {
                                return Err(format!(
                                    "successor step ({u} -> {s}) is not an edge of the graph"
                                ));
                            };
                            if arena[u * n + v] != adj[i].1.plus(arena[s as usize * n + v]) {
                                return Err(format!(
                                    "successor step ({u} -> {s}) toward {v} does not telescope"
                                ));
                            }
                        }
                        Ok(())
                    })
                };
                for r in results {
                    if let Err(what) = r {
                        panic!("supplied successor plane invalid: {what}");
                    }
                }
                succ
            }
            None => {
                DERIVATIONS.fetch_add(1, Ordering::Relaxed);
                let mut succ = vec![NO_SUCC; n * n].into_boxed_slice();
                {
                    let arena = &arena;
                    let mut cols: Vec<&mut [NodeId]> = succ.chunks_mut(n).collect();
                    par_indexed_map(&mut cols, |v, col| derive_target(g, arena, v as NodeId, col));
                }
                succ
            }
        };
        if let Some(t0) = build_t0 {
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let tele = congest_telemetry::global();
            let (span, hist) = if supplied {
                ("oracle.build/validate-plane", "oracle.build.validate_ns")
            } else {
                ("oracle.build/derive-plane", "oracle.build.derive_ns")
            };
            tele.complete_span(
                span,
                tele.now_ns().saturating_sub(ns),
                ns,
                vec![("n".to_string(), n.to_string())],
            );
            tele.registry().histogram(hist).record(ns);
        }
        Oracle { n, dist: arena, succ }
    }

    /// Reassembles an oracle from its two arenas (snapshot loading).
    /// Caller has already validated lengths and value ranges.
    pub(crate) fn from_parts(n: usize, dist: Box<[W]>, succ: Box<[NodeId]>) -> Self {
        debug_assert_eq!(dist.len(), n * n);
        debug_assert_eq!(succ.len(), n * n);
        Oracle { n, dist, succ }
    }

    pub(crate) fn dist_arena(&self) -> &[W] {
        &self.dist
    }

    pub(crate) fn succ_arena(&self) -> &[NodeId] {
        &self.succ
    }

    /// Number of nodes in the snapshot.
    #[inline]
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// `δ(u, v)`; `W::INF` when `v` is unreachable from `u`.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range (use
    /// [`QueryEngine`](crate::QueryEngine) for checked queries).
    #[inline]
    #[must_use]
    pub fn distance(&self, u: NodeId, v: NodeId) -> W {
        // Both bounds checked up front: without the `u` check an
        // out-of-range source would either panic with an unhelpful raw
        // slice index message or, worse, for `u * n + v` still in range,
        // silently read another row's distance.
        assert!((u as usize) < self.n && (v as usize) < self.n, "node out of range");
        self.dist[u as usize * self.n + v as usize]
    }

    /// All distances from `u`, indexed by target id.
    #[inline]
    #[must_use]
    pub fn distance_row(&self, u: NodeId) -> &[W] {
        &self.dist[u as usize * self.n..(u as usize + 1) * self.n]
    }

    /// The next hop on a shortest path from `u` toward `v`; `None` when
    /// `u == v` or `v` is unreachable.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    #[inline]
    #[must_use]
    pub fn successor(&self, u: NodeId, v: NodeId) -> Option<NodeId> {
        assert!((u as usize) < self.n && (v as usize) < self.n, "node out of range");
        let s = self.succ[v as usize * self.n + u as usize];
        (s != NO_SUCC).then_some(s)
    }

    /// A shortest path from `u` to `v` as a vertex walk
    /// `[u, ..., v]`, reconstructed in O(path length). `None` when `v` is
    /// unreachable; `Some(vec![u])` when `u == v`.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range, or if the successor matrix is
    /// corrupt (see [`Oracle::try_path`] for the panic-free form serving
    /// layers should use on untrusted snapshots).
    #[must_use]
    pub fn path(&self, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
        match self.try_path(u, v) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Oracle::path`] with every failure mode surfaced as a typed error
    /// instead of a panic: out-of-range ids and — on a damaged or
    /// hand-forged snapshot — a successor walk that dead-ends or fails to
    /// reach `v` within `n` steps (the budget every valid plane satisfies,
    /// since chains strictly descend in hop level).
    ///
    /// # Errors
    /// [`QueryError::NodeOutOfRange`] for invalid ids;
    /// [`QueryError::CorruptSuccessors`] when the walk defeats the step
    /// budget or dead-ends before `v`.
    pub fn try_path(&self, u: NodeId, v: NodeId) -> Result<Option<Vec<NodeId>>, QueryError> {
        for node in [u, v] {
            if node as usize >= self.n {
                return Err(QueryError::NodeOutOfRange { node, n: self.n });
            }
        }
        let col = &self.succ[v as usize * self.n..(v as usize + 1) * self.n];
        walk_succ_column(self.n, col, u, v)
    }

    /// The `k` nearest *other* nodes to `u` (finite distances only), sorted
    /// by `(distance, node id)` ascending. Returns fewer than `k` entries
    /// when fewer are reachable.
    ///
    /// O(n log k) via a bounded max-heap over the distance row.
    ///
    /// # Panics
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn k_nearest(&self, u: NodeId, k: usize) -> Vec<(NodeId, W)> {
        assert!((u as usize) < self.n, "node out of range");
        k_nearest_in_row(u, self.distance_row(u), k)
    }
}

/// The `k` smallest `(distance, node)` pairs in `u`'s distance row,
/// excluding `u` itself and unreachable targets — the shared kernel under
/// [`Oracle::k_nearest`] and the paged backend's row-block variant.
/// O(n log k) via a bounded max-heap.
pub(crate) fn k_nearest_in_row<W: Weight>(u: NodeId, row: &[W], k: usize) -> Vec<(NodeId, W)> {
    // At most n-1 other nodes can ever be returned; clamp before
    // allocating so an absurd caller-supplied k cannot OOM the server.
    let k = k.min(row.len().saturating_sub(1));
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<(W, NodeId)> = BinaryHeap::with_capacity(k + 1);
    for (v, &d) in row.iter().enumerate() {
        if v == u as usize || d.is_inf() {
            continue;
        }
        let cand = (d, v as NodeId);
        if heap.len() < k {
            heap.push(cand);
        } else if cand < *heap.peek().expect("heap is non-empty at capacity") {
            heap.pop();
            heap.push(cand);
        }
    }
    heap.into_sorted_vec().into_iter().map(|(d, v)| (v, d)).collect()
}

/// Walks target `v`'s successor column from `u`: the shared panic-free
/// path-reconstruction kernel under [`Oracle::try_path`] and the paged
/// backend. `col[u]` is the next hop from `u` toward `v` (`NO_SUCC` when
/// unreachable); the walk budget is `n` vertices, which every valid plane
/// satisfies since successor chains strictly descend in hop level.
pub(crate) fn walk_succ_column(
    n: usize,
    col: &[NodeId],
    u: NodeId,
    v: NodeId,
) -> Result<Option<Vec<NodeId>>, QueryError> {
    if u == v {
        return Ok(Some(vec![u]));
    }
    if col[u as usize] == NO_SUCC {
        return Ok(None);
    }
    let mut walk = Vec::new();
    let mut cur = u;
    walk.push(cur);
    while cur != v {
        let nxt = col[cur as usize];
        // Budget: a simple path visits at most n vertices. A plane
        // that dead-ends (NO_SUCC mid-walk), cycles, or wanders past
        // the budget can only come from a corrupt snapshot.
        if nxt == NO_SUCC || nxt as usize >= n || walk.len() >= n {
            return Err(QueryError::CorruptSuccessors { u, v });
        }
        walk.push(nxt);
        cur = nxt;
    }
    Ok(Some(walk))
}

/// One-line compute → serve handoff: `solver.run()?.into_oracle(&g)`.
///
/// Implemented for [`ApspOutcome`] so the compute layer does not need to
/// depend on this crate. The outcome's flat distance arena is moved into
/// the oracle — no per-row allocation and no n² copy.
pub trait IntoOracle<W: Weight> {
    /// Consumes the APSP solution and builds a query-ready [`Oracle`]
    /// over the graph it was computed on.
    ///
    /// # Panics
    /// Panics if the solution was not computed on `g` (see
    /// [`Oracle::from_dist`]).
    fn into_oracle(self, g: &Graph<W>) -> Oracle<W>;
}

impl<W: Weight> IntoOracle<W> for ApspOutcome<W> {
    fn into_oracle(self, g: &Graph<W>) -> Oracle<W> {
        Oracle::from_outcome(g, self)
    }
}

/// Reverse BFS over the shortest-path DAG toward target `v`: assigns
/// `col[u]` = next hop from `u`, layer by layer, so successor chains
/// strictly decrease in hop level (see module docs).
fn derive_target<W: Weight>(g: &Graph<W>, dist: &[W], v: NodeId, col: &mut [NodeId]) {
    let n = g.n();
    // δ(u, v) = dist[u*n + v]: gather target v's strided column once so
    // the shared dense-column kernel serves this path, the v2 eager
    // loader and the paged backend alike.
    let dcol: Vec<W> = (0..n).map(|u| dist[u * n + v as usize]).collect();
    if let Err(u) = derive_target_from_col(g, &dcol, v, col) {
        panic!("distance matrix inconsistent with graph at ({u}, {v})");
    }
}

/// [`derive_target`] over a dense distance column (`dcol[u]` = δ(u, v)),
/// panic-free: `Err(u)` names a node whose finite distance the graph's
/// shortest-path DAG cannot realize (or vice versa) — the matrix does not
/// belong to this graph. Used directly by the untrusted-input loaders,
/// where a forged snapshot must surface a typed error, never a panic.
pub(crate) fn derive_target_from_col<W: Weight>(
    g: &Graph<W>,
    dcol: &[W],
    v: NodeId,
    col: &mut [NodeId],
) -> Result<(), NodeId> {
    let n = g.n();
    let mut done = vec![false; n];
    let mut queue: Vec<NodeId> = Vec::with_capacity(n);
    done[v as usize] = true;
    queue.push(v);
    let mut head = 0;
    while head < queue.len() {
        let w = queue[head];
        head += 1;
        let dw = dcol[w as usize];
        let (srcs, wts) = g.in_row(w);
        for (&u, &wt) in srcs.iter().zip(wts) {
            if done[u as usize] {
                continue;
            }
            let du = dcol[u as usize];
            if !du.is_inf() && du == wt.plus(dw) {
                done[u as usize] = true;
                col[u as usize] = w;
                queue.push(u);
            }
        }
    }
    // Every node with a finite distance must have been reached through the
    // DAG; otherwise the matrix does not belong to this graph.
    for u in 0..n {
        if u == v as usize {
            continue;
        }
        if dcol[u].is_inf() == (col[u] != NO_SUCC) {
            return Err(u as NodeId);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{gnm_connected, WeightDist};
    use congest_graph::seq::apsp_dijkstra;
    use congest_graph::Edge;

    fn diamond() -> Graph<u64> {
        Graph::from_edges(
            4,
            true,
            vec![Edge::new(0, 1, 1), Edge::new(1, 3, 1), Edge::new(0, 2, 5), Edge::new(2, 3, 1)],
        )
    }

    #[test]
    fn paths_on_diamond() {
        let g = diamond();
        let o = Oracle::from_dist(&g, apsp_dijkstra(&g));
        assert_eq!(o.distance(0, 3), 2);
        assert_eq!(o.path(0, 3), Some(vec![0, 1, 3]));
        assert_eq!(o.path(0, 0), Some(vec![0]));
        assert_eq!(o.path(3, 0), None); // directed: no way back
        assert_eq!(o.successor(0, 3), Some(1));
        assert_eq!(o.successor(3, 3), None);
    }

    #[test]
    fn zero_weight_cycle_terminates() {
        // 0 <-> 1 with zero weights, plus 1 -> 2: greedy successor choice
        // could loop 0 -> 1 -> 0 forever; the BFS derivation must not.
        let g = Graph::from_edges(
            3,
            true,
            vec![Edge::new(0, 1, 0u64), Edge::new(1, 0, 0), Edge::new(1, 2, 1), Edge::new(0, 2, 1)],
        );
        let o = Oracle::from_dist(&g, apsp_dijkstra(&g));
        for u in 0..3 {
            for v in 0..3 {
                let Some(p) = o.path(u, v) else {
                    // Only node 2 has no outgoing edges.
                    assert!(u == 2 && v != 2, "({u}, {v}) should be reachable");
                    continue;
                };
                assert_eq!(p[0], u);
                assert_eq!(*p.last().unwrap(), v);
                assert!(p.len() <= 3);
            }
        }
    }

    #[test]
    fn k_nearest_sorted_and_bounded() {
        let g = gnm_connected(20, 40, true, WeightDist::Uniform(1, 9), 3);
        let o = Oracle::from_dist(&g, apsp_dijkstra(&g));
        for u in 0..20u32 {
            let near = o.k_nearest(u, 5);
            assert!(near.len() <= 5);
            assert!(near.windows(2).all(|w| (w[0].1, w[0].0) <= (w[1].1, w[1].0)));
            assert!(near.iter().all(|&(v, d)| v != u && d == o.distance(u, v)));
            // must be the 5 smallest: every excluded node is >= the last kept
            if let Some(&(_, worst)) = near.last() {
                let kept: Vec<NodeId> = near.iter().map(|&(v, _)| v).collect();
                for v in 0..20u32 {
                    if v != u && !kept.contains(&v) && !o.distance(u, v).is_inf() {
                        assert!(o.distance(u, v) >= worst);
                    }
                }
            }
        }
        assert!(o.k_nearest(0, 0).is_empty());
        assert_eq!(o.k_nearest(0, 100).len(), 19); // everyone reachable, minus self
                                                   // A hostile k must not pre-allocate k heap slots.
        assert_eq!(o.k_nearest(0, usize::MAX).len(), 19);
    }

    #[test]
    fn single_node_graph() {
        let g: Graph<u64> = Graph::from_edges(1, true, vec![]);
        let o = Oracle::from_dist(&g, apsp_dijkstra(&g));
        assert_eq!(o.n(), 1);
        assert_eq!(o.path(0, 0), Some(vec![0]));
        assert!(o.k_nearest(0, 3).is_empty());
    }

    #[test]
    fn from_dist_moves_the_arena() {
        let g = diamond();
        let dist = apsp_dijkstra(&g);
        let ptr = dist.as_slice().as_ptr();
        let o = Oracle::from_dist(&g, dist);
        assert_eq!(o.dist_arena().as_ptr(), ptr, "arena must be moved, not copied");
    }

    #[test]
    fn supplied_successor_plane_is_adopted() {
        let g = diamond();
        // Derive once, then rebuild from a matrix carrying that plane: the
        // plane must be adopted by move and serve identical paths.
        let derived = Oracle::from_dist(&g, apsp_dijkstra(&g));
        let plane = derived.succ_arena().to_vec();
        let dist = apsp_dijkstra(&g).with_successors(plane);
        let succ_ptr = dist.successors().unwrap().as_ptr();
        let o = Oracle::from_dist(&g, dist);
        assert_eq!(o, derived);
        assert_eq!(o.succ_arena().as_ptr(), succ_ptr, "plane must be moved, not re-derived");
    }

    #[test]
    #[should_panic(expected = "does not reach its target")]
    fn cyclic_supplied_plane_rejected() {
        let g: Graph<u64> =
            Graph::from_edges(2, true, vec![Edge::new(0, 1, 1), Edge::new(1, 0, 1)]);
        // Toward target 1, node 0 names itself: the walk would never end.
        let dist = apsp_dijkstra(&g).with_successors(vec![NO_SUCC, 0, 0, NO_SUCC]);
        let _ = Oracle::from_dist(&g, dist);
    }

    #[test]
    #[should_panic(expected = "successor/distance mismatch")]
    fn mismatched_supplied_plane_rejected() {
        let g = diamond();
        // Reachable pair (0, 3) with no successor entry.
        let n = g.n();
        let dist = apsp_dijkstra(&g).with_successors(vec![NO_SUCC; n * n]);
        let _ = Oracle::from_dist(&g, dist);
    }

    #[test]
    #[should_panic(expected = "is not an edge of the graph")]
    fn non_edge_supplied_plane_rejected() {
        // Path 0 -> 1 -> 2; the plane claims 0 jumps straight to 2, which
        // telescopes distance-wise only if 0 -> 2 were an edge. It is not:
        // a plane for a different graph must not be adopted.
        let g: Graph<u64> =
            Graph::from_edges(3, true, vec![Edge::new(0, 1, 1), Edge::new(1, 2, 1)]);
        let derived = Oracle::from_dist(&g, apsp_dijkstra(&g));
        let mut plane = derived.succ_arena().to_vec();
        plane[2 * 3] = 2; // toward target 2, from node 0: skip node 1
        let dist = apsp_dijkstra(&g).with_successors(plane);
        let _ = Oracle::from_dist(&g, dist);
    }

    #[test]
    #[should_panic(expected = "does not telescope")]
    fn non_shortest_supplied_plane_rejected() {
        // 0 -> 2 exists but costs 5; the shortest route is 0 -> 1 -> 2
        // (cost 2). A plane steering 0 directly to 2 names a real edge,
        // yet its weight cannot telescope against δ(0, 2) = 2.
        let g: Graph<u64> = Graph::from_edges(
            3,
            true,
            vec![Edge::new(0, 1, 1), Edge::new(1, 2, 1), Edge::new(0, 2, 5)],
        );
        let derived = Oracle::from_dist(&g, apsp_dijkstra(&g));
        let mut plane = derived.succ_arena().to_vec();
        plane[2 * 3] = 2; // toward target 2, from node 0: take the long edge
        let dist = apsp_dijkstra(&g).with_successors(plane);
        let _ = Oracle::from_dist(&g, dist);
    }

    /// Forged arenas (bypassing validation) with finite distances but a
    /// successor plane that cycles toward one target and dead-ends toward
    /// another — the shape a damaged snapshot would have.
    fn corrupt_oracle() -> Oracle<u64> {
        let n = 3;
        let dist = vec![0u64, 1, 1, 1, 0, 1, 1, 1, 0].into_boxed_slice();
        let mut succ = vec![NO_SUCC; n * n];
        let mut set = |v: usize, u: usize, s: NodeId| succ[v * n + u] = s;
        // target 0: valid chain 2 -> 1 -> 0
        set(0, 1, 0);
        set(0, 2, 1);
        // target 1: node 0 walks to 2, which has no successor (dead end)
        set(1, 0, 2);
        // target 2: nodes 0 and 1 name each other (cycle, defeats budget)
        set(2, 0, 1);
        set(2, 1, 0);
        Oracle::from_parts(n, dist, succ.into_boxed_slice())
    }

    #[test]
    fn try_path_reports_corruption_instead_of_panicking() {
        let o = corrupt_oracle();
        assert_eq!(o.try_path(2, 0), Ok(Some(vec![2, 1, 0])));
        assert_eq!(o.try_path(1, 1), Ok(Some(vec![1])));
        assert_eq!(o.try_path(0, 1), Err(QueryError::CorruptSuccessors { u: 0, v: 1 }));
        assert_eq!(o.try_path(0, 2), Err(QueryError::CorruptSuccessors { u: 0, v: 2 }));
        assert_eq!(o.try_path(0, 9), Err(QueryError::NodeOutOfRange { node: 9, n: 3 }));
        assert_eq!(o.try_path(9, 0), Err(QueryError::NodeOutOfRange { node: 9, n: 3 }));
    }

    #[test]
    #[should_panic(expected = "corrupt successor matrix")]
    fn path_panics_on_corrupt_plane() {
        let _ = corrupt_oracle().path(0, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn distance_bounds_checks_the_source() {
        let g = diamond();
        let o = Oracle::from_dist(&g, apsp_dijkstra(&g));
        // u = 4 with v in range: u*n + v would still land inside the
        // arena, so an unchecked read would return another row's entry.
        let _ = o.distance(4, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn successor_bounds_checked() {
        let g = diamond();
        let o = Oracle::from_dist(&g, apsp_dijkstra(&g));
        let _ = o.successor(4, 0); // must not silently read target 1's column
    }

    #[test]
    #[should_panic(expected = "inconsistent with graph")]
    fn foreign_matrix_rejected() {
        let g = diamond();
        // Matrix of a different graph: claims 3 -> 0 is reachable.
        let mut dist = apsp_dijkstra(&g);
        dist[3][0] = 7;
        let _ = Oracle::from_dist(&g, dist);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn nonzero_diagonal_rejected() {
        let g = diamond();
        let mut dist = apsp_dijkstra(&g);
        dist[1][1] = 1;
        let _ = Oracle::from_dist(&g, dist);
    }
}
