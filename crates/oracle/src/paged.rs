//! The out-of-core oracle backend: serves queries from a blocked v2
//! snapshot **without** loading it into RAM.
//!
//! [`PagedOracle::open`] validates only the header, footer and index
//! eagerly (O(blocks) bytes); distance and successor blocks are read
//! from the file the first time a query touches them, checksum-verified
//! on that first touch, decoded, and kept in a byte-budgeted LRU
//! resident set (reusing the intrusive-list [`LruCache`]). When the
//! snapshot was written without its successor plane, per-target columns
//! are re-derived on demand from the embedded graph via the same
//! reverse-BFS used everywhere else (each derivation ticks
//! [`successor_derivations`](crate::successor_derivations)) and cached
//! like any other page.
//!
//! Concurrency: the page cache and the file handle are two independent
//! mutexes, both held only for O(1)-ish critical sections (cache probe /
//! insert, one positioned read). Block decode and checksum verification
//! run outside both locks; two threads racing on the same miss may both
//! read the block, and the second insert is dropped.

use crate::engine::QueryError;
use crate::format_v2::{
    parse_footer, parse_graph_section, parse_header_v2, parse_index, IndexEntry, FOOTER_LEN,
    HEADER_V2_LEN,
};
use crate::lru::LruCache;
use crate::oracle::{
    derive_target_from_col, k_nearest_in_row, tick_derivation, walk_succ_column, NO_SUCC,
};
use crate::snapshot::{fnv1a, PortableWeight, SnapshotError};
use congest_graph::{Graph, NodeId, Weight};
use congest_telemetry::{Counter, Gauge};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Tuning knobs for a [`PagedOracle`].
#[derive(Copy, Clone, Debug)]
pub struct PagedConfig {
    /// Byte budget for decoded resident pages. The LRU evicts past it,
    /// but always keeps at least one page, so the effective floor is the
    /// largest single block.
    pub resident_bytes: usize,
}

impl Default for PagedConfig {
    fn default() -> Self {
        PagedConfig { resident_bytes: 64 << 20 }
    }
}

/// Point-in-time counters of a [`PagedOracle`]'s paging activity.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PagedStats {
    /// Page requests served from the resident set.
    pub hits: u64,
    /// Page requests that had to read (and validate) from the file.
    pub misses: u64,
    /// Pages evicted to stay inside the byte budget.
    pub evictions: u64,
    /// Block checksum verifications performed (first touch + re-reads
    /// after eviction + derivation sweeps).
    pub validations: u64,
    /// Successor columns re-derived on demand (plane-less snapshots).
    pub derivations: u64,
    /// Decoded bytes currently resident.
    pub resident_bytes: usize,
}

/// Page-key planes: dist blocks, on-disk successor blocks, derived
/// successor columns. Keys are `plane << 32 | index`, which cannot
/// collide since `n ≤ 2^30` bounds every index.
const PLANE_DIST: u64 = 0;
const PLANE_SUCC: u64 = 1;
const PLANE_DERIVED: u64 = 2;

fn page_key(plane: u64, i: usize) -> u64 {
    (plane << 32) | i as u64
}

/// One decoded resident page.
#[derive(Clone)]
enum Page<W> {
    Dist(Arc<[W]>),
    Succ(Arc<[NodeId]>),
}

impl<W> Page<W> {
    fn bytes(&self) -> usize {
        match self {
            Page::Dist(p) => p.len() * std::mem::size_of::<W>(),
            Page::Succ(p) => p.len() * std::mem::size_of::<NodeId>(),
        }
    }
}

struct PageCache<W> {
    lru: LruCache<u64, Page<W>>,
    resident: usize,
}

/// Cached telemetry handles (see the `oracle.paged.*` names); recording
/// is gated on the global enable flag.
struct PagedTele {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    validations: Arc<Counter>,
    resident: Arc<Gauge>,
}

impl PagedTele {
    fn new() -> Self {
        let reg = congest_telemetry::global().registry();
        PagedTele {
            hits: reg.counter("oracle.paged.block_hits"),
            misses: reg.counter("oracle.paged.block_misses"),
            evictions: reg.counter("oracle.paged.block_evictions"),
            validations: reg.counter("oracle.paged.block_validations"),
            resident: reg.gauge("oracle.paged.resident_bytes"),
        }
    }
}

/// A lazily-paged, byte-budgeted read handle over a blocked v2 snapshot
/// — the backend that serves snapshots larger than RAM. See the module
/// docs; construct with [`PagedOracle::open`], serve through
/// [`QueryEngine::new_paged`](crate::QueryEngine::new_paged) or query
/// directly.
pub struct PagedOracle<W> {
    n: usize,
    block_rows: usize,
    blocks: usize,
    has_succ: bool,
    /// Present iff the plane is absent (then it is required); used only
    /// for on-demand successor derivation.
    graph: Option<Graph<W>>,
    /// Captured at `open` so query methods need only `W: Weight` — the
    /// engine's backend enum stays bound-compatible with the eager path.
    decode: fn([u8; 8]) -> Option<W>,
    file: Mutex<File>,
    dist_index: Box<[IndexEntry]>,
    succ_index: Box<[IndexEntry]>,
    budget: usize,
    cache: Mutex<PageCache<W>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    validations: AtomicU64,
    derivations: AtomicU64,
    resident: AtomicUsize,
    tele: PagedTele,
}

impl<W: PortableWeight> PagedOracle<W> {
    /// Opens a blocked v2 snapshot for lazy serving: reads and validates
    /// the header, the footer and the whole index (plus the embedded
    /// graph when the successor plane was dropped on disk), but **no**
    /// distance or successor block — those page in on first use.
    ///
    /// # Errors
    /// Every malformed-input condition surfaces as a [`SnapshotError`]
    /// (a v1 file is `UnsupportedVersion { found: 1 }` — use the eager
    /// [`Oracle::load`](crate::Oracle::load) for those), filesystem
    /// failures as [`SnapshotError::Io`].
    pub fn open(path: impl AsRef<Path>, cfg: PagedConfig) -> Result<Self, SnapshotError> {
        let mut file = File::open(path).map_err(SnapshotError::Io)?;
        let file_len = file.metadata().map_err(SnapshotError::Io)?.len();
        let min = HEADER_V2_LEN + FOOTER_LEN;
        if file_len < min as u64 {
            return Err(SnapshotError::Truncated { expected: min, got: file_len as usize });
        }
        let mut head = [0u8; HEADER_V2_LEN];
        file.read_exact(&mut head).map_err(SnapshotError::Io)?;
        let header = parse_header_v2(&head, W::TAG)?;
        let mut foot = [0u8; FOOTER_LEN];
        file.seek(SeekFrom::End(-(FOOTER_LEN as i64))).map_err(SnapshotError::Io)?;
        file.read_exact(&mut foot).map_err(SnapshotError::Io)?;
        let (ioff, ilen, ifnv) = parse_footer(file_len, &foot)?;
        let mut ibytes = vec![0u8; ilen as usize];
        file.seek(SeekFrom::Start(ioff)).map_err(SnapshotError::Io)?;
        file.read_exact(&mut ibytes).map_err(SnapshotError::Io)?;
        let layout = parse_index(header, &ibytes, ioff, ifnv)?;
        let graph = if header.has_succ {
            None
        } else {
            let (pos, e) = layout.graph.expect("flags guarantee a graph without successors");
            let mut blob = vec![0u8; e.len as usize];
            file.seek(SeekFrom::Start(e.offset)).map_err(SnapshotError::Io)?;
            file.read_exact(&mut blob).map_err(SnapshotError::Io)?;
            if fnv1a(&blob) != e.fnv {
                return Err(SnapshotError::BlockCorrupt { block: pos, what: "checksum mismatch" });
            }
            Some(parse_graph_section::<W>(&blob, header.n, pos)?)
        };
        Ok(PagedOracle {
            n: header.n,
            block_rows: header.block_rows,
            blocks: header.blocks(),
            has_succ: header.has_succ,
            graph,
            decode: W::decode,
            file: Mutex::new(file),
            dist_index: layout.dist.into_boxed_slice(),
            succ_index: layout.succ.into_boxed_slice(),
            budget: cfg.resident_bytes,
            cache: Mutex::new(PageCache { lru: LruCache::unbounded(), resident: 0 }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            validations: AtomicU64::new(0),
            derivations: AtomicU64::new(0),
            resident: AtomicUsize::new(0),
            tele: PagedTele::new(),
        })
    }
}

impl<W: Weight> PagedOracle<W> {
    /// Number of nodes in the snapshot.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rows per block the snapshot was written with.
    #[must_use]
    pub fn block_rows(&self) -> usize {
        self.block_rows
    }

    /// Number of row blocks per plane.
    #[must_use]
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Whether the successor plane is on disk (`false` means successor
    /// columns are derived on demand from the embedded graph).
    #[must_use]
    pub fn has_successor_plane(&self) -> bool {
        self.has_succ
    }

    /// The configured resident-set byte budget.
    #[must_use]
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// Decoded bytes currently resident in the page cache.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    /// Point-in-time paging counters.
    #[must_use]
    pub fn stats(&self) -> PagedStats {
        PagedStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            validations: self.validations.load(Ordering::Relaxed),
            derivations: self.derivations.load(Ordering::Relaxed),
            resident_bytes: self.resident.load(Ordering::Relaxed),
        }
    }

    fn check(&self, node: NodeId) -> Result<(), QueryError> {
        if (node as usize) < self.n {
            Ok(())
        } else {
            Err(QueryError::NodeOutOfRange { node, n: self.n })
        }
    }

    fn cache_get(&self, key: u64) -> Option<Page<W>> {
        let hit = self.cache.lock().expect("page cache poisoned").lru.get(&key);
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if congest_telemetry::enabled() {
                self.tele.hits.inc();
            }
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            if congest_telemetry::enabled() {
                self.tele.misses.inc();
            }
        }
        hit
    }

    fn insert_page(&self, key: u64, page: Page<W>) {
        let sz = page.bytes();
        let mut c = self.cache.lock().expect("page cache poisoned");
        if c.lru.get(&key).is_some() {
            return; // a racing thread beat us to it; keep its accounting
        }
        c.resident += sz;
        c.lru.insert(key, page);
        let mut evicted = 0u64;
        while c.resident > self.budget && c.lru.len() > 1 {
            let Some((_, old)) = c.lru.pop_lru() else { break };
            c.resident -= old.bytes();
            evicted += 1;
        }
        let resident = c.resident;
        drop(c);
        self.resident.store(resident, Ordering::Relaxed);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        if congest_telemetry::enabled() {
            if evicted > 0 {
                self.tele.evictions.add(evicted);
            }
            self.tele.resident.set(i64::try_from(resident).unwrap_or(i64::MAX));
        }
    }

    /// One positioned read under the file lock; checksum verification
    /// happens at the caller, outside the lock.
    fn read_range(&self, e: IndexEntry) -> std::io::Result<Vec<u8>> {
        let mut buf = vec![0u8; e.len as usize];
        let mut f = self.file.lock().expect("snapshot file poisoned");
        f.seek(SeekFrom::Start(e.offset))?;
        f.read_exact(&mut buf)?;
        Ok(buf)
    }

    /// Reads + validates block `e` (whose index position is `pos`),
    /// ticking the validation counters.
    fn read_block(&self, e: IndexEntry, pos: u32) -> Result<Vec<u8>, QueryError> {
        let bytes = self.read_range(e).map_err(|_| QueryError::BlockUnavailable { block: pos })?;
        if fnv1a(&bytes) != e.fnv {
            return Err(QueryError::BlockUnavailable { block: pos });
        }
        self.validations.fetch_add(1, Ordering::Relaxed);
        if congest_telemetry::enabled() {
            self.tele.validations.inc();
        }
        Ok(bytes)
    }

    /// The decoded distance block `b`, paging it in on a miss.
    fn dist_block(&self, b: usize) -> Result<Arc<[W]>, QueryError> {
        let key = page_key(PLANE_DIST, b);
        if let Some(Page::Dist(p)) = self.cache_get(key) {
            return Ok(p);
        }
        let bytes = self.read_block(self.dist_index[b], b as u32)?;
        let mut cells: Vec<W> = Vec::with_capacity(bytes.len() / 8);
        for chunk in bytes.chunks_exact(8) {
            let w = (self.decode)(chunk.try_into().expect("8-byte chunk"))
                .ok_or(QueryError::BlockUnavailable { block: b as u32 })?;
            cells.push(w);
        }
        let p: Arc<[W]> = cells.into();
        self.insert_page(key, Page::Dist(p.clone()));
        Ok(p)
    }

    /// The decoded on-disk successor block `b`, paging it in on a miss.
    fn succ_block(&self, b: usize) -> Result<Arc<[NodeId]>, QueryError> {
        let key = page_key(PLANE_SUCC, b);
        if let Some(Page::Succ(p)) = self.cache_get(key) {
            return Ok(p);
        }
        let pos = (self.blocks + b) as u32;
        let bytes = self.read_block(self.succ_index[b], pos)?;
        let mut cells: Vec<NodeId> = Vec::with_capacity(bytes.len() / 4);
        for chunk in bytes.chunks_exact(4) {
            let s = NodeId::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            if s != NO_SUCC && s as usize >= self.n {
                return Err(QueryError::BlockUnavailable { block: pos });
            }
            cells.push(s);
        }
        let p: Arc<[NodeId]> = cells.into();
        self.insert_page(key, Page::Succ(p.clone()));
        Ok(p)
    }

    /// Gathers target `v`'s dense distance column by streaming every
    /// dist block straight from the file (validated, **not** cached —
    /// one derivation must not flush the whole resident set), decoding
    /// only the column's cells.
    fn read_dist_column(&self, v: NodeId) -> Result<Vec<W>, QueryError> {
        let mut dcol: Vec<W> = Vec::with_capacity(self.n);
        for (b, &e) in self.dist_index.iter().enumerate() {
            let bytes = self.read_block(e, b as u32)?;
            let rows = (e.len as usize / 8) / self.n;
            for r in 0..rows {
                let at = (r * self.n + v as usize) * 8;
                let w = (self.decode)(bytes[at..at + 8].try_into().expect("8 bytes"))
                    .ok_or(QueryError::BlockUnavailable { block: b as u32 })?;
                dcol.push(w);
            }
        }
        Ok(dcol)
    }

    /// Target `v`'s successor column when the plane is not on disk:
    /// derived once via reverse BFS over the embedded graph, then cached
    /// as a page like any block.
    fn derived_col(&self, v: NodeId) -> Result<Arc<[NodeId]>, QueryError> {
        let key = page_key(PLANE_DERIVED, v as usize);
        if let Some(Page::Succ(p)) = self.cache_get(key) {
            return Ok(p);
        }
        let dcol = self.read_dist_column(v)?;
        let g = self.graph.as_ref().expect("plane-less snapshots always embed a graph");
        let mut col = vec![NO_SUCC; self.n];
        self.derivations.fetch_add(1, Ordering::Relaxed);
        tick_derivation();
        derive_target_from_col(g, &dcol, v, &mut col)
            .map_err(|u| QueryError::CorruptSuccessors { u, v })?;
        let p: Arc<[NodeId]> = col.into();
        self.insert_page(key, Page::Succ(p.clone()));
        Ok(p)
    }

    /// `δ(u, v)`; `W::INF` when unreachable. Pages in `u`'s row block.
    ///
    /// # Errors
    /// [`QueryError::NodeOutOfRange`] for invalid ids,
    /// [`QueryError::BlockUnavailable`] when the block cannot be read or
    /// fails its checksum.
    pub fn distance(&self, u: NodeId, v: NodeId) -> Result<W, QueryError> {
        self.check(u)?;
        self.check(v)?;
        let b = u as usize / self.block_rows;
        let blk = self.dist_block(b)?;
        Ok(blk[(u as usize - b * self.block_rows) * self.n + v as usize])
    }

    /// A shortest `u → v` vertex walk, `Ok(None)` when unreachable —
    /// the paged counterpart of [`Oracle::try_path`](crate::Oracle::try_path).
    ///
    /// # Errors
    /// [`QueryError::NodeOutOfRange`], [`QueryError::BlockUnavailable`],
    /// or [`QueryError::CorruptSuccessors`] when the (on-disk or
    /// derived) column cannot realize the walk.
    pub fn try_path(&self, u: NodeId, v: NodeId) -> Result<Option<Vec<NodeId>>, QueryError> {
        self.check(u)?;
        self.check(v)?;
        if self.has_succ {
            let b = v as usize / self.block_rows;
            let blk = self.succ_block(b)?;
            let base = (v as usize - b * self.block_rows) * self.n;
            walk_succ_column(self.n, &blk[base..base + self.n], u, v)
        } else {
            let col = self.derived_col(v)?;
            walk_succ_column(self.n, &col, u, v)
        }
    }

    /// The `k` nearest other nodes to `u` (see
    /// [`Oracle::k_nearest`](crate::Oracle::k_nearest)). Pages in `u`'s
    /// row block.
    ///
    /// # Errors
    /// [`QueryError::NodeOutOfRange`], [`QueryError::BlockUnavailable`].
    pub fn k_nearest(&self, u: NodeId, k: usize) -> Result<Vec<(NodeId, W)>, QueryError> {
        self.check(u)?;
        let b = u as usize / self.block_rows;
        let blk = self.dist_block(b)?;
        let base = (u as usize - b * self.block_rows) * self.n;
        Ok(k_nearest_in_row(u, &blk[base..base + self.n], k))
    }
}
