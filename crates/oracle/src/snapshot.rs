//! Versioned binary snapshot formats for [`Oracle`] — compute once, serve
//! forever.
//!
//! No external dependencies (the build is offline): both formats are small
//! hand-rolled little-endian layouts built on FNV-1a 64 checksums. Two
//! versions coexist:
//!
//! ## Format v1 — monolithic (the eager path)
//!
//! One contiguous image, one trailing checksum. [`Oracle::load`] /
//! [`Oracle::from_bytes`] read it fully into RAM:
//!
//! ```text
//! offset  size      field
//! 0       8         magic  b"CGSTORCL"
//! 8       2         format version (u16 LE) = 1
//! 10      1         weight-type tag (PortableWeight::TAG)
//! 11      1         flags (reserved, 0)
//! 12      8         n (u64 LE)
//! 20      n²·8      distance arena, row-major, 8 bytes per weight
//! ..      n²·4      successor arena, target-major, u32 LE per entry
//! end-8   8         FNV-1a 64 checksum of every preceding byte (u64 LE)
//! ```
//!
//! ## Format v2 — blocked (the out-of-core path)
//!
//! The arenas are cut into fixed-size blocks of whole rows, each with its
//! own checksum, indexed from the tail of the file so a reader can
//! validate the header + index eagerly and page blocks lazily (the
//! [`PagedOracle`](crate::PagedOracle) backend). Written front-to-back
//! with no seeks, so [`Oracle::save_v2_to`] streams to any `Write`:
//!
//! ```text
//! offset  size      field
//! 0       8         magic  b"CGSTORCL"
//! 8       2         format version (u16 LE) = 2
//! 10      1         weight-type tag (PortableWeight::TAG)
//! 11      1         flags: bit0 = successor plane on disk,
//!                          bit1 = graph section on disk (≥ one set)
//! 12      8         n (u64 LE)
//! 20      4         block_rows (u32 LE): rows per block
//! 24      8         FNV-1a 64 of header bytes 0..24
//! 32      ...       B dist blocks, block b = rows [b·br, min(n,(b+1)·br))
//!                   of the row-major distance arena, 8 bytes per weight
//! ..      ...       B successor blocks (flag bit0): same row partition of
//!                   the target-major plane, u32 LE per entry
//! ..      ...       graph section (flag bit1): u8 directed, u64 m, then
//!                   m × (u32 from, u32 to, 8-byte weight)
//! ..      E·24      index: one (offset u64, len u64, fnv u64) entry per
//!                   dist block, then per successor block, then the graph
//!                   section — ranges must tile [32, index) exactly
//! end-32  32        footer: index offset u64, index len u64, index fnv
//!                   u64, FNV-1a 64 of the footer's first 24 bytes
//! ```
//!
//! The successor plane is optional on disk: with flag bit0 clear the
//! graph section must be present, and readers re-derive each target's
//! successor column on demand via the reverse-BFS derivation (counted by
//! [`successor_derivations`](crate::successor_derivations)). Paging
//! semantics: [`PagedOracle::open`](crate::PagedOracle::open) validates
//! header, footer and index up front, then reads a block only when a
//! query touches it, verifying the block checksum on first touch
//! ([`SnapshotError::BlockCorrupt`] names the failing index entry) and
//! keeping a byte-budgeted LRU resident set.
//!
//! **Migration:** `congest-serve make-snapshot --from old.snap --format
//! v2` rewrites a v1 snapshot as v2 ([`Oracle::load`] accepts both, so
//! the eager path needs no migration at all).
//!
//! ## Durability
//!
//! Every `save` variant writes a same-directory temp file, fsyncs and
//! atomically renames it over the target, so a concurrent reader (the
//! serve-side snapshot watcher) can never observe a half-written file.
//!
//! Loading is strictly validated and never panics on malformed input:
//! truncation, bad magic, unknown version, weight-type mismatch, checksum
//! failure and out-of-range successor ids all surface as [`SnapshotError`].

use crate::oracle::{Oracle, NO_SUCC};
use congest_graph::{NodeId, Weight, F64};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Magic bytes identifying an oracle snapshot.
pub const MAGIC: &[u8; 8] = b"CGSTORCL";
/// The monolithic (v1) snapshot format version.
pub const VERSION: u16 = 1;
/// The blocked, out-of-core (v2) snapshot format version.
pub const VERSION_V2: u16 = 2;
pub(crate) const HEADER_LEN: usize = 20;
const CHECKSUM_LEN: usize = 8;

/// A weight type with a canonical, portable 8-byte encoding, snapshottable
/// into the binary format.
pub trait PortableWeight: Weight {
    /// One-byte tag identifying the weight type in the snapshot header, so
    /// a `u64` snapshot cannot be silently decoded as `F64`.
    const TAG: u8;

    /// Canonical little-endian 8-byte encoding.
    fn encode(self) -> [u8; 8];

    /// Inverse of [`encode`](PortableWeight::encode); `None` when the bytes
    /// are not a valid weight (e.g. NaN for floats).
    fn decode(bytes: [u8; 8]) -> Option<Self>;
}

impl PortableWeight for u64 {
    const TAG: u8 = 1;

    fn encode(self) -> [u8; 8] {
        self.to_le_bytes()
    }

    fn decode(bytes: [u8; 8]) -> Option<Self> {
        Some(u64::from_le_bytes(bytes))
    }
}

impl PortableWeight for u32 {
    const TAG: u8 = 2;

    fn encode(self) -> [u8; 8] {
        u64::from(self).to_le_bytes()
    }

    fn decode(bytes: [u8; 8]) -> Option<Self> {
        u32::try_from(u64::from_le_bytes(bytes)).ok()
    }
}

impl PortableWeight for F64 {
    const TAG: u8 = 3;

    fn encode(self) -> [u8; 8] {
        self.get().to_bits().to_le_bytes()
    }

    fn decode(bytes: [u8; 8]) -> Option<Self> {
        let v = f64::from_bits(u64::from_le_bytes(bytes));
        (!v.is_nan() && v >= 0.0).then(|| F64::new(v))
    }
}

/// Why a snapshot failed to load (or save).
#[derive(Debug)]
pub enum SnapshotError {
    /// Fewer bytes than the header + arenas + checksum require.
    Truncated {
        /// Bytes the snapshot should contain.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// Extra bytes after the checksum trailer.
    TrailingData {
        /// Bytes the snapshot should contain.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The leading magic bytes are not [`MAGIC`].
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
    },
    /// The snapshot was written with a different weight type.
    WeightTypeMismatch {
        /// Tag found in the header.
        found: u8,
        /// Tag of the weight type being loaded.
        expected: u8,
    },
    /// The trailer checksum does not match the content.
    ChecksumMismatch,
    /// A single v2 block failed validation — its checksum does not match
    /// or its payload does not decode. `block` is the position of the
    /// failing entry in the snapshot's index (dist blocks first, then
    /// successor blocks, then the graph section).
    BlockCorrupt {
        /// Index-entry position of the failing block.
        block: u32,
        /// What went wrong with it.
        what: &'static str,
    },
    /// Structurally invalid content despite a valid checksum.
    Corrupt(&'static str),
    /// Filesystem failure while reading or writing.
    Io(std::io::Error),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated { expected, got } => {
                write!(f, "snapshot truncated: expected {expected} bytes, got {got}")
            }
            SnapshotError::TrailingData { expected, got } => {
                write!(f, "snapshot has trailing data: expected {expected} bytes, got {got}")
            }
            SnapshotError::BadMagic => write!(f, "not an oracle snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (this build reads {VERSION} and {VERSION_V2})"
                )
            }
            SnapshotError::WeightTypeMismatch { found, expected } => {
                write!(f, "snapshot weight tag {found} does not match expected {expected}")
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::BlockCorrupt { block, what } => {
                write!(f, "snapshot block {block} corrupt: {what}")
            }
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Checks that every successor chain in target `v`'s column reaches `v`
/// (no cycles, no dead ends). Chains are memoized, so the whole column is
/// O(n): each node is walked at most once across all starting points.
fn succ_chains_terminate(n: usize, v: usize, col: &[NodeId]) -> bool {
    /// Per-node memo: unknown / on the current walk / proven to reach `v`.
    #[derive(Copy, Clone, PartialEq)]
    enum Mark {
        Unknown,
        InProgress,
        Ok,
    }
    let mut mark = vec![Mark::Unknown; n];
    mark[v] = Mark::Ok;
    let mut walk = Vec::new();
    for start in 0..n {
        if mark[start] != Mark::Unknown || col[start] == NO_SUCC {
            continue;
        }
        walk.clear();
        let mut cur = start;
        loop {
            match mark[cur] {
                Mark::Ok => break,
                Mark::InProgress => return false, // cycle
                Mark::Unknown => {}
            }
            let nxt = col[cur];
            if nxt == NO_SUCC {
                // Dead end before reaching `v` (cross-invariant already
                // rules this out for consistent snapshots, but stay safe).
                return false;
            }
            mark[cur] = Mark::InProgress;
            walk.push(cur);
            cur = nxt as usize;
        }
        for &u in &walk {
            mark[u] = Mark::Ok;
        }
    }
    true
}

/// Cross-arena invariants shared by the snapshot loader and
/// [`Oracle::from_dist`]'s supplied-plane path: a successor exists iff the
/// pair is distinct and reachable, and every successor chain terminates at
/// its target. Returns the first violated invariant's description.
pub(crate) fn check_plane<W: Weight>(
    n: usize,
    dist: &[W],
    succ: &[NodeId],
) -> Result<(), &'static str> {
    for v in 0..n {
        for u in 0..n {
            let has_succ = succ[v * n + u] != NO_SUCC;
            let reachable = u != v && !dist[u * n + v].is_inf();
            if has_succ != reachable {
                return Err("successor/distance mismatch");
            }
        }
    }
    for v in 0..n {
        if !succ_chains_terminate(n, v, &succ[v * n..(v + 1) * n]) {
            return Err("successor chain does not reach its target");
        }
    }
    Ok(())
}

/// FNV-1a 64-bit offset basis.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `bytes` into a running FNV-1a 64 state `h`.
pub(crate) fn fnv1a_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// FNV-1a 64-bit over `bytes`.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_update(FNV_OFFSET, bytes)
}

/// A [`Write`] adapter folding every byte it forwards into a running
/// FNV-1a 64, so streaming encoders can emit a trailer checksum without
/// buffering the whole image. Partial writes are absorbed internally
/// (`write` forwards via `write_all`), keeping the hash in lockstep with
/// the stream.
pub(crate) struct FnvWriter<Wr> {
    inner: Wr,
    hash: u64,
}

impl<Wr: Write> FnvWriter<Wr> {
    pub(crate) fn new(inner: Wr) -> Self {
        FnvWriter { inner, hash: FNV_OFFSET }
    }

    /// The FNV-1a 64 of every byte written so far.
    pub(crate) fn hash(&self) -> u64 {
        self.hash
    }

    /// Bypasses hashing: writes trailer bytes (e.g. the checksum itself)
    /// that must not fold into the running hash.
    pub(crate) fn write_unhashed(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.inner.write_all(bytes)
    }
}

impl<Wr: Write> Write for FnvWriter<Wr> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.inner.write_all(buf)?;
        self.hash = fnv1a_update(self.hash, buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Atomically replaces `path`: streams the snapshot into a same-directory
/// temp file, fsyncs it, then renames it over the target, so a concurrent
/// reader (the serve-side watcher) sees either the old complete file or
/// the new complete file — never a partial write. The temp file is
/// removed on failure.
pub(crate) fn atomic_write(
    path: &Path,
    write_fn: impl FnOnce(&mut std::io::BufWriter<std::fs::File>) -> Result<(), SnapshotError>,
) -> Result<(), SnapshotError> {
    // Unique per (process, call): concurrent savers in one process — or
    // two processes saving into one directory — never share a temp file.
    static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or(SnapshotError::Corrupt("snapshot path has no file name"))?;
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty()).unwrap_or(Path::new("."));
    let tmp = dir.join(format!(
        ".{name}.tmp.{}.{}",
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| {
        let file = std::fs::File::create(&tmp).map_err(SnapshotError::Io)?;
        let mut w = std::io::BufWriter::new(file);
        write_fn(&mut w)?;
        w.flush().map_err(SnapshotError::Io)?;
        // Data must be durable *before* the rename publishes it: a crash
        // between rename and writeback must not leave a torn target.
        w.get_ref().sync_all().map_err(SnapshotError::Io)?;
        std::fs::rename(&tmp, path).map_err(SnapshotError::Io)
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    } else {
        // Best effort: persist the directory entry too. Failure here
        // (e.g. an unsyncable filesystem) does not un-publish the data.
        if let Ok(d) = std::fs::File::open(dir) {
            d.sync_all().ok();
        }
    }
    result
}

/// Encoding chunk size for the streaming writers: big enough to amortize
/// `Write` dispatch, small enough to keep peak extra memory trivial.
pub(crate) const ENCODE_CHUNK: usize = 64 * 1024;

impl<W: PortableWeight> Oracle<W> {
    /// Serializes the oracle into the monolithic v1 snapshot format.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.n();
        let mut buf = Vec::with_capacity(HEADER_LEN + n * n * 12 + CHECKSUM_LEN);
        self.save_to(&mut buf).expect("writing to a Vec cannot fail");
        buf
    }

    /// Streams the v1 snapshot into `w`, encoding block-by-block: peak
    /// extra memory is one small chunk buffer instead of the full n²×12
    /// image [`to_bytes`](Oracle::to_bytes) materializes — the shape that
    /// matters at exactly the sizes the blocked v2 format targets.
    ///
    /// # Errors
    /// Propagates `w`'s failures as [`SnapshotError::Io`].
    pub fn save_to(&self, w: impl Write) -> Result<(), SnapshotError> {
        let n = self.n();
        let mut fw = FnvWriter::new(w);
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.push(W::TAG);
        header.push(0); // flags, reserved
        header.extend_from_slice(&(n as u64).to_le_bytes());
        fw.write_all(&header).map_err(SnapshotError::Io)?;
        let mut chunk: Vec<u8> = Vec::with_capacity(ENCODE_CHUNK);
        for &d in self.dist_arena() {
            chunk.extend_from_slice(&d.encode());
            if chunk.len() >= ENCODE_CHUNK {
                fw.write_all(&chunk).map_err(SnapshotError::Io)?;
                chunk.clear();
            }
        }
        for &s in self.succ_arena() {
            chunk.extend_from_slice(&s.to_le_bytes());
            if chunk.len() >= ENCODE_CHUNK {
                fw.write_all(&chunk).map_err(SnapshotError::Io)?;
                chunk.clear();
            }
        }
        fw.write_all(&chunk).map_err(SnapshotError::Io)?;
        let sum = fw.hash();
        fw.write_unhashed(&sum.to_le_bytes()).map_err(SnapshotError::Io)?;
        Ok(())
    }

    /// Deserializes a snapshot in either format — monolithic v1
    /// ([`to_bytes`](Oracle::to_bytes)) or blocked v2
    /// ([`to_bytes_v2`](Oracle::to_bytes_v2)) — dispatching on the header
    /// version. v2 input is loaded eagerly: every block checksum is
    /// verified, and when the successor plane was dropped on disk it is
    /// re-derived from the embedded graph (one
    /// [`successor_derivations`](crate::successor_derivations) tick).
    ///
    /// # Errors
    /// Returns a [`SnapshotError`] (never panics) on truncated, corrupted,
    /// version-mismatched or wrong-weight-type input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let min_len = HEADER_LEN + CHECKSUM_LEN;
        if bytes.len() < min_len {
            return Err(SnapshotError::Truncated { expected: min_len, got: bytes.len() });
        }
        if &bytes[0..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if version == VERSION_V2 {
            return crate::format_v2::from_bytes_v2(bytes);
        }
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        if bytes[10] != W::TAG {
            return Err(SnapshotError::WeightTypeMismatch { found: bytes[10], expected: W::TAG });
        }
        let n_raw = u64::from_le_bytes(bytes[12..20].try_into().expect("8 header bytes"));
        let n = usize::try_from(n_raw)
            .ok()
            .filter(|&n| n <= u32::MAX as usize / 4)
            .ok_or(SnapshotError::Corrupt("node count out of range"))?;
        let cells = n
            .checked_mul(n)
            .and_then(|c| c.checked_mul(12))
            .ok_or(SnapshotError::Corrupt("arena size overflows"))?;
        let expected = HEADER_LEN + cells + CHECKSUM_LEN;
        if bytes.len() < expected {
            return Err(SnapshotError::Truncated { expected, got: bytes.len() });
        }
        if bytes.len() > expected {
            return Err(SnapshotError::TrailingData { expected, got: bytes.len() });
        }
        let body = &bytes[..expected - CHECKSUM_LEN];
        let stored =
            u64::from_le_bytes(bytes[expected - CHECKSUM_LEN..].try_into().expect("8 bytes"));
        if fnv1a(body) != stored {
            return Err(SnapshotError::ChecksumMismatch);
        }

        let dist_bytes = &bytes[HEADER_LEN..HEADER_LEN + n * n * 8];
        let mut dist = Vec::with_capacity(n * n);
        for chunk in dist_bytes.chunks_exact(8) {
            let w = W::decode(chunk.try_into().expect("8-byte chunk"))
                .ok_or(SnapshotError::Corrupt("invalid weight encoding"))?;
            dist.push(w);
        }
        let succ_bytes = &bytes[HEADER_LEN + n * n * 8..expected - CHECKSUM_LEN];
        let mut succ = Vec::with_capacity(n * n);
        for chunk in succ_bytes.chunks_exact(4) {
            let s = NodeId::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            if s != NO_SUCC && s as usize >= n {
                return Err(SnapshotError::Corrupt("successor id out of range"));
            }
            succ.push(s);
        }
        // Cross-arena invariants (keep `path` panic-free and queries
        // self-consistent on loaded snapshots): zero diagonal, a successor
        // exists iff the pair is distinct and reachable, and every
        // successor chain terminates at its target.
        for u in 0..n {
            if dist[u * n + u] != W::ZERO {
                return Err(SnapshotError::Corrupt("nonzero diagonal distance"));
            }
        }
        check_plane(n, &dist, &succ).map_err(SnapshotError::Corrupt)?;
        Ok(Oracle::from_parts(n, dist.into_boxed_slice(), succ.into_boxed_slice()))
    }

    /// Writes the v1 snapshot to `path` **atomically**: the bytes are
    /// streamed into a same-directory temp file, fsynced, then renamed
    /// over the target. A concurrent reader — in particular the serve
    /// watcher, which fingerprints and reloads on change — can never
    /// observe a half-written snapshot.
    ///
    /// # Errors
    /// Propagates filesystem failures as [`SnapshotError::Io`].
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        atomic_write(path.as_ref(), |w| self.save_to(w))
    }

    /// Reads a snapshot (either format; see
    /// [`from_bytes`](Oracle::from_bytes)) from `path`.
    ///
    /// # Errors
    /// Propagates filesystem failures and every
    /// [`from_bytes`](Oracle::from_bytes) validation error.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Self::from_bytes(&std::fs::read(path).map_err(SnapshotError::Io)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{gnm_connected, WeightDist};
    use congest_graph::seq::apsp_dijkstra;

    fn sample_oracle() -> Oracle<u64> {
        let g = gnm_connected(12, 24, true, WeightDist::Uniform(0, 9), 9);
        Oracle::from_dist(&g, apsp_dijkstra(&g))
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let o = sample_oracle();
        let bytes = o.to_bytes();
        let o2 = Oracle::<u64>::from_bytes(&bytes).unwrap();
        assert_eq!(o, o2);
        assert_eq!(bytes, o2.to_bytes());
    }

    #[test]
    fn f64_round_trip() {
        let g = gnm_connected(8, 16, false, WeightDist::Uniform(1, 5), 4);
        let gf = g.map_weights(|w| F64::new(w as f64 * 0.5));
        let o = Oracle::from_dist(&gf, apsp_dijkstra(&gf));
        let o2 = Oracle::<F64>::from_bytes(&o.to_bytes()).unwrap();
        assert_eq!(o, o2);
    }

    #[test]
    fn truncation_is_an_error_at_every_length() {
        let bytes = sample_oracle().to_bytes();
        // Sample a spread of prefixes, including header-interior cuts.
        for cut in [0, 1, 7, 8, 11, 19, 20, 21, bytes.len() / 2, bytes.len() - 1] {
            let err = Oracle::<u64>::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated { .. } | SnapshotError::BadMagic),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut bytes = sample_oracle().to_bytes();
        bytes[8] = 99;
        assert!(matches!(
            Oracle::<u64>::from_bytes(&bytes).unwrap_err(),
            SnapshotError::UnsupportedVersion { found: 99 }
        ));
    }

    #[test]
    fn weight_tag_mismatch_rejected() {
        let bytes = sample_oracle().to_bytes();
        assert!(matches!(
            Oracle::<F64>::from_bytes(&bytes).unwrap_err(),
            SnapshotError::WeightTypeMismatch { found: 1, expected: 3 }
        ));
    }

    #[test]
    fn bit_flip_detected() {
        let mut bytes = sample_oracle().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            Oracle::<u64>::from_bytes(&bytes).unwrap_err(),
            SnapshotError::ChecksumMismatch
        ));
    }

    #[test]
    fn trailing_data_rejected() {
        let mut bytes = sample_oracle().to_bytes();
        bytes.push(0);
        assert!(matches!(
            Oracle::<u64>::from_bytes(&bytes).unwrap_err(),
            SnapshotError::TrailingData { .. }
        ));
    }

    #[test]
    fn garbage_rejected() {
        assert!(matches!(
            Oracle::<u64>::from_bytes(b"definitely not a snapshot at all").unwrap_err(),
            SnapshotError::BadMagic
        ));
        assert!(matches!(
            Oracle::<u64>::from_bytes(b"short").unwrap_err(),
            SnapshotError::Truncated { .. }
        ));
    }

    #[test]
    fn nonzero_diagonal_snapshot_rejected() {
        // Checksum-valid n = 2 snapshot claiming δ(0,0) = INF: per-cell
        // fields are fine, but the diagonal invariant must be enforced.
        let n = 2usize;
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.push(<u64 as PortableWeight>::TAG);
        buf.push(0);
        buf.extend_from_slice(&(n as u64).to_le_bytes());
        for d in [u64::INF, 1, 1, 0] {
            buf.extend_from_slice(&d.encode());
        }
        for s in [NO_SUCC, 0, 1, NO_SUCC] {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        let sum = fnv1a(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Oracle::<u64>::from_bytes(&buf).unwrap_err(),
            SnapshotError::Corrupt("nonzero diagonal distance")
        ));
    }

    #[test]
    fn cyclic_successor_snapshot_rejected() {
        // Hand-craft a checksum-valid n = 2 snapshot where node 0's
        // successor toward target 1 is node 0 itself: structurally valid
        // per-cell, but the path walk would never terminate.
        let n = 2usize;
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.push(<u64 as PortableWeight>::TAG);
        buf.push(0);
        buf.extend_from_slice(&(n as u64).to_le_bytes());
        for d in [0u64, 1, 1, 0] {
            buf.extend_from_slice(&d.encode());
        }
        // Target-major: toward 0: [NO_SUCC, 0]; toward 1: [0 (cycle!), NO_SUCC].
        for s in [NO_SUCC, 0, 0, NO_SUCC] {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        let sum = fnv1a(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Oracle::<u64>::from_bytes(&buf).unwrap_err(),
            SnapshotError::Corrupt("successor chain does not reach its target")
        ));
    }

    #[test]
    fn save_load_file_round_trip() {
        let o = sample_oracle();
        let path = std::env::temp_dir().join("congest_oracle_snapshot_test.bin");
        o.save(&path).unwrap();
        let o2 = Oracle::<u64>::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(o, o2);
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = Oracle::<u64>::load("/nonexistent/oracle.snap").unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)));
        assert!(std::error::Error::source(&err).is_some());
    }
}
