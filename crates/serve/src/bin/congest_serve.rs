//! `congest-serve` — the serving front-end as a process.
//!
//! Subcommands:
//!
//! - `make-snapshot <out> [--nodes N] [--edges M] [--seed S] [--max-weight W]
//!   [--format v1|v2] [--block-rows N] [--no-successors] [--from OLD]`
//!   builds a random connected graph, solves APSP, and saves the oracle
//!   snapshot (weight type `u64`). `--format v2` writes the blocked
//!   format the paged backend can serve out-of-core; `--no-successors`
//!   (v2 only) drops the successor plane and embeds the graph instead;
//!   `--from OLD` converts an existing snapshot instead of generating.
//! - `serve <snapshot> [--addr A] [--watch-ms N] [--window N] [--max-conns N]
//!   [--paged] [--resident-mb M]` serves the snapshot until
//!   SIGTERM/SIGINT, then drains in-flight requests, closes the
//!   listener, and exits 0 — the contract the CI smoke test checks.
//!   `--paged` serves a v2 snapshot out-of-core under a `--resident-mb`
//!   byte budget instead of loading it into RAM.
//! - `probe <addr> [--requests N] [--batch B]` connects (with retry, so
//!   it can race a starting server), pipelines query batches, verifies
//!   every response, and exits 0 on success.
//! - `health <addr>` sends one `Health` op and prints the server's
//!   self-report (generation, uptime, connections, shed counts, swap
//!   history); exits 0 when the server answers, 1 otherwise — fit for a
//!   liveness probe.

use congest_graph::generators::{gnm_connected, WeightDist};
use congest_graph::seq::apsp_dijkstra;
use congest_oracle::{Oracle, V2Config};
use congest_serve::proto::Status;
use congest_serve::{BackendMode, Client, Server, ServerConfig};
use std::time::{Duration, Instant};

#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static STOP: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_sig: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Installs SIGTERM (15) and SIGINT (2) handlers that set [`STOP`].
    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(15, handler);
            signal(2, handler);
        }
    }

    pub fn stopped() -> bool {
        STOP.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn stopped() -> bool {
        false
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: congest-serve <command>\n\
         \n\
         commands:\n\
         \x20 make-snapshot <out> [--nodes N] [--edges M] [--seed S] [--max-weight W]\n\
         \x20               [--format v1|v2] [--block-rows N] [--no-successors] [--from OLD]\n\
         \x20 serve <snapshot> [--addr A] [--watch-ms N] [--window N] [--max-conns N]\n\
         \x20                  [--paged] [--resident-mb M]\n\
         \x20 probe <addr> [--requests N] [--batch B] [--k-nearest]\n\
         \x20 health <addr>"
    );
    std::process::exit(2)
}

/// Flags that take no value — everything else consumes the next arg.
const BOOL_FLAGS: &[&str] = &["--paged", "--no-successors", "--k-nearest"];

/// Pulls `--key value` pairs out of `args`; returns (positional, lookup).
fn parse_flags(args: &[String]) -> (Vec<&str>, impl Fn(&str) -> Option<u64> + '_) {
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += if BOOL_FLAGS.contains(&args[i].as_str()) { 1 } else { 2 };
        } else {
            positional.push(args[i].as_str());
            i += 1;
        }
    }
    let lookup = move |key: &str| -> Option<u64> {
        let mut i = 0;
        while i + 1 < args.len() {
            if args[i] == format!("--{key}") {
                return args[i + 1].parse().ok();
            }
            i += 1;
        }
        None
    };
    (positional, lookup)
}

/// Whether the bare boolean flag `--key` appears in `args`.
fn flag_bool(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == &format!("--{key}"))
}

fn flag_str<'a>(args: &'a [String], key: &str) -> Option<&'a str> {
    args.windows(2).find(|w| w[0] == format!("--{key}")).map(|w| w[1].as_str())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let rest = &args[1..];
    let code = match cmd.as_str() {
        "make-snapshot" => make_snapshot(rest),
        "serve" => serve(rest),
        "probe" => probe(rest),
        "health" => health(rest),
        _ => usage(),
    };
    std::process::exit(code);
}

fn make_snapshot(args: &[String]) -> i32 {
    let (pos, flag) = parse_flags(args);
    let [out] = pos.as_slice() else { usage() };
    let format = flag_str(args, "format").unwrap_or("v1");
    if format != "v1" && format != "v2" {
        eprintln!("unknown --format {format} (expected v1 or v2)");
        return 2;
    }
    let no_succ = flag_bool(args, "no-successors");
    if no_succ && format != "v2" {
        eprintln!("--no-successors requires --format v2");
        return 2;
    }
    let block_rows = flag("block-rows").unwrap_or(64).clamp(1, u64::from(u32::MAX)) as u32;
    // Either convert an existing snapshot or generate a fresh one. A
    // converted snapshot has no graph to embed, so its successor plane
    // must ride along.
    let (oracle, graph, describe) = if let Some(from) = flag_str(args, "from") {
        if no_succ {
            eprintln!(
                "--no-successors cannot be combined with --from: converting a snapshot \
                       gives us no graph to embed for re-derivation"
            );
            return 2;
        }
        match Oracle::<u64>::load(from) {
            Ok(o) => (o, None, format!("converted from {from}")),
            Err(e) => {
                eprintln!("could not load {from}: {e}");
                return 1;
            }
        }
    } else {
        let n = flag("nodes").unwrap_or(256) as usize;
        let m = flag("edges").unwrap_or(4 * n as u64) as usize;
        let seed = flag("seed").unwrap_or(7);
        let max_w = flag("max-weight").unwrap_or(100);
        let g = gnm_connected(n, m, true, WeightDist::Uniform(1, max_w), seed);
        let oracle = Oracle::from_dist(&g, apsp_dijkstra(&g));
        (oracle, Some(g), format!("{n} nodes, {m} edges, seed {seed}"))
    };
    let result = if format == "v2" {
        oracle
            .save_v2(out, &V2Config { block_rows, drop_successors: no_succ, graph: graph.as_ref() })
    } else {
        oracle.save(out)
    };
    match result {
        Ok(()) => {
            println!("wrote {format} snapshot: {out} ({describe})");
            0
        }
        Err(e) => {
            eprintln!("snapshot save failed: {e}");
            1
        }
    }
}

fn serve(args: &[String]) -> i32 {
    let (pos, flag) = parse_flags(args);
    let [snapshot] = pos.as_slice() else { usage() };
    let addr = flag_str(args, "addr").unwrap_or("127.0.0.1:7464");
    let mut cfg = ServerConfig::default();
    if let Some(ms) = flag("watch-ms") {
        cfg.watch_interval = Some(Duration::from_millis(ms));
    }
    if let Some(w) = flag("window") {
        cfg.window = w as usize;
    }
    if let Some(c) = flag("max-conns") {
        cfg.max_connections = c as usize;
    }
    if flag_bool(args, "paged") {
        let resident_mb = flag("resident-mb").unwrap_or(64).max(1) as usize;
        cfg.backend = BackendMode::Paged { resident_bytes: resident_mb << 20 };
    }
    let handle = match Server::bind_snapshot::<u64>(addr, *snapshot, cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("failed to start server: {e}");
            return 1;
        }
    };
    println!("serving {snapshot} on {} (generation {})", handle.local_addr(), handle.generation());
    sig::install();
    while !sig::stopped() {
        std::thread::sleep(Duration::from_millis(50));
    }
    println!("signal received: draining in-flight requests");
    handle.shutdown();
    handle.join();
    println!("clean shutdown");
    0
}

fn health(args: &[String]) -> i32 {
    let (pos, _flag) = parse_flags(args);
    let [addr] = pos.as_slice() else { usage() };
    let mut client = match Client::<u64>::connect(*addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("could not connect to {addr}: {e}");
            return 1;
        }
    };
    if client.set_read_timeout(Some(Duration::from_secs(5))).is_err() {
        eprintln!("could not set read timeout");
        return 1;
    }
    match client.health() {
        Ok((gen, h)) => {
            println!("generation:      {gen}");
            println!("uptime:          {:.3}s", h.uptime_ms as f64 / 1000.0);
            println!("connections:     {}/{}", h.connections, h.max_connections);
            println!("shed busy:       {}", h.shed_busy);
            println!("shed overloaded: {}", h.shed_overloaded);
            println!("snapshot swaps:  {} ok, {} failed", h.swaps, h.swap_errors);
            match h.last_swap_error {
                Some(e) => println!("last swap error: {e}"),
                None => println!("last swap error: none"),
            }
            0
        }
        Err(e) => {
            eprintln!("health probe failed: {e}");
            1
        }
    }
}

fn probe(args: &[String]) -> i32 {
    let (pos, flag) = parse_flags(args);
    let [addr] = pos.as_slice() else { usage() };
    let requests = flag("requests").unwrap_or(256);
    let batch_size = flag("batch").unwrap_or(32).max(1);

    // The smoke test starts the server and the probe together; retry the
    // connect briefly instead of racing.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut client = loop {
        match Client::<u64>::connect(*addr) {
            Ok(c) => break c,
            Err(e) => {
                if Instant::now() >= deadline {
                    eprintln!("could not connect to {addr}: {e}");
                    return 1;
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    };
    if client.set_read_timeout(Some(Duration::from_secs(10))).is_err() {
        eprintln!("could not set read timeout");
        return 1;
    }
    let n = client.n() as u32;
    if n < 2 {
        eprintln!("server snapshot has fewer than 2 nodes");
        return 1;
    }
    let gen = match client.ping() {
        Ok(gen) => gen,
        Err(e) => {
            eprintln!("ping failed: {e}");
            return 1;
        }
    };

    let knn = flag_bool(args, "k-nearest");
    let mut answered = 0u64;
    let mut x = 0x9e37_79b9u64; // cheap deterministic pair stream
    while answered < requests {
        let mut batch = client.batch();
        while (batch.len() as u64) < batch_size && answered + (batch.len() as u64) < requests {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = (x >> 33) as u32 % n;
            let v = (x >> 13) as u32 % n;
            if knn && batch.len() % 3 == 2 {
                batch.k_nearest(u, 4.min(n - 1));
            } else if batch.len() % 2 == 0 {
                batch.dist(u, v);
            } else {
                batch.path(u, v);
            }
        }
        let count = batch.len() as u64;
        match batch.send() {
            Ok(replies) => {
                for r in &replies {
                    if !matches!(r.status, Status::Ok | Status::Unreachable) {
                        eprintln!("request {} answered with {:?}", r.id, r.status);
                        return 1;
                    }
                }
                answered += count;
            }
            Err(e) => {
                eprintln!("batch failed: {e}");
                return 1;
            }
        }
    }
    println!("probe ok: {answered} requests answered (n={n}, generation {gen})");
    0
}
