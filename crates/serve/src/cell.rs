//! The generation cell: the zero-downtime snapshot-swap primitive.
//!
//! A [`GenerationCell`] holds the live `Arc<QueryEngine>` together with a
//! monotonically increasing generation number. Readers ([`load`]) take a
//! consistent `(engine, generation)` pair; writers ([`swap`]) publish a
//! new engine and bump the generation atomically with respect to every
//! reader. In-flight queries keep the `Arc` they loaded, so a swap never
//! invalidates or drops work already dispatched — the old snapshot is
//! freed when its last batch finishes.
//!
//! [`load`]: GenerationCell::load
//! [`swap`]: GenerationCell::swap

use congest_graph::Weight;
use congest_oracle::QueryEngine;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One live snapshot generation: the serving engine plus its number.
#[derive(Clone)]
pub struct Generation<W> {
    /// The engine answering queries for this generation.
    pub engine: Arc<QueryEngine<W>>,
    /// Monotonic generation number (starts at 1).
    pub number: u64,
}

/// Atomically swappable `(engine, generation)` pair.
///
/// Reads are a shared-lock clone of one `Arc` — nanoseconds, no
/// allocation — and the server takes one per **batch**, so every
/// response in a batch is answered by a single coherent snapshot (no
/// torn reads across a swap even mid-frame).
pub struct GenerationCell<W> {
    current: RwLock<Generation<W>>,
    /// Lock-free mirror of the current generation number, for gauges and
    /// handshakes that do not need the engine itself.
    number: AtomicU64,
}

impl<W: Weight> GenerationCell<W> {
    /// Wraps the initial engine as generation 1.
    #[must_use]
    pub fn new(engine: Arc<QueryEngine<W>>) -> Self {
        GenerationCell {
            current: RwLock::new(Generation { engine, number: 1 }),
            number: AtomicU64::new(1),
        }
    }

    /// The current `(engine, generation)` pair — consistent: the number
    /// always matches the engine it was published with.
    ///
    /// # Panics
    /// Panics only if a writer panicked mid-swap (poisoned lock).
    #[must_use]
    pub fn load(&self) -> Generation<W> {
        self.current.read().expect("generation cell poisoned").clone()
    }

    /// Publishes `engine` as the next generation and returns its number.
    /// Readers that already hold the previous generation keep serving
    /// from it until their batch completes.
    ///
    /// # Panics
    /// Panics only if a writer panicked mid-swap (poisoned lock).
    pub fn swap(&self, engine: Arc<QueryEngine<W>>) -> u64 {
        let mut cur = self.current.write().expect("generation cell poisoned");
        let number = cur.number + 1;
        *cur = Generation { engine, number };
        self.number.store(number, Ordering::Release);
        number
    }

    /// The current generation number, without touching the engine lock.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.number.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{gnm_connected, WeightDist};
    use congest_graph::seq::apsp_dijkstra;
    use congest_oracle::{EngineConfig, Oracle};

    fn engine(seed: u64) -> Arc<QueryEngine<u64>> {
        let g = gnm_connected(8, 16, true, WeightDist::Uniform(1, 9), seed);
        Arc::new(QueryEngine::new(
            Arc::new(Oracle::from_dist(&g, apsp_dijkstra(&g))),
            EngineConfig::default(),
        ))
    }

    #[test]
    fn swap_bumps_generation_and_keeps_old_readers_alive() {
        let cell = GenerationCell::new(engine(1));
        let old = cell.load();
        assert_eq!(old.number, 1);
        assert_eq!(cell.generation(), 1);
        let n2 = cell.swap(engine(2));
        assert_eq!(n2, 2);
        assert_eq!(cell.generation(), 2);
        // The pre-swap reader still serves its snapshot.
        assert!(old.engine.dist(0, 1).is_ok());
        let new = cell.load();
        assert_eq!(new.number, 2);
        assert!(!Arc::ptr_eq(&old.engine, &new.engine));
    }

    #[test]
    fn concurrent_loads_see_consistent_pairs() {
        let cell = Arc::new(GenerationCell::new(engine(1)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let g = cell.load();
                        // A loaded pair is internally consistent and its
                        // number never exceeds the published counter.
                        assert!(g.number <= cell.generation());
                        assert!(g.engine.dist(0, 1).is_ok());
                    }
                });
            }
            for s in 0..50 {
                cell.swap(engine(s));
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(cell.generation(), 51);
    }
}
