//! Deterministic network chaos: a seeded in-process TCP proxy that
//! injects faults between a client and a server on a reproducible
//! schedule.
//!
//! This is the serving-path sibling of `congest_sim::fault`: where the
//! simulator's fault plane hashes `(seed, channel, round, msg)` at the
//! message-delivery boundary, the chaos proxy hashes
//! `(seed, connection, direction, byte_offset)` at the TCP byte
//! boundary. Every fault decision is a pure splitmix64 function of those
//! coordinates — no RNG state, no wall clock — so a chaotic run is
//! exactly reproducible from its [`ChaosSpec`], independent of read
//! chunking, thread scheduling, or how many pump threads the proxy runs.
//!
//! Fault classes (each with an independent parts-per-million rate):
//!
//! * **Delay** — forwarding pauses for a deterministic duration before
//!   the faulted byte (models congestion/jitter; surfaces client
//!   deadline handling).
//! * **Bit flip** — one bit of the faulted byte is inverted (models
//!   payload corruption; surfaces decoder hardening: the peer must
//!   answer with a typed error or close, never serve a wrong answer —
//!   corruption inside a length prefix is the nastiest case and occurs
//!   naturally since offsets are uniform).
//! * **Segmentation** — the faulted byte is written in its own `write`
//!   syscall with `TCP_NODELAY`, producing pathological 1-byte TCP
//!   segments that split frames (and length prefixes) at arbitrary
//!   points (surfaces partial-read handling).
//! * **Truncation** — bytes before the faulted offset are delivered,
//!   then the connection closes (models a mid-frame FIN; surfaces
//!   partial-frame drain logic).
//! * **Reset** — the connection closes immediately, discarding even the
//!   bytes buffered in the current chunk (models an RST / dying peer;
//!   surfaces reconnect logic).
//!
//! The proxy records every decision that took effect as a
//! [`TraceEvent`]; [`ChaosProxy::trace`] returns them in canonical
//! `(conn, direction, offset)` order, and the determinism suite asserts
//! the trace is byte-identical across runs and chunkings.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// splitmix64 finalizer — the same stateless mixing core
/// `congest_sim::fault` uses (kept as a local copy so the serving crate
/// stays independent of the simulator).
#[inline]
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Mixes a salted seed with the decision coordinates.
#[inline]
fn mix(seed: u64, conn: u64, dir: u64, offset: u64) -> u64 {
    splitmix(splitmix(splitmix(seed ^ conn).wrapping_add(dir)).wrapping_add(offset))
}

/// `true` with probability `ppm / 1_000_000` under the hash `h`.
#[inline]
fn hits(h: u64, ppm: u32) -> bool {
    ppm > 0 && h % 1_000_000 < u64::from(ppm)
}

const DELAY_SALT: u64 = 0xDE1A_55B1_7C29_E04F;
const FLIP_SALT: u64 = 0xB1F1_0D3E_92A7_64C5;
const SEGMENT_SALT: u64 = 0x5E61_4EA8_0F3D_B927;
const TRUNCATE_SALT: u64 = 0x7210_CA7E_D45B_318D;
const RESET_SALT: u64 = 0x2E5E_7D90_63FA_8B41;

/// Which way a faulted byte was travelling through the proxy.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// Bytes from the client toward the server (requests).
    ClientToServer,
    /// Bytes from the server toward the client (responses).
    ServerToClient,
}

/// One fault decision that applies to a specific byte offset.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChaosFault {
    /// Forwarding pauses for `ns` nanoseconds before this byte.
    Delay {
        /// Deterministic pause length.
        ns: u64,
    },
    /// Bit `bit` (0–7) of this byte is inverted before delivery.
    BitFlip {
        /// Which bit flips.
        bit: u8,
    },
    /// This byte is delivered in its own 1-byte `write` syscall.
    Segment,
    /// Bytes before this offset are delivered, then the connection
    /// closes (the byte at this offset and everything after is lost).
    Truncate,
    /// The connection closes immediately; bytes at and after this
    /// offset — plus anything still buffered — are lost.
    Reset,
}

/// A seeded chaos model: independent parts-per-million rates per fault
/// class, applied per byte of each proxied direction. `Copy` by design,
/// mirroring `congest_sim::FaultSpec`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Root seed of every fault decision.
    pub seed: u64,
    /// Per-byte delay probability, in parts per million.
    pub delay_ppm: u32,
    /// Upper bound on one injected delay, nanoseconds (the actual pause
    /// is hash-derived in `1..=max_delay_ns`); clamped to at least 1.
    pub max_delay_ns: u64,
    /// Per-byte bit-flip probability, in parts per million.
    pub bitflip_ppm: u32,
    /// Per-byte 1-byte-segment probability, in parts per million.
    pub segment_ppm: u32,
    /// Per-byte truncation probability, in parts per million.
    pub truncate_ppm: u32,
    /// Per-byte connection-reset probability, in parts per million.
    pub reset_ppm: u32,
}

impl ChaosSpec {
    /// A spec with every rate zero (injects nothing until a rate is set).
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        ChaosSpec {
            seed,
            delay_ppm: 0,
            max_delay_ns: 1_000_000,
            bitflip_ppm: 0,
            segment_ppm: 0,
            truncate_ppm: 0,
            reset_ppm: 0,
        }
    }

    /// Sets the per-byte delay rate and the per-delay upper bound.
    #[must_use]
    pub fn delays(mut self, ppm: u32, max: Duration) -> Self {
        self.delay_ppm = ppm;
        self.max_delay_ns = u64::try_from(max.as_nanos()).unwrap_or(u64::MAX).max(1);
        self
    }

    /// Sets the per-byte bit-flip rate.
    #[must_use]
    pub fn bitflips(mut self, ppm: u32) -> Self {
        self.bitflip_ppm = ppm;
        self
    }

    /// Sets the per-byte pathological-segmentation rate.
    #[must_use]
    pub fn segmentation(mut self, ppm: u32) -> Self {
        self.segment_ppm = ppm;
        self
    }

    /// Sets the per-byte truncation rate.
    #[must_use]
    pub fn truncation(mut self, ppm: u32) -> Self {
        self.truncate_ppm = ppm;
        self
    }

    /// Sets the per-byte connection-reset rate.
    #[must_use]
    pub fn resets(mut self, ppm: u32) -> Self {
        self.reset_ppm = ppm;
        self
    }

    /// A spec with the same rates under an independent seed.
    #[must_use]
    pub fn reseeded(self, salt: u64) -> Self {
        ChaosSpec { seed: splitmix(self.seed ^ salt), ..self }
    }

    /// `true` iff any rate is non-zero. An all-zero spec forwards bytes
    /// untouched (the proxy becomes a plain TCP relay).
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.delay_ppm > 0
            || self.bitflip_ppm > 0
            || self.segment_ppm > 0
            || self.truncate_ppm > 0
            || self.reset_ppm > 0
    }

    /// The fate of the byte at `offset` of direction `dir` on connection
    /// `conn` — a **pure function** of its arguments, which is the whole
    /// determinism contract: the proxy's behavior cannot depend on read
    /// chunking or thread scheduling because every decision is made per
    /// byte offset.
    ///
    /// At most one fault applies per byte; classes are checked in fixed
    /// severity order (reset, truncate, delay, bit flip, segment).
    #[must_use]
    pub fn fault_at(&self, conn: u64, dir: Direction, offset: u64) -> Option<ChaosFault> {
        let d = dir as u64;
        if hits(mix(self.seed ^ RESET_SALT, conn, d, offset), self.reset_ppm) {
            return Some(ChaosFault::Reset);
        }
        if hits(mix(self.seed ^ TRUNCATE_SALT, conn, d, offset), self.truncate_ppm) {
            return Some(ChaosFault::Truncate);
        }
        let dh = mix(self.seed ^ DELAY_SALT, conn, d, offset);
        if hits(dh, self.delay_ppm) {
            return Some(ChaosFault::Delay { ns: 1 + splitmix(dh) % self.max_delay_ns.max(1) });
        }
        let fh = mix(self.seed ^ FLIP_SALT, conn, d, offset);
        if hits(fh, self.bitflip_ppm) {
            return Some(ChaosFault::BitFlip { bit: (splitmix(fh) % 8) as u8 });
        }
        if hits(mix(self.seed ^ SEGMENT_SALT, conn, d, offset), self.segment_ppm) {
            return Some(ChaosFault::Segment);
        }
        None
    }

    /// The full fault schedule for the first `len` bytes of one
    /// direction of one connection: every decision that would take
    /// effect, in offset order, stopping after a terminal fault
    /// (truncate/reset) because no byte past it is ever forwarded.
    ///
    /// This is what a live proxy's [`trace`](ChaosProxy::trace) for that
    /// stream must equal — the determinism suite diffs the two.
    #[must_use]
    pub fn schedule(&self, conn: u64, dir: Direction, len: u64) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        for offset in 0..len {
            if let Some(fault) = self.fault_at(conn, dir, offset) {
                events.push(TraceEvent { conn, dir, offset, fault });
                if matches!(fault, ChaosFault::Truncate | ChaosFault::Reset) {
                    break;
                }
            }
        }
        events
    }
}

/// One fault that took effect, as recorded by a live proxy.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceEvent {
    /// Connection index (0-based, in accept order).
    pub conn: u64,
    /// Direction the faulted byte was travelling.
    pub dir: Direction,
    /// Byte offset within that direction's stream.
    pub offset: u64,
    /// What happened.
    pub fault: ChaosFault,
}

struct ProxyShared {
    spec: ChaosSpec,
    upstream: SocketAddr,
    addr: SocketAddr,
    shutdown: AtomicBool,
    next_conn: AtomicU64,
    trace: Mutex<Vec<TraceEvent>>,
    idle_poll: Duration,
    pumps: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// A running chaos proxy: accepts on its own loopback port and relays
/// every connection to `upstream`, applying the [`ChaosSpec`] to both
/// directions. Point a client at [`local_addr`](ChaosProxy::local_addr)
/// instead of the server and the whole serving path runs under chaos.
///
/// Connections are numbered in accept order, so a test that connects
/// sequentially gets reproducible per-connection fault schedules.
pub struct ChaosProxy {
    shared: Arc<ProxyShared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds a fresh loopback port and starts relaying to `upstream`.
    ///
    /// # Errors
    /// Propagates listener bind/configure failures.
    pub fn start(upstream: SocketAddr, spec: ChaosSpec) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            spec,
            upstream,
            addr,
            shutdown: AtomicBool::new(false),
            next_conn: AtomicU64::new(0),
            trace: Mutex::new(Vec::new()),
            idle_poll: Duration::from_millis(5),
            pumps: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("chaos-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(ChaosProxy { shared, acceptor: Some(acceptor) })
    }

    /// The proxy's listening address (connect clients here).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Number of connections accepted so far.
    #[must_use]
    pub fn connections(&self) -> u64 {
        self.shared.next_conn.load(Ordering::SeqCst)
    }

    /// Every fault that has taken effect, in canonical
    /// `(conn, direction, offset)` order — independent of the thread
    /// interleaving that recorded it.
    #[must_use]
    pub fn trace(&self) -> Vec<TraceEvent> {
        let mut t = self.shared.trace.lock().expect("chaos trace poisoned").clone();
        t.sort_unstable();
        t
    }

    /// Asks the acceptor and every pump to stop.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Stops the proxy and waits for every thread; returns the final
    /// fault trace in canonical order.
    pub fn join(mut self) -> Vec<TraceEvent> {
        self.shutdown();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        let pumps = std::mem::take(&mut *self.shared.pumps.lock().expect("pump list poisoned"));
        for p in pumps {
            let _ = p.join();
        }
        self.trace()
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ProxyShared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let client = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(shared.idle_poll);
                continue;
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
        };
        let conn = shared.next_conn.fetch_add(1, Ordering::SeqCst);
        // The accepted stream may inherit the listener's nonblocking
        // flag; pumps pace themselves with read timeouts instead.
        if client.set_nonblocking(false).is_err() {
            continue;
        }
        let Ok(server) = TcpStream::connect(shared.upstream) else {
            let _ = client.shutdown(Shutdown::Both);
            continue;
        };
        // NODELAY on both legs so injected 1-byte segments actually hit
        // the wire as separate reads on the far side.
        let _ = client.set_nodelay(true);
        let _ = server.set_nodelay(true);
        let (Ok(client2), Ok(server2)) = (client.try_clone(), server.try_clone()) else {
            continue;
        };
        let up = spawn_pump(shared, conn, Direction::ClientToServer, client, server);
        let down = spawn_pump(shared, conn, Direction::ServerToClient, server2, client2);
        let mut pumps = shared.pumps.lock().expect("pump list poisoned");
        pumps.retain(|p| !p.is_finished());
        pumps.extend([up, down].into_iter().flatten());
    }
}

fn spawn_pump(
    shared: &Arc<ProxyShared>,
    conn: u64,
    dir: Direction,
    src: TcpStream,
    dst: TcpStream,
) -> Option<std::thread::JoinHandle<()>> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("chaos-pump-{conn}"))
        .spawn(move || pump(&shared, conn, dir, src, dst))
        .ok()
}

/// Relays one direction of one connection byte-by-byte under the spec.
/// Exits on EOF, peer error, terminal fault, or proxy shutdown; always
/// leaves both streams shut down so the opposite pump exits too (no
/// half-open connections leak past a fault).
fn pump(shared: &ProxyShared, conn: u64, dir: Direction, mut src: TcpStream, mut dst: TcpStream) {
    let _ = src.set_read_timeout(Some(shared.idle_poll));
    let spec = &shared.spec;
    let mut offset = 0u64;
    let mut scratch = [0u8; 16 * 1024];
    let record = |event: TraceEvent| {
        shared.trace.lock().expect("chaos trace poisoned").push(event);
    };
    let close_both = |src: &TcpStream, dst: &TcpStream| {
        let _ = src.shutdown(Shutdown::Both);
        let _ = dst.shutdown(Shutdown::Both);
    };
    loop {
        let k = match src.read(&mut scratch) {
            Ok(0) => {
                // Clean EOF: propagate the half-close downstream.
                let _ = dst.shutdown(Shutdown::Write);
                return;
            }
            Ok(k) => k,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    close_both(&src, &dst);
                    return;
                }
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                close_both(&src, &dst);
                return;
            }
        };
        let chunk = &mut scratch[..k];
        // Scan the chunk byte-by-byte: contiguous unfaulted runs are
        // forwarded in one write; each faulted byte is handled at its
        // exact offset so behavior is independent of how the OS chunked
        // the stream into reads.
        let mut run_start = 0usize;
        let mut i = 0usize;
        while i < k {
            let Some(fault) = spec.fault_at(conn, dir, offset + i as u64) else {
                i += 1;
                continue;
            };
            let at = offset + i as u64;
            match fault {
                ChaosFault::Reset => {
                    // Even the bytes already scanned in this chunk are
                    // discarded — an RST loses buffered data.
                    record(TraceEvent { conn, dir, offset: at, fault });
                    close_both(&src, &dst);
                    return;
                }
                ChaosFault::Truncate => {
                    // The prefix is delivered, then the stream dies.
                    record(TraceEvent { conn, dir, offset: at, fault });
                    let _ = dst.write_all(&chunk[run_start..i]);
                    let _ = dst.flush();
                    close_both(&src, &dst);
                    return;
                }
                ChaosFault::Delay { ns } => {
                    record(TraceEvent { conn, dir, offset: at, fault });
                    if dst.write_all(&chunk[run_start..i]).is_err() {
                        close_both(&src, &dst);
                        return;
                    }
                    std::thread::sleep(Duration::from_nanos(ns));
                    run_start = i;
                    i += 1;
                }
                ChaosFault::BitFlip { bit } => {
                    record(TraceEvent { conn, dir, offset: at, fault });
                    chunk[i] ^= 1 << bit;
                    i += 1;
                }
                ChaosFault::Segment => {
                    record(TraceEvent { conn, dir, offset: at, fault });
                    if dst.write_all(&chunk[run_start..i]).is_err()
                        || dst.write_all(&chunk[i..=i]).is_err()
                        || dst.flush().is_err()
                    {
                        close_both(&src, &dst);
                        return;
                    }
                    i += 1;
                    run_start = i;
                }
            }
        }
        if dst.write_all(&chunk[run_start..k]).is_err() {
            close_both(&src, &dst);
            return;
        }
        offset += k as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_functions() {
        let spec = ChaosSpec::seeded(42)
            .delays(50_000, Duration::from_micros(10))
            .bitflips(50_000)
            .segmentation(50_000)
            .truncation(10_000)
            .resets(10_000);
        for offset in 0..2_000 {
            let a = spec.fault_at(3, Direction::ClientToServer, offset);
            let b = spec.fault_at(3, Direction::ClientToServer, offset);
            assert_eq!(a, b, "decision must not depend on evaluation order");
        }
    }

    #[test]
    fn directions_and_connections_are_independent() {
        let spec = ChaosSpec::seeded(7).bitflips(500_000);
        let differs_dir = (0..256).any(|o| {
            spec.fault_at(0, Direction::ClientToServer, o)
                != spec.fault_at(0, Direction::ServerToClient, o)
        });
        let differs_conn = (0..256).any(|o| {
            spec.fault_at(0, Direction::ClientToServer, o)
                != spec.fault_at(1, Direction::ClientToServer, o)
        });
        assert!(differs_dir, "directions must draw independent schedules");
        assert!(differs_conn, "connections must draw independent schedules");
    }

    #[test]
    fn rates_are_roughly_respected() {
        let spec = ChaosSpec::seeded(9).bitflips(250_000);
        let hits = (0..4_000u64)
            .filter(|&o| spec.fault_at(0, Direction::ServerToClient, o).is_some())
            .count();
        let rate = hits as f64 / 4_000.0;
        assert!((0.2..0.3).contains(&rate), "flip rate {rate} far from 0.25");
    }

    #[test]
    fn zero_spec_is_inert() {
        let spec = ChaosSpec::seeded(123);
        assert!(!spec.is_active());
        for o in 0..4_000 {
            assert_eq!(spec.fault_at(0, Direction::ClientToServer, o), None);
        }
        assert!(spec.schedule(0, Direction::ClientToServer, 4_000).is_empty());
    }

    #[test]
    fn schedule_stops_at_terminal_faults() {
        let spec = ChaosSpec::seeded(5).resets(20_000).truncation(20_000).bitflips(100_000);
        let events = spec.schedule(2, Direction::ClientToServer, 1 << 16);
        assert!(!events.is_empty(), "2% terminal rates must hit within 64 KiB");
        for e in &events[..events.len() - 1] {
            assert!(
                !matches!(e.fault, ChaosFault::Truncate | ChaosFault::Reset),
                "terminal fault not at end of schedule: {events:?}"
            );
        }
        assert!(matches!(
            events.last().expect("nonempty").fault,
            ChaosFault::Truncate | ChaosFault::Reset
        ));
    }

    #[test]
    fn reseeded_changes_decisions() {
        let a = ChaosSpec::seeded(1).bitflips(500_000);
        let b = a.reseeded(1);
        let differs = (0..256).any(|o| {
            a.fault_at(0, Direction::ClientToServer, o)
                != b.fault_at(0, Direction::ClientToServer, o)
        });
        assert!(differs, "reseeding must produce an independent schedule");
    }

    #[test]
    fn inert_proxy_relays_bytes_exactly() {
        // Echo upstream: whatever arrives is written straight back.
        let upstream = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let up_addr = upstream.local_addr().expect("addr");
        let echo = std::thread::spawn(move || {
            let (mut s, _) = upstream.accept().expect("accept");
            let mut buf = [0u8; 1024];
            loop {
                match s.read(&mut buf) {
                    Ok(0) | Err(_) => return,
                    Ok(k) => {
                        if s.write_all(&buf[..k]).is_err() {
                            return;
                        }
                    }
                }
            }
        });
        let proxy = ChaosProxy::start(up_addr, ChaosSpec::seeded(0)).expect("proxy");
        let mut c = TcpStream::connect(proxy.local_addr()).expect("connect");
        let payload: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        c.write_all(&payload).expect("write");
        let mut back = vec![0u8; payload.len()];
        c.read_exact(&mut back).expect("read");
        assert_eq!(back, payload, "an inert spec must relay bytes untouched");
        drop(c);
        assert!(proxy.join().is_empty(), "an inert spec must record no faults");
        echo.join().expect("echo thread");
    }
}
