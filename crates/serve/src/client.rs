//! Blocking client for the serving front-end.
//!
//! [`Client`] speaks the batched binary protocol: single-query helpers
//! ([`dist`](Client::dist), [`path`](Client::path), …) do one round
//! trip each, while [`batch`](Client::batch) pipelines any mix of
//! requests into one write and drains all responses with large reads —
//! the shape the server is optimized for and the one the loopback
//! bench measures.

use crate::proto::{self, HelloStatus, ProtocolError, Request, ServerHello, Status};
use congest_graph::NodeId;
use congest_oracle::PortableWeight;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, unexpected EOF).
    Io(std::io::Error),
    /// The server sent bytes that do not parse as the protocol.
    Protocol(ProtocolError),
    /// The server refused the connection at the handshake.
    Refused(HelloStatus),
    /// The server answered a request with a non-success status
    /// (backpressure [`Status::Busy`], [`Status::NodeOutOfRange`], …).
    Server(Status),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client I/O error: {e}"),
            ClientError::Protocol(e) => write!(f, "client protocol error: {e}"),
            ClientError::Refused(s) => write!(f, "server refused the handshake: {s:?}"),
            ClientError::Server(s) => write!(f, "server answered with status {s:?}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// The decoded body of one response, shaped by the request that earned it.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplyBody<W> {
    /// No body (non-`Ok` statuses, and `Ok` answers to Ping/Reload).
    None,
    /// A Dist answer.
    Dist(W),
    /// A Path answer (the `u → v` vertex walk).
    Path(Vec<NodeId>),
    /// A KNearest answer.
    KNearest(Vec<(NodeId, W)>),
}

/// One response from a pipelined batch, in the order requests were added.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply<W> {
    /// Echoed request id.
    pub id: u32,
    /// Outcome.
    pub status: Status,
    /// Snapshot generation that answered.
    pub generation: u64,
    /// Decoded body (present only on `Ok` query answers).
    pub body: ReplyBody<W>,
}

/// Read timeout [`Client::connect`] applies around the handshake, so a
/// server that accepts but never says hello yields a timeout error
/// instead of blocking the client forever.
pub const DEFAULT_HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// A blocking connection to a `congest-serve` server, generic over the
/// weight type the server must be serving (verified at the handshake).
pub struct Client<W> {
    stream: TcpStream,
    hello: ServerHello,
    /// Bytes read but not yet consumed as frames.
    inbuf: Vec<u8>,
    next_id: u32,
    _weight: std::marker::PhantomData<W>,
}

/// What each pending request in a batch expects back, so the body can
/// be decoded without guessing.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Expect {
    Dist,
    Path,
    KNearest,
    Plain,
}

/// A pipelined batch under construction; add requests, then
/// [`send`](Batch::send) them as one write.
pub struct Batch<'a, W> {
    client: &'a mut Client<W>,
    wire: Vec<u8>,
    expect: Vec<(u32, Expect)>,
}

impl<W: PortableWeight> Client<W> {
    /// Connects and performs the handshake, bounding the hello exchange
    /// by [`DEFAULT_HANDSHAKE_TIMEOUT`].
    ///
    /// # Errors
    /// [`ClientError::Refused`] when the server rejects the handshake
    /// (version/weight mismatch, at capacity); [`ClientError::Protocol`]
    /// when the peer is not a congest-serve server at all;
    /// [`ClientError::Io`] when the server stays silent past the
    /// handshake timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client<W>, ClientError> {
        Self::connect_with_timeout(addr, DEFAULT_HANDSHAKE_TIMEOUT)
    }

    /// [`connect`](Client::connect) with an explicit (nonzero) handshake
    /// timeout. Subsequent calls block without a timeout until
    /// [`set_read_timeout`](Client::set_read_timeout) says otherwise.
    ///
    /// # Errors
    /// As [`connect`](Client::connect).
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        handshake_timeout: Duration,
    ) -> Result<Client<W>, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // The hello read happens before the caller gets a handle to
        // configure timeouts on, so bound it here: a server that
        // accepts and goes silent must not hang the client.
        stream.set_read_timeout(Some(handshake_timeout))?;
        stream.write_all(&proto::encode_client_hello(W::TAG))?;
        let mut reply = [0u8; proto::SERVER_HELLO_LEN];
        stream.read_exact(&mut reply)?;
        stream.set_read_timeout(None)?;
        let hello = proto::decode_server_hello(&reply)?;
        if hello.status != HelloStatus::Ok {
            return Err(ClientError::Refused(hello.status));
        }
        if hello.weight_tag != W::TAG {
            return Err(ClientError::Protocol(ProtocolError::WeightTypeMismatch {
                found: hello.weight_tag,
                expected: W::TAG,
            }));
        }
        Ok(Client {
            stream,
            hello,
            inbuf: Vec::with_capacity(16 * 1024),
            next_id: 1, // id 0 is CONNECTION_ID, reserved for the server
            _weight: std::marker::PhantomData,
        })
    }

    /// Node count of the generation that was live at connect time.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.hello.n
    }

    /// Generation that was live at connect time (responses carry the
    /// current one).
    #[must_use]
    pub fn generation_at_connect(&self) -> u64 {
        self.hello.generation
    }

    /// The server's per-batch in-flight window: pipelining more requests
    /// than this into one batch earns [`Status::Busy`] for the excess.
    #[must_use]
    pub fn window(&self) -> u32 {
        self.hello.window
    }

    /// Applies a read timeout to subsequent calls (`None` blocks forever).
    ///
    /// # Errors
    /// Propagates the socket option failure.
    pub fn set_read_timeout(&mut self, t: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(t)?;
        Ok(())
    }

    /// Starts a pipelined batch.
    pub fn batch(&mut self) -> Batch<'_, W> {
        Batch { client: self, wire: Vec::with_capacity(4 * 1024), expect: Vec::new() }
    }

    /// `δ(u, v)` in one round trip; `Ok(None)` when unreachable.
    ///
    /// # Errors
    /// [`ClientError::Server`] on non-success statuses, plus I/O and
    /// protocol failures.
    pub fn dist(&mut self, u: NodeId, v: NodeId) -> Result<Option<W>, ClientError> {
        let mut b = self.batch();
        b.dist(u, v);
        let reply = b.send()?.pop().expect("one reply");
        match (reply.status, reply.body) {
            (Status::Ok, ReplyBody::Dist(w)) => Ok(Some(w)),
            (Status::Unreachable, _) => Ok(None),
            (s, _) => Err(ClientError::Server(s)),
        }
    }

    /// Shortest `u → v` walk in one round trip; `Ok(None)` when unreachable.
    ///
    /// # Errors
    /// [`ClientError::Server`] on non-success statuses, plus I/O and
    /// protocol failures.
    pub fn path(&mut self, u: NodeId, v: NodeId) -> Result<Option<Vec<NodeId>>, ClientError> {
        let mut b = self.batch();
        b.path(u, v);
        let reply = b.send()?.pop().expect("one reply");
        match (reply.status, reply.body) {
            (Status::Ok, ReplyBody::Path(p)) => Ok(Some(p)),
            (Status::Unreachable, _) => Ok(None),
            (s, _) => Err(ClientError::Server(s)),
        }
    }

    /// The `k` nearest other nodes to `u`, in one round trip.
    ///
    /// # Errors
    /// [`ClientError::Server`] on non-success statuses, plus I/O and
    /// protocol failures.
    pub fn k_nearest(&mut self, u: NodeId, k: u32) -> Result<Vec<(NodeId, W)>, ClientError> {
        let mut b = self.batch();
        b.k_nearest(u, k);
        let reply = b.send()?.pop().expect("one reply");
        match (reply.status, reply.body) {
            (Status::Ok, ReplyBody::KNearest(items)) => Ok(items),
            (s, _) => Err(ClientError::Server(s)),
        }
    }

    /// Round-trip no-op; returns the generation currently serving.
    ///
    /// # Errors
    /// I/O and protocol failures.
    pub fn ping(&mut self) -> Result<u64, ClientError> {
        let mut b = self.batch();
        b.ping();
        let reply = b.send()?.pop().expect("one reply");
        match reply.status {
            Status::Ok => Ok(reply.generation),
            s => Err(ClientError::Server(s)),
        }
    }

    /// Asks the server to reload its snapshot file; returns the new
    /// generation on success.
    ///
    /// # Errors
    /// [`ClientError::Server`] with [`Status::NotSupported`] when the
    /// server has no snapshot file, [`Status::Internal`] when the reload
    /// failed (the old generation keeps serving).
    pub fn reload(&mut self) -> Result<u64, ClientError> {
        let mut b = self.batch();
        b.reload();
        let reply = b.send()?.pop().expect("one reply");
        match reply.status {
            Status::Ok => Ok(reply.generation),
            s => Err(ClientError::Server(s)),
        }
    }

    /// Reads one complete frame, growing `inbuf` with large reads.
    fn read_frame(&mut self) -> Result<Vec<u8>, ClientError> {
        let mut scratch = [0u8; 16 * 1024];
        loop {
            if let Some((payload, consumed)) =
                proto::decode_frame(&self.inbuf, self.hello.max_frame_len)?
            {
                let payload = payload.to_vec();
                self.inbuf.drain(..consumed);
                return Ok(payload);
            }
            let k = self.stream.read(&mut scratch)?;
            if k == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed mid-response",
                )));
            }
            self.inbuf.extend_from_slice(&scratch[..k]);
        }
    }
}

impl<W: PortableWeight> Batch<'_, W> {
    fn push(&mut self, expect: Expect, build: impl FnOnce(u32) -> Request) -> u32 {
        let id = self.client.next_id;
        self.client.next_id = self.client.next_id.wrapping_add(1).max(1);
        proto::encode_request(&mut self.wire, &build(id));
        self.expect.push((id, expect));
        id
    }

    /// Queues a Dist request; returns its id.
    pub fn dist(&mut self, u: NodeId, v: NodeId) -> u32 {
        self.push(Expect::Dist, |id| Request::Dist { id, u, v })
    }

    /// Queues a Path request; returns its id.
    pub fn path(&mut self, u: NodeId, v: NodeId) -> u32 {
        self.push(Expect::Path, |id| Request::Path { id, u, v })
    }

    /// Queues a KNearest request; returns its id.
    pub fn k_nearest(&mut self, u: NodeId, k: u32) -> u32 {
        self.push(Expect::KNearest, |id| Request::KNearest { id, u, k })
    }

    /// Queues a Ping; returns its id.
    pub fn ping(&mut self) -> u32 {
        self.push(Expect::Plain, |id| Request::Ping { id })
    }

    /// Queues a Reload; returns its id.
    pub fn reload(&mut self) -> u32 {
        self.push(Expect::Plain, |id| Request::Reload { id })
    }

    /// Number of requests queued so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.expect.len()
    }

    /// Whether the batch is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.expect.is_empty()
    }

    /// Writes every queued request in one syscall and drains exactly one
    /// response per request, returned in queue order.
    ///
    /// # Errors
    /// I/O failures, or [`ClientError::Protocol`] when a response does
    /// not parse or answers out of order.
    pub fn send(self) -> Result<Vec<Reply<W>>, ClientError> {
        let Batch { client, wire, expect } = self;
        if expect.is_empty() {
            return Ok(Vec::new());
        }
        client.stream.write_all(&wire)?;
        let mut replies = Vec::with_capacity(expect.len());
        for (id, expect) in expect {
            let payload = client.read_frame()?;
            let (head, body) = proto::decode_response_head(&payload)?;
            if head.id != id {
                // The server answers strictly in request order; a
                // mismatch means the stream is desynchronized.
                return Err(ClientError::Protocol(ProtocolError::BadBody(
                    "response id does not match request order",
                )));
            }
            let body = if head.status == Status::Ok {
                match expect {
                    Expect::Dist => ReplyBody::Dist(proto::decode_dist_body::<W>(body)?),
                    Expect::Path => ReplyBody::Path(proto::decode_path_body(body)?),
                    Expect::KNearest => {
                        ReplyBody::KNearest(proto::decode_k_nearest_body::<W>(body)?)
                    }
                    Expect::Plain => ReplyBody::None,
                }
            } else {
                ReplyBody::None
            };
            replies.push(Reply { id, status: head.status, generation: head.generation, body });
        }
        Ok(replies)
    }
}
