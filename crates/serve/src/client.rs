//! Blocking client for the serving front-end.
//!
//! [`Client`] speaks the batched binary protocol: single-query helpers
//! ([`dist`](Client::dist), [`path`](Client::path), …) do one round
//! trip each, while [`batch`](Client::batch) pipelines any mix of
//! requests into one write and drains all responses with large reads —
//! the shape the server is optimized for and the one the loopback
//! bench measures.

use crate::proto::{self, HealthReport, HelloStatus, ProtocolError, Request, ServerHello, Status};
use congest_graph::NodeId;
use congest_oracle::PortableWeight;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, unexpected EOF).
    Io(std::io::Error),
    /// The server sent bytes that do not parse as the protocol.
    Protocol(ProtocolError),
    /// The server refused the connection at the handshake.
    Refused(HelloStatus),
    /// The server answered a request with a non-success status
    /// (backpressure [`Status::Busy`], [`Status::NodeOutOfRange`], …).
    Server(Status),
    /// A [`ResilientClient`] operation ran out of retry budget (attempt
    /// cap or per-op deadline) without a final answer. Carries the full
    /// attempt trace — one entry per failed try, in order — so the
    /// caller can see exactly what the network did.
    RetriesExhausted {
        /// What each failed attempt saw, in attempt order.
        attempts: Vec<Attempt>,
    },
}

/// One failed try inside a [`ResilientClient`] operation, as carried by
/// [`ClientError::RetriesExhausted`].
#[derive(Debug, Clone)]
pub struct Attempt {
    /// 1-based attempt number.
    pub attempt: u32,
    /// Description of what failed (transport error, shed status, …).
    pub error: String,
    /// Backoff slept after this failure (zero when the deadline cut the
    /// backoff short).
    pub backoff: Duration,
    /// Requests still without a final answer when this attempt failed.
    pub pending: usize,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client I/O error: {e}"),
            ClientError::Protocol(e) => write!(f, "client protocol error: {e}"),
            ClientError::Refused(s) => write!(f, "server refused the handshake: {s:?}"),
            ClientError::Server(s) => write!(f, "server answered with status {s:?}"),
            ClientError::RetriesExhausted { attempts } => {
                write!(f, "retries exhausted after {} attempts", attempts.len())?;
                if let Some(last) = attempts.last() {
                    write!(f, " (last: {})", last.error)?;
                }
                Ok(())
            }
        }
    }
}

impl ClientError {
    /// `true` when retrying the same operation (possibly over a fresh
    /// connection) could succeed: transport failures, protocol
    /// desynchronization (cured by reconnecting), capacity-refused
    /// handshakes, and shedding statuses. `false` for verdicts that a
    /// retry cannot change (version/weight mismatch, bad request,
    /// unreachable-as-error, exhausted retries).
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Io(_) | ClientError::Protocol(_) => true,
            ClientError::Refused(s) => *s == HelloStatus::AtCapacity,
            ClientError::Server(s) => s.is_retryable(),
            ClientError::RetriesExhausted { .. } => false,
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// The decoded body of one response, shaped by the request that earned it.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplyBody<W> {
    /// No body (non-`Ok` statuses, and `Ok` answers to Ping/Reload).
    None,
    /// A Dist answer.
    Dist(W),
    /// A Path answer (the `u → v` vertex walk).
    Path(Vec<NodeId>),
    /// A KNearest answer.
    KNearest(Vec<(NodeId, W)>),
    /// A Health answer.
    Health(HealthReport),
}

/// One response from a pipelined batch, in the order requests were added.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply<W> {
    /// Echoed request id.
    pub id: u32,
    /// Outcome.
    pub status: Status,
    /// Snapshot generation that answered.
    pub generation: u64,
    /// Decoded body (present only on `Ok` query answers).
    pub body: ReplyBody<W>,
}

impl<W> Reply<W> {
    /// `true` when this reply is a shed ([`Status::Busy`] /
    /// [`Status::Overloaded`]) and the identical request should simply
    /// be resent — the re-drive loop [`ResilientClient`] runs for you.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        self.status.is_retryable()
    }
}

/// Read timeout [`Client::connect`] applies around the handshake, so a
/// server that accepts but never says hello yields a timeout error
/// instead of blocking the client forever.
pub const DEFAULT_HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// A blocking connection to a `congest-serve` server, generic over the
/// weight type the server must be serving (verified at the handshake).
pub struct Client<W> {
    stream: TcpStream,
    hello: ServerHello,
    /// Bytes read but not yet consumed as frames.
    inbuf: Vec<u8>,
    next_id: u32,
    _weight: std::marker::PhantomData<W>,
}

/// What each pending request in a batch expects back, so the body can
/// be decoded without guessing.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Expect {
    Dist,
    Path,
    KNearest,
    Health,
    Plain,
}

/// A pipelined batch under construction; add requests, then
/// [`send`](Batch::send) them as one write.
pub struct Batch<'a, W> {
    client: &'a mut Client<W>,
    wire: Vec<u8>,
    expect: Vec<(u32, Expect)>,
}

impl<W: PortableWeight> Client<W> {
    /// Connects and performs the handshake, bounding the hello exchange
    /// by [`DEFAULT_HANDSHAKE_TIMEOUT`].
    ///
    /// # Errors
    /// [`ClientError::Refused`] when the server rejects the handshake
    /// (version/weight mismatch, at capacity); [`ClientError::Protocol`]
    /// when the peer is not a congest-serve server at all;
    /// [`ClientError::Io`] when the server stays silent past the
    /// handshake timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client<W>, ClientError> {
        Self::connect_with_timeout(addr, DEFAULT_HANDSHAKE_TIMEOUT)
    }

    /// [`connect`](Client::connect) with an explicit (nonzero) handshake
    /// timeout. Subsequent calls block without a timeout until
    /// [`set_read_timeout`](Client::set_read_timeout) says otherwise.
    ///
    /// # Errors
    /// As [`connect`](Client::connect).
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        handshake_timeout: Duration,
    ) -> Result<Client<W>, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // The hello read happens before the caller gets a handle to
        // configure timeouts on, so bound it here: a server that
        // accepts and goes silent must not hang the client.
        stream.set_read_timeout(Some(handshake_timeout))?;
        stream.write_all(&proto::encode_client_hello(W::TAG))?;
        let mut reply = [0u8; proto::SERVER_HELLO_LEN];
        stream.read_exact(&mut reply)?;
        stream.set_read_timeout(None)?;
        let hello = proto::decode_server_hello(&reply)?;
        if hello.status != HelloStatus::Ok {
            return Err(ClientError::Refused(hello.status));
        }
        if hello.weight_tag != W::TAG {
            return Err(ClientError::Protocol(ProtocolError::WeightTypeMismatch {
                found: hello.weight_tag,
                expected: W::TAG,
            }));
        }
        Ok(Client {
            stream,
            hello,
            inbuf: Vec::with_capacity(16 * 1024),
            next_id: 1, // id 0 is CONNECTION_ID, reserved for the server
            _weight: std::marker::PhantomData,
        })
    }

    /// Node count of the generation that was live at connect time.
    #[must_use]
    pub fn n(&self) -> u64 {
        self.hello.n
    }

    /// Generation that was live at connect time (responses carry the
    /// current one).
    #[must_use]
    pub fn generation_at_connect(&self) -> u64 {
        self.hello.generation
    }

    /// The server's per-batch in-flight window: pipelining more requests
    /// than this into one batch earns [`Status::Busy`] for the excess.
    #[must_use]
    pub fn window(&self) -> u32 {
        self.hello.window
    }

    /// Applies a read timeout to subsequent calls (`None` blocks forever).
    ///
    /// # Errors
    /// Propagates the socket option failure.
    pub fn set_read_timeout(&mut self, t: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(t)?;
        Ok(())
    }

    /// Starts a pipelined batch.
    pub fn batch(&mut self) -> Batch<'_, W> {
        Batch { client: self, wire: Vec::with_capacity(4 * 1024), expect: Vec::new() }
    }

    /// `δ(u, v)` in one round trip; `Ok(None)` when unreachable.
    ///
    /// # Errors
    /// [`ClientError::Server`] on non-success statuses, plus I/O and
    /// protocol failures.
    pub fn dist(&mut self, u: NodeId, v: NodeId) -> Result<Option<W>, ClientError> {
        let mut b = self.batch();
        b.dist(u, v);
        let reply = b.send()?.pop().expect("one reply");
        match (reply.status, reply.body) {
            (Status::Ok, ReplyBody::Dist(w)) => Ok(Some(w)),
            (Status::Unreachable, _) => Ok(None),
            (s, _) => Err(ClientError::Server(s)),
        }
    }

    /// Shortest `u → v` walk in one round trip; `Ok(None)` when unreachable.
    ///
    /// # Errors
    /// [`ClientError::Server`] on non-success statuses, plus I/O and
    /// protocol failures.
    pub fn path(&mut self, u: NodeId, v: NodeId) -> Result<Option<Vec<NodeId>>, ClientError> {
        let mut b = self.batch();
        b.path(u, v);
        let reply = b.send()?.pop().expect("one reply");
        match (reply.status, reply.body) {
            (Status::Ok, ReplyBody::Path(p)) => Ok(Some(p)),
            (Status::Unreachable, _) => Ok(None),
            (s, _) => Err(ClientError::Server(s)),
        }
    }

    /// The `k` nearest other nodes to `u`, in one round trip.
    ///
    /// # Errors
    /// [`ClientError::Server`] on non-success statuses, plus I/O and
    /// protocol failures.
    pub fn k_nearest(&mut self, u: NodeId, k: u32) -> Result<Vec<(NodeId, W)>, ClientError> {
        let mut b = self.batch();
        b.k_nearest(u, k);
        let reply = b.send()?.pop().expect("one reply");
        match (reply.status, reply.body) {
            (Status::Ok, ReplyBody::KNearest(items)) => Ok(items),
            (s, _) => Err(ClientError::Server(s)),
        }
    }

    /// Round-trip no-op; returns the generation currently serving.
    ///
    /// # Errors
    /// I/O and protocol failures.
    pub fn ping(&mut self) -> Result<u64, ClientError> {
        let mut b = self.batch();
        b.ping();
        let reply = b.send()?.pop().expect("one reply");
        match reply.status {
            Status::Ok => Ok(reply.generation),
            s => Err(ClientError::Server(s)),
        }
    }

    /// Asks the server to reload its snapshot file; returns the new
    /// generation on success.
    ///
    /// # Errors
    /// [`ClientError::Server`] with [`Status::NotSupported`] when the
    /// server has no snapshot file, [`Status::Internal`] when the reload
    /// failed (the old generation keeps serving).
    pub fn reload(&mut self) -> Result<u64, ClientError> {
        let mut b = self.batch();
        b.reload();
        let reply = b.send()?.pop().expect("one reply");
        match reply.status {
            Status::Ok => Ok(reply.generation),
            s => Err(ClientError::Server(s)),
        }
    }

    /// Asks for the server's health report; returns it together with the
    /// generation currently serving.
    ///
    /// # Errors
    /// I/O and protocol failures.
    pub fn health(&mut self) -> Result<(u64, HealthReport), ClientError> {
        let mut b = self.batch();
        b.health();
        let reply = b.send()?.pop().expect("one reply");
        match (reply.status, reply.body) {
            (Status::Ok, ReplyBody::Health(h)) => Ok((reply.generation, h)),
            (s, _) => Err(ClientError::Server(s)),
        }
    }

    /// Reads one complete frame, growing `inbuf` with large reads.
    fn read_frame(&mut self) -> Result<Vec<u8>, ClientError> {
        let mut scratch = [0u8; 16 * 1024];
        loop {
            if let Some((payload, consumed)) =
                proto::decode_frame(&self.inbuf, self.hello.max_frame_len)?
            {
                let payload = payload.to_vec();
                self.inbuf.drain(..consumed);
                return Ok(payload);
            }
            let k = self.stream.read(&mut scratch)?;
            if k == 0 {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed mid-response",
                )));
            }
            self.inbuf.extend_from_slice(&scratch[..k]);
        }
    }
}

impl<W: PortableWeight> Batch<'_, W> {
    fn push(&mut self, expect: Expect, build: impl FnOnce(u32) -> Request) -> u32 {
        let id = self.client.next_id;
        self.client.next_id = self.client.next_id.wrapping_add(1).max(1);
        proto::encode_request(&mut self.wire, &build(id));
        self.expect.push((id, expect));
        id
    }

    /// Queues a Dist request; returns its id.
    pub fn dist(&mut self, u: NodeId, v: NodeId) -> u32 {
        self.push(Expect::Dist, |id| Request::Dist { id, u, v })
    }

    /// Queues a Path request; returns its id.
    pub fn path(&mut self, u: NodeId, v: NodeId) -> u32 {
        self.push(Expect::Path, |id| Request::Path { id, u, v })
    }

    /// Queues a KNearest request; returns its id.
    pub fn k_nearest(&mut self, u: NodeId, k: u32) -> u32 {
        self.push(Expect::KNearest, |id| Request::KNearest { id, u, k })
    }

    /// Queues a Ping; returns its id.
    pub fn ping(&mut self) -> u32 {
        self.push(Expect::Plain, |id| Request::Ping { id })
    }

    /// Queues a Reload; returns its id.
    pub fn reload(&mut self) -> u32 {
        self.push(Expect::Plain, |id| Request::Reload { id })
    }

    /// Queues a Health probe; returns its id.
    pub fn health(&mut self) -> u32 {
        self.push(Expect::Health, |id| Request::Health { id })
    }

    /// Number of requests queued so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.expect.len()
    }

    /// Whether the batch is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.expect.is_empty()
    }

    /// Writes every queued request in one syscall and drains exactly one
    /// response per request, returned in queue order.
    ///
    /// # Errors
    /// I/O failures, or [`ClientError::Protocol`] when a response does
    /// not parse or answers out of order.
    pub fn send(self) -> Result<Vec<Reply<W>>, ClientError> {
        let Batch { client, wire, expect } = self;
        if expect.is_empty() {
            return Ok(Vec::new());
        }
        client.stream.write_all(&wire)?;
        let mut replies = Vec::with_capacity(expect.len());
        for (id, expect) in expect {
            let payload = client.read_frame()?;
            let (head, body) = proto::decode_response_head(&payload)?;
            if head.id != id {
                // The server answers strictly in request order; a
                // mismatch means the stream is desynchronized.
                return Err(ClientError::Protocol(ProtocolError::BadBody(
                    "response id does not match request order",
                )));
            }
            let body = if head.status == Status::Ok {
                match expect {
                    Expect::Dist => ReplyBody::Dist(proto::decode_dist_body::<W>(body)?),
                    Expect::Path => ReplyBody::Path(proto::decode_path_body(body)?),
                    Expect::KNearest => {
                        ReplyBody::KNearest(proto::decode_k_nearest_body::<W>(body)?)
                    }
                    Expect::Health => ReplyBody::Health(proto::decode_health_body(body)?),
                    Expect::Plain => ReplyBody::None,
                }
            } else {
                ReplyBody::None
            };
            replies.push(Reply { id, status: head.status, generation: head.generation, body });
        }
        Ok(replies)
    }
}

// ------------------------------------------------------- resilience

/// Retry/backoff/deadline policy for a [`ResilientClient`].
///
/// Backoff is **decorrelated jitter** (`sleep = clamp(base, prev × 3)
/// picked by hash, capped at `cap`) — the spread de-synchronizes a fleet
/// of retrying clients — and the "random" pick is a splitmix64 hash of
/// `(jitter_seed, attempt)`, so the whole backoff sequence is a pure
/// function of the policy: reproducible in tests without a clock, and
/// distinct per client when `jitter_seed` differs.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Hard cap on tries per operation (connection attempts and request
    /// rounds both count).
    pub max_attempts: u32,
    /// Backoff floor.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Overall wall-clock budget per operation: connects, sends, reads,
    /// and backoffs all fit inside it, and breaching it yields
    /// [`ClientError::RetriesExhausted`].
    pub op_deadline: Duration,
    /// Seed of the deterministic jitter sequence.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(250),
            op_deadline: Duration::from_secs(10),
            jitter_seed: 0x0005_EED0_FBAC_C0FF,
        }
    }
}

impl RetryPolicy {
    /// The backoff to sleep after failed attempt `attempt` (1-based),
    /// given the previous backoff — a pure function, so the full
    /// sequence is testable without sleeping.
    #[must_use]
    pub fn backoff(&self, attempt: u32, prev: Duration) -> Duration {
        // splitmix64 finalizer (shared idiom with the chaos plane).
        let mut x = self.jitter_seed ^ (u64::from(attempt) << 32);
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let base = self.base.as_nanos().max(1) as u64;
        let hi = (self.cap.as_nanos() as u64).min((prev.as_nanos() as u64).saturating_mul(3));
        let span = hi.saturating_sub(base);
        Duration::from_nanos(base + if span == 0 { 0 } else { x % span })
    }
}

/// Transport-level counters a [`ResilientClient`] keeps about its own
/// recovery work (mirrored into the global telemetry registry when the
/// plane is enabled).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Failed attempts that were retried (transport errors and shed
    /// request rounds).
    pub retries: u64,
    /// Fresh connections established after the first.
    pub reconnects: u64,
    /// Reconnect handshakes that revealed a different snapshot
    /// generation than the last one seen.
    pub generation_changes: u64,
    /// Operations that ended in [`ClientError::RetriesExhausted`].
    pub exhausted: u64,
}

/// One operation for [`ResilientClient::execute`] — a request minus the
/// wire id, which the client assigns per attempt.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ResilientOp {
    /// `δ(u, v)`.
    Dist(NodeId, NodeId),
    /// Shortest `u → v` vertex walk.
    Path(NodeId, NodeId),
    /// The `k` nearest other nodes to `u`.
    KNearest(NodeId, u32),
    /// Round-trip no-op.
    Ping,
    /// Health report probe.
    Health,
}

/// A self-healing wrapper over [`Client`]: per-op deadlines, bounded
/// retry with deterministic decorrelated-jitter backoff, automatic
/// reconnect with handshake revalidation and generation-change
/// detection, and shed-aware replay.
///
/// Every operation the protocol exposes is **read-only** (`Reload` is
/// deliberately absent here — it is the one state-changing op, so it
/// stays on the raw [`Client`]), which is what makes replay safe: a
/// request whose response was lost can always be resent without
/// changing server state, and a batch round that comes back with some
/// requests shed ([`Status::Busy`] / [`Status::Overloaded`]) re-drives
/// **only the shed requests** (via [`Reply::is_retryable`]) instead of
/// replaying answered ones.
///
/// Failure is always typed and always bounded: any single operation
/// either returns a final answer, a terminal server verdict, or
/// [`ClientError::RetriesExhausted`] carrying the attempt trace, within
/// [`RetryPolicy::op_deadline`].
pub struct ResilientClient<W> {
    addr: SocketAddr,
    policy: RetryPolicy,
    handshake_timeout: Duration,
    conn: Option<Client<W>>,
    last_generation: Option<u64>,
    stats: ResilienceStats,
    /// Test hook: where backoffs go. Defaults to `thread::sleep`.
    sleeper: Box<dyn FnMut(Duration) + Send>,
}

impl<W: PortableWeight> ResilientClient<W> {
    /// Wraps `addr` with the given policy. No connection is made yet —
    /// the first operation connects (and a dead server at that point
    /// consumes retry budget like any other transport failure).
    #[must_use]
    pub fn new(addr: SocketAddr, policy: RetryPolicy) -> ResilientClient<W> {
        ResilientClient {
            addr,
            policy,
            handshake_timeout: DEFAULT_HANDSHAKE_TIMEOUT,
            conn: None,
            last_generation: None,
            stats: ResilienceStats::default(),
            sleeper: Box::new(std::thread::sleep),
        }
    }

    /// Replaces the backoff sleeper — tests capture the requested
    /// durations instead of actually sleeping, making retry schedules
    /// assertable under a virtual clock.
    #[must_use]
    pub fn with_sleeper(mut self, sleeper: impl FnMut(Duration) + Send + 'static) -> Self {
        self.sleeper = Box::new(sleeper);
        self
    }

    /// The policy in force.
    #[must_use]
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Recovery-work counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> ResilienceStats {
        self.stats
    }

    /// The most recent snapshot generation observed (from a handshake or
    /// any response), if any.
    #[must_use]
    pub fn last_generation(&self) -> Option<u64> {
        self.last_generation
    }

    /// `δ(u, v)` with retries; `Ok(None)` when unreachable.
    ///
    /// # Errors
    /// [`ClientError::Server`] on terminal statuses,
    /// [`ClientError::RetriesExhausted`] when the budget runs out.
    pub fn dist(&mut self, u: NodeId, v: NodeId) -> Result<Option<W>, ClientError> {
        let reply = self.execute_one(ResilientOp::Dist(u, v))?;
        match (reply.status, reply.body) {
            (Status::Ok, ReplyBody::Dist(w)) => Ok(Some(w)),
            (Status::Unreachable, _) => Ok(None),
            (s, _) => Err(ClientError::Server(s)),
        }
    }

    /// Shortest `u → v` walk with retries; `Ok(None)` when unreachable.
    ///
    /// # Errors
    /// As [`dist`](ResilientClient::dist).
    pub fn path(&mut self, u: NodeId, v: NodeId) -> Result<Option<Vec<NodeId>>, ClientError> {
        let reply = self.execute_one(ResilientOp::Path(u, v))?;
        match (reply.status, reply.body) {
            (Status::Ok, ReplyBody::Path(p)) => Ok(Some(p)),
            (Status::Unreachable, _) => Ok(None),
            (s, _) => Err(ClientError::Server(s)),
        }
    }

    /// The `k` nearest other nodes to `u`, with retries.
    ///
    /// # Errors
    /// As [`dist`](ResilientClient::dist).
    pub fn k_nearest(&mut self, u: NodeId, k: u32) -> Result<Vec<(NodeId, W)>, ClientError> {
        let reply = self.execute_one(ResilientOp::KNearest(u, k))?;
        match (reply.status, reply.body) {
            (Status::Ok, ReplyBody::KNearest(items)) => Ok(items),
            (s, _) => Err(ClientError::Server(s)),
        }
    }

    /// Round-trip no-op with retries; returns the serving generation.
    ///
    /// # Errors
    /// As [`dist`](ResilientClient::dist).
    pub fn ping(&mut self) -> Result<u64, ClientError> {
        let reply = self.execute_one(ResilientOp::Ping)?;
        match reply.status {
            Status::Ok => Ok(reply.generation),
            s => Err(ClientError::Server(s)),
        }
    }

    /// Health probe with retries; returns the serving generation and the
    /// report.
    ///
    /// # Errors
    /// As [`dist`](ResilientClient::dist).
    pub fn health(&mut self) -> Result<(u64, HealthReport), ClientError> {
        let reply = self.execute_one(ResilientOp::Health)?;
        match (reply.status, reply.body) {
            (Status::Ok, ReplyBody::Health(h)) => Ok((reply.generation, h)),
            (s, _) => Err(ClientError::Server(s)),
        }
    }

    fn execute_one(&mut self, op: ResilientOp) -> Result<Reply<W>, ClientError> {
        let mut replies = self.execute(&[op])?;
        Ok(replies.pop().expect("one op yields one reply"))
    }

    /// Runs a batch of operations to completion under the policy: one
    /// pipelined round per attempt, transport failures reconnect and
    /// replay the *unanswered* operations, shed replies re-drive only
    /// themselves. Replies come back in `ops` order; terminal non-`Ok`
    /// statuses (e.g. `NodeOutOfRange`) are returned as replies, not
    /// errors, so one bad request cannot burn the batch's retry budget.
    ///
    /// # Errors
    /// [`ClientError::RetriesExhausted`] when the attempt cap or
    /// [`RetryPolicy::op_deadline`] is breached first; a non-retryable
    /// handshake refusal ([`ClientError::Refused`]) is returned as
    /// itself, immediately.
    pub fn execute(&mut self, ops: &[ResilientOp]) -> Result<Vec<Reply<W>>, ClientError> {
        let deadline = Instant::now() + self.policy.op_deadline;
        let mut results: Vec<Option<Reply<W>>> = (0..ops.len()).map(|_| None).collect();
        let mut attempts: Vec<Attempt> = Vec::new();
        let mut prev_backoff = self.policy.base;
        let telemetry = congest_telemetry::enabled();
        let mut attempt = 0u32;
        loop {
            let pending: Vec<usize> = (0..ops.len()).filter(|&i| results[i].is_none()).collect();
            if pending.is_empty() {
                return Ok(results.into_iter().map(|r| r.expect("answered")).collect());
            }
            attempt += 1;
            if attempt > self.policy.max_attempts || Instant::now() >= deadline {
                self.stats.exhausted += 1;
                if telemetry {
                    congest_telemetry::global().registry().counter("serve.client.exhausted").inc();
                }
                return Err(ClientError::RetriesExhausted { attempts });
            }
            match self.try_round(ops, &pending, &mut results, deadline) {
                Ok(()) => {
                    // Round completed; shed replies (if any) stay pending.
                    if results.iter().any(Option::is_none) {
                        prev_backoff = self.record_failure(
                            &mut attempts,
                            attempt,
                            "requests shed (Busy/Overloaded)".to_string(),
                            prev_backoff,
                            deadline,
                            results.iter().filter(|r| r.is_none()).count(),
                            telemetry,
                        );
                    }
                }
                Err(e) if e.is_retryable() => {
                    // Transport failure: the connection is gone; the next
                    // round reconnects and replays the unanswered ops.
                    self.conn = None;
                    prev_backoff = self.record_failure(
                        &mut attempts,
                        attempt,
                        e.to_string(),
                        prev_backoff,
                        deadline,
                        pending.len(),
                        telemetry,
                    );
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Books a failed attempt: trace entry, counters, and the (deadline-
    /// clamped) backoff sleep. Returns the backoff to feed the next
    /// decorrelated-jitter draw.
    #[allow(clippy::too_many_arguments)]
    fn record_failure(
        &mut self,
        attempts: &mut Vec<Attempt>,
        attempt: u32,
        error: String,
        prev_backoff: Duration,
        deadline: Instant,
        pending: usize,
        telemetry: bool,
    ) -> Duration {
        self.stats.retries += 1;
        if telemetry {
            congest_telemetry::global().registry().counter("serve.client.retries").inc();
        }
        let backoff = self.policy.backoff(attempt, prev_backoff);
        let slept = backoff.min(deadline.saturating_duration_since(Instant::now()));
        if !slept.is_zero() {
            (self.sleeper)(slept);
        }
        attempts.push(Attempt { attempt, error, backoff: slept, pending });
        backoff
    }

    /// One connect-if-needed + send + drain round over the pending ops.
    fn try_round(
        &mut self,
        ops: &[ResilientOp],
        pending: &[usize],
        results: &mut [Option<Reply<W>>],
        deadline: Instant,
    ) -> Result<(), ClientError> {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "op deadline reached",
            )));
        }
        if self.conn.is_none() {
            let client = Client::<W>::connect_with_timeout(
                self.addr,
                self.handshake_timeout.min(remaining),
            )?;
            // Handshake revalidation succeeded (magic/version/weight all
            // checked by connect). Detect generation changes across
            // reconnects: a different generation means the server swapped
            // (or restarted) while we were away — safe, because every op
            // here is read-only, but worth counting and tracing.
            let gen = client.generation_at_connect();
            if self.last_generation.is_some() {
                self.stats.reconnects += 1;
                if congest_telemetry::enabled() {
                    congest_telemetry::global().registry().counter("serve.client.reconnects").inc();
                }
            }
            if let Some(last) = self.last_generation {
                if last != gen {
                    self.stats.generation_changes += 1;
                    if congest_telemetry::enabled() {
                        congest_telemetry::global()
                            .registry()
                            .counter("serve.client.generation_changes")
                            .inc();
                    }
                }
            }
            self.last_generation = Some(gen);
            self.conn = Some(client);
        }
        let client = self.conn.as_mut().expect("connected above");
        // Reads must not outlive the op deadline, give or take a poll.
        client.set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
        let mut batch = client.batch();
        for &i in pending {
            match ops[i] {
                ResilientOp::Dist(u, v) => batch.dist(u, v),
                ResilientOp::Path(u, v) => batch.path(u, v),
                ResilientOp::KNearest(u, k) => batch.k_nearest(u, k),
                ResilientOp::Ping => batch.ping(),
                ResilientOp::Health => batch.health(),
            };
        }
        let replies = batch.send()?;
        for (&i, reply) in pending.iter().zip(replies) {
            self.last_generation = Some(reply.generation);
            if !reply.is_retryable() {
                results[i] = Some(reply);
            }
        }
        Ok(())
    }
}
