//! Network serving front-end for the CONGEST APSP distance oracle:
//! a thread-per-core TCP server speaking a compact binary protocol with
//! request batching, per-connection backpressure, and zero-downtime
//! snapshot swap.
//!
//! # Architecture
//!
//! - [`Server`] binds a listener, accepts with one thread per core, and
//!   gives each connection a blocking handler that drains the socket in
//!   large reads. One `read` syscall typically delivers a whole
//!   pipelined **batch** of frames; the batch is answered against a
//!   single snapshot generation (through
//!   `QueryEngine::{dist_batch, path_batch}`) and written back in one
//!   `write_all`.
//! - [`Client`] is the matching blocking client; its [`Client::batch`]
//!   builder pipelines any mix of requests into one write.
//! - [`GenerationCell`] is the swap primitive: reloads publish a new
//!   `(engine, generation)` pair atomically, in-flight batches finish
//!   on the generation they loaded, and every response names the
//!   generation that answered it.
//!
//! # Wire format
//!
//! All integers are little-endian. The handshake is fixed-size; after
//! it, both directions are length-prefixed frames:
//!
//! ```text
//!   client hello (8 B)                server hello (32 B)
//!   ┌───────┬─────────┬─────┬──────┐  ┌───────┬─────────┬────────┬─────┬─────┬─────┬────────┬───────────┐
//!   │ magic │ version │ tag │ flag │  │ magic │ version │ status │ tag │  n  │ gen │ window │ max_frame │
//!   │ CGSV  │   u16   │ u8  │  u8  │  │ CGSV  │   u16   │   u8   │ u8  │ u64 │ u64 │  u32   │    u32    │
//!   └───────┴─────────┴─────┴──────┘  └───────┴─────────┴────────┴─────┴─────┴─────┴────────┴───────────┘
//!
//!   frame                              pipelined batch = frames back to back
//!   ┌─────────┬──────────────────┐     ┌────┬─────────┬────┬─────────┬────┬─────────┐
//!   │ len u32 │ payload (len B)  │     │len₁│payload₁ │len₂│payload₂ │len₃│payload₃ │ → one write
//!   └─────────┴──────────────────┘     └────┴─────────┴────┴─────────┴────┴─────────┘
//! ```
//!
//! Request payloads (`id` echoes back in the matching response):
//!
//! | op | name     | payload layout                          |
//! |----|----------|-----------------------------------------|
//! | 1  | Dist     | `id u32, op u8, u u32, v u32`           |
//! | 2  | Path     | `id u32, op u8, u u32, v u32`           |
//! | 3  | KNearest | `id u32, op u8, u u32, k u32`           |
//! | 4  | Ping     | `id u32, op u8`                         |
//! | 5  | Reload   | `id u32, op u8`                         |
//! | 6  | Health   | `id u32, op u8`                         |
//!
//! Response payloads all start with the same head; `Ok` query answers
//! append a body:
//!
//! | status ≠ Ok / Ping / Reload | `id u32, status u8, generation u64`              |
//! |-----------------------------|--------------------------------------------------|
//! | Dist `Ok`                   | head + `weight 8 B`                              |
//! | Path `Ok`                   | head + `count u32, count × node u32`             |
//! | KNearest `Ok`               | head + `count u32, count × (node u32, weight 8 B)` |
//! | Health `Ok`                 | head + `uptime_ms u64, conns u32, max_conns u32, shed_busy u64, shed_overloaded u64, swaps u64, swap_errors u64, err_len u32, err utf-8` |
//!
//! Weights travel in the snapshot plane's canonical 8-byte encoding
//! (`PortableWeight`), and the handshake's weight tag guarantees both
//! sides agree on the type before any frame flows.
//!
//! # Backpressure
//!
//! Two bounds keep a connection from pinning server memory:
//!
//! 1. **In-flight window.** At most [`ServerConfig::window`] requests
//!    per batch are answered; the excess get [`proto::Status::Busy`]
//!    responses immediately (resend after draining). The window is
//!    advertised in the server hello.
//! 2. **Write timeout.** A peer that pipelines requests but stops
//!    reading responses trips [`ServerConfig::write_timeout`] and is
//!    disconnected.
//!
//! # Robustness
//!
//! The serving path carries its own fault plane, mirroring the
//! simulator's deterministic `congest_sim::fault` philosophy at the TCP
//! boundary.
//!
//! **Error taxonomy.** Every failure a caller can see is typed, and
//! every type is classified retryable or terminal:
//!
//! | class | members | retryable? |
//! |-------|---------|------------|
//! | shedding statuses | [`Status::Busy`] (per-connection window), [`Status::Overloaded`] (global in-flight budget) | yes — resend after backoff |
//! | transport | [`ClientError::Io`], [`ClientError::Protocol`] (stream desync) | yes — reconnect and replay |
//! | capacity hello | `HelloStatus::AtCapacity` refusal | yes — reconnect later |
//! | semantic statuses | `BadRequest`, `NodeOutOfRange`, `Unreachable`, `TooLarge`, `NotSupported`, `Corrupt`, `Internal` | no — the answer for this request |
//! | handshake verdicts | `BadVersion`, `WeightMismatch` | no — a config error, retrying cannot help |
//!
//! [`ClientError::is_retryable`] and [`Status::is_retryable`] encode
//! the table; [`ClientError::RetriesExhausted`] is what a retryable
//! failure becomes once the budget runs out, and carries the full
//! attempt trace ([`client::Attempt`]) for post-mortems.
//!
//! **Idempotence and replay.** Every protocol op except `Reload` is
//! read-only, so replaying it after an ambiguous failure (sent the
//! request, connection died before the response) is always safe.
//! [`ResilientClient`] exploits this: it retries Dist/Path/KNearest/
//! Ping/Health freely and deliberately does not expose Reload — the one
//! state-changing op must go through the plain [`Client`] where the
//! caller owns at-most-once semantics.
//!
//! **Deadline semantics.** [`client::RetryPolicy::op_deadline`] bounds
//! the **whole** operation — connect, handshake, every attempt, every
//! backoff sleep. Backoff between attempts is decorrelated jitter
//! (`base..prev×3`, capped), a pure function of
//! `(jitter_seed, attempt)` so tests replay schedules exactly. On the
//! server, [`ServerConfig::frame_deadline`] bounds how long a partial
//! frame may sit unfinished (slow-loris reclamation) and
//! [`ServerConfig::write_timeout`] bounds a dead reader.
//!
//! **Overload shedding.** [`ServerConfig::max_inflight`] is a global
//! budget across all connections; query ops beyond it are answered
//! [`Status::Overloaded`] immediately — shed, never queued — while
//! control ops (Ping/Reload/Health) bypass the budget so the server
//! stays observable under load. The `Health` op reports uptime, live
//! connections, both shed counters, swap counts, and the last
//! snapshot-swap error.
//!
//! **Chaos testing.** [`chaos::ChaosProxy`] is a deterministic
//! in-process TCP proxy: faults (delays, resets, truncations, 1-byte
//! write segmentation, payload bit-flips) are pure functions of
//! `(seed, conn, direction, byte_offset)` via the same splitmix mix the
//! simulator's fault plane uses, so a failing seed replays exactly —
//! independent of OS read chunking and thread scheduling. Point a
//! [`ResilientClient`] through a proxy with a [`chaos::ChaosSpec`] and
//! assert the differential contract: never a wrong answer for the
//! claimed generation, never a hang past the deadline (see
//! `tests/serve_chaos.rs` for the grid harness).
//!
//! # Snapshot swap
//!
//! A `Reload` control frame (or the snapshot-file mtime watcher, see
//! [`ServerConfig::watch_interval`]) loads and validates the new
//! snapshot **off to the side**, then [`GenerationCell::swap`] publishes
//! it. Handlers take one generation per batch, so a swap never tears a
//! batch and never drops an in-flight query; the old snapshot is freed
//! when its last batch finishes. A failed reload leaves the previous
//! generation serving and answers `Internal`.
//!
//! # Example
//!
//! See `examples/serve_tcp.rs` for the end-to-end loop; the short
//! version:
//!
//! ```no_run
//! use congest_serve::{Client, Server, ServerConfig};
//! use congest_oracle::{EngineConfig, Oracle, QueryEngine};
//! use congest_graph::generators::{gnm_connected, WeightDist};
//! use congest_graph::seq::apsp_dijkstra;
//! use std::sync::Arc;
//!
//! let g = gnm_connected(64, 256, true, WeightDist::Uniform(1, 100), 7);
//! let oracle = Arc::new(Oracle::from_dist(&g, apsp_dijkstra(&g)));
//! let engine = Arc::new(QueryEngine::new(oracle, EngineConfig::default()));
//! let server = Server::bind("127.0.0.1:0", engine, ServerConfig::default())?;
//!
//! let mut client = Client::<u64>::connect(server.local_addr())?;
//! let mut batch = client.batch();
//! batch.dist(0, 63);
//! batch.path(0, 63);
//! let replies = batch.send()?;
//! assert_eq!(replies.len(), 2);
//! server.join();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![deny(deprecated)]

pub mod cell;
pub mod chaos;
pub mod client;
pub mod proto;
pub mod server;

pub use cell::{Generation, GenerationCell};
pub use chaos::{ChaosProxy, ChaosSpec};
pub use client::{
    Batch, Client, ClientError, Reply, ReplyBody, ResilienceStats, ResilientClient, ResilientOp,
    RetryPolicy, DEFAULT_HANDSHAKE_TIMEOUT,
};
pub use proto::{HealthReport, ProtocolError, Status};
pub use server::{BackendMode, ServeError, Server, ServerConfig, ServerHandle};
