//! The wire protocol: a compact little-endian binary framing.
//!
//! Everything on the wire is length-prefixed after a fixed-size
//! handshake, so a reader always knows how many bytes to wait for and a
//! writer can concatenate any number of frames into one syscall (the
//! batching/pipelining the server and [`Client`](crate::Client) are
//! built around). See the crate docs for the full wire-format table.
//!
//! The decoding functions in this module are **pure** — they take byte
//! slices and return typed values or a typed [`ProtocolError`], never
//! panicking and never reading out of bounds — which is what makes the
//! protocol-hardening fuzz suite (`tests/serve_protocol.rs`) possible:
//! any byte soup is either `Ok`, "need more bytes", or a typed error.

use congest_graph::NodeId;
use congest_oracle::PortableWeight;

/// Magic bytes opening both hello messages.
pub const MAGIC: &[u8; 4] = b"CGSV";
/// Wire-protocol version spoken by this build.
pub const PROTO_VERSION: u16 = 1;
/// Size of the client hello, in bytes.
pub const CLIENT_HELLO_LEN: usize = 8;
/// Size of the server hello, in bytes.
pub const SERVER_HELLO_LEN: usize = 32;
/// Default cap on a single frame's payload length.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 1 << 20;
/// Smallest meaningful request payload: id (4) + opcode (1).
pub const REQUEST_MIN_LEN: usize = 5;
/// Smallest response payload: id (4) + status (1) + generation (8).
pub const RESPONSE_HEAD_LEN: usize = 13;
/// Request id the server uses for connection-level error responses that
/// answer no particular request (e.g. an unparseable runt frame).
/// Clients start their ids at 1, so the value never collides.
pub const CONNECTION_ID: u32 = 0;

/// A malformed wire artifact, as a typed error (never a panic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// A frame length prefix exceeding the negotiated cap. The stream
    /// cannot be trusted past this point; the connection closes.
    Oversized {
        /// Length the prefix claimed.
        len: u32,
        /// Negotiated maximum.
        max: u32,
    },
    /// A well-framed payload too short to carry even an id + opcode.
    Runt {
        /// Payload length found.
        len: usize,
    },
    /// A request opcode this build does not know.
    UnknownOp {
        /// Opcode found.
        op: u8,
    },
    /// A known opcode with the wrong argument length.
    BadArgs {
        /// The opcode.
        op: u8,
        /// Argument bytes found.
        len: usize,
    },
    /// A hello that does not start with [`MAGIC`].
    BadMagic,
    /// A hello speaking a protocol version this build does not.
    UnsupportedVersion {
        /// Version found.
        found: u16,
    },
    /// Client and server disagree on the weight type being served.
    WeightTypeMismatch {
        /// Tag the peer declared.
        found: u8,
        /// Tag this side expected.
        expected: u8,
    },
    /// A response carrying a status byte this build does not know.
    BadStatus {
        /// Status byte found.
        status: u8,
    },
    /// A response body inconsistent with its own declared sizes or
    /// carrying an undecodable weight.
    BadBody(&'static str),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            ProtocolError::Runt { len } => {
                write!(f, "runt payload of {len} bytes (minimum is {REQUEST_MIN_LEN})")
            }
            ProtocolError::UnknownOp { op } => write!(f, "unknown opcode {op}"),
            ProtocolError::BadArgs { op, len } => {
                write!(f, "opcode {op} with malformed argument length {len}")
            }
            ProtocolError::BadMagic => write!(f, "not a congest-serve peer (bad magic)"),
            ProtocolError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported protocol version {found} (this build speaks {PROTO_VERSION})"
                )
            }
            ProtocolError::WeightTypeMismatch { found, expected } => {
                write!(f, "weight tag {found} does not match expected {expected}")
            }
            ProtocolError::BadStatus { status } => write!(f, "unknown response status {status}"),
            ProtocolError::BadBody(what) => write!(f, "malformed response body: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Per-request outcome carried in every response header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// The request succeeded; the body carries the answer.
    Ok = 0,
    /// Dist/Path on an unreachable pair — a successful answer of "no".
    Unreachable = 1,
    /// A node id at or beyond the snapshot's node count.
    NodeOutOfRange = 2,
    /// The snapshot's successor plane is damaged for this pair.
    Corrupt = 3,
    /// Backpressure: the request fell outside the connection's in-flight
    /// window. Resend it after draining responses.
    Busy = 4,
    /// A well-framed request the server could not make sense of
    /// (unknown opcode, wrong argument length, runt payload).
    BadRequest = 5,
    /// The operation is not available (e.g. snapshot reload on a server
    /// with no snapshot file configured).
    NotSupported = 6,
    /// The server failed internally (e.g. a snapshot reload that did
    /// not validate); the previous generation keeps serving.
    Internal = 7,
    /// The answer would not fit in the negotiated frame cap.
    TooLarge = 8,
    /// Load shedding: the server's **global** in-flight request budget
    /// ([`ServerConfig::max_inflight`](crate::ServerConfig::max_inflight))
    /// is exhausted. The request was refused immediately rather than
    /// queued; resend after backing off.
    Overloaded = 9,
}

impl Status {
    /// Decodes a status byte.
    #[must_use]
    pub fn from_u8(b: u8) -> Option<Status> {
        Some(match b {
            0 => Status::Ok,
            1 => Status::Unreachable,
            2 => Status::NodeOutOfRange,
            3 => Status::Corrupt,
            4 => Status::Busy,
            5 => Status::BadRequest,
            6 => Status::NotSupported,
            7 => Status::Internal,
            8 => Status::TooLarge,
            9 => Status::Overloaded,
            _ => return None,
        })
    }

    /// `true` for statuses that signal *shedding* rather than a verdict:
    /// the identical request is safe and sensible to resend after
    /// draining/backing off ([`Status::Busy`], [`Status::Overloaded`]).
    /// Everything else is a terminal answer for this request.
    ///
    /// [`ResilientClient`](crate::ResilientClient) re-drives exactly the
    /// requests whose status is retryable and treats the rest as final.
    #[must_use]
    pub fn is_retryable(self) -> bool {
        matches!(self, Status::Busy | Status::Overloaded)
    }
}

/// Why a server refused a connection at the handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum HelloStatus {
    /// Accepted; frames may flow.
    Ok = 0,
    /// The client speaks a protocol version the server does not.
    BadVersion = 1,
    /// The client expects a different weight type than the server serves.
    WeightMismatch = 2,
    /// The server is at its connection capacity.
    AtCapacity = 3,
}

impl HelloStatus {
    fn from_u8(b: u8) -> Option<HelloStatus> {
        Some(match b {
            0 => HelloStatus::Ok,
            1 => HelloStatus::BadVersion,
            2 => HelloStatus::WeightMismatch,
            3 => HelloStatus::AtCapacity,
            _ => return None,
        })
    }
}

/// The server's half of the handshake: accept/reject plus the constants
/// a client needs to speak to this server (snapshot size, current
/// generation, backpressure window, frame cap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerHello {
    /// Accept, or why not.
    pub status: HelloStatus,
    /// Weight tag of the snapshot being served.
    pub weight_tag: u8,
    /// Node count of the current generation.
    pub n: u64,
    /// Current snapshot generation.
    pub generation: u64,
    /// Per-batch in-flight window; requests beyond it get [`Status::Busy`].
    pub window: u32,
    /// Maximum frame payload length either side may send.
    pub max_frame_len: u32,
}

/// Builds the 8-byte client hello for weight tag `weight_tag`.
#[must_use]
pub fn encode_client_hello(weight_tag: u8) -> [u8; CLIENT_HELLO_LEN] {
    let mut b = [0u8; CLIENT_HELLO_LEN];
    b[0..4].copy_from_slice(MAGIC);
    b[4..6].copy_from_slice(&PROTO_VERSION.to_le_bytes());
    b[6] = weight_tag;
    b
}

/// Validates a client hello; returns the client's declared weight tag.
///
/// # Errors
/// [`ProtocolError::BadMagic`] / [`ProtocolError::UnsupportedVersion`]
/// for peers that are not a compatible congest-serve client.
pub fn decode_client_hello(b: &[u8; CLIENT_HELLO_LEN]) -> Result<u8, ProtocolError> {
    if &b[0..4] != MAGIC {
        return Err(ProtocolError::BadMagic);
    }
    let version = u16::from_le_bytes([b[4], b[5]]);
    if version != PROTO_VERSION {
        return Err(ProtocolError::UnsupportedVersion { found: version });
    }
    Ok(b[6])
}

/// Builds the 32-byte server hello.
#[must_use]
pub fn encode_server_hello(h: &ServerHello) -> [u8; SERVER_HELLO_LEN] {
    let mut b = [0u8; SERVER_HELLO_LEN];
    b[0..4].copy_from_slice(MAGIC);
    b[4..6].copy_from_slice(&PROTO_VERSION.to_le_bytes());
    b[6] = h.status as u8;
    b[7] = h.weight_tag;
    b[8..16].copy_from_slice(&h.n.to_le_bytes());
    b[16..24].copy_from_slice(&h.generation.to_le_bytes());
    b[24..28].copy_from_slice(&h.window.to_le_bytes());
    b[28..32].copy_from_slice(&h.max_frame_len.to_le_bytes());
    b
}

/// Parses a server hello.
///
/// # Errors
/// [`ProtocolError::BadMagic`] / [`ProtocolError::UnsupportedVersion`] /
/// [`ProtocolError::BadStatus`] when the peer is not a compatible
/// congest-serve server.
pub fn decode_server_hello(b: &[u8; SERVER_HELLO_LEN]) -> Result<ServerHello, ProtocolError> {
    if &b[0..4] != MAGIC {
        return Err(ProtocolError::BadMagic);
    }
    let version = u16::from_le_bytes([b[4], b[5]]);
    if version != PROTO_VERSION {
        return Err(ProtocolError::UnsupportedVersion { found: version });
    }
    let status = HelloStatus::from_u8(b[6]).ok_or(ProtocolError::BadStatus { status: b[6] })?;
    Ok(ServerHello {
        status,
        weight_tag: b[7],
        n: u64::from_le_bytes(b[8..16].try_into().expect("8 bytes")),
        generation: u64::from_le_bytes(b[16..24].try_into().expect("8 bytes")),
        window: u32::from_le_bytes(b[24..28].try_into().expect("4 bytes")),
        max_frame_len: u32::from_le_bytes(b[28..32].try_into().expect("4 bytes")),
    })
}

/// One query or control operation, as decoded from a request frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// `δ(u, v)`.
    Dist {
        /// Request id (echoed in the response).
        id: u32,
        /// Source node.
        u: NodeId,
        /// Target node.
        v: NodeId,
    },
    /// Shortest `u → v` vertex walk.
    Path {
        /// Request id.
        id: u32,
        /// Source node.
        u: NodeId,
        /// Target node.
        v: NodeId,
    },
    /// The `k` nearest other nodes to `u`.
    KNearest {
        /// Request id.
        id: u32,
        /// Center node.
        u: NodeId,
        /// How many neighbors.
        k: u32,
    },
    /// Round-trip no-op; the response's generation field doubles as a
    /// cheap way to observe snapshot swaps.
    Ping {
        /// Request id.
        id: u32,
    },
    /// Ask the server to reload its snapshot file and swap generations.
    Reload {
        /// Request id.
        id: u32,
    },
    /// Ask for the server's health report (generation, uptime, live
    /// connections, shed counts, last snapshot-swap error).
    Health {
        /// Request id.
        id: u32,
    },
}

const OP_DIST: u8 = 1;
const OP_PATH: u8 = 2;
const OP_K_NEAREST: u8 = 3;
const OP_PING: u8 = 4;
const OP_RELOAD: u8 = 5;
const OP_HEALTH: u8 = 6;

impl Request {
    /// The request id (echoed by the server in the matching response).
    #[must_use]
    pub fn id(&self) -> u32 {
        match *self {
            Request::Dist { id, .. }
            | Request::Path { id, .. }
            | Request::KNearest { id, .. }
            | Request::Ping { id }
            | Request::Reload { id }
            | Request::Health { id } => id,
        }
    }

    /// Whether this is a query op (Dist/Path/KNearest), which counts
    /// against the server's global in-flight budget. Control ops
    /// (Ping/Reload/Health) are exempt, so the server stays observable
    /// while shedding load.
    #[must_use]
    pub fn is_query(&self) -> bool {
        matches!(self, Request::Dist { .. } | Request::Path { .. } | Request::KNearest { .. })
    }
}

/// Appends `req` to `out` as one length-prefixed frame. Frames are plain
/// concatenation, so a pipelined batch is just repeated calls followed by
/// one write.
pub fn encode_request(out: &mut Vec<u8>, req: &Request) {
    frame(out, |out| match *req {
        Request::Dist { id, u, v } => {
            out.extend_from_slice(&id.to_le_bytes());
            out.push(OP_DIST);
            out.extend_from_slice(&u.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        Request::Path { id, u, v } => {
            out.extend_from_slice(&id.to_le_bytes());
            out.push(OP_PATH);
            out.extend_from_slice(&u.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        Request::KNearest { id, u, k } => {
            out.extend_from_slice(&id.to_le_bytes());
            out.push(OP_K_NEAREST);
            out.extend_from_slice(&u.to_le_bytes());
            out.extend_from_slice(&k.to_le_bytes());
        }
        Request::Ping { id } => {
            out.extend_from_slice(&id.to_le_bytes());
            out.push(OP_PING);
        }
        Request::Reload { id } => {
            out.extend_from_slice(&id.to_le_bytes());
            out.push(OP_RELOAD);
        }
        Request::Health { id } => {
            out.extend_from_slice(&id.to_le_bytes());
            out.push(OP_HEALTH);
        }
    });
}

/// Tries to split one frame off the front of `buf`.
///
/// Returns `Ok(None)` when `buf` does not yet hold a complete frame
/// (read more bytes and retry), or `Ok(Some((payload, consumed)))` with
/// the payload slice and the total bytes (prefix included) to drop.
///
/// # Errors
/// [`ProtocolError::Oversized`] when the length prefix exceeds
/// `max_frame_len` — the stream cannot be re-synchronized after that.
pub fn decode_frame(
    buf: &[u8],
    max_frame_len: u32,
) -> Result<Option<(&[u8], usize)>, ProtocolError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
    if len > max_frame_len {
        return Err(ProtocolError::Oversized { len, max: max_frame_len });
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((&buf[4..total], total)))
}

/// Decodes a request from one frame's payload.
///
/// # Errors
/// [`ProtocolError::Runt`] / [`ProtocolError::UnknownOp`] /
/// [`ProtocolError::BadArgs`] — all of which a server answers with
/// [`Status::BadRequest`] while keeping the (still well-framed)
/// connection alive.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtocolError> {
    if payload.len() < REQUEST_MIN_LEN {
        return Err(ProtocolError::Runt { len: payload.len() });
    }
    let id = u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes"));
    let op = payload[4];
    let args = &payload[REQUEST_MIN_LEN..];
    let two_u32 = |args: &[u8]| -> Result<(u32, u32), ProtocolError> {
        if args.len() != 8 {
            return Err(ProtocolError::BadArgs { op, len: args.len() });
        }
        Ok((
            u32::from_le_bytes(args[0..4].try_into().expect("4 bytes")),
            u32::from_le_bytes(args[4..8].try_into().expect("4 bytes")),
        ))
    };
    match op {
        OP_DIST => two_u32(args).map(|(u, v)| Request::Dist { id, u, v }),
        OP_PATH => two_u32(args).map(|(u, v)| Request::Path { id, u, v }),
        OP_K_NEAREST => two_u32(args).map(|(u, k)| Request::KNearest { id, u, k }),
        OP_PING | OP_RELOAD | OP_HEALTH => {
            if !args.is_empty() {
                return Err(ProtocolError::BadArgs { op, len: args.len() });
            }
            Ok(match op {
                OP_PING => Request::Ping { id },
                OP_RELOAD => Request::Reload { id },
                _ => Request::Health { id },
            })
        }
        op => Err(ProtocolError::UnknownOp { op }),
    }
}

/// Runs `f` to fill a frame payload, then patches the length prefix in
/// front of it — the one writer every encoder goes through.
fn frame(out: &mut Vec<u8>, f: impl FnOnce(&mut Vec<u8>)) {
    let at = out.len();
    out.extend_from_slice(&[0u8; 4]);
    f(out);
    let len = u32::try_from(out.len() - at - 4).expect("frame fits u32");
    out[at..at + 4].copy_from_slice(&len.to_le_bytes());
}

fn response_head(out: &mut Vec<u8>, id: u32, status: Status, gen: u64) {
    out.extend_from_slice(&id.to_le_bytes());
    out.push(status as u8);
    out.extend_from_slice(&gen.to_le_bytes());
}

/// Appends a body-less response frame (every non-`Ok` status, plus the
/// `Ok` answers to Ping/Reload).
pub fn encode_status(out: &mut Vec<u8>, id: u32, status: Status, gen: u64) {
    frame(out, |out| response_head(out, id, status, gen));
}

/// Appends an `Ok` Dist response carrying the weight.
pub fn encode_dist_ok<W: PortableWeight>(out: &mut Vec<u8>, id: u32, gen: u64, w: W) {
    frame(out, |out| {
        response_head(out, id, Status::Ok, gen);
        out.extend_from_slice(&w.encode());
    });
}

/// Appends an `Ok` Path response carrying the vertex walk.
pub fn encode_path_ok(out: &mut Vec<u8>, id: u32, gen: u64, walk: &[NodeId]) {
    frame(out, |out| {
        response_head(out, id, Status::Ok, gen);
        out.extend_from_slice(&u32::try_from(walk.len()).unwrap_or(u32::MAX).to_le_bytes());
        for &node in walk {
            out.extend_from_slice(&node.to_le_bytes());
        }
    });
}

/// The server's self-description, answered to a [`Request::Health`]
/// probe. The response head's `generation` field names the serving
/// generation; the body carries the liveness and shedding picture:
///
/// ```text
///   uptime_ms u64, connections u32, max_connections u32,
///   shed_busy u64, shed_overloaded u64, swaps u64, swap_errors u64,
///   err_len u32, err_len × utf-8 bytes (last snapshot-swap error)
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HealthReport {
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Connections currently live (including the probing one).
    pub connections: u32,
    /// The connection cap beyond which hellos get
    /// [`HelloStatus::AtCapacity`].
    pub max_connections: u32,
    /// Requests shed with [`Status::Busy`] (per-connection window)
    /// since start.
    pub shed_busy: u64,
    /// Requests shed with [`Status::Overloaded`] (global in-flight
    /// budget) since start.
    pub shed_overloaded: u64,
    /// Successful snapshot swaps since start.
    pub swaps: u64,
    /// Failed snapshot reload attempts since start.
    pub swap_errors: u64,
    /// Human-readable description of the most recent snapshot-swap
    /// failure; `None` when every reload so far validated.
    pub last_swap_error: Option<String>,
}

/// Fixed-size portion of a health body, before the error string.
const HEALTH_FIXED_LEN: usize = 8 + 4 + 4 + 8 + 8 + 8 + 8 + 4;

/// Appends an `Ok` Health response carrying the report.
pub fn encode_health_ok(out: &mut Vec<u8>, id: u32, gen: u64, h: &HealthReport) {
    frame(out, |out| {
        response_head(out, id, Status::Ok, gen);
        out.extend_from_slice(&h.uptime_ms.to_le_bytes());
        out.extend_from_slice(&h.connections.to_le_bytes());
        out.extend_from_slice(&h.max_connections.to_le_bytes());
        out.extend_from_slice(&h.shed_busy.to_le_bytes());
        out.extend_from_slice(&h.shed_overloaded.to_le_bytes());
        out.extend_from_slice(&h.swaps.to_le_bytes());
        out.extend_from_slice(&h.swap_errors.to_le_bytes());
        let err = h.last_swap_error.as_deref().unwrap_or("");
        out.extend_from_slice(&u32::try_from(err.len()).unwrap_or(u32::MAX).to_le_bytes());
        out.extend_from_slice(err.as_bytes());
    });
}

/// Decodes an `Ok` Health body.
///
/// # Errors
/// [`ProtocolError::BadBody`] when the body disagrees with its own
/// declared sizes or the error string is not UTF-8.
pub fn decode_health_body(body: &[u8]) -> Result<HealthReport, ProtocolError> {
    if body.len() < HEALTH_FIXED_LEN {
        return Err(ProtocolError::BadBody("health body shorter than its fixed head"));
    }
    let u64_at = |at: usize| u64::from_le_bytes(body[at..at + 8].try_into().expect("8 bytes"));
    let u32_at = |at: usize| u32::from_le_bytes(body[at..at + 4].try_into().expect("4 bytes"));
    let err_len = u32_at(HEALTH_FIXED_LEN - 4) as usize;
    if body.len() != HEALTH_FIXED_LEN + err_len {
        return Err(ProtocolError::BadBody("health error length disagrees with body size"));
    }
    let err = std::str::from_utf8(&body[HEALTH_FIXED_LEN..])
        .map_err(|_| ProtocolError::BadBody("health error string is not utf-8"))?;
    Ok(HealthReport {
        uptime_ms: u64_at(0),
        connections: u32_at(8),
        max_connections: u32_at(12),
        shed_busy: u64_at(16),
        shed_overloaded: u64_at(24),
        swaps: u64_at(32),
        swap_errors: u64_at(40),
        last_swap_error: if err.is_empty() { None } else { Some(err.to_string()) },
    })
}

/// Appends an `Ok` KNearest response carrying `(node, distance)` pairs.
pub fn encode_k_nearest_ok<W: PortableWeight>(
    out: &mut Vec<u8>,
    id: u32,
    gen: u64,
    items: &[(NodeId, W)],
) {
    frame(out, |out| {
        response_head(out, id, Status::Ok, gen);
        out.extend_from_slice(&u32::try_from(items.len()).unwrap_or(u32::MAX).to_le_bytes());
        for &(node, w) in items {
            out.extend_from_slice(&node.to_le_bytes());
            out.extend_from_slice(&w.encode());
        }
    });
}

/// A decoded response header; the remaining payload is the body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseHead {
    /// Echoed request id ([`CONNECTION_ID`] for connection-level errors).
    pub id: u32,
    /// Outcome.
    pub status: Status,
    /// Snapshot generation that answered — the witness the swap tests
    /// use to prove every answer is exactly right for *some* generation.
    pub generation: u64,
}

/// Splits a response payload into its header and body.
///
/// # Errors
/// [`ProtocolError::Runt`] / [`ProtocolError::BadStatus`] on payloads
/// that are not a response this build understands.
pub fn decode_response_head(payload: &[u8]) -> Result<(ResponseHead, &[u8]), ProtocolError> {
    if payload.len() < RESPONSE_HEAD_LEN {
        return Err(ProtocolError::Runt { len: payload.len() });
    }
    let id = u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes"));
    let status =
        Status::from_u8(payload[4]).ok_or(ProtocolError::BadStatus { status: payload[4] })?;
    let generation = u64::from_le_bytes(payload[5..13].try_into().expect("8 bytes"));
    Ok((ResponseHead { id, status, generation }, &payload[RESPONSE_HEAD_LEN..]))
}

/// Decodes an `Ok` Dist body.
///
/// # Errors
/// [`ProtocolError::BadBody`] unless the body is exactly one valid
/// 8-byte weight.
pub fn decode_dist_body<W: PortableWeight>(body: &[u8]) -> Result<W, ProtocolError> {
    let bytes: [u8; 8] =
        body.try_into().map_err(|_| ProtocolError::BadBody("dist body must be 8 bytes"))?;
    W::decode(bytes).ok_or(ProtocolError::BadBody("undecodable weight"))
}

/// Decodes an `Ok` Path body.
///
/// # Errors
/// [`ProtocolError::BadBody`] when the node count disagrees with the
/// body length.
pub fn decode_path_body(body: &[u8]) -> Result<Vec<NodeId>, ProtocolError> {
    if body.len() < 4 {
        return Err(ProtocolError::BadBody("path body shorter than its count"));
    }
    let count = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes")) as usize;
    let rest = &body[4..];
    if rest.len() != count * 4 {
        return Err(ProtocolError::BadBody("path length disagrees with body size"));
    }
    Ok(rest
        .chunks_exact(4)
        .map(|c| NodeId::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect())
}

/// Decodes an `Ok` KNearest body.
///
/// # Errors
/// [`ProtocolError::BadBody`] when the entry count disagrees with the
/// body length or a weight fails to decode.
pub fn decode_k_nearest_body<W: PortableWeight>(
    body: &[u8],
) -> Result<Vec<(NodeId, W)>, ProtocolError> {
    if body.len() < 4 {
        return Err(ProtocolError::BadBody("k-nearest body shorter than its count"));
    }
    let count = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes")) as usize;
    let rest = &body[4..];
    if rest.len() != count * 12 {
        return Err(ProtocolError::BadBody("k-nearest count disagrees with body size"));
    }
    rest.chunks_exact(12)
        .map(|c| {
            let node = NodeId::from_le_bytes(c[0..4].try_into().expect("4 bytes"));
            let w = W::decode(c[4..12].try_into().expect("8 bytes"))
                .ok_or(ProtocolError::BadBody("undecodable weight"))?;
            Ok((node, w))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_round_trips() {
        let hello = encode_client_hello(7);
        assert_eq!(decode_client_hello(&hello), Ok(7));
        let sh = ServerHello {
            status: HelloStatus::Ok,
            weight_tag: 1,
            n: 1024,
            generation: 3,
            window: 256,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        };
        assert_eq!(decode_server_hello(&encode_server_hello(&sh)), Ok(sh));
    }

    #[test]
    fn hello_rejections_are_typed() {
        let mut hello = encode_client_hello(1);
        hello[0] = b'X';
        assert_eq!(decode_client_hello(&hello), Err(ProtocolError::BadMagic));
        let mut hello = encode_client_hello(1);
        hello[4] = 9;
        assert_eq!(
            decode_client_hello(&hello),
            Err(ProtocolError::UnsupportedVersion { found: 9 })
        );
    }

    #[test]
    fn request_round_trips() {
        let reqs = [
            Request::Dist { id: 1, u: 3, v: 9 },
            Request::Path { id: 2, u: 0, v: u32::MAX },
            Request::KNearest { id: 3, u: 5, k: 10 },
            Request::Ping { id: 4 },
            Request::Reload { id: 5 },
            Request::Health { id: 6 },
        ];
        let mut wire = Vec::new();
        for r in &reqs {
            encode_request(&mut wire, r);
        }
        let mut at = 0;
        for r in &reqs {
            let (payload, consumed) =
                decode_frame(&wire[at..], DEFAULT_MAX_FRAME_LEN).unwrap().expect("complete");
            assert_eq!(decode_request(payload), Ok(*r));
            at += consumed;
        }
        assert_eq!(at, wire.len());
    }

    #[test]
    fn incomplete_frames_ask_for_more() {
        let mut wire = Vec::new();
        encode_request(&mut wire, &Request::Ping { id: 9 });
        for cut in 0..wire.len() {
            assert_eq!(decode_frame(&wire[..cut], DEFAULT_MAX_FRAME_LEN), Ok(None), "cut {cut}");
        }
    }

    #[test]
    fn oversized_frame_is_fatal() {
        let mut wire = (1u32 << 21).to_le_bytes().to_vec();
        wire.extend_from_slice(&[0; 16]);
        assert_eq!(
            decode_frame(&wire, DEFAULT_MAX_FRAME_LEN),
            Err(ProtocolError::Oversized { len: 1 << 21, max: DEFAULT_MAX_FRAME_LEN })
        );
    }

    #[test]
    fn malformed_requests_are_typed() {
        assert_eq!(decode_request(&[1, 0, 0]), Err(ProtocolError::Runt { len: 3 }));
        assert_eq!(decode_request(&[1, 0, 0, 0, 99]), Err(ProtocolError::UnknownOp { op: 99 }));
        assert_eq!(
            decode_request(&[1, 0, 0, 0, OP_DIST, 5, 5]),
            Err(ProtocolError::BadArgs { op: OP_DIST, len: 2 })
        );
        assert_eq!(
            decode_request(&[1, 0, 0, 0, OP_PING, 7]),
            Err(ProtocolError::BadArgs { op: OP_PING, len: 1 })
        );
    }

    #[test]
    fn responses_round_trip() {
        let mut wire = Vec::new();
        encode_dist_ok::<u64>(&mut wire, 1, 42, 17);
        encode_path_ok(&mut wire, 2, 42, &[3, 1, 4, 1, 5]);
        encode_k_nearest_ok::<u64>(&mut wire, 3, 42, &[(7, 2), (9, 5)]);
        encode_status(&mut wire, 4, Status::Busy, 42);

        let mut at = 0;
        let mut next = || {
            let (payload, consumed) =
                decode_frame(&wire[at..], DEFAULT_MAX_FRAME_LEN).unwrap().expect("complete");
            at += consumed;
            decode_response_head(payload).unwrap()
        };
        let (h, body) = { next() };
        assert_eq!((h.id, h.status, h.generation), (1, Status::Ok, 42));
        assert_eq!(decode_dist_body::<u64>(body), Ok(17));
        let (h, body) = { next() };
        assert_eq!(h.status, Status::Ok);
        assert_eq!(decode_path_body(body), Ok(vec![3, 1, 4, 1, 5]));
        let (h, body) = { next() };
        assert_eq!(decode_k_nearest_body::<u64>(body), Ok(vec![(7, 2), (9, 5)]));
        assert_eq!(h.id, 3);
        let (h, body) = { next() };
        assert_eq!((h.id, h.status), (4, Status::Busy));
        assert!(body.is_empty());
        assert_eq!(at, wire.len());
    }

    #[test]
    fn bad_bodies_are_typed() {
        assert!(matches!(decode_dist_body::<u64>(&[1, 2]), Err(ProtocolError::BadBody(_))));
        assert!(matches!(decode_path_body(&[5, 0, 0, 0, 1]), Err(ProtocolError::BadBody(_))));
        assert!(matches!(
            decode_k_nearest_body::<u64>(&[2, 0, 0, 0, 9]),
            Err(ProtocolError::BadBody(_))
        ));
        // F64 NaN payload: structurally sized right, semantically invalid.
        let nan = f64::NAN.to_bits().to_le_bytes();
        assert!(matches!(
            decode_dist_body::<congest_graph::F64>(&nan),
            Err(ProtocolError::BadBody("undecodable weight"))
        ));
    }

    #[test]
    fn every_status_byte_round_trips_or_rejects() {
        for b in 0u8..=255 {
            match Status::from_u8(b) {
                Some(s) => assert_eq!(s as u8, b),
                None => assert!(b > 9),
            }
        }
    }

    #[test]
    fn only_shedding_statuses_are_retryable() {
        for b in 0u8..=9 {
            let s = Status::from_u8(b).expect("known status");
            assert_eq!(s.is_retryable(), matches!(s, Status::Busy | Status::Overloaded));
        }
    }

    #[test]
    fn health_round_trips() {
        for report in [
            HealthReport::default(),
            HealthReport {
                uptime_ms: 123_456,
                connections: 3,
                max_connections: 1024,
                shed_busy: 17,
                shed_overloaded: 40,
                swaps: 5,
                swap_errors: 2,
                last_swap_error: Some("checksum mismatch".to_string()),
            },
        ] {
            let mut wire = Vec::new();
            encode_health_ok(&mut wire, 9, 4, &report);
            let (payload, consumed) =
                decode_frame(&wire, DEFAULT_MAX_FRAME_LEN).unwrap().expect("complete");
            assert_eq!(consumed, wire.len());
            let (head, body) = decode_response_head(payload).unwrap();
            assert_eq!((head.id, head.status, head.generation), (9, Status::Ok, 4));
            assert_eq!(decode_health_body(body), Ok(report));
        }
    }

    #[test]
    fn bad_health_bodies_are_typed() {
        assert!(matches!(decode_health_body(&[0; 10]), Err(ProtocolError::BadBody(_))));
        // Fixed head claims a 9-byte error string but carries none.
        let mut body = vec![0u8; HEALTH_FIXED_LEN];
        body[HEALTH_FIXED_LEN - 4] = 9;
        assert!(matches!(decode_health_body(&body), Err(ProtocolError::BadBody(_))));
        // Non-UTF-8 error bytes.
        let mut body = vec![0u8; HEALTH_FIXED_LEN + 2];
        body[HEALTH_FIXED_LEN - 4] = 2;
        body[HEALTH_FIXED_LEN] = 0xFF;
        body[HEALTH_FIXED_LEN + 1] = 0xFE;
        assert!(matches!(decode_health_body(&body), Err(ProtocolError::BadBody(_))));
    }
}
