//! The TCP serving front-end.
//!
//! Architecture: `acceptors` accept-loop threads share the listening
//! socket (thread-per-core accept: the default acceptor count is the
//! machine's parallelism) and hand each accepted connection its own
//! handler thread. A handler drains the socket in large reads — one
//! `read` syscall typically delivers a whole pipelined batch of frames —
//! answers the batch against **one** generation of the oracle, and
//! writes every response back in one `write_all`. Backpressure is a
//! bounded per-batch in-flight window: requests beyond
//! [`ServerConfig::window`] in a single batch are answered
//! [`Status::Busy`] instead of being buffered without bound, and a peer
//! that stops reading its responses trips the write timeout and is
//! disconnected rather than pinning server memory.
//!
//! Snapshot swaps go through the [`GenerationCell`]: a `Reload` control
//! frame (or the snapshot-file mtime watcher) loads and validates the
//! new snapshot off to the side, then publishes it atomically. Batches
//! already dispatched keep their generation until they finish — queries
//! are never dropped or torn by a swap, and every response names the
//! generation that answered it.

use crate::cell::GenerationCell;
use crate::proto::{self, HealthReport, HelloStatus, ProtocolError, Request, ServerHello, Status};
use congest_oracle::{
    EngineConfig, Oracle, PagedConfig, PagedOracle, PortableWeight, QueryEngine, QueryError,
    SnapshotError,
};
use congest_telemetry::{Counter, Gauge, Histogram};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

/// Why the server could not start or reload.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure (bind, accept, handshake I/O).
    Io(std::io::Error),
    /// The snapshot file failed to load or validate.
    Snapshot(SnapshotError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve I/O error: {e}"),
            ServeError::Snapshot(e) => write!(f, "serve snapshot error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Snapshot(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// How snapshot files are opened into query engines — fully resident,
/// or paged in lazily from a blocked v2 snapshot under a byte budget.
/// Applies to [`Server::bind_snapshot`] and every subsequent reload
/// (watcher- or `Reload`-frame-triggered), so a hot-swap keeps the
/// backend the operator chose.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BackendMode {
    /// Load the whole snapshot into RAM (v1 or v2 files).
    Eager,
    /// Serve straight from a v2 file via
    /// [`PagedOracle`], keeping at most
    /// `resident_bytes` of decoded blocks resident.
    Paged {
        /// Byte budget for the resident block set.
        resident_bytes: usize,
    },
}

/// Tuning knobs for a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Accept-loop threads sharing the listener; 0 means one per core
    /// (`std::thread::available_parallelism`).
    pub acceptors: usize,
    /// Hard cap on concurrent connections; beyond it, new peers get an
    /// [`HelloStatus::AtCapacity`] hello and a close.
    pub max_connections: usize,
    /// Per-connection, per-batch in-flight window: at most this many
    /// requests are answered per batch cycle, the rest get
    /// [`Status::Busy`] responses immediately.
    pub window: usize,
    /// Cap on a single frame's payload, bytes (both directions).
    pub max_frame_len: u32,
    /// Granularity at which idle handlers (via their read timeout) and
    /// acceptors (via nonblocking `accept`) poll the shutdown flag;
    /// also bounds how long shutdown waits for them.
    pub idle_poll: Duration,
    /// How long a response write may block before the peer is declared
    /// a dead/slow reader and disconnected.
    pub write_timeout: Duration,
    /// Global cap on query requests being answered concurrently across
    /// **all** connections. Requests beyond it are shed immediately with
    /// [`Status::Overloaded`] — never queued — so a traffic spike
    /// degrades into fast typed refusals instead of unbounded memory
    /// growth and collapse. Control ops (Ping/Reload/Health) are exempt,
    /// so the server stays observable while shedding.
    pub max_inflight: usize,
    /// Slow-loris guard: once a connection holds a **partial** frame, the
    /// rest of that frame must arrive within this deadline or the
    /// connection is reclaimed. A peer trickling one byte per poll can
    /// therefore pin a handler for at most `frame_deadline`, not forever.
    pub frame_deadline: Duration,
    /// Sharding/caching configuration for engines built from reloaded
    /// snapshots.
    pub engine: EngineConfig,
    /// When serving from a snapshot file: poll its mtime at this
    /// interval and hot-swap on change. `None` disables the watcher
    /// (`Reload` control frames still work).
    pub watch_interval: Option<Duration>,
    /// How snapshot files are opened: eager (fully resident) or paged
    /// (out-of-core over a v2 file). Ignored by [`Server::bind`], which
    /// is handed an already-built engine.
    pub backend: BackendMode,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            acceptors: 0,
            max_connections: 1024,
            window: 1024,
            max_frame_len: proto::DEFAULT_MAX_FRAME_LEN,
            idle_poll: Duration::from_millis(25),
            write_timeout: Duration::from_secs(5),
            max_inflight: 16 * 1024,
            frame_deadline: Duration::from_secs(10),
            engine: EngineConfig::default(),
            watch_interval: None,
            backend: BackendMode::Eager,
        }
    }
}

/// Opens the snapshot at `path` into a fresh engine per the configured
/// [`BackendMode`] — the one code path both the initial
/// [`Server::bind_snapshot`] and every reload go through.
fn open_engine<W: PortableWeight>(
    path: &Path,
    cfg: &ServerConfig,
) -> Result<Arc<QueryEngine<W>>, SnapshotError> {
    match cfg.backend {
        BackendMode::Eager => {
            let oracle = Oracle::<W>::load(path)?;
            Ok(Arc::new(QueryEngine::new(Arc::new(oracle), cfg.engine)))
        }
        BackendMode::Paged { resident_bytes } => {
            let paged = PagedOracle::<W>::open(path, PagedConfig { resident_bytes })?;
            Ok(Arc::new(QueryEngine::new_paged(Arc::new(paged), cfg.engine)))
        }
    }
}

/// Construction-cached telemetry handles; recording happens only while
/// the global plane is enabled (one relaxed load per site otherwise).
struct Metrics {
    accepted: Arc<Counter>,
    rejected_capacity: Arc<Counter>,
    handshake_rejects: Arc<Counter>,
    protocol_errors: Arc<Counter>,
    busy: Arc<Counter>,
    overloaded: Arc<Counter>,
    loris_reclaimed: Arc<Counter>,
    swaps: Arc<Counter>,
    swap_errors: Arc<Counter>,
    connections: Arc<Gauge>,
    batch_frames: Arc<Histogram>,
    op_dist: Arc<Histogram>,
    op_path: Arc<Histogram>,
    op_k_nearest: Arc<Histogram>,
}

impl Metrics {
    fn new() -> Self {
        let reg = congest_telemetry::global().registry();
        Metrics {
            accepted: reg.counter("serve.conn.accepted"),
            rejected_capacity: reg.counter("serve.conn.rejected_capacity"),
            handshake_rejects: reg.counter("serve.conn.handshake_rejects"),
            protocol_errors: reg.counter("serve.protocol_errors"),
            busy: reg.counter("serve.busy_responses"),
            overloaded: reg.counter("serve.overloaded_responses"),
            loris_reclaimed: reg.counter("serve.conn.loris_reclaimed"),
            swaps: reg.counter("serve.snapshot_swaps"),
            swap_errors: reg.counter("serve.snapshot_swap_errors"),
            connections: reg.gauge("serve.connections"),
            batch_frames: reg.histogram("serve.batch.frames"),
            op_dist: reg.histogram("serve.op.dist_ns"),
            op_path: reg.histogram("serve.op.path_ns"),
            op_k_nearest: reg.histogram("serve.op.k_nearest_ns"),
        }
    }
}

/// What the watcher compares to decide whether the snapshot file
/// changed: mtime **plus** a cheap content fingerprint (file length and
/// FNV-1a over the leading and trailing blocks), so a rewrite that lands
/// within the filesystem's mtime granularity — same second, different
/// bytes — still triggers a reload. The leading block covers the
/// snapshot header and the start of the distance arena; the trailing
/// block covers the checksum (v1) or the index + footer (v2), which
/// change whenever **any** byte of the payload does — so a same-length
/// edit past the first block can no longer slip past the watcher.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct SnapshotStamp {
    mtime: Option<SystemTime>,
    len: u64,
    fnv: u64,
}

/// Bytes of the file's leading and trailing blocks folded into the
/// fingerprint.
const STAMP_BLOCK: usize = 4096;

/// Folds up to `STAMP_BLOCK` bytes from the file's current position
/// into `fnv`; stops early at EOF.
fn stamp_fold(file: &mut std::fs::File, mut fnv: u64) -> Option<u64> {
    let mut block = [0u8; STAMP_BLOCK];
    let mut read = 0;
    while read < STAMP_BLOCK {
        match file.read(&mut block[read..]) {
            Ok(0) => break,
            Ok(k) => read += k,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
    for &b in &block[..read] {
        fnv = (fnv ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    Some(fnv)
}

fn stamp_snapshot(path: &Path) -> Option<SnapshotStamp> {
    let meta = std::fs::metadata(path).ok()?;
    let mtime = meta.modified().ok();
    let mut file = std::fs::File::open(path).ok()?;
    let mut fnv = stamp_fold(&mut file, 0xCBF2_9CE4_8422_2325u64)?;
    if meta.len() > STAMP_BLOCK as u64 {
        let tail_start = meta.len().saturating_sub(STAMP_BLOCK as u64).max(STAMP_BLOCK as u64);
        use std::io::Seek;
        file.seek(std::io::SeekFrom::Start(tail_start)).ok()?;
        fnv = stamp_fold(&mut file, fnv)?;
    }
    Some(SnapshotStamp { mtime, len: meta.len(), fnv })
}

struct Shared<W> {
    cell: GenerationCell<W>,
    cfg: ServerConfig,
    /// Snapshot file backing `Reload` frames and the mtime watcher.
    snapshot: Option<PathBuf>,
    /// Serializes reloads so racing `Reload` frames load the file once;
    /// holds the stamp of the file the current generation came from.
    reload_lock: Mutex<Option<SnapshotStamp>>,
    shutdown: AtomicBool,
    addr: SocketAddr,
    metrics: Metrics,
    /// Live connection count (the authoritative one; the gauge mirrors it).
    conns: AtomicUsize,
    /// When the server started (health reports uptime against it).
    started: Instant,
    /// Query requests currently being answered, across all connections —
    /// the global budget [`ServerConfig::max_inflight`] caps.
    inflight: AtomicUsize,
    /// Requests shed with `Busy` since start (authoritative, independent
    /// of whether the telemetry plane is enabled).
    shed_busy: AtomicU64,
    /// Requests shed with `Overloaded` since start.
    shed_overloaded: AtomicU64,
    /// Successful snapshot swaps since start.
    swaps: AtomicU64,
    /// Failed snapshot reloads since start.
    swap_errors: AtomicU64,
    /// Human-readable description of the most recent reload failure.
    last_swap_error: Mutex<Option<String>>,
}

impl<W: PortableWeight> Shared<W> {
    /// Loads the snapshot file and publishes it as the next generation.
    fn reload(&self) -> Result<u64, ServeError> {
        let path = self.snapshot.as_ref().ok_or_else(|| {
            ServeError::Io(std::io::Error::new(
                ErrorKind::Unsupported,
                "server has no snapshot file to reload",
            ))
        })?;
        let mut last = self.reload_lock.lock().expect("reload lock poisoned");
        let stamp = stamp_snapshot(path);
        let engine = match open_engine::<W>(path, &self.cfg) {
            Ok(e) => e,
            Err(e) => {
                let err = ServeError::Snapshot(e);
                self.note_swap_error(&err);
                return Err(err);
            }
        };
        let gen = self.cell.swap(engine);
        *last = stamp;
        self.note_swap();
        Ok(gen)
    }

    fn note_swap(&self) {
        self.swaps.fetch_add(1, Ordering::SeqCst);
        if congest_telemetry::enabled() {
            self.metrics.swaps.inc();
        }
    }

    fn note_swap_error(&self, e: &ServeError) {
        self.swap_errors.fetch_add(1, Ordering::SeqCst);
        *self.last_swap_error.lock().expect("swap error lock poisoned") = Some(e.to_string());
        if congest_telemetry::enabled() {
            self.metrics.swap_errors.inc();
        }
    }

    /// Takes up to `want` permits from the global in-flight budget;
    /// returns how many were granted. Never blocks, never queues — what
    /// the budget cannot cover is shed by the caller.
    fn acquire_inflight(&self, want: usize) -> usize {
        let mut granted = 0;
        let _ = self.inflight.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
            granted = want.min(self.cfg.max_inflight.saturating_sub(cur));
            Some(cur + granted)
        });
        granted
    }

    fn release_inflight(&self, granted: usize) {
        if granted > 0 {
            self.inflight.fetch_sub(granted, Ordering::SeqCst);
        }
    }

    /// Assembles the health report a `Health` op answers with.
    fn health_report(&self) -> HealthReport {
        HealthReport {
            uptime_ms: u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX),
            connections: u32::try_from(self.conns.load(Ordering::SeqCst)).unwrap_or(u32::MAX),
            max_connections: u32::try_from(self.cfg.max_connections).unwrap_or(u32::MAX),
            shed_busy: self.shed_busy.load(Ordering::SeqCst),
            shed_overloaded: self.shed_overloaded.load(Ordering::SeqCst),
            swaps: self.swaps.load(Ordering::SeqCst),
            swap_errors: self.swap_errors.load(Ordering::SeqCst),
            last_swap_error: self.last_swap_error.lock().expect("swap error lock poisoned").clone(),
        }
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`shutdown`](ServerHandle::shutdown) (and then
/// [`join`](ServerHandle::join)) for the graceful drain the CI smoke
/// test exercises.
pub struct ServerHandle<W> {
    shared: Arc<Shared<W>>,
    acceptors: Vec<std::thread::JoinHandle<()>>,
    watcher: Option<std::thread::JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

/// Namespace for the server constructors.
pub struct Server;

impl Server {
    /// Binds `addr` and serves `engine`. `addr` may use port 0 to let
    /// the OS pick (read it back via [`ServerHandle::local_addr`]).
    ///
    /// # Errors
    /// [`ServeError::Io`] when the listener cannot be bound.
    pub fn bind<W: PortableWeight>(
        addr: impl ToSocketAddrs,
        engine: Arc<QueryEngine<W>>,
        cfg: ServerConfig,
    ) -> Result<ServerHandle<W>, ServeError> {
        Self::start(addr, engine, None, cfg)
    }

    /// Loads the snapshot at `path`, binds `addr` and serves it. The
    /// returned server supports `Reload` control frames, and — when
    /// [`ServerConfig::watch_interval`] is set — hot-swaps automatically
    /// whenever the file's mtime changes.
    ///
    /// # Errors
    /// [`ServeError::Snapshot`] when the file fails to load or
    /// validate; [`ServeError::Io`] when the listener cannot be bound.
    pub fn bind_snapshot<W: PortableWeight>(
        addr: impl ToSocketAddrs,
        path: impl Into<PathBuf>,
        cfg: ServerConfig,
    ) -> Result<ServerHandle<W>, ServeError> {
        let path = path.into();
        let engine = open_engine::<W>(&path, &cfg).map_err(ServeError::Snapshot)?;
        Self::start(addr, engine, Some(path), cfg)
    }

    fn start<W: PortableWeight>(
        addr: impl ToSocketAddrs,
        engine: Arc<QueryEngine<W>>,
        snapshot: Option<PathBuf>,
        cfg: ServerConfig,
    ) -> Result<ServerHandle<W>, ServeError> {
        let listener = TcpListener::bind(addr)?;
        // Nonblocking accept: the loops poll the shutdown flag between
        // `WouldBlock`s, so shutdown never depends on a wake-up
        // connection getting through. Set before cloning — the clones
        // share the flag.
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let acceptor_count = if cfg.acceptors == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            cfg.acceptors
        };
        let shared = Arc::new(Shared {
            cell: GenerationCell::new(engine),
            cfg,
            snapshot,
            reload_lock: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            addr,
            metrics: Metrics::new(),
            conns: AtomicUsize::new(0),
            started: Instant::now(),
            inflight: AtomicUsize::new(0),
            shed_busy: AtomicU64::new(0),
            shed_overloaded: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            swap_errors: AtomicU64::new(0),
            last_swap_error: Mutex::new(None),
        });
        let handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let mut acceptors = Vec::with_capacity(acceptor_count);
        for i in 0..acceptor_count {
            let listener = listener.try_clone()?;
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            acceptors.push(
                std::thread::Builder::new()
                    .name(format!("serve-accept-{i}"))
                    .spawn(move || accept_loop(&listener, &shared, &handlers))
                    .map_err(ServeError::Io)?,
            );
        }
        let watcher = match (shared.cfg.watch_interval, shared.snapshot.is_some()) {
            (Some(interval), true) => {
                let shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("serve-watch".to_string())
                        .spawn(move || watch_loop(&shared, interval))
                        .map_err(ServeError::Io)?,
                )
            }
            _ => None,
        };
        Ok(ServerHandle { shared, acceptors, watcher, handlers })
    }
}

impl<W: PortableWeight> ServerHandle<W> {
    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Current snapshot generation.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.shared.cell.generation()
    }

    /// Live connection count.
    #[must_use]
    pub fn connections(&self) -> usize {
        self.shared.conns.load(Ordering::SeqCst)
    }

    /// Publishes a new oracle (wrapped in a fresh engine with the
    /// server's [`EngineConfig`]) as the next generation; returns its
    /// number. In-flight batches finish on the generation they loaded.
    pub fn swap(&self, oracle: Arc<Oracle<W>>) -> u64 {
        self.swap_engine(Arc::new(QueryEngine::new(oracle, self.shared.cfg.engine)))
    }

    /// Publishes an already-built engine as the next generation.
    pub fn swap_engine(&self, engine: Arc<QueryEngine<W>>) -> u64 {
        let gen = self.shared.cell.swap(engine);
        self.shared.note_swap();
        gen
    }

    /// The health report a `Health` protocol op would answer with.
    #[must_use]
    pub fn health(&self) -> HealthReport {
        self.shared.health_report()
    }

    /// Reloads the snapshot file (if the server was started with one)
    /// and swaps it in; returns the new generation.
    ///
    /// # Errors
    /// [`ServeError::Snapshot`] when the file fails to load or
    /// validate — the previous generation keeps serving.
    pub fn reload(&self) -> Result<u64, ServeError> {
        self.shared.reload()
    }

    /// Begins a graceful shutdown: acceptors stop taking connections,
    /// every handler finishes (and answers) the requests it has already
    /// read, then closes its connection. Returns immediately; use
    /// [`join`](ServerHandle::join) to wait for the drain.
    pub fn shutdown(&self) {
        // The listener is nonblocking, so every acceptor observes the
        // flag within one idle_poll tick — no wake-up traffic needed.
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits until every acceptor and connection handler has exited.
    /// Implies [`shutdown`](ServerHandle::shutdown).
    pub fn join(mut self) {
        self.shutdown();
        for a in self.acceptors.drain(..) {
            let _ = a.join();
        }
        if let Some(w) = self.watcher.take() {
            let _ = w.join();
        }
        let handlers = std::mem::take(&mut *self.handlers.lock().expect("handler list poisoned"));
        for h in handlers {
            let _ = h.join();
        }
    }
}

fn accept_loop<W: PortableWeight>(
    listener: &TcpListener,
    shared: &Arc<Shared<W>>,
    handlers: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                // Nonblocking listener, nothing pending: sleep one poll
                // tick and re-check the shutdown flag.
                std::thread::sleep(shared.cfg.idle_poll);
                continue;
            }
            Err(_) => {
                // Transient accept failure (e.g. fd exhaustion): back off
                // briefly instead of spinning the core.
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return; // a late client; just drop it
        }
        // Handlers pace reads with socket timeouts, which need a
        // blocking stream; some platforms inherit the listener's
        // nonblocking flag across accept.
        if stream.set_nonblocking(false).is_err() {
            continue;
        }
        let prev = shared.conns.fetch_add(1, Ordering::SeqCst);
        if prev >= shared.cfg.max_connections {
            shared.conns.fetch_sub(1, Ordering::SeqCst);
            if congest_telemetry::enabled() {
                shared.metrics.rejected_capacity.inc();
            }
            let hello = proto::encode_server_hello(&ServerHello {
                status: HelloStatus::AtCapacity,
                weight_tag: W::TAG,
                n: 0,
                generation: shared.cell.generation(),
                window: 0,
                max_frame_len: 0,
            });
            let mut stream = stream;
            let _ = stream.write_all(&hello);
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        if congest_telemetry::enabled() {
            shared.metrics.accepted.inc();
            shared.metrics.connections.set((prev + 1) as i64);
        }
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new().name("serve-conn".to_string()).spawn(move || {
            handle_connection(stream, &conn_shared);
            let now = conn_shared.conns.fetch_sub(1, Ordering::SeqCst) - 1;
            if congest_telemetry::enabled() {
                conn_shared.metrics.connections.set(now as i64);
            }
        });
        match spawned {
            Ok(handle) => {
                let mut list = handlers.lock().expect("handler list poisoned");
                // Opportunistically reap finished handlers so a
                // long-running server's list stays bounded.
                list.retain(|h| !h.is_finished());
                list.push(handle);
            }
            Err(_) => {
                shared.conns.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

fn watch_loop<W: PortableWeight>(shared: &Arc<Shared<W>>, interval: Duration) {
    let path = shared.snapshot.as_ref().expect("watcher requires a snapshot path");
    // Baseline: the stamp of the snapshot generation 1 was loaded from.
    *shared.reload_lock.lock().expect("reload lock poisoned") = stamp_snapshot(path);
    while !shared.shutdown.load(Ordering::SeqCst) {
        // Sleep `interval` in short steps so shutdown is observed quickly
        // even with a long watch interval.
        let mut slept = Duration::ZERO;
        while slept < interval {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let step = (interval - slept).min(Duration::from_millis(50));
            std::thread::sleep(step);
            slept += step;
        }
        let Some(stamp) = stamp_snapshot(path) else {
            continue; // file momentarily absent (mid-rewrite): keep serving
        };
        // Compare mtime AND the content fingerprint: a rewrite that lands
        // within the filesystem's mtime granularity still changes the
        // length or the FNV of the leading block, so same-mtime rewrites
        // are not missed.
        let changed = *shared.reload_lock.lock().expect("reload lock poisoned") != Some(stamp);
        if changed {
            // A half-written file fails validation and is retried on the
            // next tick; the previous generation keeps serving throughout.
            let _ = shared.reload();
        }
    }
}

/// Reads with a poll-granularity timeout until `buf` is full; gives up
/// on shutdown, EOF, `deadline`, or a hard I/O error.
fn read_exact_polling<W: PortableWeight>(
    stream: &mut TcpStream,
    shared: &Shared<W>,
    buf: &mut [u8],
    deadline: Instant,
) -> bool {
    let mut at = 0;
    while at < buf.len() {
        match stream.read(&mut buf[at..]) {
            Ok(0) => return false,
            Ok(k) => at += k,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.shutdown.load(Ordering::SeqCst) || Instant::now() >= deadline {
                    return false;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

fn handle_connection<W: PortableWeight>(mut stream: TcpStream, shared: &Shared<W>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.idle_poll));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));

    // ---- handshake ----
    let mut hello = [0u8; proto::CLIENT_HELLO_LEN];
    if !read_exact_polling(&mut stream, shared, &mut hello, Instant::now() + Duration::from_secs(5))
    {
        return;
    }
    let status = match proto::decode_client_hello(&hello) {
        Ok(tag) if tag == W::TAG => HelloStatus::Ok,
        Ok(_) => HelloStatus::WeightMismatch,
        Err(ProtocolError::UnsupportedVersion { .. }) => HelloStatus::BadVersion,
        Err(_) => {
            // Not our protocol at all: close without feeding bytes to
            // whatever peer this is.
            if congest_telemetry::enabled() {
                shared.metrics.handshake_rejects.inc();
            }
            return;
        }
    };
    let (n, generation) = {
        let current = shared.cell.load();
        (u64::try_from(current.engine.n()).unwrap_or(u64::MAX), current.number)
    };
    let reply = proto::encode_server_hello(&ServerHello {
        status,
        weight_tag: W::TAG,
        n,
        generation,
        window: u32::try_from(shared.cfg.window).unwrap_or(u32::MAX),
        max_frame_len: shared.cfg.max_frame_len,
    });
    if stream.write_all(&reply).is_err() {
        return;
    }
    if status != HelloStatus::Ok {
        if congest_telemetry::enabled() {
            shared.metrics.handshake_rejects.inc();
        }
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }

    // ---- batch loop ----
    let mut inbuf: Vec<u8> = Vec::with_capacity(64 * 1024);
    let mut outbuf: Vec<u8> = Vec::with_capacity(64 * 1024);
    let mut scratch = [0u8; 64 * 1024];
    let mut draining = false;
    // Slow-loris guard: when the buffer first holds a partial frame, the
    // clock starts; the frame must complete before `frame_deadline` or
    // the connection is reclaimed.
    let mut partial_since: Option<Instant> = None;
    loop {
        match stream.read(&mut scratch) {
            Ok(0) => draining = true,
            Ok(k) => inbuf.extend_from_slice(&scratch[..k]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    draining = true; // answer what is buffered, then close
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        }

        // Split every complete frame out of the buffer.
        let mut requests: Vec<Result<Request, (u32, Status)>> = Vec::new();
        let mut consumed = 0;
        let mut fatal = false;
        loop {
            match proto::decode_frame(&inbuf[consumed..], shared.cfg.max_frame_len) {
                Ok(None) => break,
                Ok(Some((payload, used))) => {
                    match proto::decode_request(payload) {
                        Ok(req) => requests.push(Ok(req)),
                        Err(e) => {
                            // Well-framed but senseless: answer BadRequest
                            // (with the request's id when one is present)
                            // and keep the connection — framing is intact.
                            if congest_telemetry::enabled() {
                                shared.metrics.protocol_errors.inc();
                            }
                            let id = if payload.len() >= 4 {
                                u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes"))
                            } else {
                                proto::CONNECTION_ID
                            };
                            debug_assert!(matches!(
                                e,
                                ProtocolError::Runt { .. }
                                    | ProtocolError::UnknownOp { .. }
                                    | ProtocolError::BadArgs { .. }
                            ));
                            requests.push(Err((id, Status::BadRequest)));
                        }
                    }
                    consumed += used;
                }
                Err(_) => {
                    // Oversized frame: the stream cannot be re-synced.
                    // Answer everything decoded so far plus one
                    // connection-level error, then close.
                    if congest_telemetry::enabled() {
                        shared.metrics.protocol_errors.inc();
                    }
                    requests.push(Err((proto::CONNECTION_ID, Status::BadRequest)));
                    fatal = true;
                    break;
                }
            }
        }
        inbuf.drain(..consumed);

        // Leftover bytes are a partial frame. A peer trickling one byte
        // per poll would otherwise pin this handler forever; give the
        // frame `frame_deadline` to complete, then reclaim.
        if inbuf.is_empty() {
            partial_since = None;
        } else {
            let since = *partial_since.get_or_insert_with(Instant::now);
            if since.elapsed() >= shared.cfg.frame_deadline {
                if congest_telemetry::enabled() {
                    shared.metrics.loris_reclaimed.inc();
                }
                fatal = true;
            }
        }

        if !requests.is_empty() {
            outbuf.clear();
            answer_batch(shared, &requests, &mut outbuf);
            if stream.write_all(&outbuf).is_err() {
                return; // slow/dead reader tripped the write timeout
            }
        }
        // The decode pass above split out every complete frame, so once
        // `draining` is set any leftover bytes are a partial frame that
        // will never be answered: after EOF no more bytes are coming,
        // and the shutdown drain only answers requests already read.
        // Waiting for the buffer to empty instead would spin forever on
        // a truncated frame (EOF re-reads Ok(0) in a tight loop).
        if fatal || draining {
            let _ = stream.flush();
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    }
}

/// Answers one batch of decoded requests against a single snapshot
/// generation, encoding responses in arrival order. Dist and Path
/// requests inside the window are dispatched through the engine's batch
/// entry points, so shard locks are taken once per batch.
fn answer_batch<W: PortableWeight>(
    shared: &Shared<W>,
    requests: &[Result<Request, (u32, Status)>],
    out: &mut Vec<u8>,
) {
    let telemetry = congest_telemetry::enabled();
    let t0 = telemetry.then(Instant::now);
    let generation = shared.cell.load();
    let (engine, gen) = (&generation.engine, generation.number);
    let window = shared.cfg.window;

    // Take permits for the window's query ops from the global in-flight
    // budget. What the budget cannot cover is shed right here with
    // `Overloaded` — never queued — so a fleet-wide spike degrades into
    // fast typed refusals. Control ops (Ping/Reload/Health) bypass the
    // budget: the server stays observable while shedding.
    let query_ops = requests.iter().take(window).flatten().filter(|req| req.is_query()).count();
    let granted = shared.acquire_inflight(query_ops);

    // Group the in-window, budget-granted dist/path requests for the
    // batch entry points.
    let mut dist_pairs: Vec<(u32, u32)> = Vec::new();
    let mut path_pairs: Vec<(u32, u32)> = Vec::new();
    let mut qseen = 0usize;
    for req in requests.iter().take(window).flatten() {
        match *req {
            Request::Dist { u, v, .. } => {
                if qseen < granted {
                    dist_pairs.push((u, v));
                }
                qseen += 1;
            }
            Request::Path { u, v, .. } => {
                if qseen < granted {
                    path_pairs.push((u, v));
                }
                qseen += 1;
            }
            Request::KNearest { .. } => qseen += 1,
            _ => {}
        }
    }
    let dist_t0 = telemetry.then(Instant::now);
    let dists = engine.dist_batch(&dist_pairs);
    let dist_ns = per_op_ns(dist_t0, dists.len());
    let path_t0 = telemetry.then(Instant::now);
    let paths = engine.path_batch(&path_pairs);
    let path_ns = per_op_ns(path_t0, paths.len());

    let (mut di, mut pi) = (0, 0);
    let mut qi = 0usize;
    let mut busy = 0u64;
    let mut overloaded = 0u64;
    for (i, req) in requests.iter().enumerate() {
        let req = match req {
            Ok(req) => req,
            Err((id, status)) => {
                proto::encode_status(out, *id, *status, gen);
                continue;
            }
        };
        if i >= window {
            // Backpressure: out-of-window requests are refused *now*
            // instead of queueing unboundedly behind a slow batch.
            busy += 1;
            proto::encode_status(out, req.id(), Status::Busy, gen);
            continue;
        }
        if req.is_query() {
            let granted_here = qi < granted;
            qi += 1;
            if !granted_here {
                // The global in-flight budget is spent: shed, don't queue.
                overloaded += 1;
                proto::encode_status(out, req.id(), Status::Overloaded, gen);
                continue;
            }
        }
        let frame_cap = out.len();
        match *req {
            Request::Dist { id, .. } => {
                let r = &dists[di];
                di += 1;
                match r {
                    Ok(Some(w)) => proto::encode_dist_ok(out, id, gen, *w),
                    Ok(None) => proto::encode_status(out, id, Status::Unreachable, gen),
                    Err(e) => proto::encode_status(out, id, query_status(e), gen),
                }
                if let Some(ns) = dist_ns {
                    shared.metrics.op_dist.record(ns);
                }
            }
            Request::Path { id, .. } => {
                let r = &paths[pi];
                pi += 1;
                match r {
                    Ok(Some(p)) => {
                        proto::encode_path_ok(out, id, gen, p);
                        if out.len() - frame_cap - 4 > shared.cfg.max_frame_len as usize {
                            out.truncate(frame_cap);
                            proto::encode_status(out, id, Status::TooLarge, gen);
                        }
                    }
                    Ok(None) => proto::encode_status(out, id, Status::Unreachable, gen),
                    Err(e) => proto::encode_status(out, id, query_status(e), gen),
                }
                if let Some(ns) = path_ns {
                    shared.metrics.op_path.record(ns);
                }
            }
            Request::KNearest { id, u, k } => {
                let op_t0 = telemetry.then(Instant::now);
                match engine.k_nearest(u, k as usize) {
                    Ok(items) => {
                        proto::encode_k_nearest_ok(out, id, gen, &items);
                        if out.len() - frame_cap - 4 > shared.cfg.max_frame_len as usize {
                            out.truncate(frame_cap);
                            proto::encode_status(out, id, Status::TooLarge, gen);
                        }
                    }
                    Err(e) => proto::encode_status(out, id, query_status(&e), gen),
                }
                if let Some(ns) = per_op_ns(op_t0, 1) {
                    shared.metrics.op_k_nearest.record(ns);
                }
            }
            Request::Ping { id } => proto::encode_status(out, id, Status::Ok, gen),
            Request::Health { id } => {
                proto::encode_health_ok(out, id, gen, &shared.health_report());
            }
            Request::Reload { id } => match shared.reload() {
                Ok(new_gen) => proto::encode_status(out, id, Status::Ok, new_gen),
                Err(ServeError::Io(e)) if e.kind() == ErrorKind::Unsupported => {
                    proto::encode_status(out, id, Status::NotSupported, gen);
                }
                Err(_) => proto::encode_status(out, id, Status::Internal, gen),
            },
        }
    }
    shared.release_inflight(granted);
    if busy > 0 {
        shared.shed_busy.fetch_add(busy, Ordering::SeqCst);
        if telemetry {
            shared.metrics.busy.add(busy);
        }
    }
    if overloaded > 0 {
        shared.shed_overloaded.fetch_add(overloaded, Ordering::SeqCst);
        if telemetry {
            shared.metrics.overloaded.add(overloaded);
        }
    }
    if let Some(t0) = t0 {
        let tele = congest_telemetry::global();
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        shared.metrics.batch_frames.record(requests.len() as u64);
        tele.complete_span(
            "serve.batch",
            tele.now_ns().saturating_sub(ns),
            ns,
            vec![
                ("frames".to_string(), requests.len().to_string()),
                ("generation".to_string(), gen.to_string()),
                ("bytes_out".to_string(), out.len().to_string()),
            ],
        );
    }
}

/// Amortized per-op share of a batch group's wall time; `None` while
/// telemetry is disabled or the group was empty.
fn per_op_ns(t0: Option<Instant>, ops: usize) -> Option<u64> {
    let t0 = t0?;
    if ops == 0 {
        return None;
    }
    Some(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX) / ops as u64)
}

fn query_status(e: &QueryError) -> Status {
    match e {
        QueryError::NodeOutOfRange { .. } => Status::NodeOutOfRange,
        QueryError::CorruptSuccessors { .. } => Status::Corrupt,
        // A paged backend lost a block (I/O or checksum): the server is
        // at fault, not the request — surface it as an internal error so
        // well-formed clients can retry elsewhere.
        QueryError::BlockUnavailable { .. } => Status::Internal,
    }
}
