//! A small growable bitset used for per-neighbor "already knows item i"
//! bookkeeping in the flooding primitive (dense, append-mostly workload
//! where `Vec<bool>` would waste 8x memory).

/// Growable bitset over `u64` words.
#[derive(Clone, Debug, Default)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty bitset.
    #[must_use]
    pub fn new() -> Self {
        BitSet::default()
    }

    /// Sets bit `i`, growing as needed.
    pub fn set(&mut self, i: usize) {
        let w = i / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << (i % 64);
    }

    /// Tests bit `i` (unset bits beyond the end read as false).
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        let w = i / 64;
        w < self.words.len() && (self.words[w] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    #[must_use]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = BitSet::new();
        assert!(!b.get(0));
        assert!(!b.get(1000));
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(1000);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(1000));
        assert!(!b.get(65));
        assert_eq!(b.count(), 4);
    }

    #[test]
    fn grows_on_demand() {
        let mut b = BitSet::new();
        b.set(500);
        assert!(b.get(500));
        assert!(!b.get(499));
    }
}
