//! The round-synchronous CONGEST engine, built on a zero-allocation,
//! double-buffered message plane.
//!
//! Model (paper §1.1): n nodes communicate over the *underlying undirected
//! graph* of the input in synchronous rounds. In each round every node may
//! send a bounded number of O(log n)-bit messages along each incident
//! channel; messages sent in round r are received in round r+1. Nodes have
//! unbounded local computation.
//!
//! The engine enforces the model mechanically: sends to non-neighbors and
//! per-channel bandwidth violations abort the simulation with a
//! [`SimError`], so a protocol that compiles *and runs* is certified to be
//! a legal CONGEST algorithm, and its measured round count is the quantity
//! the paper bounds.
//!
//! ## The message plane
//!
//! Every phase of the APSP pipeline executes through [`Engine::run`], so
//! its per-round constant factor multiplies the paper's Õ(n^{4/3}) round
//! counts. The round loop therefore performs **no heap allocation in
//! steady state**; all buffers are sized once per phase from the topology
//! and reused every round:
//!
//! * **Send side** — [`Topology`] stores the communication graph in CSR
//!   form: one flat sorted neighbor array plus per-node offsets. Each
//!   *directed channel* (v, i-th neighbor of v) owns `bandwidth` slots in
//!   a flat `out` array; [`Outbox::send`] writes messages straight into
//!   the sender's slot range and bumps a per-channel counter. Target
//!   resolution goes through a dense, epoch-stamped neighbor-index map
//!   (O(1) per send after an O(deg) lazy fill) instead of a binary search.
//! * **Receive side** — delivery walks each receiver's channel slots via
//!   the precomputed reverse-channel index ([`Topology`] knows, for every
//!   channel (v → u), where (u ← v) lives in u's row) and compacts the
//!   messages into one flat envelope array with per-node offsets. Since a
//!   node's channel slots are ordered by neighbor id, the compacted inbox
//!   is automatically **sender-id sorted** — the deterministic receive
//!   order the protocols rely on. Two such arrays (current/next) are
//!   swapped each round: the classic double buffer.
//! * **Stepping** — above [`SimConfig::parallel_threshold`] nodes, rounds
//!   are stepped by a persistent [`crate::parallel::WorkerPool`] (spawned
//!   once per phase, round barrier per round) over contiguous node ranges
//!   whose outbox slot ranges are disjoint by construction. The parallel
//!   path runs the same per-node step function in the same index order
//!   within each range, so results are bit-identical to sequential
//!   stepping (enforced by the determinism test suite).
//! * **Accounting** — in-flight messages are the length of the current
//!   envelope array (O(1)), not a per-round sum over all inboxes. Protocol
//!   activity is tracked the same way: instead of an O(n) scan of
//!   [`NodeLogic::active`] per round, the engine caches each node's flag
//!   and folds per-worker deltas into a counter as nodes step, so the
//!   quiescence check is O(1) and the maintenance cost is O(nodes whose
//!   activity changed).

use crate::error::SimError;
use crate::fault::{FaultCounters, FaultPlan, FaultSpec, MsgFault};
use crate::metrics::PhaseReport;
use crate::parallel::{worker_count, WorkerPool};
use congest_graph::{Graph, NodeId, Weight};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Communication topology in CSR form: the undirected adjacency over which
/// messages flow, with precomputed reverse-channel indices. Extracted from
/// a [`Graph`] so the engine is weight-agnostic.
#[derive(Clone, Debug)]
pub struct Topology {
    /// `off[v]..off[v+1]` delimits v's row in `adj` (and v's channel slots).
    off: Vec<u32>,
    /// Flat neighbor array; each row sorted ascending.
    adj: Vec<NodeId>,
    /// `rev[s]` for slot `s` = (v, u): the slot of the reverse channel
    /// (u, v) in u's row. Delivery walks a receiver's slots through this.
    rev: Vec<u32>,
}

impl Topology {
    /// Builds the communication topology of `g` (union of in/out adjacency;
    /// §1.1: channels are bidirectional even for directed inputs).
    #[must_use]
    pub fn from_graph<W: Weight>(g: &Graph<W>) -> Self {
        Self::from_adjacency(g.n(), |v| g.comm_neighbors(v))
    }

    /// Builds a topology from any sorted-adjacency accessor.
    fn from_adjacency<'a>(n: usize, neighbors_of: impl Fn(NodeId) -> &'a [NodeId]) -> Self {
        let mut off = Vec::with_capacity(n + 1);
        off.push(0u32);
        let mut adj: Vec<NodeId> = Vec::new();
        for v in 0..n as NodeId {
            let row = neighbors_of(v);
            debug_assert!(row.windows(2).all(|w| w[0] < w[1]), "adjacency rows must be sorted");
            adj.extend_from_slice(row);
            let total = u32::try_from(adj.len()).expect("channel count exceeds u32");
            off.push(total);
        }
        // Reverse-channel index: for slot s = (v, u), find v in u's row.
        let mut rev = vec![0u32; adj.len()];
        for v in 0..n {
            let (lo, hi) = (off[v] as usize, off[v + 1] as usize);
            for s in lo..hi {
                let u = adj[s] as usize;
                let urow = &adj[off[u] as usize..off[u + 1] as usize];
                let i = urow
                    .binary_search(&(v as NodeId))
                    .expect("communication adjacency must be symmetric");
                rev[s] = off[u] + u32::try_from(i).expect("row length exceeds u32");
            }
        }
        Topology { off, adj, rev }
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.off.len() - 1
    }

    /// Total number of *directed* channels (twice the undirected edges).
    #[must_use]
    pub fn channels(&self) -> usize {
        self.adj.len()
    }

    /// Sorted neighbor list of `v`.
    #[must_use]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[self.off[v as usize] as usize..self.off[v as usize + 1] as usize]
    }

    /// Degree of `v` in the communication graph.
    #[must_use]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.off[v as usize + 1] - self.off[v as usize]) as usize
    }

    /// `true` iff `u`–`v` is a channel.
    #[must_use]
    pub fn are_neighbors(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }
}

/// A received message with its sender.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// The neighbor that sent this message in the previous round.
    pub from: NodeId,
    /// Payload.
    pub msg: M,
}

/// Read-only per-node view passed to [`NodeLogic::on_round`].
#[derive(Debug)]
pub struct NodeEnv<'a> {
    /// This node's id.
    pub id: NodeId,
    /// Total number of nodes (global knowledge of n is standard in CONGEST).
    pub n: usize,
    /// Current round number, starting at 0.
    pub round: u64,
    /// Sorted neighbor ids.
    pub neighbors: &'a [NodeId],
}

impl NodeEnv<'_> {
    /// Position of neighbor `id` in [`NodeEnv::neighbors`], usable with
    /// [`Outbox::send_nbr`]. `None` if `id` is not a neighbor.
    #[must_use]
    pub fn neighbor_index(&self, id: NodeId) -> Option<usize> {
        self.neighbors.binary_search(&id).ok()
    }
}

/// Dense neighbor-index map: `idx[u]` is the position of `u` in the current
/// node's neighbor list, valid only while `stamp[u]` equals the current
/// epoch. One map lives per worker and is re-stamped (not cleared) per
/// node, so lookups are O(1) and a node that never sends pays nothing.
struct NbrMap {
    stamp: Vec<u64>,
    idx: Vec<u32>,
    epoch: u64,
}

impl NbrMap {
    fn new(n: usize) -> Self {
        NbrMap { stamp: vec![0; n], idx: vec![0; n], epoch: 0 }
    }

    /// Re-key the map to `neighbors` (O(deg)).
    fn fill(&mut self, neighbors: &[NodeId]) {
        self.epoch += 1;
        for (i, &u) in neighbors.iter().enumerate() {
            self.stamp[u as usize] = self.epoch;
            self.idx[u as usize] = u32::try_from(i).expect("degree exceeds u32");
        }
    }

    fn get(&self, u: NodeId) -> Option<usize> {
        (self.stamp[u as usize] == self.epoch).then(|| self.idx[u as usize] as usize)
    }
}

/// Per-round send view with CONGEST legality checks, writing directly into
/// the sender's channel slots of the flat message plane.
pub struct Outbox<'a, M> {
    from: NodeId,
    round: u64,
    neighbors: &'a [NodeId],
    bandwidth: u32,
    /// Per-channel message counts for this node's `deg` channels.
    cnt: &'a mut [u32],
    /// This node's `deg * bandwidth` message slots.
    buf: &'a mut [Option<M>],
    map: &'a mut NbrMap,
    map_filled: bool,
    queued: u32,
    error: Option<SimError>,
}

impl<'a, M> Outbox<'a, M> {
    fn new(
        from: NodeId,
        round: u64,
        neighbors: &'a [NodeId],
        bandwidth: u32,
        cnt: &'a mut [u32],
        buf: &'a mut [Option<M>],
        map: &'a mut NbrMap,
    ) -> Self {
        Outbox {
            from,
            round,
            neighbors,
            bandwidth,
            cnt,
            buf,
            map,
            map_filled: false,
            queued: 0,
            error: None,
        }
    }

    /// Queues `msg` for delivery to neighbor `to` next round.
    ///
    /// Violations (non-neighbor target, bandwidth overrun) are recorded and
    /// abort the simulation at the end of the round; the first violation
    /// wins.
    pub fn send(&mut self, to: NodeId, msg: M) {
        if self.error.is_some() {
            return;
        }
        if !self.map_filled {
            self.map.fill(self.neighbors);
            self.map_filled = true;
        }
        match self.map.get(to) {
            None => {
                self.error =
                    Some(SimError::NotANeighbor { from: self.from, to, round: self.round });
            }
            Some(i) => self.push_slot(i, msg),
        }
    }

    /// Queues `msg` for the neighbor at position `ni` of
    /// [`NodeEnv::neighbors`] — the zero-lookup fast path for protocols
    /// that already track neighbors by index.
    ///
    /// # Panics
    /// Panics if `ni` is out of range (a protocol bug, not a CONGEST
    /// violation — there is no node the message could even be addressed to).
    pub fn send_nbr(&mut self, ni: usize, msg: M) {
        if self.error.is_some() {
            return;
        }
        assert!(ni < self.neighbors.len(), "send_nbr: neighbor index out of range");
        self.push_slot(ni, msg);
    }

    /// Sends a copy of `msg` to every neighbor. Broadcast targets are
    /// legal by construction, so this skips target resolution entirely and
    /// only checks bandwidth.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        for ni in 0..self.neighbors.len() {
            if self.error.is_some() {
                return;
            }
            self.push_slot(ni, msg.clone());
        }
    }

    fn push_slot(&mut self, ni: usize, msg: M) {
        let used = self.cnt[ni];
        if used >= self.bandwidth {
            self.error = Some(SimError::BandwidthExceeded {
                from: self.from,
                to: self.neighbors[ni],
                round: self.round,
                limit: self.bandwidth,
            });
            return;
        }
        self.buf[ni * self.bandwidth as usize + used as usize] = Some(msg);
        self.cnt[ni] = used + 1;
        self.queued += 1;
    }

    /// Number of messages queued so far this round.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queued as usize
    }
}

/// Node-local protocol logic. One value of the implementing type exists per
/// node; the engine guarantees it only ever touches its own state, its
/// inbox, and its outbox — exactly the CONGEST information boundary.
pub trait NodeLogic: Send {
    /// Message type exchanged by this protocol. One `Msg` models O(1)
    /// machine words (ids, weights, distance values), matching the paper's
    /// bandwidth assumption. (`Sync` because inboxes are shared read-only
    /// across worker threads during a parallel step.)
    type Msg: Clone + Send + Sync + 'static;

    /// Called once per round. Round 0 has an empty inbox (initialization);
    /// in round r > 0 the inbox holds exactly the messages sent to this
    /// node in round r-1, ordered by sender id.
    fn on_round(
        &mut self,
        env: &NodeEnv<'_>,
        inbox: &[Envelope<Self::Msg>],
        out: &mut Outbox<'_, Self::Msg>,
    );

    /// `true` while this node still intends to send in a future round even
    /// if it receives nothing (e.g. it holds queued relay messages).
    /// Reactive protocols can use the default `false`; quiescence is then
    /// "no messages in flight".
    ///
    /// **Contract:** the returned value must be a pure function of the
    /// node's own state and may only change as a result of this node's
    /// [`on_round`](NodeLogic::on_round). The engine samples it once per
    /// step and tracks flips incrementally (the O(1) quiescence check), so
    /// a value driven by interior mutability, time, or anything outside
    /// `on_round` would leave the engine's activity counter stale.
    fn active(&self) -> bool {
        false
    }

    /// On-wire width of one message, in O(log n)-bit machine words: each
    /// node id, weight, hop count, or counter in the payload counts as one
    /// word. The engine charges this into [`PhaseReport::payload_words`]
    /// and tracks the per-phase maximum in
    /// [`PhaseReport::max_msg_words`], so a protocol that grows its
    /// payload (e.g. distance messages that also carry a first-hop id for
    /// successor tracking) is visible in the accounting — and one that
    /// exceeds the CONGEST O(1)-words-per-message budget can be asserted
    /// against. The default models the classic one-word message.
    ///
    /// **Contract:** the width must be a pure function of the message
    /// value (and protocol-wide configuration replicated at every node);
    /// the engine may evaluate it at the receiver.
    fn msg_words(&self, msg: &Self::Msg) -> u32 {
        let _ = msg;
        1
    }

    /// Fault-plane corruption hook: mutate `msg` in place into a different
    /// but *in-domain* payload (stay within the CONGEST word budget and
    /// never produce a value that could index out of bounds at the
    /// receiver), deterministically from `entropy`, and return `true`.
    /// The default returns `false` — "this protocol cannot reinterpret a
    /// damaged frame" — and the engine then drops the message instead
    /// (modeled as a failed payload checksum), counting it as dropped
    /// rather than corrupted.
    ///
    /// **Contract:** like [`msg_words`](NodeLogic::msg_words), this must
    /// be a pure function of `(msg, entropy)` and protocol-wide
    /// configuration; the engine evaluates it at the receiver during the
    /// delivery pass.
    fn corrupt_msg(&self, msg: &mut Self::Msg, entropy: u64) -> bool {
        let _ = (msg, entropy);
        false
    }
}

/// How long to run a phase.
#[derive(Copy, Clone, Debug)]
pub enum RunUntil {
    /// Run exactly this many rounds; error if the protocol is still busy
    /// afterwards. Used for worst-case round charging: the caller passes
    /// the analytical bound and the engine verifies the protocol met it.
    Exact(u64),
    /// Run until no messages are in flight and no node is active, erroring
    /// at `max` rounds. Used for practical round accounting.
    Quiesce {
        /// Safety budget.
        max: u64,
    },
}

/// Engine configuration.
#[derive(Copy, Clone, Debug)]
pub struct SimConfig {
    /// Messages per directed channel per round (paper: O(1); default 1).
    pub bandwidth: u32,
    /// Node-count threshold above which rounds are stepped by the
    /// persistent worker pool. Simulations in this repo are usually small
    /// enough that sequential stepping is faster; heavy *local* computation
    /// inside protocols is parallelized separately by the algorithm crates.
    pub parallel_threshold: usize,
    /// Worker slots for parallel stepping; 0 picks
    /// [`worker_count`](crate::parallel::worker_count) automatically.
    /// Results are identical for every value (determinism suite).
    pub workers: usize,
    /// Optional seeded fault model (see [`crate::fault`]). `None` — or a
    /// spec with every rate zero — takes the exact fault-free code path.
    /// Because the spec rides inside the config, every primitive and
    /// algorithm built on the engine inherits faults without per-call-site
    /// changes.
    pub fault: Option<FaultSpec>,
    /// Per-round trace sampling interval: every `trace_rounds`-th round
    /// emits an `engine.round` instant event into the global telemetry
    /// plane (when it is enabled). 0 — the default — disables sampling,
    /// and the round loop does not touch telemetry at all.
    pub trace_rounds: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            bandwidth: 1,
            parallel_threshold: 4096,
            workers: 0,
            fault: None,
            trace_rounds: 0,
        }
    }
}

/// The flat double-buffered message plane for one phase. All vectors are
/// sized once from the topology; the round loop only writes in place,
/// `clear()`s (capacity-preserving) and swaps.
struct Plane<M> {
    /// Per directed channel: messages queued this round (send side).
    out_cnt: Vec<u32>,
    /// `channels * bandwidth` message slots (send side).
    out_buf: Vec<Option<M>>,
    /// Compacted inbox being *read* this round, grouped by receiver,
    /// each group sorted by sender id.
    cur_buf: Vec<Envelope<M>>,
    /// `cur_off[v]..cur_off[v+1]` delimits v's inbox in `cur_buf`.
    cur_off: Vec<u32>,
    /// The buffers being *written* during delivery; swapped into place at
    /// the end of every round.
    next_buf: Vec<Envelope<M>>,
    next_off: Vec<u32>,
}

impl<M> Plane<M> {
    fn new(topo: &Topology, bandwidth: u32) -> Self {
        let channels = topo.channels();
        let slots =
            channels.checked_mul(bandwidth as usize).expect("channels * bandwidth overflows usize");
        Plane {
            out_cnt: vec![0; channels],
            out_buf: (0..slots).map(|_| None).collect(),
            cur_buf: Vec::new(),
            cur_off: vec![0; topo.n() + 1],
            next_buf: Vec::new(),
            next_off: vec![0; topo.n() + 1],
        }
    }

    /// Messages currently in flight (delivered last round, readable this
    /// round). O(1) — this replaces the old per-round sum over all inboxes.
    fn in_flight(&self) -> usize {
        self.cur_buf.len()
    }

    /// Moves every queued message from the send slots into the next inbox
    /// buffer, grouped by receiver and sorted by sender, resetting the
    /// send side for the next round. Returns the number delivered and
    /// charges per-sender counts into `node_sent`.
    fn deliver(&mut self, topo: &Topology, bandwidth: u32, node_sent: &mut [u64]) -> u64 {
        let b = bandwidth as usize;
        self.next_buf.clear();
        self.next_off[0] = 0;
        let mut delivered = 0u64;
        for u in 0..topo.n() {
            let (lo, hi) = (topo.off[u] as usize, topo.off[u + 1] as usize);
            for s in lo..hi {
                // Slot s is the channel u ← adj[s]; its send side lives at
                // the reverse slot in the sender's row.
                let rs = topo.rev[s] as usize;
                let c = self.out_cnt[rs];
                if c > 0 {
                    let from = topo.adj[s];
                    node_sent[from as usize] += u64::from(c);
                    delivered += u64::from(c);
                    for t in 0..c as usize {
                        let msg = self.out_buf[rs * b + t].take().expect("counted slot is full");
                        self.next_buf.push(Envelope { from, msg });
                    }
                    self.out_cnt[rs] = 0;
                }
            }
            self.next_off[u + 1] =
                u32::try_from(self.next_buf.len()).expect("in-flight messages exceed u32");
        }
        std::mem::swap(&mut self.cur_buf, &mut self.next_buf);
        std::mem::swap(&mut self.cur_off, &mut self.next_off);
        delivered
    }

    /// [`deliver`](Self::deliver) with a fault filter: `fate` is consulted
    /// once per message (sender, receiver, index on the channel, payload)
    /// and may mutate the payload in place; returning `false` discards the
    /// message. Sends are still charged into `node_sent` (the bandwidth
    /// was consumed), but only surviving messages count as delivered.
    ///
    /// This is a separate method, not a branch inside `deliver`, so the
    /// fault-free path stays byte-identical to its pre-fault code.
    fn deliver_faulty<F>(
        &mut self,
        topo: &Topology,
        bandwidth: u32,
        node_sent: &mut [u64],
        fate: &mut F,
    ) -> u64
    where
        F: FnMut(NodeId, NodeId, u32, &mut M) -> bool,
    {
        let b = bandwidth as usize;
        self.next_buf.clear();
        self.next_off[0] = 0;
        let mut delivered = 0u64;
        for u in 0..topo.n() {
            let (lo, hi) = (topo.off[u] as usize, topo.off[u + 1] as usize);
            for s in lo..hi {
                let rs = topo.rev[s] as usize;
                let c = self.out_cnt[rs];
                if c > 0 {
                    let from = topo.adj[s];
                    node_sent[from as usize] += u64::from(c);
                    for t in 0..c as usize {
                        let mut msg =
                            self.out_buf[rs * b + t].take().expect("counted slot is full");
                        if fate(from, u as NodeId, t as u32, &mut msg) {
                            delivered += 1;
                            self.next_buf.push(Envelope { from, msg });
                        }
                    }
                    self.out_cnt[rs] = 0;
                }
            }
            self.next_off[u + 1] =
                u32::try_from(self.next_buf.len()).expect("in-flight messages exceed u32");
        }
        std::mem::swap(&mut self.cur_buf, &mut self.next_buf);
        std::mem::swap(&mut self.cur_off, &mut self.next_off);
        delivered
    }
}

/// The round-loop executor for one protocol phase over a fixed topology.
pub struct Engine<'t> {
    topo: &'t Topology,
    cfg: SimConfig,
    plan: Option<FaultPlan>,
}

impl<'t> Engine<'t> {
    /// Creates an engine over `topo`. A fault spec in `cfg` (with at least
    /// one non-zero rate) becomes the engine's seeded fault plan.
    #[must_use]
    pub fn new(topo: &'t Topology, cfg: SimConfig) -> Self {
        let plan = cfg.fault.filter(FaultSpec::is_active).map(FaultPlan::Seeded);
        Engine { topo, cfg, plan }
    }

    /// Replaces the fault plan (e.g. with an explicit
    /// [`FaultPlan::Script`] in tests). Overrides whatever `cfg.fault`
    /// installed.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// The engine's topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// Runs one protocol phase: `nodes[v]` is node v's logic. Returns the
    /// phase report (unnamed; callers label it via
    /// [`crate::Recorder::record`]).
    ///
    /// Observability: the report's `wall_ns` is always populated (two
    /// `Instant` reads per phase — it never participates in report
    /// equality); when the global `congest_telemetry` plane is enabled
    /// the phase additionally runs inside an `engine.run` span, and
    /// [`SimConfig::trace_rounds`] samples per-round instant events.
    ///
    /// # Errors
    /// Propagates CONGEST violations and budget exhaustion as [`SimError`].
    pub fn run<N: NodeLogic>(
        &self,
        nodes: &mut [N],
        until: RunUntil,
    ) -> Result<PhaseReport, SimError> {
        let phase_start = std::time::Instant::now();
        let span = congest_telemetry::with(|t| t.span_start("engine.run"));
        let mut result = self.run_inner(nodes, until);
        let wall_ns = u64::try_from(phase_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if let Ok(rep) = &mut result {
            rep.wall_ns = wall_ns;
        }
        if let Some(id) = span {
            let attrs = match &result {
                Ok(rep) => vec![
                    ("rounds".to_string(), rep.rounds.to_string()),
                    ("messages".to_string(), rep.messages.to_string()),
                    ("payload_words".to_string(), rep.payload_words.to_string()),
                ],
                Err(e) => vec![("error".to_string(), e.to_string())],
            };
            congest_telemetry::global().span_end_with(id, attrs);
        }
        result
    }

    /// [`run`](Self::run) minus the phase-level timing and telemetry
    /// wrapper (the returned report's `wall_ns` stays 0). Exists only so
    /// the overhead-guard bench can measure what the instrumentation
    /// costs when telemetry is disabled; everything else should call
    /// `run`.
    ///
    /// # Errors
    /// Propagates CONGEST violations and budget exhaustion as [`SimError`].
    #[doc(hidden)]
    pub fn run_uninstrumented<N: NodeLogic>(
        &self,
        nodes: &mut [N],
        until: RunUntil,
    ) -> Result<PhaseReport, SimError> {
        self.run_inner(nodes, until)
    }

    fn run_inner<N: NodeLogic>(
        &self,
        nodes: &mut [N],
        until: RunUntil,
    ) -> Result<PhaseReport, SimError> {
        let n = self.topo.n();
        assert_eq!(nodes.len(), n, "one NodeLogic per topology node");
        let bandwidth = self.cfg.bandwidth;

        let mut plane: Plane<N::Msg> = Plane::new(self.topo, bandwidth);
        let mut node_sent = vec![0u64; n];
        let mut messages: u64 = 0;
        let mut rounds: u64 = 0;
        let mut peak_in_flight: u64 = 0;
        let mut payload_words: u64 = 0;
        let mut max_msg_words: u32 = 0;

        // Persistent worker team for the whole phase; nothing is spawned
        // per round. `workers == 1` keeps everything on this thread.
        let workers = if n >= self.cfg.parallel_threshold {
            if self.cfg.workers > 0 {
                self.cfg.workers
            } else {
                worker_count(n)
            }
        } else {
            1
        };
        let pool = (workers > 1).then(|| WorkerPool::new(workers));
        let node_chunk = n.div_ceil(workers.max(1));
        let mut maps: Vec<NbrMap> = (0..workers).map(|_| NbrMap::new(n)).collect();
        let mut errors: Vec<Option<(usize, SimError)>> = vec![None; workers];

        // Active-set tracking: one O(n) scan up front, then incremental.
        // `active_flags[i]` caches node i's last-known `active()`;
        // `step_node` records flips as ±1 in its worker's delta cell.
        let mut active_flags: Vec<bool> = nodes.iter().map(N::active).collect();
        let mut active_count: usize = active_flags.iter().filter(|&&f| f).count();
        let mut active_delta: Vec<i64> = vec![0; workers];

        // Fault plane: all decisions are pure hashes of the plan, so both
        // stepping paths and every retry observe the identical pattern.
        let plan = self.plan.as_ref();
        let mut faults = FaultCounters::default();
        let node_faults = plan.is_some_and(FaultPlan::has_node_faults);
        let mut down: Vec<bool> = vec![false; if node_faults { n } else { 0 }];

        let budget = match until {
            RunUntil::Exact(r) => r,
            RunUntil::Quiesce { max } => max,
        };

        loop {
            let in_flight = plane.in_flight();
            let anyone_active = active_count > 0;
            match until {
                RunUntil::Exact(r) => {
                    if rounds >= r {
                        if in_flight > 0 || anyone_active {
                            return Err(SimError::RoundBudgetExhausted { budget });
                        }
                        break;
                    }
                }
                RunUntil::Quiesce { max } => {
                    if rounds > 0 && in_flight == 0 && !anyone_active {
                        break;
                    }
                    if rounds >= max {
                        return Err(SimError::RoundBudgetExhausted { budget });
                    }
                }
            }

            // Crash plane: recompute the down set at the round boundary. A
            // down node neither steps nor reads the messages that arrived
            // this round (they vanish when the inbox buffers swap); its
            // local state survives for the eventual warm restart.
            if node_faults {
                let plan = plan.expect("node_faults implies a plan");
                for (v, d) in down.iter_mut().enumerate() {
                    *d = plan.node_down(v as NodeId, rounds);
                    if *d {
                        faults.crashed_rounds += 1;
                        faults.injected += 1;
                    }
                }
            }
            let down_ro: Option<&[bool]> = node_faults.then_some(&down[..]);

            // Step every node for round `rounds`. Split the plane into its
            // read side (current inboxes) and write side (send slots).
            let Plane { out_cnt, out_buf, cur_buf, cur_off, .. } = &mut plane;
            let (in_buf, in_off): (&[Envelope<N::Msg>], &[u32]) = (cur_buf, cur_off);
            match &pool {
                Some(pool) => {
                    let ctx = StepCtx {
                        topo: self.topo,
                        round: rounds,
                        bandwidth,
                        n,
                        nodes: SyncPtr(nodes.as_mut_ptr()),
                        in_buf,
                        in_off,
                        out_cnt: SyncPtr(out_cnt.as_mut_ptr()),
                        out_buf: SyncPtr(out_buf.as_mut_ptr()),
                        maps: SyncPtr(maps.as_mut_ptr()),
                        errors: SyncPtr(errors.as_mut_ptr()),
                        active_flags: SyncPtr(active_flags.as_mut_ptr()),
                        active_delta: SyncPtr(active_delta.as_mut_ptr()),
                        down: down_ro,
                    };
                    pool.run(&|slot| {
                        let lo = (slot * node_chunk).min(n);
                        let hi = ((slot + 1) * node_chunk).min(n);
                        // SAFETY: slots own disjoint node ranges, hence
                        // disjoint outbox slot ranges, active flags, maps,
                        // error and activity-delta cells;
                        // the barrier in `pool.run` sequences all writes
                        // before the main thread reads them.
                        unsafe { step_range(&ctx, slot, lo, hi) };
                    });
                }
                None => {
                    let b = bandwidth as usize;
                    let map = &mut maps[0];
                    let err = &mut errors[0];
                    let delta = &mut active_delta[0];
                    for (i, node) in nodes.iter_mut().enumerate() {
                        if down_ro.is_some_and(|d| d[i]) {
                            continue;
                        }
                        let (a, z) = (self.topo.off[i] as usize, self.topo.off[i + 1] as usize);
                        let inbox = &in_buf[in_off[i] as usize..in_off[i + 1] as usize];
                        step_node(
                            self.topo,
                            rounds,
                            bandwidth,
                            n,
                            i,
                            node,
                            inbox,
                            &mut out_cnt[a..z],
                            &mut out_buf[a * b..z * b],
                            map,
                            err,
                            &mut active_flags[i],
                            delta,
                        );
                    }
                }
            }

            // First CONGEST violation wins, by node id (worker ranges are
            // id-ordered, so the first per-worker error with the smallest
            // node index is the global first).
            if let Some((_, err)) =
                errors.iter_mut().filter_map(Option::take).min_by_key(|(i, _)| *i)
            {
                return Err(err);
            }

            // Fold the per-worker activity deltas into the counter.
            let delta: i64 = active_delta.iter().sum();
            active_count = usize::try_from(active_count as i64 + delta)
                .expect("active counter must stay non-negative");
            active_delta.iter_mut().for_each(|d| *d = 0);

            // Deliver into the next buffer and swap: receive order is
            // sender-id sorted by construction of the slot walk. With a
            // fault plan, each message's fate is decided here — the single
            // injection point every protocol inherits.
            let delivered = match plan {
                None => plane.deliver(self.topo, bandwidth, &mut node_sent),
                Some(plan) => {
                    let nodes_ro: &[N] = nodes;
                    plane.deliver_faulty(
                        self.topo,
                        bandwidth,
                        &mut node_sent,
                        &mut |from, to, nth, msg: &mut N::Msg| match plan
                            .message_fault(rounds, from, to, nth)
                        {
                            None => true,
                            Some(MsgFault::Drop { flap }) => {
                                faults.dropped += 1;
                                faults.injected += 1;
                                if flap {
                                    faults.flapped += 1;
                                }
                                false
                            }
                            Some(MsgFault::Corrupt { entropy }) => {
                                if nodes_ro[to as usize].corrupt_msg(msg, entropy) {
                                    faults.corrupted += 1;
                                    faults.injected += 1;
                                    true
                                } else {
                                    // Protocol can't mutate this payload:
                                    // model the corruption as a frame that
                                    // failed its checksum and was discarded.
                                    faults.dropped += 1;
                                    faults.injected += 1;
                                    false
                                }
                            }
                        },
                    )
                }
            };
            messages += delivered;
            peak_in_flight = peak_in_flight.max(delivered);
            // Charge payload widths for the just-delivered messages (they
            // now sit in the current inbox buffer, grouped by receiver).
            if delivered > 0 {
                for (v, node) in nodes.iter().enumerate() {
                    let (lo, hi) = (plane.cur_off[v] as usize, plane.cur_off[v + 1] as usize);
                    for e in &plane.cur_buf[lo..hi] {
                        let w = node.msg_words(&e.msg);
                        payload_words += u64::from(w);
                        max_msg_words = max_msg_words.max(w);
                    }
                }
            }
            // Sampled per-round trace events: the knob check keeps the
            // common trace_rounds == 0 path free of any telemetry call.
            if self.cfg.trace_rounds != 0
                && rounds.is_multiple_of(u64::from(self.cfg.trace_rounds))
                && congest_telemetry::enabled()
            {
                congest_telemetry::global().instant(
                    "engine.round",
                    vec![
                        ("round".to_string(), rounds.to_string()),
                        ("delivered".to_string(), delivered.to_string()),
                        ("active".to_string(), active_count.to_string()),
                    ],
                );
            }
            rounds += 1;
        }

        Ok(PhaseReport {
            name: String::new(),
            rounds,
            messages,
            node_sent,
            peak_in_flight,
            payload_words,
            max_msg_words,
            faults,
            wall_ns: 0, // populated by the `run` wrapper
        })
    }
}

/// Raw pointer wrapper that lets the pool task share per-worker bases.
#[derive(Copy, Clone)]
struct SyncPtr<T>(*mut T);
// SAFETY: every use derives disjoint ranges per worker (see `step_range`).
unsafe impl<T> Send for SyncPtr<T> {}
unsafe impl<T> Sync for SyncPtr<T> {}

/// Shared read-only context of one parallel round step.
struct StepCtx<'a, N: NodeLogic> {
    topo: &'a Topology,
    round: u64,
    bandwidth: u32,
    n: usize,
    nodes: SyncPtr<N>,
    in_buf: &'a [Envelope<N::Msg>],
    in_off: &'a [u32],
    out_cnt: SyncPtr<u32>,
    out_buf: SyncPtr<Option<N::Msg>>,
    maps: SyncPtr<NbrMap>,
    errors: SyncPtr<Option<(usize, SimError)>>,
    active_flags: SyncPtr<bool>,
    active_delta: SyncPtr<i64>,
    /// Per-node crash flags for this round (fault plane), if any.
    down: Option<&'a [bool]>,
}

/// Steps nodes `lo..hi` for worker `slot`.
///
/// # Safety
/// Caller must guarantee that distinct concurrent calls use disjoint
/// `lo..hi` ranges and distinct `slot`s, and that `ctx` outlives the call;
/// the outbox slot ranges of disjoint node ranges are disjoint because the
/// topology is CSR-ordered.
unsafe fn step_range<N: NodeLogic>(ctx: &StepCtx<'_, N>, slot: usize, lo: usize, hi: usize) {
    if lo >= hi {
        return;
    }
    let map = &mut *ctx.maps.0.add(slot);
    let err = &mut *ctx.errors.0.add(slot);
    let delta = &mut *ctx.active_delta.0.add(slot);
    let b = ctx.bandwidth as usize;
    let s0 = ctx.topo.off[lo] as usize;
    let s1 = ctx.topo.off[hi] as usize;
    let cnt = std::slice::from_raw_parts_mut(ctx.out_cnt.0.add(s0), s1 - s0);
    let buf = std::slice::from_raw_parts_mut(ctx.out_buf.0.add(s0 * b), (s1 - s0) * b);
    for i in lo..hi {
        if ctx.down.is_some_and(|d| d[i]) {
            continue;
        }
        let node = &mut *ctx.nodes.0.add(i);
        let (a, z) = (ctx.topo.off[i] as usize - s0, ctx.topo.off[i + 1] as usize - s0);
        let inbox = &ctx.in_buf[ctx.in_off[i] as usize..ctx.in_off[i + 1] as usize];
        let flag = &mut *ctx.active_flags.0.add(i);
        step_node(
            ctx.topo,
            ctx.round,
            ctx.bandwidth,
            ctx.n,
            i,
            node,
            inbox,
            &mut cnt[a..z],
            &mut buf[a * b..z * b],
            map,
            err,
            flag,
            delta,
        );
    }
}

/// Steps one node: builds its env/outbox views over the shared buffers and
/// invokes the protocol. Identical on the sequential and parallel paths.
#[allow(clippy::too_many_arguments)]
fn step_node<N: NodeLogic>(
    topo: &Topology,
    round: u64,
    bandwidth: u32,
    n: usize,
    i: usize,
    node: &mut N,
    inbox: &[Envelope<N::Msg>],
    cnt: &mut [u32],
    buf: &mut [Option<N::Msg>],
    map: &mut NbrMap,
    err: &mut Option<(usize, SimError)>,
    active_flag: &mut bool,
    active_delta: &mut i64,
) {
    let id = i as NodeId;
    let neighbors = topo.neighbors(id);
    let b = bandwidth as usize;
    let deg = neighbors.len();
    let env = NodeEnv { id, n, round, neighbors };
    let mut out =
        Outbox::new(id, round, neighbors, bandwidth, &mut cnt[..deg], &mut buf[..deg * b], map);
    // Panic containment: a panicking protocol must surface as a typed
    // error attributed to its node, not poison the worker pool's barrier.
    // The partially-written outbox is harmless — the run aborts before the
    // delivery pass. (AssertUnwindSafe: the node's state may be torn, but
    // it is never observed again; the engine returns immediately.)
    if catch_unwind(AssertUnwindSafe(|| node.on_round(&env, inbox, &mut out))).is_err() {
        if err.is_none() {
            *err = Some((i, SimError::NodePanic { node: id, round }));
        }
        return;
    }
    if let Some(e) = out.error {
        if err.is_none() {
            *err = Some((i, e));
        }
    }
    // Activity flip tracking: a node's `active()` only changes inside its
    // own `on_round`, so comparing against the cached flag here keeps the
    // engine-level counter exact without any per-round global scan.
    let now = node.active();
    if now != *active_flag {
        *active_flag = now;
        *active_delta += if now { 1 } else { -1 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{path, WeightDist};

    /// Floods a token from node 0; each node records the round it was reached.
    struct Flood {
        reached: Option<u64>,
        is_root: bool,
        sent: bool,
    }

    impl NodeLogic for Flood {
        type Msg = ();
        fn on_round(
            &mut self,
            env: &NodeEnv<'_>,
            inbox: &[Envelope<()>],
            out: &mut Outbox<'_, ()>,
        ) {
            if env.round == 0 && self.is_root {
                self.reached = Some(0);
            }
            if self.reached.is_none() && !inbox.is_empty() {
                self.reached = Some(env.round);
            }
            if self.reached.is_some() && !self.sent {
                out.broadcast(());
                self.sent = true;
            }
        }
    }

    fn flood_nodes(n: usize) -> Vec<Flood> {
        (0..n).map(|i| Flood { reached: None, is_root: i == 0, sent: false }).collect()
    }

    #[test]
    fn flood_on_path_takes_hop_distance_rounds() {
        let g = path(6, false, WeightDist::Unit, 0);
        let topo = Topology::from_graph(&g);
        let engine = Engine::new(&topo, SimConfig::default());
        let mut nodes = flood_nodes(6);
        let report = engine.run(&mut nodes, RunUntil::Quiesce { max: 100 }).unwrap();
        for (i, nd) in nodes.iter().enumerate() {
            assert_eq!(nd.reached, Some(i as u64), "node {i}");
        }
        // 6 rounds of sending (0..=5), plus the delivery round for the tail.
        assert!(report.rounds >= 6 && report.rounds <= 7, "rounds = {}", report.rounds);
        // each node broadcasts exactly once
        assert_eq!(report.messages, 2 * 5);
    }

    #[test]
    fn exact_budget_checks_completion() {
        let g = path(4, false, WeightDist::Unit, 0);
        let topo = Topology::from_graph(&g);
        let engine = Engine::new(&topo, SimConfig::default());
        let mut nodes = flood_nodes(4);
        // Too few rounds: flood still in flight -> error.
        let err = engine.run(&mut nodes, RunUntil::Exact(2)).unwrap_err();
        assert!(matches!(err, SimError::RoundBudgetExhausted { .. }));
        let mut nodes = flood_nodes(4);
        assert!(engine.run(&mut nodes, RunUntil::Exact(10)).is_ok());
    }

    struct BadSender;
    impl NodeLogic for BadSender {
        type Msg = u8;
        fn on_round(&mut self, env: &NodeEnv<'_>, _ib: &[Envelope<u8>], out: &mut Outbox<'_, u8>) {
            if env.round == 0 && env.id == 0 {
                out.send(3, 1); // not a neighbor on a path of 4
            }
        }
    }

    #[test]
    fn non_neighbor_send_rejected() {
        let g = path(4, false, WeightDist::Unit, 0);
        let topo = Topology::from_graph(&g);
        let engine = Engine::new(&topo, SimConfig::default());
        let mut nodes = vec![BadSender, BadSender, BadSender, BadSender];
        let err = engine.run(&mut nodes, RunUntil::Quiesce { max: 10 }).unwrap_err();
        assert_eq!(err, SimError::NotANeighbor { from: 0, to: 3, round: 0 });
    }

    struct OverSender;
    impl NodeLogic for OverSender {
        type Msg = u8;
        fn on_round(&mut self, env: &NodeEnv<'_>, _ib: &[Envelope<u8>], out: &mut Outbox<'_, u8>) {
            if env.round == 0 && env.id == 0 {
                out.send(1, 1);
                out.send(1, 2); // second message on the same channel, B=1
            }
        }
    }

    #[test]
    fn bandwidth_enforced() {
        let g = path(2, false, WeightDist::Unit, 0);
        let topo = Topology::from_graph(&g);
        let engine = Engine::new(&topo, SimConfig::default());
        let mut nodes = vec![OverSender, OverSender];
        let err = engine.run(&mut nodes, RunUntil::Quiesce { max: 10 }).unwrap_err();
        assert_eq!(err, SimError::BandwidthExceeded { from: 0, to: 1, round: 0, limit: 1 });
    }

    #[test]
    fn bandwidth_two_allows_two() {
        let g = path(2, false, WeightDist::Unit, 0);
        let topo = Topology::from_graph(&g);
        let engine = Engine::new(&topo, SimConfig { bandwidth: 2, ..Default::default() });
        let mut nodes = vec![OverSender, OverSender];
        assert!(engine.run(&mut nodes, RunUntil::Quiesce { max: 10 }).is_ok());
    }

    struct Echoer {
        budget: u32,
    }
    impl NodeLogic for Echoer {
        type Msg = u32;
        fn on_round(
            &mut self,
            env: &NodeEnv<'_>,
            inbox: &[Envelope<u32>],
            out: &mut Outbox<'_, u32>,
        ) {
            if env.round == 0 && env.id == 0 {
                out.send(env.neighbors[0], 0);
                return;
            }
            for e in inbox {
                if self.budget > 0 {
                    self.budget -= 1;
                    out.send(e.from, e.msg + 1);
                }
            }
        }
    }

    #[test]
    fn quiesce_stops_when_echoes_exhaust() {
        let g = path(2, false, WeightDist::Unit, 0);
        let topo = Topology::from_graph(&g);
        let engine = Engine::new(&topo, SimConfig::default());
        let mut nodes = vec![Echoer { budget: 3 }, Echoer { budget: 3 }];
        let report = engine.run(&mut nodes, RunUntil::Quiesce { max: 100 }).unwrap();
        // 1 initial send + 6 echoes (3 per node), each in its own round.
        assert_eq!(report.messages, 7);
        assert_eq!(report.rounds, 8);
        assert_eq!(report.max_node_congestion(), 4);
        assert_eq!(report.peak_in_flight, 1);
        // Default width: one word per message.
        assert_eq!(report.payload_words, 7);
        assert_eq!(report.max_msg_words, 1);
    }

    #[test]
    fn payload_words_charged_per_message() {
        struct Wide;
        impl NodeLogic for Wide {
            type Msg = (u32, u32, u32);
            fn on_round(
                &mut self,
                env: &NodeEnv<'_>,
                _ib: &[Envelope<Self::Msg>],
                out: &mut Outbox<'_, Self::Msg>,
            ) {
                if env.round == 0 {
                    out.broadcast((1, 2, 3));
                }
            }
            fn msg_words(&self, _msg: &Self::Msg) -> u32 {
                3
            }
        }
        let g = path(3, false, WeightDist::Unit, 0);
        let topo = Topology::from_graph(&g);
        let engine = Engine::new(&topo, SimConfig::default());
        let mut nodes = vec![Wide, Wide, Wide];
        let report = engine.run(&mut nodes, RunUntil::Quiesce { max: 10 }).unwrap();
        // 4 directed channels, each crossed once, 3 words each.
        assert_eq!(report.messages, 4);
        assert_eq!(report.payload_words, 12);
        assert_eq!(report.max_msg_words, 3);
    }

    #[test]
    fn inbox_ordered_by_sender() {
        struct Collect {
            seen: Vec<NodeId>,
        }
        impl NodeLogic for Collect {
            type Msg = ();
            fn on_round(
                &mut self,
                env: &NodeEnv<'_>,
                inbox: &[Envelope<()>],
                out: &mut Outbox<'_, ()>,
            ) {
                if env.round == 0 && env.id != 2 {
                    out.send(2, ());
                }
                if env.id == 2 {
                    self.seen.extend(inbox.iter().map(|e| e.from));
                }
            }
        }
        // star with center 2
        let g = congest_graph::Graph::<u64>::from_edges(
            4,
            false,
            vec![
                congest_graph::Edge::new(0, 2, 1),
                congest_graph::Edge::new(1, 2, 1),
                congest_graph::Edge::new(3, 2, 1),
            ],
        );
        let topo = Topology::from_graph(&g);
        let engine = Engine::new(&topo, SimConfig::default());
        let mut nodes: Vec<Collect> = (0..4).map(|_| Collect { seen: vec![] }).collect();
        engine.run(&mut nodes, RunUntil::Quiesce { max: 10 }).unwrap();
        assert_eq!(nodes[2].seen, vec![0, 1, 3]);
    }

    #[test]
    fn send_nbr_and_send_agree() {
        struct ByIndex;
        impl NodeLogic for ByIndex {
            type Msg = u32;
            fn on_round(
                &mut self,
                env: &NodeEnv<'_>,
                _ib: &[Envelope<u32>],
                out: &mut Outbox<'_, u32>,
            ) {
                if env.round == 0 {
                    for ni in 0..env.neighbors.len() {
                        out.send_nbr(ni, env.id);
                    }
                }
            }
        }
        let g = path(5, false, WeightDist::Unit, 0);
        let topo = Topology::from_graph(&g);
        let engine = Engine::new(&topo, SimConfig::default());
        let mut nodes = vec![ByIndex, ByIndex, ByIndex, ByIndex, ByIndex];
        let report = engine.run(&mut nodes, RunUntil::Quiesce { max: 10 }).unwrap();
        assert_eq!(report.messages, 8); // every directed path channel once
    }

    #[test]
    fn topology_csr_shape() {
        let g = path(4, false, WeightDist::Unit, 0);
        let topo = Topology::from_graph(&g);
        assert_eq!(topo.n(), 4);
        assert_eq!(topo.channels(), 6);
        assert_eq!(topo.neighbors(1), &[0, 2]);
        assert_eq!(topo.degree(0), 1);
        assert!(topo.are_neighbors(2, 3));
        assert!(!topo.are_neighbors(0, 3));
        // Reverse-channel index round-trips.
        for v in 0..4usize {
            for s in topo.off[v] as usize..topo.off[v + 1] as usize {
                let u = topo.adj[s] as usize;
                let rs = topo.rev[s] as usize;
                assert!((topo.off[u] as usize..topo.off[u + 1] as usize).contains(&rs));
                assert_eq!(topo.adj[rs], v as NodeId);
                assert_eq!(topo.rev[rs] as usize, s);
            }
        }
    }
}
