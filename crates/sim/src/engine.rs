//! The round-synchronous CONGEST engine.
//!
//! Model (paper §1.1): n nodes communicate over the *underlying undirected
//! graph* of the input in synchronous rounds. In each round every node may
//! send a bounded number of O(log n)-bit messages along each incident
//! channel; messages sent in round r are received in round r+1. Nodes have
//! unbounded local computation.
//!
//! The engine enforces the model mechanically: sends to non-neighbors and
//! per-channel bandwidth violations abort the simulation with a
//! [`SimError`], so a protocol that compiles *and runs* is certified to be
//! a legal CONGEST algorithm, and its measured round count is the quantity
//! the paper bounds.

use crate::error::SimError;
use crate::metrics::PhaseReport;
use crate::parallel::par_indexed_map;
use congest_graph::{Graph, NodeId, Weight};

/// Communication topology: the undirected adjacency over which messages
/// flow. Extracted from a [`Graph`] so the engine is weight-agnostic.
#[derive(Clone, Debug)]
pub struct Topology {
    adj: Vec<Vec<NodeId>>,
}

impl Topology {
    /// Builds the communication topology of `g` (union of in/out adjacency;
    /// §1.1: channels are bidirectional even for directed inputs).
    #[must_use]
    pub fn from_graph<W: Weight>(g: &Graph<W>) -> Self {
        let adj = (0..g.n() as NodeId).map(|v| g.comm_neighbors(v).to_vec()).collect();
        Topology { adj }
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Sorted neighbor list of `v`.
    #[must_use]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v as usize]
    }

    /// `true` iff `u`–`v` is a channel.
    #[must_use]
    pub fn are_neighbors(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u as usize].binary_search(&v).is_ok()
    }
}

/// A received message with its sender.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// The neighbor that sent this message in the previous round.
    pub from: NodeId,
    /// Payload.
    pub msg: M,
}

/// Read-only per-node view passed to [`NodeLogic::on_round`].
#[derive(Debug)]
pub struct NodeEnv<'a> {
    /// This node's id.
    pub id: NodeId,
    /// Total number of nodes (global knowledge of n is standard in CONGEST).
    pub n: usize,
    /// Current round number, starting at 0.
    pub round: u64,
    /// Sorted neighbor ids.
    pub neighbors: &'a [NodeId],
}

/// Per-round send buffer with CONGEST legality checks.
pub struct Outbox<'a, M> {
    from: NodeId,
    round: u64,
    neighbors: &'a [NodeId],
    bandwidth: u32,
    counts: Vec<u32>,
    sends: Vec<(NodeId, M)>,
    error: Option<SimError>,
}

impl<'a, M> Outbox<'a, M> {
    fn new(from: NodeId, round: u64, neighbors: &'a [NodeId], bandwidth: u32) -> Self {
        Outbox {
            from,
            round,
            neighbors,
            bandwidth,
            counts: vec![0; neighbors.len()],
            sends: Vec::new(),
            error: None,
        }
    }

    /// Queues `msg` for delivery to neighbor `to` next round.
    ///
    /// Violations (non-neighbor target, bandwidth overrun) are recorded and
    /// abort the simulation at the end of the round; the first violation
    /// wins.
    pub fn send(&mut self, to: NodeId, msg: M) {
        if self.error.is_some() {
            return;
        }
        match self.neighbors.binary_search(&to) {
            Err(_) => {
                self.error =
                    Some(SimError::NotANeighbor { from: self.from, to, round: self.round });
            }
            Ok(idx) => {
                if self.counts[idx] >= self.bandwidth {
                    self.error = Some(SimError::BandwidthExceeded {
                        from: self.from,
                        to,
                        round: self.round,
                        limit: self.bandwidth,
                    });
                } else {
                    self.counts[idx] += 1;
                    self.sends.push((to, msg));
                }
            }
        }
    }

    /// Sends a copy of `msg` to every neighbor.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        for i in 0..self.neighbors.len() {
            let to = self.neighbors[i];
            self.send(to, msg.clone());
        }
    }

    /// Number of messages queued so far this round.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.sends.len()
    }
}

/// Node-local protocol logic. One value of the implementing type exists per
/// node; the engine guarantees it only ever touches its own state, its
/// inbox, and its outbox — exactly the CONGEST information boundary.
pub trait NodeLogic: Send {
    /// Message type exchanged by this protocol. One `Msg` models O(1)
    /// machine words (ids, weights, distance values), matching the paper's
    /// bandwidth assumption. (`Sync` because inboxes are shared read-only
    /// across worker threads during a parallel step.)
    type Msg: Clone + Send + Sync + 'static;

    /// Called once per round. Round 0 has an empty inbox (initialization);
    /// in round r > 0 the inbox holds exactly the messages sent to this
    /// node in round r-1, ordered by sender id.
    fn on_round(
        &mut self,
        env: &NodeEnv<'_>,
        inbox: &[Envelope<Self::Msg>],
        out: &mut Outbox<'_, Self::Msg>,
    );

    /// `true` while this node still intends to send in a future round even
    /// if it receives nothing (e.g. it holds queued relay messages).
    /// Reactive protocols can use the default `false`; quiescence is then
    /// "no messages in flight".
    fn active(&self) -> bool {
        false
    }
}

/// How long to run a phase.
#[derive(Copy, Clone, Debug)]
pub enum RunUntil {
    /// Run exactly this many rounds; error if the protocol is still busy
    /// afterwards. Used for worst-case round charging: the caller passes
    /// the analytical bound and the engine verifies the protocol met it.
    Exact(u64),
    /// Run until no messages are in flight and no node is active, erroring
    /// at `max` rounds. Used for practical round accounting.
    Quiesce {
        /// Safety budget.
        max: u64,
    },
}

/// Engine configuration.
#[derive(Copy, Clone, Debug)]
pub struct SimConfig {
    /// Messages per directed channel per round (paper: O(1); default 1).
    pub bandwidth: u32,
    /// Node-count threshold above which rounds are stepped with the
    /// fork-join helper. Simulations in this repo are usually small enough
    /// that sequential stepping is faster; heavy *local* computation inside
    /// protocols is parallelized separately by the algorithm crates.
    pub parallel_threshold: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { bandwidth: 1, parallel_threshold: 4096 }
    }
}

/// The round-loop executor for one protocol phase over a fixed topology.
pub struct Engine<'t> {
    topo: &'t Topology,
    cfg: SimConfig,
}

struct StepOut<M> {
    sends: Vec<(NodeId, M)>,
    error: Option<SimError>,
}

impl<'t> Engine<'t> {
    /// Creates an engine over `topo`.
    #[must_use]
    pub fn new(topo: &'t Topology, cfg: SimConfig) -> Self {
        Engine { topo, cfg }
    }

    /// The engine's topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// Runs one protocol phase: `nodes[v]` is node v's logic. Returns the
    /// phase report (unnamed; callers label it via
    /// [`crate::Recorder::record`]).
    ///
    /// # Errors
    /// Propagates CONGEST violations and budget exhaustion as [`SimError`].
    pub fn run<N: NodeLogic>(
        &self,
        nodes: &mut [N],
        until: RunUntil,
    ) -> Result<PhaseReport, SimError> {
        let n = self.topo.n();
        assert_eq!(nodes.len(), n, "one NodeLogic per topology node");

        let mut inboxes: Vec<Vec<Envelope<N::Msg>>> = vec![Vec::new(); n];
        let mut node_sent = vec![0u64; n];
        let mut messages: u64 = 0;
        let mut rounds: u64 = 0;

        let budget = match until {
            RunUntil::Exact(r) => r,
            RunUntil::Quiesce { max } => max,
        };

        loop {
            let in_flight = inboxes.iter().map(Vec::len).sum::<usize>();
            let anyone_active = nodes.iter().any(NodeLogic::active);
            match until {
                RunUntil::Exact(r) => {
                    if rounds >= r {
                        if in_flight > 0 || anyone_active {
                            return Err(SimError::RoundBudgetExhausted { budget });
                        }
                        break;
                    }
                }
                RunUntil::Quiesce { max } => {
                    if rounds > 0 && in_flight == 0 && !anyone_active {
                        break;
                    }
                    if rounds >= max {
                        return Err(SimError::RoundBudgetExhausted { budget });
                    }
                }
            }

            // Step every node for round `rounds`.
            let round = rounds;
            let bandwidth = self.cfg.bandwidth;
            let topo = self.topo;
            let inbox_ref = &inboxes;
            let step = |i: usize, node: &mut N| -> StepOut<N::Msg> {
                let id = i as NodeId;
                let env =
                    NodeEnv { id, n, round, neighbors: topo.neighbors(id) };
                let mut out = Outbox::new(id, round, topo.neighbors(id), bandwidth);
                node.on_round(&env, &inbox_ref[i], &mut out);
                StepOut { sends: out.sends, error: out.error }
            };
            let outs: Vec<StepOut<N::Msg>> = if n >= self.cfg.parallel_threshold {
                par_indexed_map(nodes, step)
            } else {
                nodes.iter_mut().enumerate().map(|(i, nd)| step(i, nd)).collect()
            };

            // Deliver: clear inboxes, then append in sender-id order so the
            // receive order is deterministic.
            for ib in &mut inboxes {
                ib.clear();
            }
            for (i, out) in outs.into_iter().enumerate() {
                if let Some(err) = out.error {
                    return Err(err);
                }
                node_sent[i] += out.sends.len() as u64;
                messages += out.sends.len() as u64;
                for (to, msg) in out.sends {
                    inboxes[to as usize].push(Envelope { from: i as NodeId, msg });
                }
            }
            rounds += 1;
        }

        Ok(PhaseReport { name: String::new(), rounds, messages, node_sent })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{path, WeightDist};

    /// Floods a token from node 0; each node records the round it was reached.
    struct Flood {
        reached: Option<u64>,
        is_root: bool,
        sent: bool,
    }

    impl NodeLogic for Flood {
        type Msg = ();
        fn on_round(&mut self, env: &NodeEnv<'_>, inbox: &[Envelope<()>], out: &mut Outbox<'_, ()>) {
            if env.round == 0 && self.is_root {
                self.reached = Some(0);
            }
            if self.reached.is_none() && !inbox.is_empty() {
                self.reached = Some(env.round);
            }
            if self.reached.is_some() && !self.sent {
                out.broadcast(());
                self.sent = true;
            }
        }
    }

    fn flood_nodes(n: usize) -> Vec<Flood> {
        (0..n).map(|i| Flood { reached: None, is_root: i == 0, sent: false }).collect()
    }

    #[test]
    fn flood_on_path_takes_hop_distance_rounds() {
        let g = path(6, false, WeightDist::Unit, 0);
        let topo = Topology::from_graph(&g);
        let engine = Engine::new(&topo, SimConfig::default());
        let mut nodes = flood_nodes(6);
        let report = engine.run(&mut nodes, RunUntil::Quiesce { max: 100 }).unwrap();
        for (i, nd) in nodes.iter().enumerate() {
            assert_eq!(nd.reached, Some(i as u64), "node {i}");
        }
        // 6 rounds of sending (0..=5), plus the delivery round for the tail.
        assert!(report.rounds >= 6 && report.rounds <= 7, "rounds = {}", report.rounds);
        // each node broadcasts exactly once
        assert_eq!(report.messages, 2 * 5);
    }

    #[test]
    fn exact_budget_checks_completion() {
        let g = path(4, false, WeightDist::Unit, 0);
        let topo = Topology::from_graph(&g);
        let engine = Engine::new(&topo, SimConfig::default());
        let mut nodes = flood_nodes(4);
        // Too few rounds: flood still in flight -> error.
        let err = engine.run(&mut nodes, RunUntil::Exact(2)).unwrap_err();
        assert!(matches!(err, SimError::RoundBudgetExhausted { .. }));
        let mut nodes = flood_nodes(4);
        assert!(engine.run(&mut nodes, RunUntil::Exact(10)).is_ok());
    }

    struct BadSender;
    impl NodeLogic for BadSender {
        type Msg = u8;
        fn on_round(&mut self, env: &NodeEnv<'_>, _ib: &[Envelope<u8>], out: &mut Outbox<'_, u8>) {
            if env.round == 0 && env.id == 0 {
                out.send(3, 1); // not a neighbor on a path of 4
            }
        }
    }

    #[test]
    fn non_neighbor_send_rejected() {
        let g = path(4, false, WeightDist::Unit, 0);
        let topo = Topology::from_graph(&g);
        let engine = Engine::new(&topo, SimConfig::default());
        let mut nodes = vec![BadSender, BadSender, BadSender, BadSender];
        let err = engine.run(&mut nodes, RunUntil::Quiesce { max: 10 }).unwrap_err();
        assert_eq!(err, SimError::NotANeighbor { from: 0, to: 3, round: 0 });
    }

    struct OverSender;
    impl NodeLogic for OverSender {
        type Msg = u8;
        fn on_round(&mut self, env: &NodeEnv<'_>, _ib: &[Envelope<u8>], out: &mut Outbox<'_, u8>) {
            if env.round == 0 && env.id == 0 {
                out.send(1, 1);
                out.send(1, 2); // second message on the same channel, B=1
            }
        }
    }

    #[test]
    fn bandwidth_enforced() {
        let g = path(2, false, WeightDist::Unit, 0);
        let topo = Topology::from_graph(&g);
        let engine = Engine::new(&topo, SimConfig::default());
        let mut nodes = vec![OverSender, OverSender];
        let err = engine.run(&mut nodes, RunUntil::Quiesce { max: 10 }).unwrap_err();
        assert_eq!(err, SimError::BandwidthExceeded { from: 0, to: 1, round: 0, limit: 1 });
    }

    #[test]
    fn bandwidth_two_allows_two() {
        let g = path(2, false, WeightDist::Unit, 0);
        let topo = Topology::from_graph(&g);
        let engine = Engine::new(&topo, SimConfig { bandwidth: 2, ..Default::default() });
        let mut nodes = vec![OverSender, OverSender];
        assert!(engine.run(&mut nodes, RunUntil::Quiesce { max: 10 }).is_ok());
    }

    struct Echoer {
        budget: u32,
    }
    impl NodeLogic for Echoer {
        type Msg = u32;
        fn on_round(&mut self, env: &NodeEnv<'_>, inbox: &[Envelope<u32>], out: &mut Outbox<'_, u32>) {
            if env.round == 0 && env.id == 0 {
                out.send(env.neighbors[0], 0);
                return;
            }
            for e in inbox {
                if self.budget > 0 {
                    self.budget -= 1;
                    out.send(e.from, e.msg + 1);
                }
            }
        }
    }

    #[test]
    fn quiesce_stops_when_echoes_exhaust() {
        let g = path(2, false, WeightDist::Unit, 0);
        let topo = Topology::from_graph(&g);
        let engine = Engine::new(&topo, SimConfig::default());
        let mut nodes = vec![Echoer { budget: 3 }, Echoer { budget: 3 }];
        let report = engine.run(&mut nodes, RunUntil::Quiesce { max: 100 }).unwrap();
        // 1 initial send + 6 echoes (3 per node), each in its own round.
        assert_eq!(report.messages, 7);
        assert_eq!(report.rounds, 8);
        assert_eq!(report.max_node_congestion(), 4);
    }

    #[test]
    fn inbox_ordered_by_sender() {
        struct Collect {
            seen: Vec<NodeId>,
        }
        impl NodeLogic for Collect {
            type Msg = ();
            fn on_round(
                &mut self,
                env: &NodeEnv<'_>,
                inbox: &[Envelope<()>],
                out: &mut Outbox<'_, ()>,
            ) {
                if env.round == 0 && env.id != 2 {
                    out.send(2, ());
                }
                if env.id == 2 {
                    self.seen.extend(inbox.iter().map(|e| e.from));
                }
            }
        }
        // star with center 2
        let g = congest_graph::Graph::<u64>::from_edges(
            4,
            false,
            vec![
                congest_graph::Edge::new(0, 2, 1),
                congest_graph::Edge::new(1, 2, 1),
                congest_graph::Edge::new(3, 2, 1),
            ],
        );
        let topo = Topology::from_graph(&g);
        let engine = Engine::new(&topo, SimConfig::default());
        let mut nodes: Vec<Collect> = (0..4).map(|_| Collect { seen: vec![] }).collect();
        engine.run(&mut nodes, RunUntil::Quiesce { max: 10 }).unwrap();
        assert_eq!(nodes[2].seen, vec![0, 1, 3]);
    }
}
