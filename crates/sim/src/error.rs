//! Simulator error types.

use congest_graph::NodeId;

/// Errors surfaced by the engine. All of these indicate a *protocol bug*
/// (or an exhausted safety budget), never a user-input problem.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A node attempted to send to a non-neighbor — impossible in CONGEST.
    NotANeighbor {
        /// Sending node.
        from: NodeId,
        /// Intended recipient.
        to: NodeId,
        /// Round in which the violation occurred.
        round: u64,
    },
    /// A node exceeded the per-channel per-round bandwidth budget
    /// (§1.1: O(1) words per edge per round).
    BandwidthExceeded {
        /// Sending node.
        from: NodeId,
        /// Recipient channel.
        to: NodeId,
        /// Round in which the violation occurred.
        round: u64,
        /// Configured per-channel budget.
        limit: u32,
    },
    /// The phase did not terminate within its round budget.
    RoundBudgetExhausted {
        /// The budget that was exhausted.
        budget: u64,
    },
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::NotANeighbor { from, to, round } => {
                write!(f, "round {round}: node {from} sent to non-neighbor {to}")
            }
            SimError::BandwidthExceeded { from, to, round, limit } => write!(
                f,
                "round {round}: node {from} exceeded bandwidth {limit} on channel to {to}"
            ),
            SimError::RoundBudgetExhausted { budget } => {
                write!(f, "phase exceeded round budget of {budget}")
            }
        }
    }
}

impl std::error::Error for SimError {}
