//! Simulator error types.

use congest_graph::NodeId;

/// Errors surfaced by the engine. All of these indicate a *protocol bug*
/// (or an exhausted safety budget), never a user-input problem.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A node attempted to send to a non-neighbor — impossible in CONGEST.
    NotANeighbor {
        /// Sending node.
        from: NodeId,
        /// Intended recipient.
        to: NodeId,
        /// Round in which the violation occurred.
        round: u64,
    },
    /// A node exceeded the per-channel per-round bandwidth budget
    /// (§1.1: O(1) words per edge per round).
    BandwidthExceeded {
        /// Sending node.
        from: NodeId,
        /// Recipient channel.
        to: NodeId,
        /// Round in which the violation occurred.
        round: u64,
        /// Configured per-channel budget.
        limit: u32,
    },
    /// The phase did not terminate within its round budget.
    RoundBudgetExhausted {
        /// The budget that was exhausted.
        budget: u64,
    },
    /// A node's `on_round` panicked. The engine catches the unwind and
    /// attributes it (deterministically, lowest node id first) instead of
    /// poisoning the worker pool's barrier.
    NodePanic {
        /// The node whose logic panicked.
        node: NodeId,
        /// Round in which the panic occurred.
        round: u64,
    },
    /// The protocol quiesced without covering the whole network, and the
    /// run had faults injected — e.g. a crashed node was never reached by
    /// a tree construction. Never produced on a fault-free run (there the
    /// same condition is a protocol bug and panics).
    Incomplete {
        /// A node the protocol failed to cover.
        node: NodeId,
    },
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::NotANeighbor { from, to, round } => {
                write!(f, "round {round}: node {from} sent to non-neighbor {to}")
            }
            SimError::BandwidthExceeded { from, to, round, limit } => write!(
                f,
                "round {round}: node {from} exceeded bandwidth {limit} on channel to {to}"
            ),
            SimError::RoundBudgetExhausted { budget } => {
                write!(f, "phase exceeded round budget of {budget}")
            }
            SimError::NodePanic { node, round } => {
                write!(f, "round {round}: node {node} panicked in on_round")
            }
            SimError::Incomplete { node } => {
                write!(f, "protocol quiesced under faults without covering node {node}")
            }
        }
    }
}

impl std::error::Error for SimError {}
