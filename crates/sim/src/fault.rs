//! Deterministic fault injection for the message plane.
//!
//! Production networks drop frames, corrupt payloads, crash nodes, and
//! flap links; the CONGEST analyses assume none of that. This module
//! models those failures *deterministically*: every fault decision is a
//! pure hash of `(seed, round, channel, message-index)` — no RNG state,
//! no wall clock — so a faulted run is exactly reproducible from its
//! [`FaultSpec`], identical across sequential and parallel stepping, and
//! a retried phase can be re-seeded by salting the seed.
//!
//! Faults are injected at one place only — the delivery pass of the
//! engine's message plane (plus a per-round crash predicate) — so every
//! primitive and every algorithm built on [`crate::Engine`] inherits them
//! without per-call-site changes:
//!
//! * **Message drop** — a queued message silently vanishes in transit.
//! * **Payload corruption** — the receiver's
//!   [`NodeLogic::corrupt_msg`](crate::NodeLogic::corrupt_msg) hook
//!   mutates the payload in place (within the CONGEST word budget); if
//!   the protocol does not implement corruption, the frame is dropped
//!   instead (modeled as a failed payload checksum).
//! * **Node crash/restart** — a node skips whole rounds at round
//!   boundaries (warm restart: its local state survives, but it neither
//!   steps nor reads the messages that arrive while it is down).
//! * **Link flap** — an undirected link is down for a window of rounds;
//!   messages crossing it in either direction are lost.
//!
//! Rates are expressed in parts-per-million so a [`FaultSpec`] stays
//! `Copy` (it rides inside [`crate::SimConfig`]); crash and flap faults
//! are evaluated per *window* of rounds so an affected node/link stays
//! down for a contiguous stretch rather than blinking every round.

use congest_graph::NodeId;

/// splitmix64 finalizer — the stateless mixing core of every fault
/// decision.
#[inline]
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Mixes a salted seed with up to three decision coordinates.
#[inline]
fn mix(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    splitmix(splitmix(splitmix(seed ^ a).wrapping_add(b)).wrapping_add(c))
}

/// `true` with probability `ppm / 1_000_000` under the hash `h`.
#[inline]
fn hits(h: u64, ppm: u32) -> bool {
    ppm > 0 && h % 1_000_000 < u64::from(ppm)
}

const DROP_SALT: u64 = 0xD509_7C3A_11E5_0B61;
const CORRUPT_SALT: u64 = 0xC0B2_9A17_55D3_4E8F;
const CRASH_SALT: u64 = 0x5C4A_8821_9D0E_F37B;
const FLAP_SALT: u64 = 0xF1A9_3D5C_07B6_42ED;

/// A seeded fault model: rates (parts per million) for each fault class
/// plus the window lengths for the stateful classes. `Copy` by design so
/// it can ride inside [`crate::SimConfig`] through every existing call
/// site.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Root seed of every fault decision.
    pub seed: u64,
    /// Per-message drop probability, in parts per million.
    pub drop_ppm: u32,
    /// Per-message corruption probability, in parts per million.
    pub corrupt_ppm: u32,
    /// Per-node per-window crash probability, in parts per million.
    pub crash_ppm: u32,
    /// Rounds per crash window (a crashed node is down for the whole
    /// window); clamped to at least 1.
    pub crash_window: u64,
    /// Per-link per-window flap probability, in parts per million.
    pub flap_ppm: u32,
    /// Rounds per flap window; clamped to at least 1.
    pub flap_window: u64,
}

impl FaultSpec {
    /// A spec with every rate zero (injects nothing until a rate is set).
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        FaultSpec {
            seed,
            drop_ppm: 0,
            corrupt_ppm: 0,
            crash_ppm: 0,
            crash_window: 4,
            flap_ppm: 0,
            flap_window: 4,
        }
    }

    /// Sets the per-message drop rate.
    #[must_use]
    pub fn drops(mut self, ppm: u32) -> Self {
        self.drop_ppm = ppm;
        self
    }

    /// Sets the per-message corruption rate.
    #[must_use]
    pub fn corruption(mut self, ppm: u32) -> Self {
        self.corrupt_ppm = ppm;
        self
    }

    /// Sets the per-node crash rate and the crash window length in rounds.
    #[must_use]
    pub fn crashes(mut self, ppm: u32, window: u64) -> Self {
        self.crash_ppm = ppm;
        self.crash_window = window.max(1);
        self
    }

    /// Sets the per-link flap rate and the flap window length in rounds.
    #[must_use]
    pub fn flaps(mut self, ppm: u32, window: u64) -> Self {
        self.flap_ppm = ppm;
        self.flap_window = window.max(1);
        self
    }

    /// A spec with the same rates under an independent seed — the
    /// recovery path salts retries with this so a retried phase does not
    /// replay the identical fault pattern forever.
    #[must_use]
    pub fn reseeded(self, salt: u64) -> Self {
        FaultSpec { seed: splitmix(self.seed ^ salt), ..self }
    }

    /// `true` iff any rate is non-zero. An all-zero spec is a no-op and
    /// the engine takes the exact fault-free code path for it.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.drop_ppm > 0 || self.corrupt_ppm > 0 || self.crash_ppm > 0 || self.flap_ppm > 0
    }
}

/// One scripted fault, for tests that need a specific failure at a
/// specific place (see [`FaultPlan::Script`]). Rounds are engine rounds
/// starting at 0; message faults address the `nth` message queued on the
/// directed channel `from → to` in that round (0-based).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// Drop one message in transit.
    Drop {
        /// Round the message was sent in.
        round: u64,
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Index of the message on the channel that round.
        nth: u32,
    },
    /// Corrupt one message in transit (drop if the protocol does not
    /// implement [`crate::NodeLogic::corrupt_msg`]).
    Corrupt {
        /// Round the message was sent in.
        round: u64,
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Index of the message on the channel that round.
        nth: u32,
        /// Entropy word handed to `corrupt_msg`.
        entropy: u64,
    },
    /// Take a node down for the inclusive round range.
    Crash {
        /// The crashed node.
        node: NodeId,
        /// First round the node is down.
        from_round: u64,
        /// Last round the node is down (inclusive).
        to_round: u64,
    },
    /// Cut the undirected link `a`–`b` for the inclusive round range.
    LinkDown {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
        /// First round the link is down.
        from_round: u64,
        /// Last round the link is down (inclusive).
        to_round: u64,
    },
}

/// What happens to one in-transit message.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MsgFault {
    /// The message is lost. `flap` marks losses attributable to a link
    /// flap (they count into [`FaultCounters::flapped`] as well).
    Drop {
        /// Loss caused by a link flap rather than an independent drop.
        flap: bool,
    },
    /// The message is mutated in place with this entropy word before
    /// delivery.
    Corrupt {
        /// Deterministic entropy for the mutation.
        entropy: u64,
    },
}

/// A complete, deterministic fault plan for one engine run: either a
/// seeded statistical model or an explicit script of events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultPlan {
    /// Hash-derived faults from a [`FaultSpec`].
    Seeded(FaultSpec),
    /// Exactly these events and nothing else.
    Script(Vec<FaultEvent>),
}

impl FaultPlan {
    /// The fate of the `nth` message queued on channel `from → to` in
    /// `round`; `None` means deliver untouched.
    #[must_use]
    pub fn message_fault(
        &self,
        round: u64,
        from: NodeId,
        to: NodeId,
        nth: u32,
    ) -> Option<MsgFault> {
        match self {
            FaultPlan::Seeded(s) => {
                if s.flap_ppm > 0 {
                    let (a, b) = if from < to { (from, to) } else { (to, from) };
                    let link = (u64::from(a) << 32) | u64::from(b);
                    let w = round / s.flap_window.max(1);
                    if hits(mix(s.seed ^ FLAP_SALT, link, w, 0), s.flap_ppm) {
                        return Some(MsgFault::Drop { flap: true });
                    }
                }
                let chan = (u64::from(from) << 32) | u64::from(to);
                if hits(mix(s.seed ^ DROP_SALT, chan, round, u64::from(nth)), s.drop_ppm) {
                    return Some(MsgFault::Drop { flap: false });
                }
                let h = mix(s.seed ^ CORRUPT_SALT, chan, round, u64::from(nth));
                if hits(h, s.corrupt_ppm) {
                    return Some(MsgFault::Corrupt { entropy: splitmix(h) });
                }
                None
            }
            FaultPlan::Script(events) => events.iter().find_map(|e| match *e {
                FaultEvent::Drop { round: r, from: f, to: t, nth: k }
                    if (r, f, t, k) == (round, from, to, nth) =>
                {
                    Some(MsgFault::Drop { flap: false })
                }
                FaultEvent::Corrupt { round: r, from: f, to: t, nth: k, entropy }
                    if (r, f, t, k) == (round, from, to, nth) =>
                {
                    Some(MsgFault::Corrupt { entropy })
                }
                FaultEvent::LinkDown { a, b, from_round, to_round }
                    if (from_round..=to_round).contains(&round)
                        && ((a, b) == (from, to) || (b, a) == (from, to)) =>
                {
                    Some(MsgFault::Drop { flap: true })
                }
                _ => None,
            }),
        }
    }

    /// `true` iff `node` is crashed during `round`.
    #[must_use]
    pub fn node_down(&self, node: NodeId, round: u64) -> bool {
        match self {
            FaultPlan::Seeded(s) => {
                let w = round / s.crash_window.max(1);
                hits(mix(s.seed ^ CRASH_SALT, u64::from(node), w, 0), s.crash_ppm)
            }
            FaultPlan::Script(events) => events.iter().any(|e| {
                matches!(*e, FaultEvent::Crash { node: v, from_round, to_round }
                    if v == node && (from_round..=to_round).contains(&round))
            }),
        }
    }

    /// `true` iff the plan can crash nodes at all (lets the engine skip
    /// the per-round down scan otherwise).
    #[must_use]
    pub fn has_node_faults(&self) -> bool {
        match self {
            FaultPlan::Seeded(s) => s.crash_ppm > 0,
            FaultPlan::Script(events) => {
                events.iter().any(|e| matches!(e, FaultEvent::Crash { .. }))
            }
        }
    }
}

/// Per-phase fault accounting, carried on
/// [`PhaseReport`](crate::PhaseReport). `injected` is the total number of
/// fault decisions that took effect (`dropped + corrupted +
/// crashed_rounds`); `flapped` is the subset of `dropped` attributable to
/// link flaps.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Total faults that took effect this phase.
    pub injected: u64,
    /// Messages lost in transit (random drops, flap losses, and
    /// corruption of messages whose protocol cannot mutate them).
    pub dropped: u64,
    /// Messages mutated in place and delivered.
    pub corrupted: u64,
    /// Node-rounds spent crashed.
    pub crashed_rounds: u64,
    /// Subset of `dropped` caused by link flaps.
    pub flapped: u64,
}

impl FaultCounters {
    /// `true` iff nothing was injected.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.injected == 0
    }

    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.injected += other.injected;
        self.dropped += other.dropped;
        self.corrupted += other.corrupted;
        self.crashed_rounds += other.crashed_rounds;
        self.flapped += other.flapped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_functions() {
        let plan = FaultPlan::Seeded(FaultSpec::seeded(42).drops(100_000).corruption(50_000));
        for round in 0..50 {
            for nth in 0..3 {
                let a = plan.message_fault(round, 3, 7, nth);
                let b = plan.message_fault(round, 3, 7, nth);
                assert_eq!(a, b, "decision must not depend on evaluation order");
            }
        }
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = FaultPlan::Seeded(FaultSpec::seeded(7).drops(250_000));
        let mut dropped = 0u32;
        let total = 4_000u32;
        for i in 0..total {
            if plan.message_fault(u64::from(i), 0, 1, 0).is_some() {
                dropped += 1;
            }
        }
        let rate = f64::from(dropped) / f64::from(total);
        assert!((0.2..0.3).contains(&rate), "drop rate {rate} far from 0.25");
    }

    #[test]
    fn zero_rate_spec_is_inert() {
        let spec = FaultSpec::seeded(999);
        assert!(!spec.is_active());
        let plan = FaultPlan::Seeded(spec);
        for round in 0..100 {
            assert_eq!(plan.message_fault(round, 0, 1, 0), None);
            assert!(!plan.node_down(0, round));
        }
    }

    #[test]
    fn crash_windows_are_contiguous() {
        let spec = FaultSpec::seeded(11).crashes(300_000, 8);
        let plan = FaultPlan::Seeded(spec);
        // Within one window the down status of a node never changes.
        for node in 0..64u32 {
            for w in 0..16u64 {
                let first = plan.node_down(node, w * 8);
                for r in w * 8..(w + 1) * 8 {
                    assert_eq!(plan.node_down(node, r), first, "node {node} round {r}");
                }
            }
        }
        // And some node is down somewhere at a 30% rate.
        let any = (0..64u32).any(|v| (0..128).any(|r| plan.node_down(v, r)));
        assert!(any, "30% crash rate over 64 nodes x 16 windows must hit");
    }

    #[test]
    fn flap_is_symmetric_in_the_link() {
        let plan = FaultPlan::Seeded(FaultSpec::seeded(5).flaps(400_000, 4));
        for round in 0..64 {
            let fwd = plan.message_fault(round, 2, 9, 0);
            let bwd = plan.message_fault(round, 9, 2, 0);
            assert_eq!(fwd, bwd, "a down link loses both directions");
        }
    }

    #[test]
    fn reseeded_changes_decisions() {
        let spec = FaultSpec::seeded(1).drops(500_000);
        let a = FaultPlan::Seeded(spec);
        let b = FaultPlan::Seeded(spec.reseeded(1));
        let differs =
            (0..64u64).any(|r| a.message_fault(r, 0, 1, 0) != b.message_fault(r, 0, 1, 0));
        assert!(differs, "reseeding must produce an independent pattern");
    }

    #[test]
    fn script_addresses_exact_messages() {
        let plan = FaultPlan::Script(vec![
            FaultEvent::Drop { round: 3, from: 1, to: 2, nth: 0 },
            FaultEvent::Corrupt { round: 4, from: 2, to: 1, nth: 1, entropy: 99 },
            FaultEvent::Crash { node: 5, from_round: 2, to_round: 4 },
            FaultEvent::LinkDown { a: 0, b: 3, from_round: 1, to_round: 2 },
        ]);
        assert_eq!(plan.message_fault(3, 1, 2, 0), Some(MsgFault::Drop { flap: false }));
        assert_eq!(plan.message_fault(3, 1, 2, 1), None);
        assert_eq!(plan.message_fault(2, 1, 2, 0), None);
        assert_eq!(plan.message_fault(4, 2, 1, 1), Some(MsgFault::Corrupt { entropy: 99 }));
        assert!(plan.node_down(5, 2) && plan.node_down(5, 4) && !plan.node_down(5, 5));
        assert!(!plan.node_down(4, 3));
        // Link cut hits both orientations, only inside the window.
        assert_eq!(plan.message_fault(1, 0, 3, 0), Some(MsgFault::Drop { flap: true }));
        assert_eq!(plan.message_fault(2, 3, 0, 0), Some(MsgFault::Drop { flap: true }));
        assert_eq!(plan.message_fault(3, 0, 3, 0), None);
        assert!(plan.has_node_faults());
    }

    #[test]
    fn counters_merge_and_zero() {
        let mut a = FaultCounters::default();
        assert!(a.is_zero());
        let b =
            FaultCounters { injected: 3, dropped: 2, corrupted: 1, crashed_rounds: 0, flapped: 1 };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.injected, 6);
        assert_eq!(a.dropped, 4);
        assert_eq!(a.corrupted, 2);
        assert_eq!(a.flapped, 2);
        assert!(!a.is_zero());
    }
}
