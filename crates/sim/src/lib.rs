//! # congest-sim
//!
//! A round-synchronous simulator for the CONGEST model of distributed
//! computing (paper §1.1): n nodes on the underlying undirected graph of
//! the input exchange O(log n)-bit messages in lock-step rounds, with a
//! bounded number of messages per channel per round.
//!
//! The simulator *enforces* the model — sends to non-neighbors or beyond
//! the per-channel bandwidth abort the run — so measured round counts are
//! trustworthy reproductions of the quantity the paper bounds. See
//! [`Engine`] for the execution loop, [`NodeLogic`] for the protocol
//! interface, and [`primitives`] for the broadcast/convergecast building
//! blocks of Appendix A.1/A.5.
//!
//! ## Fault model & recovery
//!
//! The engine carries an optional, fully deterministic fault-injection
//! plane (module [`fault`]). A [`FaultSpec`] in [`SimConfig::fault`] — or
//! an explicit scripted [`FaultPlan`] attached with
//! [`Engine::with_fault_plan`] — injects, at the message-plane boundary
//! and at round boundaries:
//!
//! * **message drops** — the frame is consumed from the channel (it still
//!   charges the sender's bandwidth and congestion) but never delivered;
//! * **payload corruption** — the receiver's
//!   [`NodeLogic::corrupt_msg`] hook rewrites the frame in-domain within
//!   the CONGEST word budget; protocols that opt out (the default) have
//!   the damaged frame dropped instead, modeling a failed checksum;
//! * **node crash/restart** — a node misses whole rounds at round
//!   granularity: it neither steps nor reads arriving messages (they
//!   vanish), then restarts warm with its local state intact;
//! * **link flaps** — a whole undirected link drops every frame in both
//!   directions for a contiguous window of rounds.
//!
//! Every decision is a pure hash of `(seed, channel, round, message
//! index)`, so a plan replays bit-identically across runs and across
//! sequential vs. parallel stepping, and [`PhaseReport::faults`] counts
//! exactly what was injected. With no plan (or an all-zero spec) the
//! engine takes the literal pre-fault code path, so fault-free runs are
//! byte-identical to a build without the plane. Detection and recovery
//! live one layer up, in `congest_apsp`: phase sentinels verify
//! invariants after each pipeline phase and re-run only damaged phases
//! (see that crate's docs), which is why the engine itself never tries to
//! mask a fault.

#![warn(missing_docs)]
#![deny(deprecated)]
// Index-based loops are used deliberately where they mirror the paper's
// per-node pseudocode or iterate parallel arrays; iterator rewrites would
// obscure the correspondence.
#![allow(clippy::needless_range_loop)]

mod bitset;
mod engine;
mod error;
pub mod fault;
mod metrics;
pub mod parallel;
pub mod primitives;

pub use bitset::BitSet;
pub use engine::{Engine, Envelope, NodeEnv, NodeLogic, Outbox, RunUntil, SimConfig, Topology};
pub use error::SimError;
pub use fault::{FaultCounters, FaultEvent, FaultPlan, FaultSpec, MsgFault};
pub use metrics::{PhaseReport, Recorder};
