//! # congest-sim
//!
//! A round-synchronous simulator for the CONGEST model of distributed
//! computing (paper §1.1): n nodes on the underlying undirected graph of
//! the input exchange O(log n)-bit messages in lock-step rounds, with a
//! bounded number of messages per channel per round.
//!
//! The simulator *enforces* the model — sends to non-neighbors or beyond
//! the per-channel bandwidth abort the run — so measured round counts are
//! trustworthy reproductions of the quantity the paper bounds. See
//! [`Engine`] for the execution loop, [`NodeLogic`] for the protocol
//! interface, and [`primitives`] for the broadcast/convergecast building
//! blocks of Appendix A.1/A.5.

#![warn(missing_docs)]
#![deny(deprecated)]
// Index-based loops are used deliberately where they mirror the paper's
// per-node pseudocode or iterate parallel arrays; iterator rewrites would
// obscure the correspondence.
#![allow(clippy::needless_range_loop)]

mod bitset;
mod engine;
mod error;
mod metrics;
pub mod parallel;
pub mod primitives;

pub use bitset::BitSet;
pub use engine::{Engine, Envelope, NodeEnv, NodeLogic, Outbox, RunUntil, SimConfig, Topology};
pub use error::SimError;
pub use metrics::{PhaseReport, Recorder};
