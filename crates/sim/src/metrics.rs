//! Round and message accounting.
//!
//! The paper measures algorithms purely by *round complexity*; we record
//! rounds per phase plus message totals and per-node send counts, because
//! the paper's §4 analysis (bottleneck nodes, Lemma A.15) reasons about
//! *congestion at a node* = number of messages a node sends during an
//! algorithm.

use crate::fault::FaultCounters;

/// Statistics for one protocol phase (one [`crate::Engine::run`] call).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseReport {
    /// Human-readable phase label, e.g. `"step1: h-CSSSP"`.
    pub name: String,
    /// Number of simulated communication rounds.
    pub rounds: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Per-node messages sent during this phase.
    pub node_sent: Vec<u64>,
    /// Maximum number of messages in flight after any single round — the
    /// high-water mark of the engine's message plane, tracked incrementally
    /// by the delivery pass.
    pub peak_in_flight: u64,
    /// Total payload delivered, in O(log n)-bit machine words (each id,
    /// weight, or counter in a message counts as one word; see
    /// [`crate::NodeLogic::msg_words`]).
    pub payload_words: u64,
    /// Widest single message delivered during the phase, in words. The
    /// CONGEST model caps this at O(1) words of O(log n) bits each, so a
    /// protocol that silently grows its payload shows up here.
    pub max_msg_words: u32,
    /// Faults the engine injected during this phase (see [`crate::fault`]).
    /// All-zero when no fault plan is active, so fault-free reports compare
    /// equal to pre-fault-plane ones.
    pub faults: FaultCounters,
}

impl PhaseReport {
    /// Maximum congestion at any node (paper's footnote 4 definition).
    #[must_use]
    pub fn max_node_congestion(&self) -> u64 {
        self.node_sent.iter().copied().max().unwrap_or(0)
    }
}

/// Accumulates phase reports across a multi-phase algorithm run.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    phases: Vec<PhaseReport>,
}

impl Recorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Records a finished phase, relabelling it with `name`.
    pub fn record(&mut self, name: impl Into<String>, mut report: PhaseReport) {
        report.name = name.into();
        self.phases.push(report);
    }

    /// Adds a zero-communication local phase (for bookkeeping parity with the
    /// paper's "Local Step" lines).
    pub fn record_local(&mut self, name: impl Into<String>) {
        self.phases.push(PhaseReport { name: name.into(), ..Default::default() });
    }

    /// All recorded phases in order.
    #[must_use]
    pub fn phases(&self) -> &[PhaseReport] {
        &self.phases
    }

    /// Total rounds across phases.
    #[must_use]
    pub fn total_rounds(&self) -> u64 {
        self.phases.iter().map(|p| p.rounds).sum()
    }

    /// Total messages across phases.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.phases.iter().map(|p| p.messages).sum()
    }

    /// Maximum per-phase node congestion observed.
    #[must_use]
    pub fn max_node_congestion(&self) -> u64 {
        self.phases.iter().map(PhaseReport::max_node_congestion).max().unwrap_or(0)
    }

    /// Total payload across phases, in machine words.
    #[must_use]
    pub fn total_payload_words(&self) -> u64 {
        self.phases.iter().map(|p| p.payload_words).sum()
    }

    /// Widest single message delivered in any phase, in machine words —
    /// the number the CONGEST O(log n)-bits-per-message budget bounds.
    #[must_use]
    pub fn max_msg_words(&self) -> u32 {
        self.phases.iter().map(|p| p.max_msg_words).max().unwrap_or(0)
    }

    /// Total fault counters merged across all phases.
    #[must_use]
    pub fn total_faults(&self) -> FaultCounters {
        let mut total = FaultCounters::default();
        for p in &self.phases {
            total.merge(&p.faults);
        }
        total
    }

    /// Per-node total messages sent across all phases.
    #[must_use]
    pub fn node_sent_totals(&self) -> Vec<u64> {
        let n = self.phases.iter().map(|p| p.node_sent.len()).max().unwrap_or(0);
        let mut total = vec![0u64; n];
        for p in &self.phases {
            for (t, s) in total.iter_mut().zip(p.node_sent.iter()) {
                *t += s;
            }
        }
        total
    }

    /// Merges another recorder's phases (used when a sub-algorithm keeps its
    /// own recorder), prefixing each phase name.
    pub fn absorb(&mut self, prefix: &str, other: Recorder) {
        for mut p in other.phases {
            p.name = format!("{prefix}{}", p.name);
            self.phases.push(p);
        }
    }

    /// Renders a compact per-phase table (used by examples and experiments).
    #[must_use]
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ =
            writeln!(s, "{:<44} {:>10} {:>12} {:>10}", "phase", "rounds", "messages", "max-cong");
        for p in &self.phases {
            let _ = writeln!(
                s,
                "{:<44} {:>10} {:>12} {:>10}",
                p.name,
                p.rounds,
                p.messages,
                p.max_node_congestion()
            );
        }
        let _ = writeln!(
            s,
            "{:<44} {:>10} {:>12} {:>10}",
            "TOTAL",
            self.total_rounds(),
            self.total_messages(),
            self.max_node_congestion()
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(rounds: u64, messages: u64, sent: Vec<u64>) -> PhaseReport {
        PhaseReport { rounds, messages, node_sent: sent, ..Default::default() }
    }

    #[test]
    fn totals_accumulate() {
        let mut r = Recorder::new();
        r.record("a", phase(10, 100, vec![5, 95]));
        r.record("b", phase(7, 3, vec![3, 0]));
        r.record_local("c");
        assert_eq!(r.total_rounds(), 17);
        assert_eq!(r.total_messages(), 103);
        assert_eq!(r.max_node_congestion(), 95);
        assert_eq!(r.node_sent_totals(), vec![8, 95]);
        assert_eq!(r.phases().len(), 3);
    }

    #[test]
    fn payload_words_accumulate() {
        let mut r = Recorder::new();
        r.record("a", PhaseReport { payload_words: 30, max_msg_words: 3, ..phase(1, 10, vec![]) });
        r.record("b", PhaseReport { payload_words: 8, max_msg_words: 4, ..phase(1, 2, vec![]) });
        assert_eq!(r.total_payload_words(), 38);
        assert_eq!(r.max_msg_words(), 4);
    }

    #[test]
    fn absorb_prefixes() {
        let mut inner = Recorder::new();
        inner.record("x", phase(1, 1, vec![1]));
        let mut outer = Recorder::new();
        outer.absorb("sub/", inner);
        assert_eq!(outer.phases()[0].name, "sub/x");
    }

    #[test]
    fn table_renders() {
        let mut r = Recorder::new();
        r.record("phase-one", phase(2, 4, vec![2, 2]));
        let t = r.table();
        assert!(t.contains("phase-one"));
        assert!(t.contains("TOTAL"));
    }
}
