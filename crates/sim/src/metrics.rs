//! Round and message accounting.
//!
//! The paper measures algorithms purely by *round complexity*; we record
//! rounds per phase plus message totals and per-node send counts, because
//! the paper's §4 analysis (bottleneck nodes, Lemma A.15) reasons about
//! *congestion at a node* = number of messages a node sends during an
//! algorithm.

use crate::fault::FaultCounters;

/// Statistics for one protocol phase (one [`crate::Engine::run`] call).
#[derive(Clone, Debug, Default)]
pub struct PhaseReport {
    /// Human-readable phase label, e.g. `"step1: h-CSSSP"`.
    pub name: String,
    /// Number of simulated communication rounds.
    pub rounds: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Per-node messages sent during this phase.
    pub node_sent: Vec<u64>,
    /// Maximum number of messages in flight after any single round — the
    /// high-water mark of the engine's message plane, tracked incrementally
    /// by the delivery pass.
    pub peak_in_flight: u64,
    /// Total payload delivered, in O(log n)-bit machine words (each id,
    /// weight, or counter in a message counts as one word; see
    /// [`crate::NodeLogic::msg_words`]).
    pub payload_words: u64,
    /// Widest single message delivered during the phase, in words. The
    /// CONGEST model caps this at O(1) words of O(log n) bits each, so a
    /// protocol that silently grows its payload shows up here.
    pub max_msg_words: u32,
    /// Faults the engine injected during this phase (see [`crate::fault`]).
    /// All-zero when no fault plan is active, so fault-free reports compare
    /// equal to pre-fault-plane ones.
    pub faults: FaultCounters,
    /// Host wall-clock spent simulating the phase, in nanoseconds.
    /// Observability only — **excluded from equality** (see the manual
    /// [`PartialEq`] below), because the simulated outcome of a
    /// deterministic protocol is bit-identical across runs while the
    /// host timing never is.
    pub wall_ns: u64,
}

/// Equality covers every *simulated* quantity and ignores `wall_ns`
/// (host timing), keeping the bit-identical contracts — the recovery
/// accept rule, the sequential ≡ parallel determinism suite, the
/// fault-matrix differential suite — valid verbatim. Precedent:
/// `DistMatrix` equality ignores its successor plane.
impl PartialEq for PhaseReport {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.rounds == other.rounds
            && self.messages == other.messages
            && self.node_sent == other.node_sent
            && self.peak_in_flight == other.peak_in_flight
            && self.payload_words == other.payload_words
            && self.max_msg_words == other.max_msg_words
            && self.faults == other.faults
    }
}

impl Eq for PhaseReport {}

impl PhaseReport {
    /// Maximum congestion at any node (paper's footnote 4 definition).
    #[must_use]
    pub fn max_node_congestion(&self) -> u64 {
        self.node_sent.iter().copied().max().unwrap_or(0)
    }

    /// This report as a run-manifest row (see `congest_telemetry`).
    #[must_use]
    pub fn manifest_row(&self) -> congest_telemetry::PhaseRow {
        congest_telemetry::PhaseRow {
            name: self.name.clone(),
            rounds: self.rounds,
            messages: self.messages,
            payload_words: self.payload_words,
            max_msg_words: self.max_msg_words,
            max_node_congestion: self.max_node_congestion(),
            wall_ns: self.wall_ns,
        }
    }
}

/// Accumulates phase reports across a multi-phase algorithm run.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    phases: Vec<PhaseReport>,
}

impl Recorder {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Records a finished phase, relabelling it with `name`.
    pub fn record(&mut self, name: impl Into<String>, mut report: PhaseReport) {
        report.name = name.into();
        self.phases.push(report);
    }

    /// Adds a zero-communication local phase (for bookkeeping parity with the
    /// paper's "Local Step" lines).
    pub fn record_local(&mut self, name: impl Into<String>) {
        self.phases.push(PhaseReport { name: name.into(), ..Default::default() });
    }

    /// All recorded phases in order.
    #[must_use]
    pub fn phases(&self) -> &[PhaseReport] {
        &self.phases
    }

    /// Total rounds across phases.
    #[must_use]
    pub fn total_rounds(&self) -> u64 {
        self.phases.iter().map(|p| p.rounds).sum()
    }

    /// Total messages across phases.
    #[must_use]
    pub fn total_messages(&self) -> u64 {
        self.phases.iter().map(|p| p.messages).sum()
    }

    /// Maximum per-phase node congestion observed.
    #[must_use]
    pub fn max_node_congestion(&self) -> u64 {
        self.phases.iter().map(PhaseReport::max_node_congestion).max().unwrap_or(0)
    }

    /// Total payload across phases, in machine words.
    #[must_use]
    pub fn total_payload_words(&self) -> u64 {
        self.phases.iter().map(|p| p.payload_words).sum()
    }

    /// Widest single message delivered in any phase, in machine words —
    /// the number the CONGEST O(log n)-bits-per-message budget bounds.
    #[must_use]
    pub fn max_msg_words(&self) -> u32 {
        self.phases.iter().map(|p| p.max_msg_words).max().unwrap_or(0)
    }

    /// Total fault counters merged across all phases.
    #[must_use]
    pub fn total_faults(&self) -> FaultCounters {
        let mut total = FaultCounters::default();
        for p in &self.phases {
            total.merge(&p.faults);
        }
        total
    }

    /// Per-node total messages sent across all phases.
    #[must_use]
    pub fn node_sent_totals(&self) -> Vec<u64> {
        let n = self.phases.iter().map(|p| p.node_sent.len()).max().unwrap_or(0);
        let mut total = vec![0u64; n];
        for p in &self.phases {
            for (t, s) in total.iter_mut().zip(p.node_sent.iter()) {
                *t += s;
            }
        }
        total
    }

    /// Total host wall-clock across phases, in nanoseconds.
    #[must_use]
    pub fn total_wall_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.wall_ns).sum()
    }

    /// Merges another recorder's phases (used when a sub-algorithm keeps its
    /// own recorder), prefixing each phase name.
    pub fn absorb(&mut self, prefix: &str, other: Recorder) {
        for mut p in other.phases {
            p.name = format!("{prefix}{}", p.name);
            self.phases.push(p);
        }
    }

    /// The recorded phases as run-manifest rows (see `congest_telemetry`).
    #[must_use]
    pub fn manifest_rows(&self) -> Vec<congest_telemetry::PhaseRow> {
        self.phases.iter().map(PhaseReport::manifest_row).collect()
    }

    /// Emits one complete trace span per recorded phase into the global
    /// telemetry plane (no-op while telemetry is disabled). Span names
    /// are exactly the recorded phase labels; the phases are laid out
    /// back-to-back ending now, preserving order and true durations
    /// (local phases appear as zero-length slices).
    pub fn trace_phases(&self) {
        if !congest_telemetry::enabled() {
            return;
        }
        let tele = congest_telemetry::global();
        let mut start = tele.now_ns().saturating_sub(self.total_wall_ns());
        for p in &self.phases {
            tele.complete_span(
                &p.name,
                start,
                p.wall_ns,
                vec![
                    ("rounds".to_string(), p.rounds.to_string()),
                    ("messages".to_string(), p.messages.to_string()),
                    ("payload_words".to_string(), p.payload_words.to_string()),
                    ("max_msg_words".to_string(), p.max_msg_words.to_string()),
                    ("max_node_congestion".to_string(), p.max_node_congestion().to_string()),
                ],
            );
            start += p.wall_ns;
        }
    }

    /// Renders a compact per-phase table (used by examples and
    /// experiments) covering the full CONGEST budget picture: rounds,
    /// messages, payload words, widest message, per-node congestion,
    /// and host wall-clock (ms).
    #[must_use]
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        const FMT_W: (usize, usize, usize, usize, usize, usize, usize) =
            (44, 10, 12, 13, 6, 10, 10);
        let (wn, wr, wm, wp, ww, wc, wt) = FMT_W;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<wn$} {:>wr$} {:>wm$} {:>wp$} {:>ww$} {:>wc$} {:>wt$}",
            "phase", "rounds", "messages", "payload-words", "max-w", "max-cong", "wall-ms"
        );
        let mut row = |name: &str, r: u64, m: u64, p: u64, w: u32, c: u64, ns: u64| {
            let _ = writeln!(
                s,
                "{:<wn$} {:>wr$} {:>wm$} {:>wp$} {:>ww$} {:>wc$} {:>wt$.3}",
                name,
                r,
                m,
                p,
                w,
                c,
                ns as f64 / 1e6
            );
        };
        for p in &self.phases {
            row(
                &p.name,
                p.rounds,
                p.messages,
                p.payload_words,
                p.max_msg_words,
                p.max_node_congestion(),
                p.wall_ns,
            );
        }
        row(
            "TOTAL",
            self.total_rounds(),
            self.total_messages(),
            self.total_payload_words(),
            self.max_msg_words(),
            self.max_node_congestion(),
            self.total_wall_ns(),
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(rounds: u64, messages: u64, sent: Vec<u64>) -> PhaseReport {
        PhaseReport { rounds, messages, node_sent: sent, ..Default::default() }
    }

    #[test]
    fn totals_accumulate() {
        let mut r = Recorder::new();
        r.record("a", phase(10, 100, vec![5, 95]));
        r.record("b", phase(7, 3, vec![3, 0]));
        r.record_local("c");
        assert_eq!(r.total_rounds(), 17);
        assert_eq!(r.total_messages(), 103);
        assert_eq!(r.max_node_congestion(), 95);
        assert_eq!(r.node_sent_totals(), vec![8, 95]);
        assert_eq!(r.phases().len(), 3);
    }

    #[test]
    fn payload_words_accumulate() {
        let mut r = Recorder::new();
        r.record("a", PhaseReport { payload_words: 30, max_msg_words: 3, ..phase(1, 10, vec![]) });
        r.record("b", PhaseReport { payload_words: 8, max_msg_words: 4, ..phase(1, 2, vec![]) });
        assert_eq!(r.total_payload_words(), 38);
        assert_eq!(r.max_msg_words(), 4);
    }

    #[test]
    fn absorb_prefixes() {
        let mut inner = Recorder::new();
        inner.record("x", phase(1, 1, vec![1]));
        let mut outer = Recorder::new();
        outer.absorb("sub/", inner);
        assert_eq!(outer.phases()[0].name, "sub/x");
    }

    #[test]
    fn table_renders() {
        let mut r = Recorder::new();
        r.record("phase-one", phase(2, 4, vec![2, 2]));
        let t = r.table();
        assert!(t.contains("phase-one"));
        assert!(t.contains("TOTAL"));
    }

    #[test]
    fn table_covers_the_full_budget_picture() {
        let mut r = Recorder::new();
        r.record(
            "p",
            PhaseReport {
                payload_words: 123,
                max_msg_words: 4,
                wall_ns: 2_500_000,
                ..phase(1, 2, vec![2])
            },
        );
        let t = r.table();
        for col in ["payload-words", "max-w", "wall-ms"] {
            assert!(t.contains(col), "missing column {col} in:\n{t}");
        }
        assert!(t.contains("123"));
        assert!(t.contains("2.500"), "wall_ns rendered as ms:\n{t}");
    }

    #[test]
    fn wall_ns_is_excluded_from_equality() {
        let a = PhaseReport { wall_ns: 10, ..phase(3, 7, vec![1, 6]) };
        let b = PhaseReport { wall_ns: 99_999, ..phase(3, 7, vec![1, 6]) };
        assert_eq!(a, b, "host timing must not break bit-identical comparisons");
        let c = PhaseReport { rounds: 4, ..a.clone() };
        assert_ne!(a, c, "simulated quantities still compare");
        assert_eq!(a.manifest_row().wall_ns, 10, "manifest rows keep the timing");
    }

    #[test]
    fn manifest_rows_and_wall_totals() {
        let mut r = Recorder::new();
        r.record("a", PhaseReport { wall_ns: 5, ..phase(1, 2, vec![2]) });
        r.record("b", PhaseReport { wall_ns: 7, ..phase(3, 4, vec![1, 3]) });
        assert_eq!(r.total_wall_ns(), 12);
        let rows = r.manifest_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].name, "b");
        assert_eq!(rows[1].rounds, 3);
        assert_eq!(rows[1].max_node_congestion, 3);
        assert_eq!(rows[1].wall_ns, 7);
    }
}
