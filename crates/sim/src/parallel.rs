//! Deterministic parallel execution helpers for the engine.
//!
//! The offline dependency set does not include `rayon`, so this module
//! provides the two data-parallel building blocks the simulator needs:
//!
//! * [`WorkerPool`] — a *persistent* team of worker threads with a round
//!   barrier. The engine spawns it once per phase and dispatches one task
//!   per round; workers park on a condvar between rounds, so the steady
//!   state round loop performs no thread spawning, no channel allocation
//!   and no heap allocation at all.
//! * [`par_indexed_map`] — the original one-shot fork-join map, retained
//!   for heavy *local* computation in the algorithm crates and tests.
//!
//! Both are deterministic: work is partitioned into contiguous index
//! ranges, every item is processed by the same pure-per-item function, and
//! outputs land in preallocated disjoint slots, so thread count and
//! scheduling can never change a result (verified by the engine's
//! determinism suite).

use std::num::NonZeroUsize;
use std::sync::{Condvar, Mutex};

/// Number of worker threads to use for a workload of `len` items.
///
/// Small workloads are not worth forking for: the engine steps thousands of
/// rounds, so per-round overhead must stay near zero.
#[must_use]
pub fn worker_count(len: usize) -> usize {
    if len < 4096 {
        return 1;
    }
    let hw = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
    hw.min(len / 2048).max(1)
}

/// Erased pointer to the round task. Only dereferenced between the release
/// barrier (task publication) and the completion barrier, which
/// [`WorkerPool::run`] brackets, so the pointee is always alive when read.
#[derive(Copy, Clone)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is Sync, and the pool's barrier protocol guarantees
// it outlives every dereference (see `run`).
unsafe impl Send for TaskPtr {}

struct PoolState {
    /// Monotone round id; workers run one task per increment.
    generation: u64,
    /// The current round's task, if a round is in flight.
    task: Option<TaskPtr>,
    /// Workers that have not yet finished the current task.
    remaining: usize,
    /// A worker panicked while running a task.
    poisoned: bool,
    /// Pool is shutting down; workers exit.
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signals workers that a new task (or shutdown) is available.
    start: Condvar,
    /// Signals the caller that all workers finished the task.
    done: Condvar,
}

/// A persistent team of worker threads executing one shared task per round.
///
/// [`WorkerPool::run`] publishes a `Fn(usize)` task, runs slice index
/// `workers() - 1` on the calling thread, and blocks until every spawned
/// worker has executed its index — a full round barrier. Between rounds the
/// workers sleep on a condvar; nothing is spawned or allocated per round.
pub struct WorkerPool {
    shared: &'static PoolShared,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool executing tasks across `workers` slots (`workers - 1`
    /// threads plus the caller). `workers` must be at least 1; a pool of 1
    /// runs everything on the caller and spawns nothing.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "pool needs at least one worker slot");
        // The shared block must outlive the 'static worker threads; it is
        // reclaimed in Drop after every worker has been joined.
        let shared: &'static PoolShared = Box::leak(Box::new(PoolShared {
            state: Mutex::new(PoolState {
                generation: 0,
                task: None,
                remaining: 0,
                poisoned: false,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        }));
        let handles = (0..workers.saturating_sub(1))
            .map(|slot| {
                std::thread::Builder::new()
                    .name(format!("congest-sim-worker-{slot}"))
                    .spawn(move || worker_loop(shared, slot))
                    .expect("failed to spawn simulator worker thread")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Total worker slots (spawned threads + the calling thread).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.handles.len() + 1
    }

    /// Executes `task(slot)` for every slot in `0..workers()`, returning
    /// once all slots have completed (round barrier).
    ///
    /// # Panics
    /// Panics if a worker thread panicked inside `task`.
    pub fn run(&self, task: &(dyn Fn(usize) + Sync)) {
        let spawned = self.handles.len();
        if spawned > 0 {
            let mut st =
                self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            assert!(st.task.is_none(), "WorkerPool::run is not reentrant");
            // SAFETY: erase the task's lifetime. Workers only dereference
            // the pointer before decrementing `remaining`, and this frame
            // does not end — not even by unwinding out of the caller-slot
            // task, thanks to the wait-on-drop barrier below — until
            // `remaining == 0`, so the reference outlives every use.
            let erased = unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync + '_),
                    *const (dyn Fn(usize) + Sync + 'static),
                >(std::ptr::from_ref(task))
            };
            st.generation += 1;
            st.task = Some(TaskPtr(erased));
            st.remaining = spawned;
            drop(st);
            self.shared.start.notify_all();
        }
        // Wait for every spawned worker even if the caller-slot task
        // panics below: the erased task pointer and the buffers it reaches
        // live in the caller's frame, so they must outlive every worker
        // access — including during unwind. The guard performs the
        // completion wait in Drop.
        struct WaitGuard<'a>(&'a PoolShared);
        impl Drop for WaitGuard<'_> {
            fn drop(&mut self) {
                let mut st = self.0.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                while st.remaining > 0 {
                    st = self.0.done.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                st.task = None;
            }
        }
        let barrier = (spawned > 0).then(|| WaitGuard(self.shared));
        // The caller is the last worker slot.
        task(spawned);
        drop(barrier);
        if spawned > 0 {
            let st = self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            assert!(!st.poisoned, "simulator worker thread panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st =
                self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            st.shutdown = true;
        }
        self.shared.start.notify_all();
        for h in self.handles.drain(..) {
            // A worker that panicked already poisoned the pool; the panic
            // was surfaced by `run`, so ignore the join error here.
            let _ = h.join();
        }
        // SAFETY: all worker threads are joined; nothing references the
        // leaked shared block anymore.
        unsafe {
            drop(Box::from_raw(std::ptr::from_ref(self.shared).cast_mut()));
        }
    }
}

fn worker_loop(shared: &'static PoolShared, slot: usize) {
    let mut seen_generation = 0u64;
    loop {
        let task = {
            let mut st = shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation > seen_generation {
                    if let Some(t) = st.task {
                        seen_generation = st.generation;
                        break t;
                    }
                }
                st = shared.start.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // Decrement `remaining` even if the task panics, so the caller
        // wakes up and can surface the panic instead of deadlocking.
        let guard = CompletionGuard { shared, panicked: true };
        // SAFETY: `run` keeps the pointee alive until remaining == 0, which
        // only happens after this dereference (guard drops below).
        unsafe { (*task.0)(slot) };
        let mut guard = guard;
        guard.panicked = false;
        drop(guard);
        if std::thread::panicking() {
            return;
        }
    }
}

struct CompletionGuard {
    shared: &'static PoolShared,
    panicked: bool,
}

impl Drop for CompletionGuard {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if self.panicked {
            st.poisoned = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            self.shared.done.notify_all();
        }
    }
}

/// Applies `f` to every item (with its index), in parallel over contiguous
/// chunks, returning outputs in input order.
///
/// `f` must be deterministic per item; chunking never changes the result,
/// only the wall-clock time. One-shot (scoped spawn per call): use
/// [`WorkerPool`] for anything called once per simulated round.
pub fn par_indexed_map<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let len = items.len();
    let workers = worker_count(len);
    if workers <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = len.div_ceil(workers);
    let mut out: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for (ci, items_chunk) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            handles.push(scope.spawn(move || {
                items_chunk
                    .iter_mut()
                    .enumerate()
                    .map(|(j, t)| f(ci * chunk + j, t))
                    .collect::<Vec<R>>()
            }));
        }
        for h in handles {
            out.push(h.join().expect("worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn sequential_small() {
        let mut v: Vec<u64> = (0..100).collect();
        let out = par_indexed_map(&mut v, |i, x| {
            *x += 1;
            *x + i as u64
        });
        assert_eq!(out[10], 11 + 10);
        assert_eq!(v[10], 11);
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut a: Vec<u64> = (0..10_000).collect();
        let mut b = a.clone();
        let seq: Vec<u64> = b.iter_mut().enumerate().map(|(i, x)| *x * 3 + i as u64).collect();
        let par = par_indexed_map(&mut a, |i, x| *x * 3 + i as u64);
        assert_eq!(seq, par);
    }

    #[test]
    fn worker_count_bounds() {
        assert_eq!(worker_count(10), 1);
        assert!(worker_count(1_000_000) >= 1);
    }

    #[test]
    fn mutation_applies_in_parallel_mode() {
        let mut v = vec![0u8; 20_000];
        let _ = par_indexed_map(&mut v, |_, x| {
            *x = 7;
        });
        assert!(v.iter().all(|&x| x == 7));
    }

    #[test]
    fn pool_runs_every_slot_once_per_round() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.workers(), 4);
        let hits = [const { AtomicU64::new(0) }; 4];
        for _ in 0..100 {
            pool.run(&|slot| {
                hits[slot].fetch_add(1, Ordering::Relaxed);
            });
        }
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 100);
        }
    }

    #[test]
    fn pool_of_one_runs_inline() {
        let pool = WorkerPool::new(1);
        let mut hit = false;
        // Non-Sync capture is fine: a pool of one runs on the caller only.
        let cell = std::sync::Mutex::new(&mut hit);
        pool.run(&|slot| {
            assert_eq!(slot, 0);
            **cell.lock().unwrap() = true;
        });
        assert!(hit);
    }

    #[test]
    fn pool_barrier_sees_all_writes() {
        let pool = WorkerPool::new(3);
        let mut data = vec![0u64; 3 * 1000];
        let chunk = 1000;
        for round in 0..50u64 {
            let base = data.as_mut_ptr() as usize;
            pool.run(&move |slot| {
                // SAFETY: each slot writes a disjoint chunk.
                let ptr = (base as *mut u64).wrapping_add(slot * chunk);
                let s = unsafe { std::slice::from_raw_parts_mut(ptr, chunk) };
                for x in s {
                    *x += round;
                }
            });
        }
        let expected: u64 = (0..50).sum();
        assert!(data.iter().all(|&x| x == expected));
    }

    #[test]
    fn caller_slot_panic_still_waits_for_workers() {
        // If the caller-slot task panics, `run` must still block until the
        // spawned workers finish: they hold a pointer into the caller's
        // frame (regression test for the wait-on-drop barrier).
        let pool = WorkerPool::new(4);
        let done = [const { AtomicU64::new(0) }; 4];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(&|slot| {
                if slot == 3 {
                    panic!("caller-slot boom");
                }
                // Slow workers: without the barrier, the caller's unwind
                // would race ahead of these writes.
                std::thread::sleep(std::time::Duration::from_millis(50));
                done[slot].store(1, Ordering::SeqCst);
            });
        }));
        assert!(result.is_err(), "caller-slot panic must propagate");
        for d in &done[..3] {
            assert_eq!(d.load(Ordering::SeqCst), 1, "worker outlived run()");
        }
    }

    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn pool_surfaces_worker_panics() {
        let pool = WorkerPool::new(2);
        pool.run(&|slot| {
            // Panic on the spawned worker, not the caller (slot 1).
            assert!(slot != 0, "boom on worker 0");
        });
    }
}
