//! Deterministic fork-join helper for stepping nodes in parallel.
//!
//! The offline dependency set does not include `rayon`, so this module
//! hand-rolls the one data-parallel pattern the engine needs — *map over
//! disjoint `&mut` chunks, collect results in order* — on top of
//! `crossbeam::scope` threads. Nodes own disjoint state, so chunked
//! execution is race-free and the output is identical to the sequential
//! order regardless of thread count (verified by tests).

use std::num::NonZeroUsize;

/// Number of worker threads to use for a workload of `len` items.
///
/// Small workloads are not worth forking for: the engine steps thousands of
/// rounds, so per-round overhead must stay near zero.
#[must_use]
pub fn worker_count(len: usize) -> usize {
    if len < 4096 {
        return 1;
    }
    let hw = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
    hw.min(len / 2048).max(1)
}

/// Applies `f` to every item (with its index), in parallel over chunks,
/// returning outputs in input order.
///
/// `f` must be deterministic per item; chunking never changes the result,
/// only the wall-clock time.
pub fn par_indexed_map<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let len = items.len();
    let workers = worker_count(len);
    if workers <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = len.div_ceil(workers);
    let mut out: Vec<Vec<R>> = Vec::with_capacity(workers);
    crossbeam::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for (ci, items_chunk) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            handles.push(scope.spawn(move |_| {
                items_chunk
                    .iter_mut()
                    .enumerate()
                    .map(|(j, t)| f(ci * chunk + j, t))
                    .collect::<Vec<R>>()
            }));
        }
        for h in handles {
            out.push(h.join().expect("worker panicked"));
        }
    })
    .expect("crossbeam scope failed");
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_small() {
        let mut v: Vec<u64> = (0..100).collect();
        let out = par_indexed_map(&mut v, |i, x| {
            *x += 1;
            *x + i as u64
        });
        assert_eq!(out[10], 11 + 10);
        assert_eq!(v[10], 11);
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut a: Vec<u64> = (0..10_000).collect();
        let mut b = a.clone();
        let seq: Vec<u64> = b.iter_mut().enumerate().map(|(i, x)| *x * 3 + i as u64).collect();
        let par = par_indexed_map(&mut a, |i, x| *x * 3 + i as u64);
        assert_eq!(seq, par);
    }

    #[test]
    fn worker_count_bounds() {
        assert_eq!(worker_count(10), 1);
        assert!(worker_count(1_000_000) >= 1);
    }

    #[test]
    fn mutation_applies_in_parallel_mode() {
        let mut v = vec![0u8; 20_000];
        let _ = par_indexed_map(&mut v, |_, x| {
            *x = 7;
        });
        assert!(v.iter().all(|&x| x == 7));
    }
}
