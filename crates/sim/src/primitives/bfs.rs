//! Distributed BFS spanning-tree construction.
//!
//! Used wherever the paper assumes a BFS tree rooted at a leader (Alg 7
//! Step 2, broadcast primitives of Appendix A.1). Runs in O(D) rounds where
//! D is the hop-diameter of the communication graph. Parent choice is the
//! minimum-id announcing neighbor, so the tree is deterministic.

use crate::engine::{Engine, Envelope, NodeEnv, NodeLogic, Outbox, RunUntil, SimConfig, Topology};
use crate::error::SimError;
use crate::metrics::PhaseReport;
use congest_graph::NodeId;

/// A rooted spanning tree of the communication graph, as computed by
/// [`build_bfs_tree`]. `parent[root] == None`.
#[derive(Clone, Debug)]
pub struct BfsTree {
    /// The root node.
    pub root: NodeId,
    /// Parent pointer per node (`None` for the root).
    pub parent: Vec<Option<NodeId>>,
    /// Hop depth per node.
    pub depth: Vec<u64>,
    /// Children lists per node, sorted by id.
    pub children: Vec<Vec<NodeId>>,
}

impl BfsTree {
    /// Tree height (max depth).
    #[must_use]
    pub fn height(&self) -> u64 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Nodes in root-to-leaves (BFS) order.
    #[must_use]
    pub fn topological_order(&self) -> Vec<NodeId> {
        let mut order = vec![self.root];
        let mut i = 0;
        while i < order.len() {
            let v = order[i];
            order.extend(self.children[v as usize].iter().copied());
            i += 1;
        }
        order
    }
}

#[derive(Clone, Debug)]
enum BfsMsg {
    /// "I am at depth d, adopt me as parent if you like."
    Announce { depth: u64 },
    /// "You are my parent."
    Adopt,
}

struct BfsNode {
    is_root: bool,
    depth: Option<u64>,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    announced: bool,
    adopted_sent: bool,
}

impl NodeLogic for BfsNode {
    type Msg = BfsMsg;

    fn on_round(
        &mut self,
        env: &NodeEnv<'_>,
        inbox: &[Envelope<BfsMsg>],
        out: &mut Outbox<'_, BfsMsg>,
    ) {
        if env.round == 0 && self.is_root {
            self.depth = Some(0);
        }
        for e in inbox {
            match e.msg {
                BfsMsg::Announce { depth } => {
                    if self.depth.is_none() {
                        // Inbox is sender-ordered, so the first announce in
                        // the earliest round is from the min-id neighbor.
                        self.depth = Some(depth + 1);
                        self.parent = Some(e.from);
                    }
                }
                BfsMsg::Adopt => {
                    self.children.push(e.from);
                }
            }
        }
        if let Some(d) = self.depth {
            if !self.announced {
                out.broadcast(BfsMsg::Announce { depth: d });
                self.announced = true;
            } else if !self.adopted_sent {
                if let Some(p) = self.parent {
                    let ni = env.neighbor_index(p).expect("parent is a neighbor");
                    out.send_nbr(ni, BfsMsg::Adopt);
                }
                self.adopted_sent = true;
            }
        }
    }
}

/// Builds a BFS tree rooted at `root`.
///
/// # Errors
/// Fails if the graph is disconnected (budget exhaustion) or on any CONGEST
/// violation.
pub fn build_bfs_tree(
    topo: &Topology,
    cfg: SimConfig,
    root: NodeId,
) -> Result<(BfsTree, PhaseReport), SimError> {
    let n = topo.n();
    let engine = Engine::new(topo, cfg);
    let mut nodes: Vec<BfsNode> = (0..n)
        .map(|i| BfsNode {
            is_root: i as NodeId == root,
            depth: None,
            parent: None,
            children: Vec::new(),
            announced: false,
            adopted_sent: false,
        })
        .collect();
    let report = engine.run(&mut nodes, RunUntil::Quiesce { max: 2 * n as u64 + 4 })?;
    let mut parent = Vec::with_capacity(n);
    let mut depth = Vec::with_capacity(n);
    let mut children = Vec::with_capacity(n);
    for (i, nd) in nodes.into_iter().enumerate() {
        let d = match nd.depth {
            Some(d) => d,
            // Under an active fault plan a crashed node can legitimately
            // stay unreached until the protocol quiesces; surface that as
            // a retryable error, not a panic. Fault-free it is still a
            // protocol bug (disconnected input) and panics loudly.
            None if report.faults.injected > 0 => {
                return Err(SimError::Incomplete { node: i as NodeId })
            }
            None => panic!("node {i} unreached: graph disconnected"),
        };
        parent.push(nd.parent);
        depth.push(d);
        let mut ch = nd.children;
        ch.sort_unstable();
        children.push(ch);
    }
    Ok((BfsTree { root, parent, depth, children }, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{gnm_connected, grid, path, WeightDist};

    fn topo_of(g: &congest_graph::Graph<u64>) -> Topology {
        Topology::from_graph(g)
    }

    #[test]
    fn path_tree_shape() {
        let g = path(5, false, WeightDist::Unit, 0);
        let (tree, report) = build_bfs_tree(&topo_of(&g), SimConfig::default(), 0).unwrap();
        assert_eq!(tree.parent, vec![None, Some(0), Some(1), Some(2), Some(3)]);
        assert_eq!(tree.depth, vec![0, 1, 2, 3, 4]);
        assert_eq!(tree.children[0], vec![1]);
        assert_eq!(tree.height(), 4);
        assert!(report.rounds <= 12);
    }

    #[test]
    fn grid_tree_depths_are_bfs_distances() {
        let g = grid(4, 4, false, WeightDist::Unit, 1);
        let (tree, _) = build_bfs_tree(&topo_of(&g), SimConfig::default(), 0).unwrap();
        // BFS distance in a grid from corner (0,0) is manhattan distance.
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(tree.depth[r * 4 + c], (r + c) as u64);
            }
        }
    }

    #[test]
    fn children_parent_consistent() {
        let g = gnm_connected(40, 80, false, WeightDist::Unit, 3);
        let (tree, _) = build_bfs_tree(&topo_of(&g), SimConfig::default(), 7).unwrap();
        for v in 0..40u32 {
            for &c in &tree.children[v as usize] {
                assert_eq!(tree.parent[c as usize], Some(v));
                assert_eq!(tree.depth[c as usize], tree.depth[v as usize] + 1);
            }
        }
        let total_children: usize = tree.children.iter().map(Vec::len).sum();
        assert_eq!(total_children, 39);
        assert_eq!(tree.topological_order().len(), 40);
    }

    #[test]
    fn rounds_proportional_to_diameter() {
        let g = path(50, false, WeightDist::Unit, 0);
        let (tree, report) = build_bfs_tree(&topo_of(&g), SimConfig::default(), 0).unwrap();
        assert_eq!(tree.height(), 49);
        assert!(report.rounds <= 2 * 49 + 4, "rounds = {}", report.rounds);
    }
}
