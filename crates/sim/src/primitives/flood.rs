//! Pipelined flooding broadcast with duplicate suppression.
//!
//! Implements the broadcast primitives of Appendix A.1:
//!
//! * Lemma A.1 — one node broadcasts k values in O(n + k) rounds;
//! * Lemma A.2 — every node broadcasts one (or a few) values, all delivered
//!   everywhere in O(n) rounds.
//!
//! Both are instances of the same mechanism: every node maintains a log of
//! known items; each round it forwards, on every channel, the next item the
//! peer is not yet known to have. With bandwidth B = 1 an item crosses each
//! channel at most once per direction, so all K items reach all nodes
//! within O(K + D) rounds — the standard pipelined-flooding bound.

use crate::bitset::BitSet;
use crate::engine::{Engine, Envelope, NodeEnv, NodeLogic, Outbox, RunUntil, SimConfig, Topology};
use crate::error::SimError;
use crate::metrics::PhaseReport;
use std::collections::HashMap;
use std::hash::Hash;

/// Items that can be flooded: cheap to clone, hashable for dedup. One item
/// models O(1) machine words.
pub trait FloodItem: Clone + Eq + Hash + Send + Sync + 'static {}
impl<T: Clone + Eq + Hash + Send + Sync + 'static> FloodItem for T {}

struct FloodNode<T> {
    /// Known items in discovery order.
    log: Vec<T>,
    index: HashMap<T, usize>,
    /// Per neighbor (by position in the env neighbor list): which log items
    /// the peer is known to have (either we sent them or they sent them).
    peer_knows: Vec<BitSet>,
    /// Per neighbor: scan cursor into `log`.
    cursor: Vec<usize>,
    /// On-wire width of one item, in machine words (protocol-wide).
    item_words: u32,
}

impl<T: FloodItem> FloodNode<T> {
    fn new(initial: Vec<T>, degree: usize, item_words: u32) -> Self {
        let mut node = FloodNode {
            log: Vec::new(),
            index: HashMap::new(),
            peer_knows: (0..degree).map(|_| BitSet::new()).collect(),
            cursor: vec![0; degree],
            item_words,
        };
        for item in initial {
            node.learn(item);
        }
        node
    }

    fn learn(&mut self, item: T) -> usize {
        if let Some(&i) = self.index.get(&item) {
            return i;
        }
        let i = self.log.len();
        self.index.insert(item.clone(), i);
        self.log.push(item);
        i
    }
}

impl<T: FloodItem> NodeLogic for FloodNode<T> {
    type Msg = T;

    fn on_round(&mut self, env: &NodeEnv<'_>, inbox: &[Envelope<T>], out: &mut Outbox<'_, T>) {
        // Receive first: dedup and remember that the sender knows the item.
        for e in inbox {
            let idx = self.learn(e.msg.clone());
            let ni = env.neighbor_index(e.from).expect("sender is a neighbor");
            self.peer_knows[ni].set(idx);
        }
        // Send: for each channel, the first known item the peer lacks.
        for ni in 0..env.neighbors.len() {
            while self.cursor[ni] < self.log.len() {
                let i = self.cursor[ni];
                if self.peer_knows[ni].get(i) {
                    self.cursor[ni] += 1;
                    continue;
                }
                out.send_nbr(ni, self.log[i].clone());
                self.peer_knows[ni].set(i);
                self.cursor[ni] += 1;
                break;
            }
        }
    }

    fn active(&self) -> bool {
        self.cursor
            .iter()
            .enumerate()
            .any(|(ni, &c)| (c..self.log.len()).any(|i| !self.peer_knows[ni].get(i)))
    }

    fn msg_words(&self, _msg: &T) -> u32 {
        self.item_words
    }
}

/// Floods every node's initial items to all nodes. Returns each node's full
/// item log (discovery order, own items first) and the phase report.
///
/// `item_words` is the on-wire width of one item in O(log n)-bit machine
/// words (each id/weight field counts as one word); it only affects the
/// payload accounting, never the protocol.
///
/// # Errors
/// Propagates engine errors; `budget` bounds the rounds (callers typically
/// pass the analytical O(K + n) bound).
pub fn flood_broadcast<T: FloodItem>(
    topo: &Topology,
    cfg: SimConfig,
    initial: Vec<Vec<T>>,
    item_words: u32,
    until: RunUntil,
) -> Result<(Vec<Vec<T>>, PhaseReport), SimError> {
    let n = topo.n();
    assert_eq!(initial.len(), n);
    let engine = Engine::new(topo, cfg);
    let mut nodes: Vec<FloodNode<T>> = initial
        .into_iter()
        .enumerate()
        .map(|(i, items)| {
            FloodNode::new(items, topo.neighbors(i as congest_graph::NodeId).len(), item_words)
        })
        .collect();
    let report = engine.run(&mut nodes, until)?;
    Ok((nodes.into_iter().map(|nd| nd.log).collect(), report))
}

/// Convenience wrapper for the Lemma A.2 pattern (all-to-all broadcast with
/// a quiescence budget of `O(total items + n)`); `item_words` as in
/// [`flood_broadcast`].
///
/// # Errors
/// Propagates engine errors.
pub fn all_to_all_broadcast<T: FloodItem>(
    topo: &Topology,
    cfg: SimConfig,
    initial: Vec<Vec<T>>,
    item_words: u32,
) -> Result<(Vec<Vec<T>>, PhaseReport), SimError> {
    let total: usize = initial.iter().map(Vec::len).sum();
    let budget = 4 * (total as u64 + topo.n() as u64) + 16;
    flood_broadcast(topo, cfg, initial, item_words, RunUntil::Quiesce { max: budget })
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest_graph::generators::{gnm_connected, path, star, WeightDist};
    use congest_graph::NodeId;

    fn check_all_know_all(logs: &[Vec<u32>], expected: &mut Vec<u32>) {
        expected.sort_unstable();
        for log in logs {
            let mut got = log.clone();
            got.sort_unstable();
            assert_eq!(&got, expected);
        }
    }

    #[test]
    fn single_source_k_values_on_path() {
        let g = path(8, false, WeightDist::Unit, 0);
        let topo = Topology::from_graph(&g);
        let k = 20u32;
        let mut initial: Vec<Vec<u32>> = vec![Vec::new(); 8];
        initial[0] = (0..k).collect();
        let (logs, report) = all_to_all_broadcast(&topo, SimConfig::default(), initial, 1).unwrap();
        check_all_know_all(&logs, &mut (0..k).collect());
        // Lemma A.1 shape: O(k + D) rounds.
        assert!(report.rounds <= (k as u64 + 8) + 8, "rounds = {}", report.rounds);
    }

    #[test]
    fn all_to_all_one_value_each() {
        let g = gnm_connected(24, 48, false, WeightDist::Unit, 5);
        let topo = Topology::from_graph(&g);
        let initial: Vec<Vec<u32>> = (0..24).map(|i| vec![i as u32]).collect();
        let (logs, report) = all_to_all_broadcast(&topo, SimConfig::default(), initial, 1).unwrap();
        check_all_know_all(&logs, &mut (0..24).collect());
        // Lemma A.2 shape: O(n) rounds.
        assert!(report.rounds <= 4 * 24, "rounds = {}", report.rounds);
    }

    #[test]
    fn duplicates_deduplicated() {
        let g = star(6, false, WeightDist::Unit, 0);
        let topo = Topology::from_graph(&g);
        // every node starts with the same item plus one unique item
        let initial: Vec<Vec<u32>> = (0..6).map(|i| vec![999, i as u32]).collect();
        let (logs, _) = all_to_all_broadcast(&topo, SimConfig::default(), initial, 1).unwrap();
        check_all_know_all(&logs, &mut vec![999, 0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn own_items_first_in_log() {
        let g = path(3, false, WeightDist::Unit, 0);
        let topo = Topology::from_graph(&g);
        let initial = vec![vec![10u32, 11], vec![20], vec![30]];
        let (logs, _) = all_to_all_broadcast(&topo, SimConfig::default(), initial, 1).unwrap();
        assert_eq!(&logs[0][..2], &[10, 11]);
        assert_eq!(logs[1][0], 20);
    }

    #[test]
    fn empty_broadcast_terminates_immediately() {
        let g = path(4, false, WeightDist::Unit, 0);
        let topo = Topology::from_graph(&g);
        let initial: Vec<Vec<u32>> = vec![Vec::new(); 4];
        let (logs, report) = all_to_all_broadcast(&topo, SimConfig::default(), initial, 1).unwrap();
        assert!(logs.iter().all(Vec::is_empty));
        assert!(report.rounds <= 1);
        assert_eq!(report.messages, 0);
    }

    #[test]
    fn deterministic_logs() {
        let g = gnm_connected(16, 30, false, WeightDist::Unit, 9);
        let topo = Topology::from_graph(&g);
        let initial: Vec<Vec<u32>> = (0..16).map(|i| vec![i as u32 * 7]).collect();
        let (a, ra) =
            all_to_all_broadcast(&topo, SimConfig::default(), initial.clone(), 1).unwrap();
        let (b, rb) = all_to_all_broadcast(&topo, SimConfig::default(), initial, 1).unwrap();
        assert_eq!(a, b);
        assert_eq!(ra.rounds, rb.rounds);
        assert_eq!(ra.messages, rb.messages);
    }

    #[test]
    fn respects_worst_case_charging() {
        // Exact-mode run with the analytical budget must succeed.
        let g = path(6, false, WeightDist::Unit, 0);
        let topo = Topology::from_graph(&g);
        let initial: Vec<Vec<u32>> = (0..6).map(|i| vec![i as u32]).collect();
        let budget = 4 * (6 + 6) + 16;
        let (_, report) =
            flood_broadcast(&topo, SimConfig::default(), initial, 1, RunUntil::Exact(budget))
                .unwrap();
        assert_eq!(report.rounds, budget);
    }

    #[test]
    fn large_payload_pipelines() {
        // K values from each endpoint of a path cross the middle: rounds
        // should be ~2K + n, not K * n.
        let g = path(10, false, WeightDist::Unit, 0);
        let topo = Topology::from_graph(&g);
        let mut initial: Vec<Vec<(NodeId, u32)>> = vec![Vec::new(); 10];
        initial[0] = (0..50).map(|k| (0, k)).collect();
        initial[9] = (0..50).map(|k| (9, k)).collect();
        let (logs, report) = all_to_all_broadcast(&topo, SimConfig::default(), initial, 1).unwrap();
        assert!(logs.iter().all(|l| l.len() == 100));
        assert!(report.rounds <= 2 * 50 + 3 * 10, "rounds = {}", report.rounds);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use congest_graph::generators::{gnm_connected, WeightDist};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Every item reaches every node, regardless of topology, item
        /// distribution, or duplication.
        #[test]
        fn flood_is_complete(
            n in 2usize..20,
            extra in 0usize..30,
            seed in 0u64..1000,
            items in proptest::collection::vec((0usize..20, 0u32..50), 0..30),
        ) {
            let g = gnm_connected(n, extra, false, WeightDist::Unit, seed);
            let topo = Topology::from_graph(&g);
            let mut initial: Vec<Vec<u32>> = vec![Vec::new(); n];
            let mut expected: Vec<u32> = Vec::new();
            for (slot, item) in items {
                initial[slot % n].push(item);
                expected.push(item);
            }
            expected.sort_unstable();
            expected.dedup();
            let (logs, report) =
                all_to_all_broadcast(&topo, SimConfig::default(), initial, 1).unwrap();
            for log in &logs {
                let mut got = log.clone();
                got.sort_unstable();
                prop_assert_eq!(&got, &expected);
            }
            // Lemma A.1/A.2 shape: O(K + n) rounds.
            prop_assert!(report.rounds <= 4 * (expected.len() as u64 + n as u64) + 16);
        }

        /// An item never crosses one channel direction twice (duplicate
        /// suppression): total messages ≤ items × channels × 2.
        #[test]
        fn flood_message_bound(
            n in 2usize..16,
            extra in 0usize..20,
            seed in 0u64..1000,
            k in 1usize..10,
        ) {
            let g = gnm_connected(n, extra, false, WeightDist::Unit, seed);
            let topo = Topology::from_graph(&g);
            let mut initial: Vec<Vec<u32>> = vec![Vec::new(); n];
            initial[0] = (0..k as u32).collect();
            let channels: usize = (0..n as congest_graph::NodeId)
                .map(|v| topo.neighbors(v).len())
                .sum();
            let (_, report) =
                all_to_all_broadcast(&topo, SimConfig::default(), initial, 1).unwrap();
            prop_assert!(report.messages <= (k * channels) as u64);
        }
    }
}
