//! Reusable CONGEST communication primitives (Appendix A.1 / A.5 of the
//! paper): BFS spanning trees, pipelined flooding broadcast, and pipelined
//! tree aggregation/dissemination.

mod bfs;
mod flood;
mod tree_cast;

pub use bfs::{build_bfs_tree, BfsTree};
pub use flood::{all_to_all_broadcast, flood_broadcast, FloodItem};
pub use tree_cast::{broadcast_stream, convergecast_budget, convergecast_sum};
