//! Pipelined aggregation and dissemination along a rooted spanning tree.
//!
//! These implement the communication skeletons of Algorithms 11/12
//! (Appendix A.5): a *k-vector convergecast* — every node holds a vector of
//! k numbers and the root learns the component-wise sum in O(height + k)
//! rounds — and the symmetric *stream broadcast* down the tree in
//! O(height + k) rounds. Each round a node forwards at most one component
//! per channel, which is what makes the paper's O(n)-round bound for n
//! sample points work (Lemmas A.13, A.14).

use crate::engine::{Engine, Envelope, NodeEnv, NodeLogic, Outbox, RunUntil, SimConfig, Topology};
use crate::error::SimError;
use crate::metrics::PhaseReport;
use crate::primitives::bfs::BfsTree;
use congest_graph::NodeId;

struct ConvNode {
    /// Channel index of the parent (precomputed; `None` at the root).
    parent_ni: Option<usize>,
    n_children: usize,
    /// Running partial sums; own contribution pre-loaded.
    acc: Vec<u64>,
    /// How many children have reported each component.
    reported: Vec<usize>,
    next_send: usize,
}

impl NodeLogic for ConvNode {
    type Msg = (u32, u64);

    fn on_round(
        &mut self,
        _env: &NodeEnv<'_>,
        inbox: &[Envelope<(u32, u64)>],
        out: &mut Outbox<'_, (u32, u64)>,
    ) {
        for e in inbox {
            let (mu, partial) = e.msg;
            self.acc[mu as usize] += partial;
            self.reported[mu as usize] += 1;
        }
        if let Some(ni) = self.parent_ni {
            if self.next_send < self.acc.len() && self.reported[self.next_send] == self.n_children {
                out.send_nbr(ni, (self.next_send as u32, self.acc[self.next_send]));
                self.next_send += 1;
            }
        }
    }

    fn active(&self) -> bool {
        self.parent_ni.is_some() && self.next_send < self.acc.len()
    }

    fn msg_words(&self, _msg: &Self::Msg) -> u32 {
        2 // component index + partial sum
    }
}

/// Convergecast: component-wise sum of each node's `vals` vector, delivered
/// at the tree root. All vectors must share one length k; the run takes
/// O(height + k) rounds.
///
/// # Errors
/// Propagates engine errors.
pub fn convergecast_sum(
    topo: &Topology,
    cfg: SimConfig,
    tree: &BfsTree,
    vals: Vec<Vec<u64>>,
    until: RunUntil,
) -> Result<(Vec<u64>, PhaseReport), SimError> {
    let n = topo.n();
    assert_eq!(vals.len(), n);
    let k = vals.first().map(Vec::len).unwrap_or(0);
    assert!(vals.iter().all(|v| v.len() == k), "all vectors must have length k");
    let engine = Engine::new(topo, cfg);
    let mut nodes: Vec<ConvNode> = vals
        .into_iter()
        .enumerate()
        .map(|(i, v)| ConvNode {
            parent_ni: tree.parent[i].map(|p| {
                topo.neighbors(i as NodeId).binary_search(&p).expect("tree parent is a neighbor")
            }),
            n_children: tree.children[i].len(),
            acc: v,
            reported: vec![0; k],
            next_send: 0,
        })
        .collect();
    let report = engine.run(&mut nodes, until)?;
    let root_acc = std::mem::take(&mut nodes[tree.root as usize].acc);
    Ok((root_acc, report))
}

/// Default quiescence budget for [`convergecast_sum`].
#[must_use]
pub fn convergecast_budget(tree: &BfsTree, k: usize) -> u64 {
    2 * (tree.height() + k as u64) + 8
}

struct StreamNode<T> {
    /// Channel indices of the tree children (precomputed).
    children_ni: Vec<usize>,
    /// Items received (or originated), in index order.
    received: Vec<T>,
    /// Next item index to forward to children.
    next_fwd: usize,
}

impl<T: Clone + Send + Sync + 'static> NodeLogic for StreamNode<T> {
    type Msg = (u32, T);

    fn on_round(
        &mut self,
        _env: &NodeEnv<'_>,
        inbox: &[Envelope<(u32, T)>],
        out: &mut Outbox<'_, (u32, T)>,
    ) {
        for e in inbox {
            let (idx, item) = e.msg.clone();
            debug_assert_eq!(idx as usize, self.received.len(), "in-order stream");
            self.received.push(item);
        }
        if self.next_fwd < self.received.len() && !self.children_ni.is_empty() {
            let item = self.received[self.next_fwd].clone();
            for i in 0..self.children_ni.len() {
                out.send_nbr(self.children_ni[i], (self.next_fwd as u32, item.clone()));
            }
            self.next_fwd += 1;
        }
    }

    fn active(&self) -> bool {
        !self.children_ni.is_empty() && self.next_fwd < self.received.len()
    }

    fn msg_words(&self, _msg: &Self::Msg) -> u32 {
        2 // stream index + item
    }
}

/// Broadcasts `values` from the tree root to every node, pipelined one item
/// per round per channel: O(height + k) rounds (Lemma A.1 shape). Returns
/// each node's received values (== `values` everywhere) and the report.
///
/// # Errors
/// Propagates engine errors.
pub fn broadcast_stream<T: Clone + Send + Sync + 'static>(
    topo: &Topology,
    cfg: SimConfig,
    tree: &BfsTree,
    values: Vec<T>,
) -> Result<(Vec<Vec<T>>, PhaseReport), SimError> {
    let n = topo.n();
    let k = values.len();
    let engine = Engine::new(topo, cfg);
    let mut nodes: Vec<StreamNode<T>> = (0..n)
        .map(|i| StreamNode {
            children_ni: tree.children[i]
                .iter()
                .map(|c| {
                    topo.neighbors(i as NodeId).binary_search(c).expect("tree child is a neighbor")
                })
                .collect(),
            received: if i as NodeId == tree.root { values.clone() } else { Vec::new() },
            next_fwd: 0,
        })
        .collect();
    let budget = 2 * (tree.height() + k as u64) + 8;
    let report = engine.run(&mut nodes, RunUntil::Quiesce { max: budget })?;
    Ok((nodes.into_iter().map(|nd| nd.received).collect(), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::bfs::build_bfs_tree;
    use congest_graph::generators::{gnm_connected, path, WeightDist};

    fn setup(n: usize, extra: usize, seed: u64) -> (Topology, BfsTree) {
        let g = gnm_connected(n, extra, false, WeightDist::Unit, seed);
        let topo = Topology::from_graph(&g);
        let (tree, _) = build_bfs_tree(&topo, SimConfig::default(), 0).unwrap();
        (topo, tree)
    }

    #[test]
    fn convergecast_sums_correct() {
        let (topo, tree) = setup(20, 30, 4);
        let k = 7;
        let vals: Vec<Vec<u64>> =
            (0..20).map(|i| (0..k).map(|mu| (i * 10 + mu) as u64).collect()).collect();
        let expected: Vec<u64> =
            (0..k).map(|mu| (0..20).map(|i| (i * 10 + mu) as u64).sum()).collect();
        let budget = convergecast_budget(&tree, k);
        let (sums, report) = convergecast_sum(
            &topo,
            SimConfig::default(),
            &tree,
            vals,
            RunUntil::Quiesce { max: budget },
        )
        .unwrap();
        assert_eq!(sums, expected);
        assert!(report.rounds <= budget);
    }

    #[test]
    fn convergecast_pipelines_on_path() {
        // Path of n nodes, k components: rounds must be O(n + k), not n*k.
        let g = path(30, false, WeightDist::Unit, 0);
        let topo = Topology::from_graph(&g);
        let (tree, _) = build_bfs_tree(&topo, SimConfig::default(), 0).unwrap();
        let k = 40;
        let vals: Vec<Vec<u64>> = (0..30).map(|_| vec![1u64; k]).collect();
        let (sums, report) = convergecast_sum(
            &topo,
            SimConfig::default(),
            &tree,
            vals,
            RunUntil::Quiesce { max: convergecast_budget(&tree, k) },
        )
        .unwrap();
        assert_eq!(sums, vec![30u64; k]);
        assert!(
            report.rounds <= (30 + 40) as u64 + 8,
            "pipelining violated: rounds = {}",
            report.rounds
        );
    }

    #[test]
    fn convergecast_k_zero() {
        let (topo, tree) = setup(8, 8, 1);
        let vals: Vec<Vec<u64>> = vec![Vec::new(); 8];
        let (sums, _) = convergecast_sum(
            &topo,
            SimConfig::default(),
            &tree,
            vals,
            RunUntil::Quiesce { max: 64 },
        )
        .unwrap();
        assert!(sums.is_empty());
    }

    #[test]
    fn broadcast_stream_delivers_in_order() {
        let (topo, tree) = setup(15, 20, 2);
        let values: Vec<u64> = (100..130).collect();
        let (received, report) =
            broadcast_stream(&topo, SimConfig::default(), &tree, values.clone()).unwrap();
        for r in &received {
            assert_eq!(r, &values);
        }
        assert!(report.rounds <= 2 * (tree.height() + 30) + 8);
    }

    #[test]
    fn broadcast_stream_pipelines_on_path() {
        let g = path(25, false, WeightDist::Unit, 0);
        let topo = Topology::from_graph(&g);
        let (tree, _) = build_bfs_tree(&topo, SimConfig::default(), 0).unwrap();
        let values: Vec<u32> = (0..60).collect();
        let (received, report) =
            broadcast_stream(&topo, SimConfig::default(), &tree, values.clone()).unwrap();
        assert!(received.iter().all(|r| r == &values));
        assert!(report.rounds <= (25 + 60) as u64 + 8, "rounds = {}", report.rounds);
    }
}
