//! Engine determinism suite: the parallel stepping path must be
//! *bit-identical* to sequential stepping — same node states, same phase
//! reports, same errors — for every worker count and every topology.
//!
//! The engine relies on this (the paper's algorithms are deterministic, so
//! any divergence is a simulator bug): parallel stepping partitions nodes
//! into contiguous ranges whose outbox slot ranges are disjoint, and
//! delivery compacts messages in a fixed receiver-major, sender-sorted
//! order that cannot observe thread scheduling.

use congest_graph::generators::{gnm_connected, WeightDist};
use congest_sim::fault::FaultSpec;
use congest_sim::primitives::{
    all_to_all_broadcast, broadcast_stream, build_bfs_tree, convergecast_budget, convergecast_sum,
};
use congest_sim::{
    Engine, Envelope, NodeEnv, NodeLogic, Outbox, PhaseReport, RunUntil, SimConfig, SimError,
    Topology,
};
use proptest::prelude::*;

/// Sequential reference configuration.
fn seq_cfg() -> SimConfig {
    SimConfig { parallel_threshold: usize::MAX, ..Default::default() }
}

/// Forces the worker-pool path regardless of n.
fn par_cfg(workers: usize) -> SimConfig {
    SimConfig { parallel_threshold: 0, workers, ..Default::default() }
}

fn random_topo(n: usize, extra: usize, seed: u64) -> Topology {
    Topology::from_graph(&gnm_connected(n, extra, false, WeightDist::Unit, seed))
}

#[test]
fn flood_parallel_matches_sequential() {
    for seed in 0..5u64 {
        let topo = random_topo(24, 40, seed);
        let initial: Vec<Vec<u32>> = (0..24).map(|i| vec![i as u32, 1000 + seed as u32]).collect();
        let (seq_logs, seq_rep) =
            all_to_all_broadcast(&topo, seq_cfg(), initial.clone(), 1).unwrap();
        for workers in [2, 3, 5] {
            let (par_logs, par_rep) =
                all_to_all_broadcast(&topo, par_cfg(workers), initial.clone(), 1).unwrap();
            assert_eq!(seq_logs, par_logs, "seed {seed} workers {workers}: logs diverge");
            assert_eq!(seq_rep, par_rep, "seed {seed} workers {workers}: report diverges");
        }
    }
}

#[test]
fn bfs_tree_parallel_matches_sequential() {
    for seed in 0..5u64 {
        let topo = random_topo(30, 55, seed);
        let (seq_tree, seq_rep) = build_bfs_tree(&topo, seq_cfg(), 3).unwrap();
        for workers in [2, 4] {
            let (par_tree, par_rep) = build_bfs_tree(&topo, par_cfg(workers), 3).unwrap();
            assert_eq!(seq_tree.parent, par_tree.parent, "seed {seed} workers {workers}");
            assert_eq!(seq_tree.depth, par_tree.depth, "seed {seed} workers {workers}");
            assert_eq!(seq_tree.children, par_tree.children, "seed {seed} workers {workers}");
            assert_eq!(seq_rep, par_rep, "seed {seed} workers {workers}");
        }
    }
}

#[test]
fn tree_cast_parallel_matches_sequential() {
    let topo = random_topo(20, 30, 9);
    let (tree, _) = build_bfs_tree(&topo, seq_cfg(), 0).unwrap();
    let k = 12;
    let vals: Vec<Vec<u64>> =
        (0..20).map(|v| (0..k).map(|mu| (v * 31 + mu) as u64).collect()).collect();
    let until = RunUntil::Quiesce { max: convergecast_budget(&tree, k) };
    let (seq_sums, seq_rep) =
        convergecast_sum(&topo, seq_cfg(), &tree, vals.clone(), until).unwrap();
    let (par_sums, par_rep) = convergecast_sum(&topo, par_cfg(3), &tree, vals, until).unwrap();
    assert_eq!(seq_sums, par_sums);
    assert_eq!(seq_rep, par_rep);

    let values: Vec<u64> = (0..40).collect();
    let (seq_rx, seq_rep) = broadcast_stream(&topo, seq_cfg(), &tree, values.clone()).unwrap();
    let (par_rx, par_rep) = broadcast_stream(&topo, par_cfg(4), &tree, values).unwrap();
    assert_eq!(seq_rx, par_rx);
    assert_eq!(seq_rep, par_rep);
}

/// A protocol with order-sensitive state: each node keeps a running hash of
/// (round, sender, payload) receipt triples and echoes its hash onward, so
/// any difference in receive order or content snowballs.
struct HashChain {
    acc: u64,
    rounds_left: u32,
}

impl NodeLogic for HashChain {
    type Msg = u64;

    fn on_round(&mut self, env: &NodeEnv<'_>, inbox: &[Envelope<u64>], out: &mut Outbox<'_, u64>) {
        for e in inbox {
            self.acc = self
                .acc
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(env.round)
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(u64::from(e.from))
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(e.msg);
        }
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            out.broadcast(self.acc ^ u64::from(env.id));
        }
    }

    fn active(&self) -> bool {
        self.rounds_left > 0
    }

    // Real in-domain corruption so seeded corrupt plans exercise mutation
    // (not the drop fallback): any u64 is a valid payload for this protocol.
    fn corrupt_msg(&self, msg: &mut u64, entropy: u64) -> bool {
        *msg ^= entropy | 1;
        true
    }
}

fn run_hash_chain(topo: &Topology, cfg: SimConfig) -> (Vec<u64>, PhaseReport) {
    let engine = Engine::new(topo, cfg);
    let mut nodes: Vec<HashChain> =
        (0..topo.n()).map(|v| HashChain { acc: v as u64 + 1, rounds_left: 8 }).collect();
    let report = engine.run(&mut nodes, RunUntil::Quiesce { max: 64 }).unwrap();
    (nodes.into_iter().map(|nd| nd.acc).collect(), report)
}

#[test]
fn order_sensitive_state_is_bit_identical() {
    for seed in 0..8u64 {
        let topo = random_topo(26, 50, seed);
        let (seq_state, seq_rep) = run_hash_chain(&topo, seq_cfg());
        for workers in [2, 3, 7] {
            let (par_state, par_rep) = run_hash_chain(&topo, par_cfg(workers));
            assert_eq!(seq_state, par_state, "seed {seed} workers {workers}");
            assert_eq!(seq_rep, par_rep, "seed {seed} workers {workers}");
        }
    }
}

/// Like [`run_hash_chain`] but fault-tolerant in the harness: under an
/// aggressive fault plan the run may legitimately exhaust its budget, and
/// that outcome must also be identical across stepping paths.
fn run_hash_chain_faulted(
    topo: &Topology,
    cfg: SimConfig,
) -> (Vec<u64>, Result<PhaseReport, SimError>) {
    let engine = Engine::new(topo, cfg);
    let mut nodes: Vec<HashChain> =
        (0..topo.n()).map(|v| HashChain { acc: v as u64 + 1, rounds_left: 8 }).collect();
    let report = engine.run(&mut nodes, RunUntil::Quiesce { max: 64 });
    (nodes.into_iter().map(|nd| nd.acc).collect(), report)
}

/// Same `FaultSpec` seed ⇒ byte-identical node states and phase reports
/// (including the fault counters) whether nodes are stepped sequentially
/// or by the worker pool, for every fault class.
#[test]
fn fault_injection_is_worker_invariant() {
    let classes = [
        ("drop", FaultSpec::seeded(0xD0).drops(120_000)),
        ("corrupt", FaultSpec::seeded(0xC0).corruption(120_000)),
        ("crash", FaultSpec::seeded(0xCA).crashes(150_000, 3)),
        ("flap", FaultSpec::seeded(0xF1).flaps(150_000, 3)),
        (
            "all",
            FaultSpec::seeded(0xA1)
                .drops(60_000)
                .corruption(60_000)
                .crashes(80_000, 2)
                .flaps(80_000, 2),
        ),
    ];
    for (name, spec) in classes {
        for seed in 0..4u64 {
            let topo = random_topo(22, 40, seed);
            let (seq_state, seq_rep) =
                run_hash_chain_faulted(&topo, SimConfig { fault: Some(spec), ..seq_cfg() });
            if let Ok(rep) = &seq_rep {
                assert!(
                    rep.faults.injected > 0,
                    "{name} seed {seed}: plan was meant to inject something"
                );
            }
            for workers in [2, 5] {
                let (par_state, par_rep) = run_hash_chain_faulted(
                    &topo,
                    SimConfig { fault: Some(spec), ..par_cfg(workers) },
                );
                assert_eq!(seq_state, par_state, "{name} seed {seed} workers {workers}: state");
                assert_eq!(seq_rep, par_rep, "{name} seed {seed} workers {workers}: report");
            }
        }
    }
}

/// Violations must surface identically: same error, attributed to the same
/// (lowest) node id, regardless of which worker stepped the offender.
#[derive(Clone)]
struct EveryoneViolates;

impl NodeLogic for EveryoneViolates {
    type Msg = u8;

    fn on_round(&mut self, env: &NodeEnv<'_>, _ib: &[Envelope<u8>], out: &mut Outbox<'_, u8>) {
        if env.round == 1 {
            // Second message on a bandwidth-1 channel: illegal everywhere.
            out.send_nbr(0, 1);
            out.send_nbr(0, 2);
        } else if env.round == 0 {
            out.broadcast(0);
        }
    }
}

#[test]
fn first_violation_wins_deterministically() {
    let topo = random_topo(17, 20, 4);
    let mk = || vec![EveryoneViolates; 17];
    let engine = Engine::new(&topo, seq_cfg());
    let seq_err = engine.run(&mut mk(), RunUntil::Quiesce { max: 10 }).unwrap_err();
    assert!(matches!(seq_err, SimError::BandwidthExceeded { from: 0, round: 1, .. }));
    for workers in [2, 3, 6] {
        let engine = Engine::new(&topo, par_cfg(workers));
        let par_err = engine.run(&mut mk(), RunUntil::Quiesce { max: 10 }).unwrap_err();
        assert_eq!(seq_err, par_err, "workers {workers}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Parallel == sequential on arbitrary graphs, worker counts and
    /// payload distributions, for the order-sensitive hash-chain protocol.
    #[test]
    fn hash_chain_deterministic(
        n in 2usize..32,
        extra in 0usize..60,
        seed in 0u64..500,
        workers in 2usize..8,
    ) {
        let topo = random_topo(n, extra, seed);
        let (seq_state, seq_rep) = run_hash_chain(&topo, seq_cfg());
        let (par_state, par_rep) = run_hash_chain(&topo, par_cfg(workers));
        prop_assert_eq!(seq_state, par_state);
        prop_assert_eq!(seq_rep, par_rep);
    }

    /// Flood logs (content *and* discovery order) are worker-invariant.
    #[test]
    fn flood_deterministic(
        n in 2usize..24,
        extra in 0usize..40,
        seed in 0u64..500,
        workers in 2usize..6,
        items in proptest::collection::vec((0usize..24, 0u32..90), 0..20),
    ) {
        let topo = random_topo(n, extra, seed);
        let mut initial: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (slot, item) in items {
            initial[slot % n].push(item);
        }
        let (seq_logs, seq_rep) = all_to_all_broadcast(&topo, seq_cfg(), initial.clone(), 1).unwrap();
        let (par_logs, par_rep) = all_to_all_broadcast(&topo, par_cfg(workers), initial, 1).unwrap();
        prop_assert_eq!(seq_logs, par_logs);
        prop_assert_eq!(seq_rep, par_rep);
    }
}

/// The exact engine tests from the module run identically under the pool;
/// spot-check the quiesce/budget bookkeeping fields too.
#[test]
fn report_bookkeeping_matches_across_paths() {
    let topo = random_topo(12, 14, 2);
    let initial: Vec<Vec<u32>> = (0..12).map(|i| vec![i as u32]).collect();
    let (_, seq) = all_to_all_broadcast(&topo, seq_cfg(), initial.clone(), 1).unwrap();
    let (_, par) = all_to_all_broadcast(&topo, par_cfg(5), initial, 1).unwrap();
    assert_eq!(seq.rounds, par.rounds);
    assert_eq!(seq.messages, par.messages);
    assert_eq!(seq.node_sent, par.node_sent);
    assert_eq!(seq.peak_in_flight, par.peak_in_flight);
    assert!(seq.peak_in_flight > 0);
}
