//! Fault-injection plane integration tests: scripted plans hit exactly
//! the addressed messages/rounds, seeded plans are reproducible, the
//! zero-rate path is byte-identical to no plan at all, and node panics
//! surface as typed errors on both stepping paths.

use congest_graph::generators::{gnm_connected, WeightDist};
use congest_sim::fault::{FaultEvent, FaultPlan, FaultSpec};
use congest_sim::{
    Engine, Envelope, NodeEnv, NodeLogic, Outbox, PhaseReport, RunUntil, SimConfig, SimError,
    Topology,
};

fn seq_cfg() -> SimConfig {
    SimConfig { parallel_threshold: usize::MAX, ..Default::default() }
}

fn par_cfg(workers: usize) -> SimConfig {
    SimConfig { parallel_threshold: 0, workers, ..Default::default() }
}

fn random_topo(n: usize, extra: usize, seed: u64) -> Topology {
    Topology::from_graph(&gnm_connected(n, extra, false, WeightDist::Unit, seed))
}

/// Node 0 broadcasts its round number for `sends` rounds; every other
/// node logs `(round received, sender, payload)`. The log pins down
/// exactly which frames survived.
struct Ticker {
    sends: u64,
    log: Vec<(u64, u32, u64)>,
}

impl Ticker {
    fn fleet(n: usize, sends: u64) -> Vec<Ticker> {
        (0..n).map(|_| Ticker { sends, log: Vec::new() }).collect()
    }
}

impl NodeLogic for Ticker {
    type Msg = u64;

    fn on_round(&mut self, env: &NodeEnv<'_>, inbox: &[Envelope<u64>], out: &mut Outbox<'_, u64>) {
        for e in inbox {
            self.log.push((env.round, e.from, e.msg));
        }
        if env.id == 0 && env.round < self.sends {
            out.broadcast(env.round);
        }
    }
}

/// Same protocol, but able to reinterpret a corrupted frame: the payload
/// is replaced by the entropy word.
struct CorruptibleTicker(Ticker);

impl NodeLogic for CorruptibleTicker {
    type Msg = u64;

    fn on_round(&mut self, env: &NodeEnv<'_>, inbox: &[Envelope<u64>], out: &mut Outbox<'_, u64>) {
        self.0.on_round(env, inbox, out);
    }

    fn corrupt_msg(&self, msg: &mut u64, entropy: u64) -> bool {
        *msg = entropy;
        true
    }
}

/// Two nodes, one edge: node 0 → node 1, five frames (payloads 0..5),
/// frame `r` read by node 1 in round `r + 1`.
fn pair() -> Topology {
    random_topo(2, 0, 1)
}

fn clean_log() -> Vec<(u64, u32, u64)> {
    (0..5).map(|r| (r + 1, 0, r)).collect()
}

#[test]
fn scripted_drop_removes_exactly_one_frame() {
    let topo = pair();
    let engine =
        Engine::new(&topo, seq_cfg()).with_fault_plan(FaultPlan::Script(vec![FaultEvent::Drop {
            round: 2,
            from: 0,
            to: 1,
            nth: 0,
        }]));
    let mut nodes = Ticker::fleet(2, 5);
    let rep = engine.run(&mut nodes, RunUntil::Exact(6)).unwrap();
    let expect: Vec<_> = clean_log().into_iter().filter(|&(_, _, p)| p != 2).collect();
    assert_eq!(nodes[1].log, expect, "exactly the addressed frame is lost");
    assert_eq!(rep.faults.dropped, 1);
    assert_eq!(rep.faults.injected, 1);
    assert_eq!(rep.faults.corrupted, 0);
    // The sender still paid for the dropped frame (bandwidth was consumed).
    assert_eq!(rep.node_sent[0], 5);
    // But it was never delivered.
    assert_eq!(rep.messages, 4);
}

#[test]
fn corruption_without_protocol_support_degrades_to_drop() {
    let topo = pair();
    let script = FaultPlan::Script(vec![FaultEvent::Corrupt {
        round: 2,
        from: 0,
        to: 1,
        nth: 0,
        entropy: 0xDEAD,
    }]);
    let engine = Engine::new(&topo, seq_cfg()).with_fault_plan(script);
    let mut nodes = Ticker::fleet(2, 5);
    let rep = engine.run(&mut nodes, RunUntil::Exact(6)).unwrap();
    let expect: Vec<_> = clean_log().into_iter().filter(|&(_, _, p)| p != 2).collect();
    assert_eq!(nodes[1].log, expect, "un-corruptible frame must be dropped, not delivered");
    assert_eq!(rep.faults.dropped, 1, "fallback counts as a drop (failed checksum)");
    assert_eq!(rep.faults.corrupted, 0);
}

#[test]
fn corruption_with_protocol_support_mutates_in_place() {
    let topo = pair();
    let script = FaultPlan::Script(vec![FaultEvent::Corrupt {
        round: 2,
        from: 0,
        to: 1,
        nth: 0,
        entropy: 0xDEAD,
    }]);
    let engine = Engine::new(&topo, seq_cfg()).with_fault_plan(script);
    let mut nodes: Vec<CorruptibleTicker> =
        Ticker::fleet(2, 5).into_iter().map(CorruptibleTicker).collect();
    let rep = engine.run(&mut nodes, RunUntil::Exact(6)).unwrap();
    let expect: Vec<_> =
        clean_log().into_iter().map(|e| if e.2 == 2 { (e.0, e.1, 0xDEAD) } else { e }).collect();
    assert_eq!(nodes[1].0.log, expect, "the frame arrives, but mutated");
    assert_eq!(rep.faults.corrupted, 1);
    assert_eq!(rep.faults.dropped, 0);
    assert_eq!(rep.messages, 5, "a corrupted frame is still delivered");
}

#[test]
fn crashed_node_skips_rounds_and_loses_arrivals_but_keeps_state() {
    let topo = pair();
    let script = FaultPlan::Script(vec![FaultEvent::Crash { node: 1, from_round: 2, to_round: 3 }]);
    let engine = Engine::new(&topo, seq_cfg()).with_fault_plan(script);
    let mut nodes = Ticker::fleet(2, 5);
    let rep = engine.run(&mut nodes, RunUntil::Exact(6)).unwrap();
    // Down in rounds 2 and 3: the frames it would have read there
    // (payloads 1 and 2) vanish; earlier log entries survive the warm
    // restart; later frames arrive normally.
    let expect: Vec<_> = clean_log().into_iter().filter(|&(_, _, p)| p != 1 && p != 2).collect();
    assert_eq!(nodes[1].log, expect);
    assert_eq!(rep.faults.crashed_rounds, 2);
    assert_eq!(rep.faults.injected, 2);
}

type TickLogs = Vec<Vec<(u64, u32, u64)>>;

#[test]
fn zero_rate_spec_is_byte_identical_to_no_plan() {
    let topo = random_topo(18, 30, 3);
    let run = |fault: Option<FaultSpec>| -> (TickLogs, PhaseReport) {
        let engine = Engine::new(&topo, SimConfig { fault, ..seq_cfg() });
        let mut nodes = Ticker::fleet(18, 6);
        let rep = engine.run(&mut nodes, RunUntil::Exact(7)).unwrap();
        (nodes.into_iter().map(|t| t.log).collect(), rep)
    };
    let (clean_logs, clean_rep) = run(None);
    let (zero_logs, zero_rep) = run(Some(FaultSpec::seeded(0xFACE)));
    assert_eq!(clean_logs, zero_logs);
    assert_eq!(clean_rep, zero_rep, "an all-zero spec must take the fault-free path");
    assert!(clean_rep.faults.is_zero());
}

#[test]
fn seeded_plan_is_reproducible_and_counts_faults() {
    let topo = random_topo(20, 36, 5);
    let spec = FaultSpec::seeded(0xBEEF).drops(120_000).corruption(80_000);
    let run = || {
        let engine = Engine::new(&topo, SimConfig { fault: Some(spec), ..seq_cfg() });
        let mut nodes: Vec<CorruptibleTicker> =
            Ticker::fleet(20, 8).into_iter().map(CorruptibleTicker).collect();
        let rep = engine.run(&mut nodes, RunUntil::Exact(9)).unwrap();
        (nodes.into_iter().map(|t| t.0.log).collect::<Vec<_>>(), rep)
    };
    let (logs_a, rep_a) = run();
    let (logs_b, rep_b) = run();
    assert_eq!(logs_a, logs_b, "same spec, same run");
    assert_eq!(rep_a, rep_b);
    assert!(rep_a.faults.injected > 0, "12%+8% over ~8 rounds of broadcast must hit");
    assert_eq!(rep_a.faults.injected, rep_a.faults.dropped + rep_a.faults.corrupted);
    assert!(rep_a.faults.corrupted > 0, "corruptible protocol takes real corruption");
}

/// Panics in `on_round` must surface as a typed, deterministically
/// attributed error — not poison the worker pool (satellite: panic
/// containment).
struct PanicAt {
    node: u32,
    round: u64,
}

impl NodeLogic for PanicAt {
    type Msg = u8;

    fn on_round(&mut self, env: &NodeEnv<'_>, _ib: &[Envelope<u8>], out: &mut Outbox<'_, u8>) {
        assert!(env.id != self.node || env.round != self.round, "injected test panic");
        if env.round == 0 {
            out.broadcast(1);
        }
    }
}

#[test]
fn node_panic_is_contained_and_deterministic() {
    // Silence the default panic hook: these unwinds are intentional.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let topo = random_topo(12, 18, 7);
    let mk = |node: u32| -> Vec<PanicAt> { (0..12).map(|_| PanicAt { node, round: 2 }).collect() };
    let seq_err = Engine::new(&topo, seq_cfg()).run(&mut mk(5), RunUntil::Exact(4)).unwrap_err();
    assert_eq!(seq_err, SimError::NodePanic { node: 5, round: 2 });
    for workers in [2, 3, 6] {
        let par_err =
            Engine::new(&topo, par_cfg(workers)).run(&mut mk(5), RunUntil::Exact(4)).unwrap_err();
        assert_eq!(seq_err, par_err, "workers {workers}: panic attribution diverged");
    }

    // Many nodes panicking in the same round: lowest id wins, identically
    // on both stepping paths.
    let all =
        |round: u64| -> Vec<PanicAt> { (0..12).map(|v| PanicAt { node: v, round }).collect() };
    let seq_err = Engine::new(&topo, seq_cfg()).run(&mut all(1), RunUntil::Exact(4)).unwrap_err();
    assert_eq!(seq_err, SimError::NodePanic { node: 0, round: 1 });
    let par_err = Engine::new(&topo, par_cfg(4)).run(&mut all(1), RunUntil::Exact(4)).unwrap_err();
    assert_eq!(seq_err, par_err);

    std::panic::set_hook(hook);
}
