//! Exporters: Chrome trace-event JSON, Prometheus text, run manifests.

use crate::hist::Histogram;
use crate::json::{obj, Json};
use crate::registry::Registry;
use crate::spans::{SpanEvent, SpanKind};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version stamped into every manifest; bump on breaking layout change.
pub const SCHEMA_VERSION: u64 = 1;

/// Per-phase accounting row as it appears in run manifests. The
/// simulator's `PhaseReport` converts into this (telemetry cannot
/// depend on the simulator, so the row is defined here).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseRow {
    /// Phase label (the `Recorder` name).
    pub name: String,
    /// Simulated communication rounds.
    pub rounds: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Payload delivered, in machine words.
    pub payload_words: u64,
    /// Widest single message, in words.
    pub max_msg_words: u32,
    /// Maximum per-node messages sent (congestion).
    pub max_node_congestion: u64,
    /// Host wall-clock spent simulating the phase.
    pub wall_ns: u64,
}

impl PhaseRow {
    fn to_json(&self) -> Json {
        obj(vec![
            ("name", Json::from(self.name.as_str())),
            ("rounds", Json::U64(self.rounds)),
            ("messages", Json::U64(self.messages)),
            ("payload_words", Json::U64(self.payload_words)),
            ("max_msg_words", Json::from(self.max_msg_words)),
            ("max_node_congestion", Json::U64(self.max_node_congestion)),
            ("wall_ns", Json::U64(self.wall_ns)),
        ])
    }
}

fn attrs_json(attrs: &[(String, String)]) -> Json {
    Json::Obj(attrs.iter().map(|(k, v)| (k.clone(), Json::from(v.as_str()))).collect())
}

/// Renders span events as Chrome trace-event JSON (the object form:
/// `{"traceEvents": [...]}`), loadable in Perfetto / `chrome://tracing`.
/// Timestamps are microseconds with fractional nanoseconds preserved.
#[must_use]
pub fn chrome_trace(events: &[SpanEvent]) -> String {
    let out: Vec<Json> = events
        .iter()
        .map(|e| {
            let ts = Json::F64(e.ts_ns as f64 / 1000.0);
            let mut fields: Vec<(&str, Json)> = vec![
                ("name", Json::from(e.name.as_str())),
                (
                    "ph",
                    Json::from(match e.kind {
                        SpanKind::Begin => "B",
                        SpanKind::End => "E",
                        SpanKind::Complete => "X",
                        SpanKind::Instant => "i",
                    }),
                ),
                ("ts", ts),
                ("pid", Json::U64(1)),
                ("tid", Json::U64(e.tid)),
            ];
            if e.kind == SpanKind::Complete {
                fields.push(("dur", Json::F64(e.dur_ns as f64 / 1000.0)));
            }
            if e.kind == SpanKind::Instant {
                fields.push(("s", Json::from("t")));
            }
            if !e.attrs.is_empty() {
                fields.push(("args", attrs_json(&e.attrs)));
            }
            obj(fields)
        })
        .collect();
    obj(vec![("traceEvents", Json::Arr(out)), ("displayTimeUnit", Json::from("ns"))]).pretty()
}

fn sanitize_metric_name(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect()
}

/// Renders the registry as a Prometheus-style text dump. Histograms are
/// exposed summary-style: `_count`, `_sum`, and `{quantile="…"}` rows.
#[must_use]
pub fn prometheus(reg: &Registry) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for (name, v) in reg.counters() {
        let name = sanitize_metric_name(&name);
        let _ = writeln!(s, "# TYPE {name} counter");
        let _ = writeln!(s, "{name} {v}");
    }
    for (name, v) in reg.gauges() {
        let name = sanitize_metric_name(&name);
        let _ = writeln!(s, "# TYPE {name} gauge");
        let _ = writeln!(s, "{name} {v}");
    }
    for (name, h) in reg.histograms() {
        let name = sanitize_metric_name(&name);
        let _ = writeln!(s, "# TYPE {name} summary");
        for (q, label) in [(0.5, "0.5"), (0.99, "0.99"), (0.999, "0.999")] {
            let _ = writeln!(s, "{name}{{quantile=\"{label}\"}} {}", h.quantile(q));
        }
        let _ = writeln!(s, "{name}_sum {}", h.sum());
        let _ = writeln!(s, "{name}_count {}", h.count());
    }
    s
}

fn histogram_json(h: &Histogram) -> Json {
    obj(vec![
        ("count", Json::U64(h.count())),
        ("sum", Json::U64(h.sum())),
        ("mean", Json::F64(h.mean())),
        ("p50", Json::U64(h.p50())),
        ("p99", Json::U64(h.p99())),
        ("p999", Json::U64(h.p999())),
        ("max", Json::U64(h.max())),
    ])
}

/// Builder for the machine-readable run manifest — the single JSON sink
/// every artifact (`results/run-*.json`, `BENCH_*.json`) goes through,
/// so all of them carry [`SCHEMA_VERSION`], a kind tag, a timestamp,
/// and whatever provenance sections the producer attaches (graph
/// params, solver knobs, per-phase rows, registry snapshots).
#[derive(Clone, Debug)]
pub struct Manifest {
    fields: Vec<(String, Json)>,
}

impl Manifest {
    /// Starts a manifest of the given kind (e.g. `"solver-run"`,
    /// `"bench-oracle"`), stamped with the schema version and the
    /// current wall-clock time.
    #[must_use]
    pub fn new(kind: &str) -> Self {
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        Manifest {
            fields: vec![
                ("schema_version".to_string(), Json::U64(SCHEMA_VERSION)),
                ("kind".to_string(), Json::from(kind)),
                ("created_unix_ms".to_string(), Json::U64(unix_ms)),
            ],
        }
    }

    /// Attaches a section (replacing an existing one with the same key).
    #[must_use]
    pub fn field(mut self, key: &str, value: Json) -> Self {
        if let Some(slot) = self.fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.fields.push((key.to_string(), value));
        }
        self
    }

    /// Attaches the per-phase table under `"phases"`, plus aggregate
    /// totals under `"totals"`.
    #[must_use]
    pub fn phases(self, rows: &[PhaseRow]) -> Self {
        let totals = obj(vec![
            ("rounds", Json::U64(rows.iter().map(|r| r.rounds).sum())),
            ("messages", Json::U64(rows.iter().map(|r| r.messages).sum())),
            ("payload_words", Json::U64(rows.iter().map(|r| r.payload_words).sum())),
            ("max_msg_words", Json::from(rows.iter().map(|r| r.max_msg_words).max().unwrap_or(0))),
            ("wall_ns", Json::U64(rows.iter().map(|r| r.wall_ns).sum())),
        ]);
        self.field("phases", Json::Arr(rows.iter().map(PhaseRow::to_json).collect()))
            .field("totals", totals)
    }

    /// Attaches a registry snapshot under `"metrics"` (counters, gauges,
    /// and histogram quantiles).
    #[must_use]
    pub fn metrics(self, reg: &Registry) -> Self {
        let counters =
            Json::Obj(reg.counters().into_iter().map(|(k, v)| (k, Json::U64(v))).collect());
        let gauges = Json::Obj(reg.gauges().into_iter().map(|(k, v)| (k, Json::I64(v))).collect());
        let hists =
            Json::Obj(reg.histograms().into_iter().map(|(k, h)| (k, histogram_json(&h))).collect());
        self.field(
            "metrics",
            obj(vec![("counters", counters), ("gauges", gauges), ("histograms", hists)]),
        )
    }

    /// The manifest as a JSON value.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(self.fields.clone())
    }

    /// Writes the manifest (pretty-printed) to `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json().pretty())
    }

    /// Writes the manifest as `dir/run-<unix-ms>-<seq>.json` (the
    /// sequence number keeps same-millisecond runs distinct within a
    /// process) and returns the path.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_run(&self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let unix_ms = match self.to_json().get("created_unix_ms") {
            Some(Json::U64(ms)) => *ms,
            _ => 0,
        };
        let path = dir.as_ref().join(format!("run-{unix_ms}-{seq}.json"));
        self.write(&path)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::spans::SpanRing;

    #[test]
    fn chrome_trace_parses_and_maps_kinds() {
        let ring = SpanRing::new(16);
        let id = ring.start("outer", 1000);
        ring.complete("phase", 1100, 250, vec![("rounds".into(), "7".into())]);
        ring.instant("tick", 1200, Vec::new());
        ring.end(id, 2000, Vec::new());
        let text = chrome_trace(&ring.snapshot());
        let v = parse(&text).expect("trace must be valid JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 4);
        let phs: Vec<&str> =
            events.iter().map(|e| e.get("ph").unwrap().as_str().unwrap()).collect();
        assert_eq!(phs, vec!["B", "X", "i", "E"]);
        let x = &events[1];
        assert_eq!(x.get("name").unwrap().as_str(), Some("phase"));
        assert_eq!(x.get("ts").unwrap().as_f64(), Some(1.1));
        assert_eq!(x.get("dur").unwrap().as_f64(), Some(0.25));
        assert_eq!(x.get("args").unwrap().get("rounds").unwrap().as_str(), Some("7"));
    }

    #[test]
    fn prometheus_renders_all_metric_kinds() {
        let reg = Registry::new();
        reg.counter("ops.total").add(3);
        reg.gauge("cache-size").set(-2);
        let h = reg.histogram("lat_ns");
        h.record(10);
        h.record(20);
        let text = prometheus(&reg);
        assert!(text.contains("# TYPE ops_total counter\nops_total 3\n"));
        assert!(text.contains("# TYPE cache_size gauge\ncache_size -2\n"));
        assert!(text.contains("lat_ns{quantile=\"0.5\"} 10"));
        assert!(text.contains("lat_ns_count 2"));
    }

    #[test]
    fn manifest_carries_schema_phases_and_metrics() {
        let reg = Registry::new();
        reg.counter("c").inc();
        let rows = vec![
            PhaseRow {
                name: "a".into(),
                rounds: 2,
                messages: 5,
                wall_ns: 10,
                ..Default::default()
            },
            PhaseRow {
                name: "b".into(),
                rounds: 3,
                messages: 1,
                wall_ns: 20,
                ..Default::default()
            },
        ];
        let m = Manifest::new("unit-test")
            .field("knobs", obj(vec![("h", Json::U64(4))]))
            .phases(&rows)
            .metrics(&reg);
        let v = parse(&m.to_json().pretty()).unwrap();
        assert_eq!(v.get("schema_version").unwrap().as_f64(), Some(SCHEMA_VERSION as f64));
        assert_eq!(v.get("kind").unwrap().as_str(), Some("unit-test"));
        assert_eq!(v.get("phases").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("totals").unwrap().get("rounds").unwrap().as_f64(), Some(5.0));
        assert_eq!(v.get("totals").unwrap().get("wall_ns").unwrap().as_f64(), Some(30.0));
        assert_eq!(
            v.get("metrics").unwrap().get("counters").unwrap().get("c").unwrap().as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn write_run_names_are_distinct() {
        let dir = std::env::temp_dir().join("congest_telemetry_test_manifests");
        let m = Manifest::new("t");
        let a = m.write_run(&dir).unwrap();
        let b = m.write_run(&dir).unwrap();
        assert_ne!(a, b);
        let text = std::fs::read_to_string(&a).unwrap();
        assert!(parse(&text).is_ok());
        let _ = std::fs::remove_file(a);
        let _ = std::fs::remove_file(b);
    }
}
