//! Log-bucketed latency histogram.
//!
//! Values (nanoseconds, bytes, …) are binned into power-of-two ranges
//! split into `2^SUB_BITS` sub-buckets each, HDR-histogram style: bucket
//! boundaries are exact integers, lookup is a handful of bit operations,
//! and the whole table is `BUCKET_COUNT` atomic counters — recording is
//! lock-free and concurrent recorders need no coordination. Two
//! histograms fed disjoint sample sets and then [`merge`]d are
//! *bit-identical* to one histogram fed the concatenation (the property
//! test in `tests/hist_prop.rs` pins this down).
//!
//! [`merge`]: Histogram::merge
//!
//! # Quantile error bound
//!
//! [`Histogram::quantile`] returns the inclusive upper bound of the
//! bucket holding the rank-⌈q·count⌉ sample. Values below `2^SUB_BITS`
//! get singleton buckets (exact); above that a bucket spanning
//! `[(2^SUB_BITS + s)·2^e, …)` is `2^e` wide, at most a `1/2^SUB_BITS`
//! fraction of its lower bound. Hence for the exact rank-q sample `v`:
//!
//! ```text
//! v ≤ quantile(q) ≤ v · (1 + 2^-SUB_BITS)     (= v · 1.03125)
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each power-of-two range is split into
/// `2^SUB_BITS` buckets, bounding relative quantile error by
/// `2^-SUB_BITS` (≈ 3.1%).
pub const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;
/// Total buckets covering the full `u64` range.
pub const BUCKET_COUNT: usize = ((64 - SUB_BITS as usize) + 1) * SUB as usize;

/// Index of the bucket containing `v`. Monotone in `v`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - u64::from(v.leading_zeros());
    let exp = msb - u64::from(SUB_BITS);
    let sub = (v >> exp) - SUB;
    ((exp + 1) * SUB + sub) as usize
}

/// Inclusive lower bound of bucket `i`.
#[inline]
fn bucket_low(i: usize) -> u64 {
    let i = i as u64;
    if i < SUB {
        i
    } else {
        let exp = i / SUB - 1;
        (SUB + i % SUB) << exp
    }
}

/// Inclusive upper bound of bucket `i` — what [`Histogram::quantile`]
/// reports.
#[inline]
fn bucket_high(i: usize) -> u64 {
    if i + 1 >= BUCKET_COUNT {
        u64::MAX
    } else {
        bucket_low(i + 1) - 1
    }
}

/// A mergeable, thread-safe, log-bucketed histogram (see the module
/// docs for the binning scheme and error bound).
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free; safe to call from any thread.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (wrapping on overflow).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (0 when empty). Exact, not bucketed.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Folds another histogram's samples into this one. Afterwards this
    /// histogram is bit-identical to one that recorded both sample sets.
    pub fn merge(&self, other: &Histogram) {
        for (b, o) in self.buckets.iter().zip(other.buckets.iter()) {
            let c = o.load(Ordering::Relaxed);
            if c > 0 {
                b.fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// Upper bound of the bucket holding the rank-⌈q·count⌉ sample;
    /// 0 when empty. `q` is clamped to `[0, 1]`; see the module docs
    /// for the `(1 + 2^-SUB_BITS)` relative error bound.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_high(i);
            }
        }
        bucket_high(BUCKET_COUNT - 1)
    }

    /// Median ([`quantile`](Self::quantile)`(0.50)`).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    #[must_use]
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Non-empty buckets as `(inclusive upper bound, count)`, ascending.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then(|| (bucket_high(i), c))
            })
            .collect()
    }

    /// Resets every counter to zero.
    pub fn clear(&self) {
        for b in &*self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_the_range() {
        // Every bucket's low is the previous bucket's high + 1, and
        // lookup agrees with the bounds at and around every boundary.
        for i in 1..BUCKET_COUNT {
            assert_eq!(bucket_low(i), bucket_high(i - 1) + 1, "bucket {i}");
        }
        for i in 0..BUCKET_COUNT {
            let (lo, hi) = (bucket_low(i), bucket_high(i));
            assert_eq!(bucket_of(lo), i);
            assert_eq!(bucket_of(hi), i);
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 17, 31] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0); // rank clamps to 1 → smallest
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.p50(), 2);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 54);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn quantile_respects_documented_bound() {
        let h = Histogram::new();
        let samples: Vec<u64> = (0..1000u64).map(|i| i * i * 13 + 7).collect();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let got = h.quantile(q);
            assert!(got >= exact, "q={q}: {got} < exact {exact}");
            let bound = exact + (exact >> SUB_BITS) + 1;
            assert!(got <= bound, "q={q}: {got} > bound {bound}");
        }
    }

    #[test]
    fn merge_equals_concatenation() {
        let (a, b, both) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in 0..500u64 {
            let v = v * 997;
            if v % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.sum(), both.sum());
        assert_eq!(a.max(), both.max());
        assert_eq!(a.nonzero_buckets(), both.nonzero_buckets());
        for q in [0.1, 0.5, 0.99, 0.999] {
            assert_eq!(a.quantile(q), both.quantile(q));
        }
    }

    #[test]
    fn clear_resets() {
        let h = Histogram::new();
        h.record(12345);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert!(h.nonzero_buckets().is_empty());
    }
}
